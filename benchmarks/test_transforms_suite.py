"""E10 — Figure 10 transformation-correctness matrix.

Checks every elimination rule against the model checker across fence
kinds, regenerating the paper's table plus the two negative results:
RAW elimination across Fmr (the FMR bug) and — a deviation our checker
found — WAW elimination across Fww (see EXPERIMENTS.md).
"""

import pytest

from repro.core import TCG, Fence
from repro.core import litmus_library as L
from repro.core.litmus_library import R, W, tcg
from repro.core.program import FenceOp, Store
from repro.core.transforms import (
    FIGURE_10_RULES,
    eliminate_rar,
    eliminate_raw,
    eliminate_waw,
)
from repro.core.verifier import check_translation


def _ctx(*t0_ops):
    return tcg("ctx", tuple(t0_ops),
               (R("p", "Y"), FenceOp(Fence.FRR), R("q", "X")),
               (W("Y", 3),))


def _ok(src, tgt) -> bool:
    return check_translation(src, tgt, TCG, TCG, mapping_name="t").ok


CASES = (
    ("RAR", None,
     lambda f: _ctx(W("X", 1), R("a", "X"), R("b", "X")),
     lambda p: eliminate_rar(p, 0, 1), True),
    ("RAW", None,
     lambda f: _ctx(W("X", 2), R("a", "X"), Store("Z", "a")),
     lambda p: eliminate_raw(p, 0, 0), True),
    ("WAW", None,
     lambda f: _ctx(W("X", 1), W("X", 2), W("Y", 1)),
     lambda p: eliminate_waw(p, 0, 0), True),
    ("F-RAR", Fence.FRM,
     lambda f: _ctx(W("X", 1), R("a", "X"), FenceOp(f), R("b", "X")),
     lambda p: eliminate_rar(p, 0, 1), True),
    ("F-RAR", Fence.FWW,
     lambda f: _ctx(W("X", 1), R("a", "X"), FenceOp(f), R("b", "X")),
     lambda p: eliminate_rar(p, 0, 1), True),
    ("F-RAW", Fence.FWW,
     lambda f: _ctx(W("X", 2), FenceOp(f), R("a", "X"),
                    Store("Z", "a")),
     lambda p: eliminate_raw(p, 0, 0), True),
    ("F-RAW", Fence.FSC,
     lambda f: _ctx(W("X", 2), FenceOp(f), R("a", "X"),
                    Store("Z", "a")),
     lambda p: eliminate_raw(p, 0, 0), True),
    ("F-WAW", Fence.FRM,
     lambda f: _ctx(W("X", 1), FenceOp(f), W("X", 2), W("Y", 1)),
     lambda p: eliminate_waw(p, 0, 0), True),
    # The negative results:
    ("F-RAW (FMR bug)", Fence.FMR, lambda f: L.FMR_SOURCE,
     lambda p: eliminate_raw(p, 0, 2), False),
    ("F-WAW (deviation)", Fence.FWW,
     lambda f: _ctx(W("X", 1), FenceOp(f), W("X", 2), W("Y", 1)),
     lambda p: eliminate_waw(p, 0, 0), False),
)


@pytest.fixture(scope="module")
def transform_matrix():
    rows = []
    for rule, fence, make_src, transform, expect_ok in CASES:
        src = make_src(fence)
        tgt = transform(src)
        rows.append((rule, fence.value if fence else "—",
                     _ok(src, tgt), expect_ok))
    return rows


def test_figure10_matrix(benchmark, transform_matrix, emit_report):
    rows = benchmark.pedantic(lambda: transform_matrix, rounds=1,
                              iterations=1)
    lines = ["Figure 10 — elimination rules checked by the model "
             "checker",
             f"{'rule':22s}{'fence':8s}{'verdict':10s}expected"]
    for rule, fence, ok, expected in rows:
        verdict = "correct" if ok else "UNSOUND"
        lines.append(f"{rule:22s}{fence:8s}{verdict:10s}"
                     f"{'correct' if expected else 'UNSOUND'}")
    lines.append("")
    lines.append("Rule patterns (paper's Figure 10):")
    for rule in FIGURE_10_RULES:
        lines.append(f"  {rule.name:6s} {rule.pattern:24s} -> "
                     f"{rule.result:16s} [{rule.fence_condition}]")
    emit_report("figure10_transforms", "\n".join(lines))

    for rule, fence, ok, expected in rows:
        assert ok == expected, (rule, fence)
