"""E8 — Section 5.4 minimality: every fence in Figure 7 is necessary.

Ablates each fence class out of Risotto's mappings and reports which
litmus tests break — the executable version of the Figures 8/9
arguments ("each placed fence is necessary in some program").

The ablations live in :mod:`repro.core.ablations` as a named registry
so the parallel harness can ship each one to a worker as a string and
rebuild the mapping closure in-process; the behaviour-cache hit/miss
counters come back in the result rows.
"""

import pytest

from repro.analysis import run_stats_footer
from repro.core.ablations import ABLATION_REGISTRY
from repro.api import ablation_grid, run_parallel


@pytest.fixture(scope="module")
def ablation_sweep():
    return run_parallel(ablation_grid(ABLATION_REGISTRY))


def test_every_fence_is_necessary(benchmark, ablation_sweep,
                                  emit_report, emit_bench):
    sweep = benchmark.pedantic(lambda: ablation_sweep, rounds=1,
                               iterations=1)
    lines = ["Minimality ablation — removing any Figure 7 fence class "
             "breaks the corpus",
             f"{'ablation':40s}broken tests"]
    for row in sweep:
        lines.append(f"{row.benchmark:40s}{', '.join(row.payload)}")
    lines.append(run_stats_footer(sweep, "ablation harness stats"))
    emit_report("minimality_ablation", "\n".join(lines))
    emit_bench("minimality_ablation", sweep=sweep,
               extra={"broken_tests": {row.benchmark: list(row.payload)
                                       for row in sweep}})

    for row in sweep:
        assert row.payload, f"{row.benchmark}: no test broke"

    by_label = {row.benchmark: set(row.payload) for row in sweep}
    # Figure 8: ld-ld/ld-st order needs the trailing Frm.
    assert {"MP", "LB"} & by_label["drop trailing Frm after loads"]
    # Figure 8: st-st order needs the leading Fww.
    assert "MP" in by_label["drop leading Fww before stores"]
    # Figure 9: the DMBFFs around RMW2 each matter.
    assert by_label["drop leading DMBFF around RMW2"]
    assert {"SBQ", "SBAL"} & \
        by_label["drop trailing DMBFF around RMW2"]
    # Litmus enumeration ran in the workers: the cache counters came
    # back through the observability layer.
    assert any(row.cache_misses > 0 for row in sweep)
