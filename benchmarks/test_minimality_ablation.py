"""E8 — Section 5.4 minimality: every fence in Figure 7 is necessary.

Ablates each fence class out of Risotto's mappings and reports which
litmus tests break — the executable version of the Figures 8/9
arguments ("each placed fence is necessary in some program").
"""

import pytest

from repro.core import ARM, TCG, X86, Fence
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.verifier import ablate, drop_fences, drop_rmw_fence

ABLATIONS = (
    ("drop trailing Frm after loads",
     lambda: drop_fences(M.risotto_x86_to_tcg,
                         frozenset({Fence.FRM}), "frm"),
     TCG),
    ("drop leading Fww before stores",
     lambda: drop_fences(M.risotto_x86_to_tcg,
                         frozenset({Fence.FWW}), "fww"),
     TCG),
    ("drop leading DMBFF around RMW2",
     lambda: M.risotto_x86_to_tcg.then(
         drop_rmw_fence(M.risotto_tcg_to_arm_rmw2, leading=True,
                        suffix="lead")),
     ARM),
    ("drop trailing DMBFF around RMW2",
     lambda: M.risotto_x86_to_tcg.then(
         drop_rmw_fence(M.risotto_tcg_to_arm_rmw2, leading=False,
                        suffix="trail")),
     ARM),
    ("lower Frm to DMBST instead of DMBLD",
     lambda: _miscompiled_frm(),
     ARM),
)


def _miscompiled_frm():
    """A deliberately wrong backend: read fences lowered to DMBST."""
    from repro.core.mappings import OpMapping
    from repro.core.program import FenceOp

    base = M.risotto_x86_to_arm_rmw1

    def weakened(op):
        out = []
        for mapped in base.map_op(op):
            if isinstance(mapped, FenceOp) and \
                    mapped.kind is Fence.DMBLD:
                out.append(FenceOp(Fence.DMBST))
            else:
                out.append(mapped)
        return tuple(out)

    return OpMapping("risotto-frm-as-dmbst", base.src_arch,
                     base.tgt_arch, weakened)


@pytest.fixture(scope="module")
def ablation_results():
    rows = []
    for label, make_mapping, model in ABLATIONS:
        result = ablate(L.X86_CORPUS, make_mapping(), X86, model, label)
        rows.append(result)
    return rows


def test_every_fence_is_necessary(benchmark, ablation_results,
                                  emit_report):
    rows = benchmark.pedantic(lambda: ablation_results, rounds=1,
                              iterations=1)
    lines = ["Minimality ablation — removing any Figure 7 fence class "
             "breaks the corpus",
             f"{'ablation':40s}broken tests"]
    for result in rows:
        lines.append(
            f"{result.ablation:40s}{', '.join(result.broken_tests)}")
    emit_report("minimality_ablation", "\n".join(lines))

    for result in rows:
        assert result.fence_was_necessary, result.ablation

    by_label = {r.ablation: set(r.broken_tests) for r in rows}
    # Figure 8: ld-ld/ld-st order needs the trailing Frm.
    assert {"MP", "LB"} & by_label["drop trailing Frm after loads"]
    # Figure 8: st-st order needs the leading Fww.
    assert "MP" in by_label["drop leading Fww before stores"]
    # Figure 9: the DMBFFs around RMW2 each matter.
    assert by_label["drop leading DMBFF around RMW2"]
    assert {"SBQ", "SBAL"} & \
        by_label["drop trailing DMBFF around RMW2"]
