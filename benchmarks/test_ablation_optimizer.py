"""Design-choice ablations (DESIGN.md §5).

Quantifies the individual contributions the paper folds into tcg-ver:

* the **fence-merging pass** (Section 6.1) — disabled vs enabled on a
  fence-dense kernel,
* the **weaker-fence choice** (DMBST vs DMBFF for store ordering) — by
  comparing qemu's scheme against tcg-ver with merging disabled,
* **block chaining** — tb_chain vs tb_entry dispatch cost.
"""

from dataclasses import replace

import pytest

from repro.dbt import DBTEngine
from repro.dbt.config import RISOTTO, TCG_VER
from repro.loader.gelf import build_binary
from repro.machine.timing import CostModel
from repro.tcg.optimizer import OptimizerConfig
from repro.api import SPEC_BY_NAME, gen_x86_program, run_kernel


def _run_config(config, spec):
    engine = DBTEngine(config, n_cores=spec.threads)
    binary = build_binary(gen_x86_program(spec))
    binary.load_into(engine.machine.memory)
    return engine.run(binary.entry)


@pytest.fixture(scope="module")
def ablation_rows():
    spec = replace(SPEC_BY_NAME["freqmine"], iterations=300)
    no_merge = TCG_VER.with_overrides(
        name="tcg-ver-nomerge",
        optimizer=OptimizerConfig(fence_merge=False))
    rows = {
        "tcg-ver": _run_config(TCG_VER, spec),
        "tcg-ver-nomerge": _run_config(no_merge, spec),
        "qemu": run_kernel(spec, variant="qemu").result,
    }
    return spec, rows


def test_fence_merging_contribution(benchmark, ablation_rows,
                                    emit_report):
    spec, rows = benchmark.pedantic(lambda: ablation_rows, rounds=1,
                                    iterations=1)
    merged = rows["tcg-ver"].elapsed_cycles
    unmerged = rows["tcg-ver-nomerge"].elapsed_cycles
    qemu = rows["qemu"].elapsed_cycles

    lines = [
        f"Optimizer ablation on {spec.name} (cycles, lower is better)",
        f"  qemu                    {qemu:>10d}",
        f"  tcg-ver without merging {unmerged:>10d}",
        f"  tcg-ver (full)          {merged:>10d}",
        f"  merging contribution: "
        f"{100 * (unmerged - merged) / unmerged:.2f}% of run time",
        f"  weaker fences alone:  "
        f"{100 * (qemu - unmerged) / qemu:.2f}% vs qemu",
    ]
    emit_report("ablation_optimizer", "\n".join(lines))

    # Merging can only help, and the weaker-fence choice is the larger
    # contributor on a per-access-fenced workload (fences are rarely
    # adjacent until blocks begin/end).
    assert merged <= unmerged
    assert unmerged < qemu


def test_block_chaining_contribution(benchmark):
    spec = replace(SPEC_BY_NAME["histogram"], iterations=300)

    def run_pair():
        chained = run_kernel(spec, variant="risotto").result
        slow = CostModel().scaled(tb_chain=CostModel().tb_entry)
        unchained = run_kernel(spec, variant="risotto", costs=slow).result
        return chained, unchained

    chained, unchained = benchmark.pedantic(run_pair, rounds=1,
                                            iterations=1)
    # Chaining must save cycles on a loopy kernel.
    assert chained.elapsed_cycles < unchained.elapsed_cycles
    assert chained.stats.chained_dispatches > 100
