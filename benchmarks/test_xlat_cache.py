"""Translation cache warm-vs-cold: the tentpole's headline claim.

Runs a Figure 12 slice twice against a fresh persistent cache: once
cold (every block goes through frontend + optimizer + backend) and
once warm from the disk layer alone (the in-memory LRU is dropped
between runs, as it is between worker processes).  Asserts the
contract: the warm sweep translates zero blocks, every install is a
cache hit, and the rows are bit-identical to the cold sweep.
"""

import time

import pytest

from repro.analysis.report import run_stats_footer
from repro.api import (
    SPEC_BY_NAME,
    deterministic_row,
    kernel_grid,
    run_parallel,
    xlat_cache_stats,
)
from repro.dbt import xlat_cache

BENCHMARKS = ("histogram", "linearregression", "freqmine")
VARIANTS = ("qemu", "tcg-ver", "risotto")


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_XLAT_CACHE", str(tmp_path / "xlat"))
    xlat_cache.reset_stats()
    yield
    xlat_cache.reset_memory()


def _grid():
    specs = tuple(SPEC_BY_NAME[name] for name in BENCHMARKS)
    return kernel_grid(specs, VARIANTS, iterations=60)


def test_warm_sweep_translates_nothing(benchmark, fresh_cache,
                                       emit_report, emit_bench):
    grid = _grid()

    started = time.perf_counter()
    cold = run_parallel(grid, workers=2, strict=True)
    cold_wall = time.perf_counter() - started

    cold_misses = sum(r.xlat_misses for r in cold)
    assert cold_misses > 0
    assert sum(r.xlat_hits for r in cold) == 0

    # Drop the in-memory LRU so the warm sweep proves the *disk*
    # layer — the level new worker processes and new runs start from.
    xlat_cache.reset_memory()

    def _warm():
        started = time.perf_counter()
        sweep = run_parallel(grid, workers=2, strict=True)
        return sweep, time.perf_counter() - started

    warm, warm_wall = benchmark.pedantic(_warm, rounds=1, iterations=1)

    # Headline: zero translations on the warm sweep, every install
    # served from the cache.
    assert sum(r.xlat_misses for r in warm) == 0
    assert sum(r.xlat_hits for r in warm) == \
        sum(r.blocks_translated for r in warm)

    # Bit-identical results: a cache hit must be indistinguishable
    # from a fresh translation in everything but wall time.
    for cold_row, warm_row in zip(cold, warm):
        assert deterministic_row(cold_row) == deterministic_row(warm_row)

    cache = xlat_cache.get_cache()
    entries, entry_bytes = cache.disk_usage()
    stats = xlat_cache_stats()
    lines = [
        "Translation cache warm vs cold — "
        f"{len(BENCHMARKS)} kernels x {len(VARIANTS)} variants",
        f"cold sweep: {cold_wall:.3f}s "
        f"({cold_misses} blocks translated)",
        f"warm sweep: {warm_wall:.3f}s "
        f"({sum(r.xlat_misses for r in warm)} blocks translated, "
        f"{sum(r.xlat_hits for r in warm)} served from cache)",
        f"disk store: {entries} entries, {entry_bytes} bytes "
        f"(this process: {stats.stores} stores, "
        f"{stats.evictions} evictions)",
        "",
        run_stats_footer(warm, title="warm sweep harness stats"),
    ]
    emit_report("xlat_cache", "\n".join(lines))
    emit_bench("xlat_cache", sweep=warm, extra={
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "cold_blocks_translated": cold_misses,
        "disk_entries": entries,
        "disk_bytes": entry_bytes,
    })


def test_cache_off_every_block_translates(monkeypatch):
    monkeypatch.setenv("REPRO_XLAT_CACHE", "off")
    grid = kernel_grid((SPEC_BY_NAME["histogram"],), ("risotto",),
                       iterations=60)
    sweep = run_parallel(grid, workers=1, strict=True)
    for row in sweep:
        assert row.xlat_hits == 0
        assert row.xlat_misses == row.blocks_translated
