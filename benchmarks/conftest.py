"""Shared helpers for the figure-regeneration harness.

Each benchmark regenerates one table/figure from the paper's
evaluation, prints it, and writes it under results/ so the run leaves
a reviewable artefact.  Shape assertions (who wins, by roughly what
factor, where crossovers fall) make the harness self-checking.
"""

import pathlib

import pytest

from repro.analysis.export import write_bench_json
from repro.obs.trace import flush_env_trace

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _flush_trace():
    """REPRO_TRACE=1 runs flush their trace to results/trace.json
    (or REPRO_TRACE_FILE) when the harness session ends; a no-op with
    tracing disabled."""
    yield
    flush_env_trace(str(RESULTS_DIR / "trace.json"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit_report(results_dir, capsys):
    """Print a report and persist it under results/<name>.txt."""

    def emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text)

    return emit


@pytest.fixture
def emit_bench(results_dir):
    """Write a figure's machine-readable export to
    results/bench_<figure>.json (see repro.analysis.export) and
    record it into the append-only bench history store
    (results/history/; REPRO_BENCH_HISTORY=0 disables)."""

    def emit(figure: str, table=None, sweep=None, series=None,
             extra=None, config=None) -> pathlib.Path:
        return write_bench_json(
            results_dir / f"bench_{figure}.json", figure,
            table=table, sweep=sweep, series=series, extra=extra,
            config=config, record=True)

    return emit
