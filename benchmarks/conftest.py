"""Shared helpers for the figure-regeneration harness.

Each benchmark regenerates one table/figure from the paper's
evaluation, prints it, and writes it under results/ so the run leaves
a reviewable artefact.  Shape assertions (who wins, by roughly what
factor, where crossovers fall) make the harness self-checking.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit_report(results_dir, capsys):
    """Print a report and persist it under results/<name>.txt."""

    def emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text)

    return emit
