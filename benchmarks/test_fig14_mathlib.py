"""E3 — Figure 14: libm function speedups with the host linker.

Math calls are short, so argument marshaling is not amortized: Risotto
beats QEMU by up to ~10× but stays clearly below native (the paper's
explanation of the Figure 13/14 difference).  sqrt is the crossover
case: one instruction either way, so the linker gains ~nothing.

The (9 functions × 3 variants) sweep runs through the parallel
harness with the libm library rebuilt by name inside each worker.
"""

import struct

import pytest

from repro.analysis import BenchTable, run_stats_footer, speedup_report
from repro.api import library_grid, run_parallel

VARIANTS = ("qemu", "risotto", "native")
FUNCTIONS = ("sqrt", "exp", "log", "cos", "sin", "tan",
             "acos", "asin", "atan")
CALLS = 60


def _bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


LIBM_CASES = {
    fn: (fn, (_bits(0.5 if fn != "log" else 1.5),), CALLS, None)
    for fn in FUNCTIONS
}


@pytest.fixture(scope="module")
def fig14_sweep():
    specs = library_grid(LIBM_CASES, "libm", VARIANTS)
    return run_parallel(specs)


@pytest.fixture(scope="module")
def fig14_table(fig14_sweep) -> BenchTable:
    return BenchTable.from_rows("figure14", fig14_sweep)


def test_figure14(benchmark, fig14_sweep, fig14_table, emit_report,
                  emit_bench):
    table = benchmark.pedantic(lambda: fig14_table, rounds=1,
                               iterations=1)
    report = speedup_report(
        table,
        "Figure 14 — libm speedup over QEMU (higher is better)") \
        + "\n" + run_stats_footer(fig14_sweep,
                                  "figure 14 harness stats")
    emit_report("figure14_mathlib", report)
    emit_bench("fig14", table=table, sweep=fig14_sweep)

    # --- correctness --------------------------------------------------
    for fn in FUNCTIONS:
        assert table.checksums_consistent(fn), fn

    # --- shape ---------------------------------------------------------
    for fn in FUNCTIONS:
        risotto = table.speedup(fn, "risotto")
        native = table.speedup(fn, "native")
        assert native >= risotto * 0.99, \
            f"{fn}: marshaling should keep risotto below native"
        if fn != "sqrt":
            assert risotto > 1.5, f"{fn}: expected a clear gain"

    # sqrt gains least (single instruction both ways; the paper reads
    # ~1x, we measure ~2.4x because our softfloat-helper penalty on a
    # lone fsqrt is relatively larger — recorded in EXPERIMENTS.md).
    sqrt_speedup = table.speedup("sqrt", "risotto")
    assert sqrt_speedup == min(
        table.speedup(fn, "risotto") for fn in FUNCTIONS)
    assert sqrt_speedup < 3.0
    best = max(table.speedup(fn, "risotto") for fn in FUNCTIONS)
    best_native = max(table.speedup(fn, "native") for fn in FUNCTIONS)
    assert 4.0 <= best <= 20.0, f"best risotto speedup {best:.2f}"
    assert best_native > best, "native must exceed risotto on libm"

    benchmark.extra_info["best_risotto_speedup"] = round(best, 2)
    benchmark.extra_info["best_native_speedup"] = round(best_native, 2)
