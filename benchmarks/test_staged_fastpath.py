"""Staged-enumeration fast path: wall time and pruning over the corpus.

Runs the verifier's enumeration workload — every litmus program under
every paper model — through both paths: the naive rf × co cross
product filtered by the model, and the staged enumerator.  Emits the
verifier stats footer (the artefact CI uploads) and asserts the staged
path's headline properties: identical behaviours, strictly fewer
materialized executions, no slower overall.
"""

import time

import pytest

from repro.analysis.report import run_stats_footer
from repro.core import ARM, ARM_ORIGINAL, TCG, X86
from repro.core.enumerate import (
    EnumerationStats,
    consistent_executions,
    enumerate_consistent,
)
from repro.core.litmus_library import ALL_TESTS
from repro.api import RunRow, SweepResult

MODELS = (X86, TCG, ARM, ARM_ORIGINAL)


def _sweep_staged():
    stats = EnumerationStats()
    behs = {}
    started = time.perf_counter()
    for name, test in sorted(ALL_TESTS.items()):
        for model in MODELS:
            behs[(name, model.name)] = frozenset(
                ex.full_behavior
                for ex in enumerate_consistent(test.program, model,
                                               stats=stats)
            )
    return time.perf_counter() - started, stats, behs


def _sweep_naive():
    behs = {}
    started = time.perf_counter()
    for name, test in sorted(ALL_TESTS.items()):
        for model in MODELS:
            behs[(name, model.name)] = frozenset(
                ex.full_behavior
                for ex in consistent_executions(test.program, model,
                                                staged=False)
            )
    return time.perf_counter() - started, behs


def test_staged_fastpath_speedup(benchmark, emit_report):
    naive_wall, naive_behs = _sweep_naive()
    staged_wall, stats, staged_behs = benchmark.pedantic(
        _sweep_staged, rounds=1, iterations=1)

    assert staged_behs == naive_behs
    assert stats.executions_enumerated < stats.candidates_naive

    sweep = SweepResult(
        rows=[RunRow(
            benchmark="litmus-corpus", variant="staged",
            wall_seconds=staged_wall,
            enum_candidates_naive=stats.candidates_naive,
            enum_executions=stats.executions_enumerated,
            enum_rf_pruned=stats.rf_options_pruned,
            enum_rf_rejected=(stats.rf_rejected_rmw
                              + stats.rf_rejected_coherence
                              + stats.rf_rejected_precheck),
        )],
        wall_seconds=staged_wall, workers=1)
    lines = [
        "Staged enumeration fast path — full corpus "
        f"({len(ALL_TESTS)} tests x {len(MODELS)} models)",
        f"naive sweep:  {naive_wall:.3f}s "
        f"({stats.candidates_naive} candidates)",
        f"staged sweep: {staged_wall:.3f}s "
        f"({stats.executions_enumerated} materialized, "
        f"{100 * stats.pruned_fraction:.1f}% pruned)",
        f"speedup: {naive_wall / max(staged_wall, 1e-9):.2f}x",
        "",
        run_stats_footer(sweep, title="verifier stats"),
    ]
    emit_report("verifier_stats", "\n".join(lines))

    # Pathology guard only: at ~0.1 s scale OS jitter swamps tight
    # bounds, so the hard assertion is on materialized work (above)
    # and this just catches an order-of-magnitude regression.
    assert staged_wall <= naive_wall * 3


@pytest.mark.parametrize("name", ("MPQ", "IRIW", "CAS-chain"))
def test_reduction_visible_per_test(name):
    stats = EnumerationStats()
    for model in MODELS:
        list(enumerate_consistent(ALL_TESTS[name].program, model,
                                  stats=stats))
    assert stats.executions_enumerated < stats.candidates_naive
