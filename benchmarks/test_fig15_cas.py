"""E4 — Figure 15: CAS throughput under varying contention.

Risotto's direct ``casal`` translation beats QEMU's helper call only
without contention (#threads == #variables), by up to ~48%; under
contention the cache-line transfer dominates and both converge — the
paper's exact observation (Section 7.4).
"""

import pytest

from repro.analysis import figure15_report
from repro.workloads.casbench import (
    FIGURE15_CONFIGS,
    run_cas_benchmark,
    throughput,
)

VARIANTS = ("qemu", "risotto", "native")


@pytest.fixture(scope="module")
def fig15_series() -> dict:
    series: dict[str, list[tuple[str, float]]] = {
        v: [] for v in VARIANTS
    }
    for config in FIGURE15_CONFIGS:
        for variant in VARIANTS:
            outcome = run_cas_benchmark(config, variant)
            series[variant].append(
                (config.label, throughput(config, outcome)))
    return series


def test_figure15(benchmark, fig15_series, emit_report):
    series = benchmark.pedantic(lambda: fig15_series, rounds=1,
                                iterations=1)
    report = figure15_report(series)
    emit_report("figure15_cas", report)

    qemu = dict(series["qemu"])
    risotto = dict(series["risotto"])
    native = dict(series["native"])

    uncontended = [c.label for c in FIGURE15_CONFIGS
                   if c.threads == c.variables]
    contended = [c.label for c in FIGURE15_CONFIGS
                 if c.threads > c.variables]

    # --- shape: wins only without contention -------------------------
    for label in uncontended:
        gain = risotto[label] / qemu[label] - 1
        assert 0.15 <= gain <= 0.80, f"{label}: gain {gain:.2f}"
    for label in contended:
        gain = risotto[label] / qemu[label] - 1
        assert gain <= 0.20, f"{label}: contended gain {gain:.2f}"

    # native is the ceiling everywhere.
    for label in qemu:
        assert native[label] >= risotto[label] * 0.95, label

    # crossovers: adding contention at fixed thread count collapses
    # throughput (e.g. 4-4 >> 4-1).
    assert risotto["4-4"] > 2 * risotto["4-1"]
    assert risotto["16-16"] > 2 * risotto["16-1"]

    best = max(risotto[l] / qemu[l] - 1 for l in uncontended)
    all_gains = [risotto[l] / qemu[l] - 1 for l in qemu]
    benchmark.extra_info["best_uncontended_gain"] = round(best, 3)
    benchmark.extra_info["avg_gain"] = round(
        sum(all_gains) / len(all_gains), 3)
