"""E4 — Figure 15: CAS throughput under varying contention.

Risotto's direct ``casal`` translation beats QEMU's helper call only
without contention (#threads == #variables), by up to ~48%; under
contention the cache-line transfer dominates and both converge — the
paper's exact observation (Section 7.4).

The (10 configurations × 3 variants) sweep runs through the parallel
harness; throughput is recomputed from each row's elapsed cycles.
"""

import pytest

from repro.analysis import run_stats_footer
from repro.analysis.report import figure15_report
from repro.api import (
    FIGURE15_CONFIGS,
    cas_grid,
    run_parallel,
    throughput_from_cycles,
)

VARIANTS = ("qemu", "risotto", "native")

_CONFIG_BY_LABEL = {c.label: c for c in FIGURE15_CONFIGS}


@pytest.fixture(scope="module")
def fig15_sweep():
    return run_parallel(cas_grid(FIGURE15_CONFIGS, VARIANTS))


@pytest.fixture(scope="module")
def fig15_series(fig15_sweep) -> dict:
    series: dict[str, list[tuple[str, float]]] = {
        v: [] for v in VARIANTS
    }
    for row in fig15_sweep:
        config = _CONFIG_BY_LABEL[row.benchmark]
        series[row.variant].append(
            (row.benchmark, throughput_from_cycles(config, row.cycles)))
    return series


def test_figure15(benchmark, fig15_sweep, fig15_series, emit_report,
                  emit_bench):
    series = benchmark.pedantic(lambda: fig15_series, rounds=1,
                                iterations=1)
    report = figure15_report(series) + "\n" + \
        run_stats_footer(fig15_sweep, "figure 15 harness stats")
    emit_report("figure15_cas", report)
    emit_bench("fig15", sweep=fig15_sweep,
               series={v: [[label, tput] for label, tput in points]
                       for v, points in series.items()})

    qemu = dict(series["qemu"])
    risotto = dict(series["risotto"])
    native = dict(series["native"])

    uncontended = [c.label for c in FIGURE15_CONFIGS
                   if c.threads == c.variables]
    contended = [c.label for c in FIGURE15_CONFIGS
                 if c.threads > c.variables]

    # --- shape: wins only without contention -------------------------
    for label in uncontended:
        gain = risotto[label] / qemu[label] - 1
        assert 0.15 <= gain <= 0.80, f"{label}: gain {gain:.2f}"
    for label in contended:
        gain = risotto[label] / qemu[label] - 1
        assert gain <= 0.20, f"{label}: contended gain {gain:.2f}"

    # native is the ceiling everywhere.
    for label in qemu:
        assert native[label] >= risotto[label] * 0.95, label

    # crossovers: adding contention at fixed thread count collapses
    # throughput (e.g. 4-4 >> 4-1).
    assert risotto["4-4"] > 2 * risotto["4-1"]
    assert risotto["16-16"] > 2 * risotto["16-1"]

    best = max(risotto[l] / qemu[l] - 1 for l in uncontended)
    all_gains = [risotto[l] / qemu[l] - 1 for l in qemu]
    benchmark.extra_info["best_uncontended_gain"] = round(best, 3)
    benchmark.extra_info["avg_gain"] = round(
        sum(all_gains) / len(all_gains), 3)
