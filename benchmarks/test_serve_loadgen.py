"""Translation-as-a-service under load: the serve stack end to end.

Spawns a real server (process-pool workers, batched dispatch), replays
the deterministic loadgen mix against it twice — once against a fresh
cache, once warm — and asserts the serving contract:

* every served result is bit-identical to the direct ``api.submit``
  of the same job (the job *is* the run description);
* the warm replay translates zero blocks (the tenant's persistent
  namespace serves every install);
* the export carries the latency percentiles and a recorded history
  baseline, with the deterministic per-cell quantities gated by the
  perf sentinel like any other figure.
"""

import pytest

from repro import api
from repro.dbt import xlat_cache
from repro.serve import ReproServer, ServeConfig
from repro.serve.loadgen import (
    LoadgenConfig,
    bench_config,
    bench_extra,
    gen_jobs,
    latency_summary,
    render_report,
    run_loadgen,
    synthesized_rows,
)
JOBS = 18
QPS = 30.0


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_XLAT_CACHE", str(tmp_path / "xlat"))
    monkeypatch.setenv("REPRO_BEHAVIOR_CACHE", str(tmp_path / "beh"))
    xlat_cache.reset_stats()
    yield
    xlat_cache.reset_memory()


def test_serve_loadgen(fresh_cache, emit_report, emit_bench):
    from repro.analysis.stats import BenchTable

    server = ReproServer(ServeConfig(port=0, workers=2,
                                     batch_window=0.01, max_batch=8))
    host, port = server.start_background()
    try:
        config = LoadgenConfig(host=host, port=port, qps=QPS,
                               jobs=JOBS, seed=11, clients=2,
                               namespace="loadgen")
        cold = run_loadgen(config)
        warm = run_loadgen(config)
    finally:
        server.close()

    assert cold.errors == 0
    assert warm.errors == 0
    assert len(cold.results) == len(warm.results) == JOBS

    # Served == direct: every cold result matches an in-process
    # api.submit of the identical job description.
    for job, served in zip(gen_jobs(config), cold.results):
        local = api.submit(job)
        assert served.checksum == local.checksum, job.job_id
        assert served.cycles == local.cycles, job.job_id
        assert served.total_cycles == local.total_cycles, job.job_id

    # Warm replay: the tenant namespace serves every translation —
    # zero blocks go through the pipeline on the second run.
    assert cold.xlat_totals()["misses"] > 0
    assert warm.xlat_totals()["misses"] == 0
    for first, second in zip(cold.results, warm.results):
        assert first.checksum == second.checksum
        assert first.cycles == second.cycles

    # Latency sanity: percentiles exist and are ordered.
    lat = latency_summary(cold.latencies)
    assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]

    rows = synthesized_rows(cold)
    assert rows
    table = BenchTable.from_rows("serve", rows)
    sweep = api.SweepResult(rows=rows, wall_seconds=cold.wall_seconds,
                            workers=config.clients)
    extra = dict(bench_extra(cold),
                 warm=dict(bench_extra(warm),
                           latency=latency_summary(warm.latencies)))
    emit_bench("serve", table=table, sweep=sweep, extra=extra,
               config=bench_config(config))

    text = "\n".join([
        "Translation-as-a-service loadgen — cold vs warm replay",
        "",
        "cold:", render_report(cold),
        "",
        "warm:", render_report(warm),
    ])
    emit_report("serve", text)
