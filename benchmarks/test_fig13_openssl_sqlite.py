"""E2 — Figure 13: OpenSSL and SQLite speedups with the host linker.

Digests (md5/sha1/sha256 × 1024/8192 bytes), RSA sign/verify, and the
sqlite speedtest, each as: QEMU (translated guest library) vs Risotto
(dynamic host linker) vs native.  Expected shape: speedups from ~1.4×
(md5-1024, no hardware acceleration) to ~23× (sha256-8192, ARMv8 crypto
extensions), with Risotto on a par with native execution.

The (11 benchmarks × 3 variants) sweep runs through the parallel
harness; the host library is rebuilt by name inside each worker.
"""

import pytest

from repro.analysis import BenchTable, run_stats_footer, speedup_report
from repro.api import DATA_BUF, library_grid, run_parallel

VARIANTS = ("qemu", "risotto", "native")

#: benchmark name -> (function, args, calls, memory-setup name).
#: The digest cases hash the pattern buffer the "digest-buffer" setup
#: writes at DATA_BUF inside the worker.
OPENSSL_CASES = {
    "md5-1024": ("md5", (DATA_BUF, 1024), 4, "digest-buffer"),
    "md5-8192": ("md5", (DATA_BUF, 8192), 2, "digest-buffer"),
    "sha1-1024": ("sha1", (DATA_BUF, 1024), 4, "digest-buffer"),
    "sha1-8192": ("sha1", (DATA_BUF, 8192), 2, "digest-buffer"),
    "sha256-1024": ("sha256", (DATA_BUF, 1024), 3, "digest-buffer"),
    "sha256-8192": ("sha256", (DATA_BUF, 8192), 2, "digest-buffer"),
    "rsa1024-sign": ("rsa1024_sign", (123457,), 2, None),
    "rsa1024-verify": ("rsa1024_verify", (123457,), 6, None),
    "rsa2048-sign": ("rsa2048_sign", (123457,), 2, None),
    "rsa2048-verify": ("rsa2048_verify", (123457,), 6, None),
    # sqlite speedtest: mixed insert/select/update workload driven as
    # repeated single-op calls over a small key set.
    "sqlite": ("sqlite_exec", (0, 17, 99), 24, None),
}


@pytest.fixture(scope="module")
def fig13_sweep():
    specs = library_grid(OPENSSL_CASES, "standard", VARIANTS)
    return run_parallel(specs)


@pytest.fixture(scope="module")
def fig13_table(fig13_sweep) -> BenchTable:
    return BenchTable.from_rows("figure13", fig13_sweep)


def test_figure13(benchmark, fig13_sweep, fig13_table, emit_report,
                  emit_bench):
    table = benchmark.pedantic(lambda: fig13_table, rounds=1,
                               iterations=1)
    report = speedup_report(
        table,
        "Figure 13 — OpenSSL + SQLite speedup over QEMU "
        "(higher is better)") + "\n" + \
        run_stats_footer(fig13_sweep, "figure 13 harness stats")
    emit_report("figure13_openssl_sqlite", report)
    emit_bench("fig13", table=table, sweep=fig13_sweep)

    # --- correctness: linked and translated results agree -----------
    for bench in table.benchmarks():
        assert table.checksums_consistent(bench), bench

    # --- shape -------------------------------------------------------
    for bench in table.benchmarks():
        risotto = table.speedup(bench, "risotto")
        native = table.speedup(bench, "native")
        assert risotto > 1.1, f"{bench}: linker gave no speedup"
        # "on a par with native": within 25% of native for these
        # long-running calls.
        assert risotto >= 0.7 * native, bench

    md5_small = table.speedup("md5-1024", "risotto")
    sha256_big = table.speedup("sha256-8192", "risotto")
    assert md5_small < 4.0, "md5-1024 should gain least"
    assert sha256_big > 10.0, "sha256-8192 should gain most"
    assert sha256_big > md5_small * 3

    benchmark.extra_info["md5_1024_speedup"] = round(md5_small, 2)
    benchmark.extra_info["sha256_8192_speedup"] = round(sha256_big, 2)
