"""E2 — Figure 13: OpenSSL and SQLite speedups with the host linker.

Digests (md5/sha1/sha256 × 1024/8192 bytes), RSA sign/verify, and the
sqlite speedtest, each as: QEMU (translated guest library) vs Risotto
(dynamic host linker) vs native.  Expected shape: speedups from ~1.4×
(md5-1024, no hardware acceleration) to ~23× (sha256-8192, ARMv8 crypto
extensions), with Risotto on a par with native execution.
"""

import pytest

from repro.analysis import BenchRow, BenchTable, speedup_report
from repro.workloads import SQLITE_DB_BASE, standard_libraries
from repro.workloads.runner import run_library_workload

LIBRARY = standard_libraries()
DATA_BUF = 0x0220_0000
VARIANTS = ("qemu", "risotto", "native")


def _fill_buffer(memory) -> None:
    for i in range(8192 // 8):
        memory.store_word(DATA_BUF + 8 * i, (i * 2654435761) & 0xFFFF)


#: benchmark name -> (function, args, calls, memory setup)
OPENSSL_CASES = {
    "md5-1024": ("md5", (DATA_BUF, 1024), 4, _fill_buffer),
    "md5-8192": ("md5", (DATA_BUF, 8192), 2, _fill_buffer),
    "sha1-1024": ("sha1", (DATA_BUF, 1024), 4, _fill_buffer),
    "sha1-8192": ("sha1", (DATA_BUF, 8192), 2, _fill_buffer),
    "sha256-1024": ("sha256", (DATA_BUF, 1024), 3, _fill_buffer),
    "sha256-8192": ("sha256", (DATA_BUF, 8192), 2, _fill_buffer),
    "rsa1024-sign": ("rsa1024_sign", (123457,), 2, None),
    "rsa1024-verify": ("rsa1024_verify", (123457,), 6, None),
    "rsa2048-sign": ("rsa2048_sign", (123457,), 2, None),
    "rsa2048-verify": ("rsa2048_verify", (123457,), 6, None),
}


@pytest.fixture(scope="module")
def fig13_table() -> BenchTable:
    table = BenchTable(name="figure13")
    for bench, (fn, args, calls, setup) in OPENSSL_CASES.items():
        for variant in VARIANTS:
            outcome = run_library_workload(
                fn, args, calls, variant, LIBRARY,
                setup_memory=setup)
            table.add(BenchRow(
                benchmark=bench, variant=variant,
                cycles=outcome.cycles, checksum=outcome.checksum))
    # sqlite speedtest: mixed insert/select/update workload.
    for variant in VARIANTS:
        outcome = _run_sqlite(variant)
        table.add(BenchRow(
            benchmark="sqlite", variant=variant,
            cycles=outcome.cycles, checksum=outcome.checksum))
    return table


def _run_sqlite(variant: str):
    # One insert + two selects + one update per key, via sqlite_exec.
    # Keys vary per call through the accumulated counter, so we drive
    # it as repeated single-op calls over a small key set.
    return run_library_workload(
        "sqlite_exec", (0, 17, 99), 24, variant, LIBRARY,
        setup_memory=lambda memory: None)


def test_figure13(benchmark, fig13_table, emit_report):
    table = benchmark.pedantic(lambda: fig13_table, rounds=1,
                               iterations=1)
    report = speedup_report(
        table,
        "Figure 13 — OpenSSL + SQLite speedup over QEMU "
        "(higher is better)")
    emit_report("figure13_openssl_sqlite", report)

    # --- correctness: linked and translated results agree -----------
    for bench in table.benchmarks():
        assert table.checksums_consistent(bench), bench

    # --- shape -------------------------------------------------------
    for bench in table.benchmarks():
        risotto = table.speedup(bench, "risotto")
        native = table.speedup(bench, "native")
        assert risotto > 1.1, f"{bench}: linker gave no speedup"
        # "on a par with native": within 25% of native for these
        # long-running calls.
        assert risotto >= 0.7 * native, bench

    md5_small = table.speedup("md5-1024", "risotto")
    sha256_big = table.speedup("sha256-8192", "risotto")
    assert md5_small < 4.0, "md5-1024 should gain least"
    assert sha256_big > 10.0, "sha256-8192 should gain most"
    assert sha256_big > md5_small * 3

    benchmark.extra_info["md5_1024_speedup"] = round(md5_small, 2)
    benchmark.extra_info["sha256_8192_speedup"] = round(sha256_big, 2)
