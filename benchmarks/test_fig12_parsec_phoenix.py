"""E1/E9/E11 — Figure 12: PARSEC + Phoenix run time relative to QEMU.

Regenerates the figure's series (no-fences, tcg-ver, risotto, native,
each relative to QEMU) plus the Section 7.2 prose numbers: the fence
cost share (avg ~48%, up to 75% on freqmine) and tcg-ver's gain
(avg 6.7%, up to 19.7%).  Also checks E11: the idle host linker costs
nothing (risotto == tcg-ver on linker-free workloads).

The (16 benchmarks × 5 variants) sweep runs through the parallel
harness: each cell is an independent seeded machine, so rows are
bit-identical to a serial sweep whatever the worker count.
"""

import pytest

from repro.analysis import BenchTable, figure12_report, run_stats_footer
from repro.api import ALL_SPECS, kernel_grid, run_parallel

VARIANTS = ("qemu", "no-fences", "tcg-ver", "risotto", "native")
ITERATIONS = 400


@pytest.fixture(scope="module")
def fig12_sweep():
    specs = kernel_grid(ALL_SPECS, VARIANTS, iterations=ITERATIONS)
    return run_parallel(specs)


@pytest.fixture(scope="module")
def fig12_table(fig12_sweep) -> BenchTable:
    return BenchTable.from_rows("figure12", fig12_sweep)


def test_figure12(benchmark, fig12_sweep, fig12_table, emit_report,
                  emit_bench):
    table = benchmark.pedantic(lambda: fig12_table, rounds=1,
                               iterations=1)
    report = figure12_report(table) + "\n" + \
        run_stats_footer(fig12_sweep, "figure 12 harness stats")
    emit_report("figure12_parsec_phoenix", report)
    emit_bench("fig12", table=table, sweep=fig12_sweep)

    # --- provenance: origin buckets partition the fence cycles ------
    for row in fig12_sweep:
        assert sum(row.fence_origin_cycles.values()) == \
            row.fence_cycles, (row.benchmark, row.variant)

    # --- correctness: every variant computes the same checksum ------
    for bench in table.benchmarks():
        assert table.checksums_consistent(bench), bench

    # --- shape: ordering of the bars --------------------------------
    for bench in table.benchmarks():
        nofences = table.relative_runtime(bench, "no-fences")
        tcgver = table.relative_runtime(bench, "tcg-ver")
        native = table.relative_runtime(bench, "native")
        assert native < nofences < 1.0, bench
        assert tcgver <= 1.001, bench  # verified mappings never slower

    # --- prose numbers (rough bands around the paper's values) ------
    avg_gain = table.average_gain("tcg-ver")
    assert 0.03 <= avg_gain <= 0.15, f"avg gain {avg_gain:.3f}"
    max_gain = table.max_gain("tcg-ver")
    assert 0.12 <= max_gain <= 0.30, f"max gain {max_gain:.3f}"

    worst_bench, worst_share = table.max_fence_share("qemu")
    assert worst_bench == "freqmine"
    assert 0.55 <= worst_share <= 0.85

    benchmark.extra_info["avg_tcgver_gain"] = round(avg_gain, 4)
    benchmark.extra_info["max_tcgver_gain"] = round(max_gain, 4)
    benchmark.extra_info["max_fence_share"] = round(worst_share, 4)


def test_figure12_chrome_trace(results_dir):
    """One small kernel run with tracing on, exported as a Chrome
    ``trace_event`` file and schema-validated — the loadable artefact
    CI uploads.  Runs in-process (a worker pool cannot share the
    tracer's event buffer)."""
    from repro.obs.trace import Tracer, install_tracer, \
        validate_chrome_trace
    from repro.api import SPEC_BY_NAME, run_kernel

    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        run_kernel(SPEC_BY_NAME["histogram"], variant="risotto", seed=7)
    finally:
        # restore rather than disable: a REPRO_TRACE=1 session keeps
        # its env tracer for the rest of the harness.
        install_tracer(previous)
    assert tracer.events, "tracing enabled but no events recorded"
    path = results_dir / "trace_fig12.json"
    tracer.write_chrome(path)
    validate_chrome_trace(path)
    names = {e["name"] for e in tracer.events}
    assert "dbt.translate" in names
    assert "machine.run" in names


def test_linker_has_no_overhead_when_unused(benchmark, fig12_table):
    """Section 7.3: risotto (linker on) matches tcg-ver on workloads
    that never call a linked library — modulo the CAS-translation
    difference, which these kernels don't exercise either."""
    def deltas():
        return [
            abs(fig12_table.relative_runtime(b, "risotto")
                - fig12_table.relative_runtime(b, "tcg-ver"))
            for b in fig12_table.benchmarks()
        ]

    values = benchmark.pedantic(deltas, rounds=1, iterations=1)
    assert max(values) < 0.01
