"""Sharded DPOR verification over the 5-thread corpus.

The point of the reduction layer: litmus programs with five threads
blow the naive rf × co cross product (and even the staged
materialization) past any practical candidate limit, while the
source-DPOR path — canonical trace combos, sleep sets, coherence value
classes — finishes the whole corpus in well under a second.  This
harness pins that separation as executable numbers:

* the naive path *cannot finish* W5+RR inside the candidate limit;
* the staged path cannot finish W4+2RR inside a limit the DPOR path
  fits under comfortably;
* the sharded verifier (2 workers) completes the corpus, its pruned
  fraction stays above the recorded floor in
  ``results/verify_floor.json``, and the DPOR path materializes at
  least 10x fewer candidates than the naive count;
* shard layout never changes the behaviour digests.
"""

import pathlib

import pytest

from repro.analysis import aggregate_sweep, run_stats_footer
from repro.api import deterministic_row, load_floors, run_parallel, \
    verify_grid
from repro.core import X86
from repro.core.corpus_large import FIVE_THREAD_CORPUS, W4_2RR, W5_RR
from repro.core.dpor import reduced_behaviors
from repro.core.enumerate import (
    EnumerationStats,
    enumerate_consistent,
    enumerate_executions,
)
from repro.errors import ModelError

#: The CLI's default safety valve, shared by the CI job.
LIMIT = 100_000
#: A limit the DPOR path fits under on W4+2RR (12.6k materialized)
#: but the staged path (254k) does not.
STAGED_LIMIT = 25_000

FLOOR_FILE = pathlib.Path(__file__).resolve().parent.parent \
    / "results" / "verify_floor.json"


def test_naive_cannot_finish_w5_rr():
    # 518,400 candidates: the cross product dies on the limit long
    # before the corpus sweep could ever complete naively.
    with pytest.raises(ModelError, match="exceed limit"):
        list(enumerate_executions(W5_RR.program, limit=LIMIT))


def test_staged_cannot_finish_where_dpor_fits():
    with pytest.raises(ModelError, match="exceed limit"):
        list(enumerate_consistent(W4_2RR.program, X86,
                                  limit=STAGED_LIMIT))
    stats = EnumerationStats()
    behs = reduced_behaviors(W4_2RR.program, X86, limit=STAGED_LIMIT,
                             stats=stats)
    assert behs
    assert stats.executions_enumerated < STAGED_LIMIT


def test_sharded_dpor_verifies_corpus(benchmark, emit_report,
                                      emit_bench):
    names = tuple(test.name for test in FIVE_THREAD_CORPUS)
    grid = verify_grid(tests=names, models=("x86-tso",),
                       enum_limit=LIMIT)
    sweep = benchmark.pedantic(
        lambda: run_parallel(grid, workers=2, strict=True),
        rounds=1, iterations=1)
    assert [row.benchmark for row in sweep] == list(names)

    stats = aggregate_sweep(sweep)
    pruned = stats.enum_pruned_fraction
    # The legacy seed-baseline file reads through the sentinel's floor
    # loader, the same path `python -m repro perf check --floors` uses.
    floor = load_floors(FLOOR_FILE)["enum_pruned_fraction"]
    assert pruned >= floor, (
        f"pruned fraction regressed: {pruned:.4f} < recorded floor "
        f"{floor}"
    )
    # The headline reduction: ≥10x fewer materialized candidates than
    # the naive cross product, corpus-wide.
    assert stats.enum_candidates_naive >= 10 * stats.enum_executions

    # Shard layout must not change what was verified.
    serial = run_parallel(grid, workers=1, strict=True)
    for left, right in zip(serial, sweep):
        assert left.payload == right.payload
        assert deterministic_row(left) == deterministic_row(right)

    lines = [
        "Sharded DPOR verification — 5-thread corpus "
        f"({len(names)} tests, x86-tso, 2 workers)",
        f"{'test':<12} {'naive':>9} {'materialized':>13} "
        f"{'behaviours':>11}",
    ]
    for row in sweep:
        lines.append(
            f"{row.benchmark:<12} {row.enum_candidates_naive:>9} "
            f"{row.enum_executions:>13} {row.payload[1]:>11}"
        )
    lines += [
        f"aggregate: {stats.enum_candidates_naive} naive candidates, "
        f"{stats.enum_executions} materialized "
        f"({100 * pruned:.2f}% pruned, floor {100 * floor:.0f}%)",
        f"wall: {sweep.wall_seconds:.3f}s on {sweep.workers} workers",
        "",
        run_stats_footer(sweep, title="sharded verify stats"),
    ]
    emit_report("verify_sharded", "\n".join(lines))
    emit_bench(
        "verify_sharded", sweep=sweep,
        extra={
            "models": ["x86-tso"],
            "reduction": "dpor",
            "tests": list(names),
            "enum_limit": LIMIT,
            "pruned_fraction": pruned,
            "min_pruned_fraction": floor,
            "behavior_digests": {
                row.benchmark: row.payload[0] for row in sweep
            },
        })
