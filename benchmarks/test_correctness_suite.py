"""E5/E6/E7 — the correctness artefacts of Sections 3 and 5.

Regenerates, as a text report: the mapping tables (Figures 2/3/7), the
Theorem-1 verdict matrix over the litmus corpus for every mapping
scheme (reproducing each reported QEMU bug and the SBAL Arm-model bug),
and the Figure 5 model-correction comparison.
"""

import pytest

from repro.analysis import mapping_table_report
from repro.core import ARM, ARM_ORIGINAL, TCG, X86
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.verifier import check_corpus

#: mapping -> (target model, expected broken tests)
MATRIX = (
    (M.risotto_x86_to_tcg, TCG, frozenset()),
    (M.risotto_x86_to_arm_rmw1, ARM, frozenset()),
    (M.risotto_x86_to_arm_rmw2, ARM, frozenset()),
    (M.armcats_intended, ARM, frozenset()),
    (M.qemu_x86_to_arm_gcc10, ARM, frozenset({"MPQ"})),
    (M.qemu_x86_to_arm_gcc9, ARM,
     frozenset({"MPQ", "SBQ", "SBAL", "SB+rmw-one-side"})),
    (M.armcats_intended, ARM_ORIGINAL, frozenset({"SBAL"})),
)


@pytest.fixture(scope="module")
def verdict_matrix():
    rows = []
    for mapping, model, expected in MATRIX:
        report = check_corpus(L.X86_CORPUS, mapping, X86, model)
        broken = frozenset(v.test_name for v in report.failures)
        rows.append((mapping.name, model.name, broken, expected))
    return rows


def test_mapping_tables_and_verdicts(benchmark, verdict_matrix,
                                     emit_report):
    rows = benchmark.pedantic(lambda: verdict_matrix, rounds=1,
                              iterations=1)
    lines = [mapping_table_report(), "",
             "Theorem-1 verdicts over the litmus corpus "
             f"({len(L.X86_CORPUS)} tests)",
             f"{'mapping':44s}{'target model':20s}broken tests"]
    for name, model, broken, expected in rows:
        shown = ", ".join(sorted(broken)) or "(none — verified)"
        lines.append(f"{name:44s}{model:20s}{shown}")
    # no-fences: how much of the corpus it breaks.
    from repro.core.verifier import check_corpus as _cc

    nf = _cc(L.X86_CORPUS, M.nofences_x86_to_arm, X86, ARM)
    lines.append(
        f"{'nofences-x86-to-arm':44s}{'arm-cats':20s}"
        f"{len(nf.failures)}/{len(L.X86_CORPUS)} tests broken")
    emit_report("correctness_matrix", "\n".join(lines))

    for name, model, broken, expected in rows:
        assert broken == expected, (name, model, broken)
    assert len(nf.failures) >= 8
