"""Tiered JIT — Figure 12 kernels with tier-2 superblock traces.

Runs the fig12 kernel grid over the DBT variants twice — tier-2 forced
off and tier-2 at the default promotion threshold — and checks the
tier's contract:

* guest-visible results are bit-identical per cell (checksum, output,
  exit code): traces only change *when* work happens, never *what*;
* every DBT cell promotes at least one trace at 400 iterations;
* FP-helper inlining collapses the helper-call count on fp-heavy
  benchmarks;
* at least one (benchmark, variant) cell gains >= 10% in cycles.

The export lands in results/bench_tiered_jit.json with per-cell cycle
reductions alongside the tiered sweep's counter aggregate.
"""

import pytest

from repro.analysis import BenchTable, run_stats_footer
from repro.api import ALL_SPECS, SPEC_BY_NAME, kernel_grid, \
    run_parallel

#: Tier-2 only exists under DBT; native rows would be identical noise.
DBT_VARIANTS = ("qemu", "tcg-ver", "risotto")
ITERATIONS = 400
#: The default promotion threshold, pinned so a config change shows up
#: here as a deliberate diff.
THRESHOLD = 128


@pytest.fixture(scope="module")
def baseline_sweep():
    specs = kernel_grid(ALL_SPECS, DBT_VARIANTS,
                        iterations=ITERATIONS, tier2_threshold=0)
    return run_parallel(specs)


@pytest.fixture(scope="module")
def tiered_sweep():
    specs = kernel_grid(ALL_SPECS, DBT_VARIANTS,
                        iterations=ITERATIONS,
                        tier2_threshold=THRESHOLD)
    return run_parallel(specs)


def _by_cell(sweep):
    return {(row.benchmark, row.variant): row for row in sweep}


def test_tiered_jit(benchmark, baseline_sweep, tiered_sweep,
                    emit_report, emit_bench):
    base = _by_cell(baseline_sweep)
    tier = benchmark.pedantic(lambda: _by_cell(tiered_sweep),
                              rounds=1, iterations=1)
    assert base.keys() == tier.keys()

    # --- correctness: guest-visible rows are bit-identical ----------
    for cell, off in base.items():
        on = tier[cell]
        assert on.checksum == off.checksum, cell
        assert on.exit_code == off.exit_code, cell

    # --- every cell promotes and runs traces ------------------------
    for cell, on in tier.items():
        assert on.tier2_traces >= 1, cell
        assert on.tier2_trace_dispatches >= 1, cell
        assert on.tier2_cycles > 0, cell
    for cell, off in base.items():
        assert off.tier2_traces == 0, cell

    # --- fp-helper inlining collapses the helper-call count ---------
    for cell, off in base.items():
        if SPEC_BY_NAME[cell[0]].fp > 0:
            assert tier[cell].helper_calls < off.helper_calls, cell
            assert tier[cell].opt_helpers_inlined >= 1, cell

    # --- cycles: never meaningfully slower, >= 10% best gain --------
    reductions = {
        cell: 1.0 - tier[cell].cycles / base[cell].cycles
        for cell in base
    }
    for cell, gained in reductions.items():
        assert gained > -0.01, (cell, gained)
    best_cell = max(reductions, key=reductions.get)
    assert reductions[best_cell] >= 0.10, \
        f"best tier-2 gain {reductions[best_cell]:.3f} at {best_cell}"

    # --- report + export --------------------------------------------
    lines = [
        "tiered JIT: fig12 kernels, tier-2 off vs threshold "
        f"{THRESHOLD} ({ITERATIONS} iterations)",
        f"{'benchmark':18s}" + "".join(
            f"{v:>12s}" for v in DBT_VARIANTS),
    ]
    for spec in ALL_SPECS:
        cells = "".join(
            f"{reductions[(spec.name, v)]:>11.1%} "
            for v in DBT_VARIANTS)
        lines.append(f"{spec.name:18s}{cells}")
    lines.append(
        f"best gain: {reductions[best_cell]:.1%} at {best_cell}")
    report = "\n".join(lines) + "\n" + \
        run_stats_footer(tiered_sweep, "tiered harness stats")
    emit_report("tiered_jit", report)

    table = BenchTable.from_rows("tiered_jit", tiered_sweep)
    emit_bench(
        "tiered_jit", table=table, sweep=tiered_sweep,
        extra={
            "threshold": THRESHOLD,
            "iterations": ITERATIONS,
            "variants": list(DBT_VARIANTS),
            "cycle_reduction": {
                f"{bench}/{variant}": round(value, 6)
                for (bench, variant), value
                in sorted(reductions.items())
            },
            "baseline_cycles": {
                f"{bench}/{variant}": row.cycles
                for (bench, variant), row in sorted(base.items())
            },
            "best": {
                "benchmark": best_cell[0],
                "variant": best_cell[1],
                "reduction": round(reductions[best_cell], 6),
            },
        })

    benchmark.extra_info["best_reduction"] = \
        round(reductions[best_cell], 4)
    benchmark.extra_info["cells_promoted"] = sum(
        1 for row in tier.values() if row.tier2_traces)
