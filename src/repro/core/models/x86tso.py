"""The x86-TSO axiomatic model as presented in Section 5.2.

Axioms:

* (sc-per-loc) and (atomicity) — shared, see :mod:`repro.core.axioms`.
* (GHB): ``(implied ∪ ppo ∪ rfe ∪ fr ∪ co)+`` is irreflexive, where

  - ``ppo ≜ ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po`` — every access pair except
    store→load is preserved,
  - ``implied ≜ po;[At ∪ F] ∪ [At ∪ F];po`` with
    ``At ≜ dom(rmw) ∪ codom(rmw)`` — a LOCK'd RMW and MFENCE order
    everything around them.
"""

from __future__ import annotations

from ..events import Arch, Fence
from ..execution import Execution
from ..relations import Rel, union
from .base import MemoryModel


class X86Model(MemoryModel):
    name = "x86-tso"
    arch = Arch.X86

    def ghb(self, ex: Execution) -> Rel:
        """The global-happens-before relation (un-closed)."""
        reads, writes = ex.reads, ex.writes
        po = ex.po
        ppo = (
            Rel.cross(writes, writes)
            | Rel.cross(reads, writes)
            | Rel.cross(reads, reads)
        ) & po
        at = ex.rmw.domain() | ex.rmw.codomain()
        barrier = Rel.identity(at | ex.fences(Fence.MFENCE))
        implied = (po @ barrier) | (barrier @ po)
        return union([implied, ppo, ex.rfe, ex.fr, ex.co])

    def is_consistent(self, ex: Execution) -> bool:
        if not self.common_axioms(ex):
            return False
        return self.ghb(ex).is_acyclic()

    def rf_stage_consistent(self, ex: Execution) -> bool:
        """Sound on partial co: every GHB term (implied, ppo, rfe, fr,
        co) is a union/composition that only *grows* when co grows, as
        do sc-per-loc's ``po_loc ∪ rf ∪ co ∪ fr`` and atomicity's
        ``fre;coe``.  A GHB cycle visible under the forced co therefore
        survives in every coherence extension — the rf choice is dead
        before the co product is expanded (this is where SB/IRIW-style
        weak rf combinations die under TSO)."""
        return self.is_consistent(ex)
