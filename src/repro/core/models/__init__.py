"""Axiomatic memory models: x86-TSO, Arm (Arm-Cats), and TCG IR.

Each model is a stateless object with

* ``name`` — stable identifier (used for caching),
* ``arch`` — which program level it judges,
* ``is_consistent(execution)`` — the consistency predicate.

Module-level singletons are exported for convenience:

* :data:`X86` — the x86-TSO model (GHB axiom, Section 5.2),
* :data:`ARM` — the *corrected* Arm-Cats model (Figure 5 with the green
  amo terms, i.e. ``casal`` is a full barrier),
* :data:`ARM_ORIGINAL` — the pre-fix Arm-Cats model whose weaker amo
  ordering admits the SBAL bug of Section 3.3,
* :data:`TCG` — the paper's proposed TCG IR model (Figure 6),
* :data:`SC` — sequential consistency, useful as a strongest-model
  reference in tests.
"""

from .base import MemoryModel, SCModel
from .x86tso import X86Model
from .armcats import ArmModel
from .tcg import TCGModel

X86 = X86Model()
ARM = ArmModel(corrected=True)
ARM_ORIGINAL = ArmModel(corrected=False)
TCG = TCGModel()
SC = SCModel()

#: Name -> singleton, for CLI/run-spec surfaces that address models by
#: their stable cache identifier.
MODEL_BY_NAME: dict[str, MemoryModel] = {
    m.name: m for m in (X86, ARM, ARM_ORIGINAL, TCG, SC)
}

__all__ = [
    "MemoryModel",
    "X86Model",
    "ArmModel",
    "TCGModel",
    "SCModel",
    "X86",
    "ARM",
    "ARM_ORIGINAL",
    "TCG",
    "SC",
    "MODEL_BY_NAME",
]
