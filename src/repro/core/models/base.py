"""Memory-model interface and the SC reference model."""

from __future__ import annotations

import abc
import hashlib
import inspect

from ..axioms import atomicity, sc_per_loc
from ..events import Arch
from ..execution import Execution

#: Cached per-class source digests for :meth:`MemoryModel.fingerprint`.
_CLASS_DIGESTS: dict[type, str] = {}


class MemoryModel(abc.ABC):
    """A consistency predicate over candidate executions."""

    #: Stable identifier used as a cache key.
    name: str
    #: The program level this model judges.
    arch: Arch
    #: Whether the staged enumerator may use this model's
    #: :meth:`rf_stage_consistent` as an early filter.  True requires
    #: every axiom to be *monotone* in both rf and co (and hence in
    #: fr = rf⁻¹;co): adding rf or co edges can only add edges to the
    #: checked relations, so a cycle found under a partial assignment
    #: persists under every extension.  The DPOR search leans on the rf
    #: half too — it runs the precheck on *partial* rf assignments to
    #: cut whole subtrees, and its sleep sets replay rejections under
    #: supersets of the rejecting footprint.  Set to False in a
    #: subclass whose axioms inspect rf or co non-monotonically (e.g.
    #: count co-maximal writes, or require a read to have *no* external
    #: source).
    supports_staged: bool = True

    @abc.abstractmethod
    def is_consistent(self, ex: Execution) -> bool:
        """True when ``ex`` satisfies every axiom of the model."""

    def rf_stage_consistent(self, ex: Execution) -> bool:
        """Precheck for the staged/DPOR enumerators, before co (and
        possibly before the full rf) is enumerated.

        ``ex.rf`` may cover only a *prefix* of the reads, and ``ex.co``
        holds only the *forced* coherence edges implied by the choices
        so far (init-first, same-thread write order, observed-write
        obligations) — a sound subset of every compatible completion.
        With monotone axioms, rejecting here rejects every extension,
        so an inconsistent prefix never reaches the co product.

        This is a monotone *precheck*, never exact: a passing partial
        (or even complete-rf) execution still needs the full
        :meth:`is_consistent` verdict once a total co is materialized.
        """
        return self.is_consistent(ex)

    def common_axioms(self, ex: Execution) -> bool:
        """sc-per-loc + atomicity, shared by all models in the paper."""
        return sc_per_loc(ex) and atomicity(ex)

    def fingerprint(self) -> str:
        """Content identity for behaviour caching.

        Two models share a fingerprint only when they are instances of
        the same class source with the same configuration — unlike
        ``name``, which an ablated or variant model may reuse.  The
        digest covers the class identity, its source text (so editing a
        model invalidates cached behaviours, on disk included), and the
        instance attributes (e.g. ``ArmModel.corrected``).
        """
        cls = type(self)
        digest = _CLASS_DIGESTS.get(cls)
        if digest is None:
            try:
                source = inspect.getsource(cls)
            except (OSError, TypeError):
                source = ""
            digest = hashlib.sha256(
                f"{cls.__module__}.{cls.__qualname__}\n{source}"
                .encode()).hexdigest()
            _CLASS_DIGESTS[cls] = digest
        config = "|".join(
            f"{key}={vars(self)[key]!r}" for key in sorted(vars(self)))
        return hashlib.sha256(
            f"{digest}|{self.name}|{config}".encode()).hexdigest()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SCModel(MemoryModel):
    """Sequential consistency (Lamport): a single total order.

    Used as a reference point in tests: every SC-consistent execution
    must be consistent under x86-TSO, Arm and TCG (they are all weaker),
    and interleaving interpreters must only produce SC behaviours.

    Axiom: ``(po ∪ rf ∪ co ∪ fr)`` restricted to memory events is
    acyclic (fences are inert under SC).
    """

    name = "sc"
    arch = Arch.X86  # judged at any level; arch tag is informational

    def is_consistent(self, ex: Execution) -> bool:
        if not self.common_axioms(ex):
            return False
        mem = ex.memory_events
        po_mem = ex.po.restrict(mem, mem)
        return (po_mem | ex.rf | ex.co | ex.fr).is_acyclic()
