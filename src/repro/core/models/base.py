"""Memory-model interface and the SC reference model."""

from __future__ import annotations

import abc

from ..axioms import atomicity, sc_per_loc
from ..events import Arch
from ..execution import Execution


class MemoryModel(abc.ABC):
    """A consistency predicate over candidate executions."""

    #: Stable identifier used as a cache key.
    name: str
    #: The program level this model judges.
    arch: Arch

    @abc.abstractmethod
    def is_consistent(self, ex: Execution) -> bool:
        """True when ``ex`` satisfies every axiom of the model."""

    def common_axioms(self, ex: Execution) -> bool:
        """sc-per-loc + atomicity, shared by all models in the paper."""
        return sc_per_loc(ex) and atomicity(ex)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SCModel(MemoryModel):
    """Sequential consistency (Lamport): a single total order.

    Used as a reference point in tests: every SC-consistent execution
    must be consistent under x86-TSO, Arm and TCG (they are all weaker),
    and interleaving interpreters must only produce SC behaviours.

    Axiom: ``(po ∪ rf ∪ co ∪ fr)`` restricted to memory events is
    acyclic (fences are inert under SC).
    """

    name = "sc"
    arch = Arch.X86  # judged at any level; arch tag is informational

    def is_consistent(self, ex: Execution) -> bool:
        if not self.common_axioms(ex):
            return False
        mem = ex.memory_events
        po_mem = ex.po.restrict(mem, mem)
        return (po_mem | ex.rf | ex.co | ex.fr).is_acyclic()
