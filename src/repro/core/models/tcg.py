"""The paper's proposed TCG IR concurrency model (Figure 6).

This is the paper's central formal contribution: an axiomatic model for
QEMU's intermediate representation, strong enough to support the
x86→TCG→Arm mapping proofs and weak enough to keep TCG's sequential
optimizations (reordering, false-dependency elimination) sound.

Axioms:

* (sc-per-loc) and (atomicity) — shared.
* (GOrd): ``ghb = (ord ∪ rfe ∪ coe ∪ fre)+`` is irreflexive, where
  ``ord`` collects the per-fence ordering rules plus the SC semantics
  of TCG RMW events (``Rsc``/``Wsc``) and the ``Fsc`` fence.

Notably *absent*: any preserved program order between plain accesses,
and any dependency ordering — which is exactly what licenses TCG's
reordering and false-dependency-elimination passes (Section 5.4).
"""

from __future__ import annotations

from ..events import Arch, Fence
from ..execution import Execution
from ..relations import Rel, union
from .base import MemoryModel

#: The nine directional TCG fences and their (predecessor, successor)
#: access classes, exactly as enumerated in Figure 6's ``ord``.
_FENCE_RULES: tuple[tuple[Fence, str, str], ...] = (
    (Fence.FRR, "r", "r"),
    (Fence.FRW, "r", "w"),
    (Fence.FRM, "r", "m"),
    (Fence.FWR, "w", "r"),
    (Fence.FWW, "w", "w"),
    (Fence.FWM, "w", "m"),
    (Fence.FMR, "m", "r"),
    (Fence.FMW, "m", "w"),
    (Fence.FMM, "m", "m"),
)


class TCGModel(MemoryModel):
    name = "tcg-ir"
    arch = Arch.TCG

    def _class_ident(self, ex: Execution, cls: str) -> Rel:
        if cls == "r":
            return Rel.identity(ex.reads)
        if cls == "w":
            return Rel.identity(ex.writes)
        return Rel.identity(ex.memory_events)

    def ord(self, ex: Execution) -> Rel:
        po = ex.po
        clauses = []
        for fence, pre, post in _FENCE_RULES:
            fid = ex.fences(fence)
            if not fid:
                continue
            clauses.append(
                self._class_ident(ex, pre) @ po @ Rel.identity(fid)
                @ po @ self._class_ident(ex, post)
            )
        # RMW events follow SC semantics (Figure 6's last two lines).
        before = Rel.identity(ex.sc_writes | ex.rmw.domain())
        after = Rel.identity(ex.sc_reads | ex.rmw.codomain())
        clauses.append(po @ before)
        clauses.append(after @ po)
        fsc = Rel.identity(ex.fences(Fence.FSC))
        clauses.append(po @ fsc)
        clauses.append(fsc @ po)
        return union(clauses)

    def ghb(self, ex: Execution) -> Rel:
        return union([self.ord(ex), ex.rfe, ex.coe, ex.fre])

    def is_consistent(self, ex: Execution) -> bool:
        if not self.common_axioms(ex):
            return False
        return self.ghb(ex).is_acyclic()

    def rf_stage_consistent(self, ex: Execution) -> bool:
        """Sound on partial co: ``ord`` is built from po, fences and
        event modes only — co never appears — and the remaining GOrd
        terms ``rfe``/``coe``/``fre`` are monotone in co, so a GOrd (or
        sc-per-loc/atomicity) violation under the forced co cannot be
        repaired by any coherence extension."""
        return self.is_consistent(ex)
