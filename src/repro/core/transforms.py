"""IR transformations on litmus programs and their correctness checks.

Section 5.4 / Figure 10 of the paper: TCG performs constant propagation
and folding that, on shared-memory accesses, amounts to the elimination
rules below; it also merges/strengthens fences and reorders independent
plain accesses.  Each rule here is an executable program transformation
whose correctness (Theorem 1 with ``Ms = Mt``) the verifier can check —
including the *incorrect* cases the paper reports, such as RAW
elimination across an ``Fmr`` fence (the FMR example).

Eliminations (Figure 10), written on po-immediate pairs:

* RAR:   ``R(X,v) · R(X,v')   ->  R(X,v)``
* RAW:   ``W(X,v) · R(X,v)    ->  W(X,v)``
* WAW:   ``W(X,v) · W(X,v')   ->  W(X,v')``
* F-RAR: ``R(X,v) · Fo · R(X,v')  -> R(X,v) · Fo``  (o ∈ {rm, ww})
* F-RAW: ``W(X,v) · Fτ · R(X,v)   -> W(X,v) · Fτ``  (τ ∈ {sc, ww})
* F-WAW: ``W(X,v) · Fo · W(X,v')  -> Fo · W(X,v')`` (o ∈ {rm, ww})

plus fence merging/strengthening and adjacent-access reordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MappingError
from .events import Fence
from .mappings import _TCG_FENCE_PAIRS
from .program import FenceOp, If, Load, Op, Program, Rmw, Store

#: Fences across which read-after-read elimination stays correct (the
#: ``F_o`` side condition of Figure 10 — confirmed by our checker).
ELIM_SAFE_RAR: frozenset[Fence] = frozenset({Fence.FRM, Fence.FWW})
#: Fences across which read-after-write elimination stays correct
#: (the ``F_τ`` side condition).  Notably *not* Fmr/Fwr — that is the
#: FMR bug.
ELIM_SAFE_RAW: frozenset[Fence] = frozenset({Fence.FSC, Fence.FWW})
#: Fences across which write-after-write elimination stays correct.
#: Figure 10 claims o ∈ {rm, ww}, but our exhaustive checker finds a
#: counterexample for Fww: eliminating the first write also removes its
#: ``[W];po;[Fww];po;[W]`` ordering edge to *later, other-location*
#: writes, which an external reader with an Frr fence can observe (see
#: tests/core/test_transforms.py).  We therefore keep the conservative
#: set; the deviation is recorded in EXPERIMENTS.md.
ELIM_SAFE_WAW: frozenset[Fence] = frozenset({Fence.FRM})


# ----------------------------------------------------------------------
# Register substitution (constant folding support)
# ----------------------------------------------------------------------
def substitute_reg(ops: tuple[Op, ...], reg: str,
                   replacement: int | str) -> tuple[Op, ...]:
    """Replace uses of ``reg`` by a constant or another register."""
    out: list[Op] = []
    for op in ops:
        if isinstance(op, Store) and op.value == reg:
            out.append(Store(op.loc, replacement, mode=op.mode))
        elif isinstance(op, If) and op.reg == reg:
            if isinstance(replacement, int):
                # Condition folds: keep the statically-taken arm.
                arm = op.then_ops if replacement == op.value \
                    else op.else_ops
                out.extend(substitute_reg(tuple(arm), reg, replacement))
            else:
                out.append(If(
                    reg=replacement, value=op.value,
                    then_ops=substitute_reg(
                        tuple(op.then_ops), reg, replacement),
                    else_ops=substitute_reg(
                        tuple(op.else_ops), reg, replacement),
                ))
        elif isinstance(op, If):
            out.append(If(
                reg=op.reg, value=op.value,
                then_ops=substitute_reg(tuple(op.then_ops), reg,
                                        replacement),
                else_ops=substitute_reg(tuple(op.else_ops), reg,
                                        replacement),
            ))
        else:
            out.append(op)
    return tuple(out)


def _rewrite_thread(program: Program, tid: int,
                    new_ops: tuple[Op, ...], suffix: str) -> Program:
    threads = tuple(
        new_ops if i == tid else ops
        for i, ops in enumerate(program.threads)
    )
    return program.with_threads(threads, suffix=suffix)


def _ops(program: Program, tid: int) -> tuple[Op, ...]:
    return tuple(program.threads[tid])


# ----------------------------------------------------------------------
# Eliminations
# ----------------------------------------------------------------------
def eliminate_rar(program: Program, tid: int, idx: int) -> Program:
    """RAR / F-RAR: drop the second of two same-location reads.

    ``idx`` points at the first read; an intermediate fence is allowed
    (F-RAR form).  The second read's register is renamed to the first's,
    mirroring constant propagation of the loaded value.
    """
    ops = _ops(program, tid)
    first = ops[idx]
    if not isinstance(first, Load):
        raise MappingError(f"op {idx} is not a load: {first}")
    j = idx + 1
    if j < len(ops) and isinstance(ops[j], FenceOp):
        j += 1
    if j >= len(ops) or not isinstance(ops[j], Load) \
            or ops[j].loc != first.loc:
        raise MappingError(f"no same-location read follows op {idx}")
    second = ops[j]
    rest = substitute_reg(ops[j + 1:], second.reg, first.reg)
    return _rewrite_thread(
        program, tid, ops[:j] + rest, suffix="·rar")


def eliminate_raw(program: Program, tid: int, idx: int) -> Program:
    """RAW / F-RAW: drop a read that follows a same-location write,
    folding the written constant into the read's register uses.

    This is exactly the transformation that is *incorrect* across
    ``Fmr``/``Fwr`` fences (the FMR example) — the checker will say so.
    """
    ops = _ops(program, tid)
    first = ops[idx]
    if not isinstance(first, Store) or not isinstance(first.value, int):
        raise MappingError(f"op {idx} is not a constant store: {first}")
    j = idx + 1
    if j < len(ops) and isinstance(ops[j], FenceOp):
        j += 1
    if j >= len(ops) or not isinstance(ops[j], Load) \
            or ops[j].loc != first.loc:
        raise MappingError(f"no same-location read follows op {idx}")
    read = ops[j]
    rest = substitute_reg(ops[j + 1:], read.reg, first.value)
    return _rewrite_thread(
        program, tid, ops[:j] + rest, suffix="·raw")


def eliminate_waw(program: Program, tid: int, idx: int) -> Program:
    """WAW / F-WAW: drop the first of two same-location writes."""
    ops = _ops(program, tid)
    first = ops[idx]
    if not isinstance(first, Store):
        raise MappingError(f"op {idx} is not a store: {first}")
    j = idx + 1
    if j < len(ops) and isinstance(ops[j], FenceOp):
        j += 1
    if j >= len(ops) or not isinstance(ops[j], Store) \
            or ops[j].loc != first.loc:
        raise MappingError(f"no same-location write follows op {idx}")
    return _rewrite_thread(
        program, tid, ops[:idx] + ops[idx + 1:], suffix="·waw")


# ----------------------------------------------------------------------
# Fence merging / strengthening
# ----------------------------------------------------------------------
#: Directional fences ordered by coverage, weakest first; the merge
#: picks the first that covers the union of the operands' pair sets.
_DIRECTIONAL_BY_STRENGTH: tuple[Fence, ...] = (
    Fence.FRR, Fence.FRW, Fence.FWW, Fence.FWR,
    Fence.FRM, Fence.FWM, Fence.FMR, Fence.FMW,
    Fence.FMM,
)


def merge_fences(first: Fence, second: Fence) -> Fence:
    """The weakest single fence at least as strong as both.

    Merging to a same-or-stronger fence is always correct (Section 5.4);
    ``Fsc`` absorbs everything because of its additional SC semantics.
    """
    if Fence.FSC in (first, second):
        return Fence.FSC
    pairs_a = _TCG_FENCE_PAIRS.get(first)
    pairs_b = _TCG_FENCE_PAIRS.get(second)
    if pairs_a is None or pairs_b is None:
        raise MappingError(
            f"cannot merge non-directional fences {first}/{second}"
        )
    union = pairs_a | pairs_b
    for fence in _DIRECTIONAL_BY_STRENGTH:
        if union <= _TCG_FENCE_PAIRS[fence]:
            return fence
    return Fence.FSC  # pragma: no cover - Fmm covers all pairs


def merge_adjacent_fences(program: Program, tid: int, idx: int) -> Program:
    """Replace ``F1 · F2`` (no intermediate access) by their merge,
    placed where the earliest fence was (Section 6.1)."""
    ops = _ops(program, tid)
    if idx + 1 >= len(ops) or not isinstance(ops[idx], FenceOp) \
            or not isinstance(ops[idx + 1], FenceOp):
        raise MappingError(f"ops {idx},{idx + 1} are not adjacent fences")
    merged = merge_fences(ops[idx].kind, ops[idx + 1].kind)
    new_ops = ops[:idx] + (FenceOp(merged),) + ops[idx + 2:]
    return _rewrite_thread(program, tid, new_ops, suffix="·merge")


def strengthen_fence(program: Program, tid: int, idx: int,
                     to: Fence) -> Program:
    """Replace a fence by a stronger one (always correct)."""
    ops = _ops(program, tid)
    fence = ops[idx]
    if not isinstance(fence, FenceOp):
        raise MappingError(f"op {idx} is not a fence")
    if to is not Fence.FSC:
        old = _TCG_FENCE_PAIRS.get(fence.kind, set())
        new = _TCG_FENCE_PAIRS.get(to, set())
        if not old <= new:
            raise MappingError(f"{to} is not stronger than {fence.kind}")
    new_ops = ops[:idx] + (FenceOp(to),) + ops[idx + 1:]
    return _rewrite_thread(program, tid, new_ops, suffix="·strengthen")


# ----------------------------------------------------------------------
# Reordering and dependency removal
# ----------------------------------------------------------------------
def reorder_adjacent(program: Program, tid: int, idx: int) -> Program:
    """Swap two adjacent, independent, different-location plain accesses.

    Correct in the TCG model (no ppo between plain accesses); the
    checker demonstrates it is *not* correct at the Arm level when a
    dependency exists.
    """
    ops = _ops(program, tid)
    if idx + 1 >= len(ops):
        raise MappingError(f"no op after {idx}")
    a, b = ops[idx], ops[idx + 1]
    for op in (a, b):
        if isinstance(op, Rmw) or not isinstance(op, (Load, Store)):
            raise MappingError(f"cannot reorder {op}")
    if a.loc == b.loc:
        raise MappingError("same-location accesses cannot be reordered")
    if isinstance(a, Load) and isinstance(b, Store) \
            and b.value == a.reg:
        raise MappingError("data-dependent pair cannot be reordered")
    new_ops = ops[:idx] + (b, a) + ops[idx + 2:]
    return _rewrite_thread(program, tid, new_ops, suffix="·reorder")


def remove_false_dependency(program: Program, tid: int,
                            idx: int) -> Program:
    """Drop a store's syntactic-but-false register dependency.

    Models TCG's false-dependency elimination (``X = a*0  ->  X = 0``,
    Section 6.1): the stored value is already a constant, only the
    syntactic dependency disappears.  Trivially correct in the TCG model
    because it has no dependency ordering; the same rewrite at the Arm
    level removes a real ordering edge (dob), which the checker exposes.
    """
    ops = _ops(program, tid)
    store = ops[idx]
    if not isinstance(store, Store) or store.dep is None:
        raise MappingError(f"op {idx} carries no false dependency")
    new_ops = ops[:idx] + \
        (Store(store.loc, store.value, mode=store.mode),) + ops[idx + 1:]
    return _rewrite_thread(program, tid, new_ops, suffix="·nodep")


# ----------------------------------------------------------------------
# Batch description of Figure 10 for the report generator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EliminationRule:
    name: str
    pattern: str
    result: str
    fence_condition: str


FIGURE_10_RULES: tuple[EliminationRule, ...] = (
    EliminationRule("RAR", "R(X,v) · R(X,v')", "R(X,v)", "—"),
    EliminationRule("RAW", "W(X,v) · R(X,v)", "W(X,v)", "—"),
    EliminationRule("WAW", "W(X,v) · W(X,v')", "W(X,v')", "—"),
    EliminationRule("F-RAR", "R(X,v) · Fo · R(X,v')", "R(X,v) · Fo",
                    "o ∈ {rm, ww}"),
    EliminationRule("F-RAW", "W(X,v) · Fτ · R(X,v)", "W(X,v) · Fτ",
                    "τ ∈ {sc, ww}"),
    EliminationRule("F-WAW", "W(X,v) · Fo · W(X,v')", "Fo · W(X,v')",
                    "o ∈ {rm, ww}"),
)
