"""ArMOR-style MOSTs: declarative ordering tables and derived schemes.

The frontend's fence mappings (Figure 2's QEMU scheme, Figure 7a's
verified Risotto scheme) used to be hardwired ``if policy is ...``
branches.  ArMOR (Lustig et al.) shows the requirement is *data*: a
Memory Ordering Specification Table (MOST) with one cell per ordered
access pair — (first access, second access) over {ld, st} — whose
strength says whether the source architecture preserves that order.
Given such a table, a fence *menu* for the target (which fences exist
and which pairs each one orders), and a placement discipline (fences
lead or trail each access class), the concrete per-access fence
placement is derived, not written.

Three layers live here:

* :class:`Strength`/:class:`MOST` — the table type plus the source
  requirement tables (SC, TSO, PSO, RMO) transcribed from ArMOR;
* :class:`MenuFence`/:class:`TargetMenu` — target fence vocabularies:
  the TCG fence kinds the Arm backend lowers to ``dmb`` variants, and
  a Power-like ``sync``/``lwsync`` menu kept as data;
* :func:`derive_scheme`/:class:`FenceScheme` — the derivation pass and
  its result: per-slot fence kinds *and* the provenance strings the
  obs layer attributes fence cycles to.  The scheme is the single
  source of truth for origin tags — the frontend emits what the
  scheme says, and :func:`known_origins` is what reports validate
  against.

Every derived scheme is also a verifiable artifact: :func:`scheme_mapping`
turns it into the op-level :class:`~repro.core.mappings.OpMapping` the
Theorem-1 checker and the fuzzer's mapping oracle consume, registered
under ``most-<scheme>-<rmw>`` in ``ALL_MAPPINGS``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import MappingError
from .events import Arch, Fence, RmwFlavor
from .mappings import ALL_MAPPINGS, OpMapping, _TCG_FENCE_PAIRS, \
    tcg_to_arm
from .program import FenceOp, Load, Op, Rmw, Store

#: Access classes a MOST row/column ranges over.
ACCESSES = ("ld", "st")

#: Access class -> event-class letter used by fence pair coverage.
_CLASS = {"ld": "r", "st": "w"}


class Strength(enum.IntEnum):
    """One MOST cell: how strongly a source preserves an access pair.

    The lattice is ``NONE < MCA < STRONG`` (ArMOR's ``-``/``M``/``S``).
    ``MCA`` (multi-copy atomic) and ``STRONG`` both *require*
    enforcement on a non-MCA target like Arm; the distinction is kept
    so tables round-trip ArMOR's notation and so strengthening
    (:meth:`MOST.union`) is cell-wise max, not boolean or.
    """

    NONE = 0
    MCA = 1
    STRONG = 2

    @classmethod
    def parse(cls, symbol: str) -> "Strength":
        try:
            return _STRENGTH_BY_SYMBOL[symbol]
        except KeyError:
            raise MappingError(
                f"unknown MOST strength {symbol!r}; expected one of "
                f"{sorted(_STRENGTH_BY_SYMBOL)}") from None

    @property
    def symbol(self) -> str:
        return _STRENGTH_SYMBOLS[self]


_STRENGTH_SYMBOLS = {
    Strength.NONE: "-",
    Strength.MCA: "M",
    Strength.STRONG: "S",
}
_STRENGTH_BY_SYMBOL = {v: k for k, v in _STRENGTH_SYMBOLS.items()}


@dataclass(frozen=True)
class MOST:
    """A 2×2 ordering table: cell (first, second) over {ld, st}.

    ``ld_st`` is the strength with which the source orders a load
    program-order-before a store, and so on.  Immutable and hashable so
    schemes derived from it can sit in frozen configs.
    """

    name: str
    ld_ld: Strength
    ld_st: Strength
    st_ld: Strength
    st_st: Strength

    @classmethod
    def parse(cls, name: str, rows: dict[str, str]) -> "MOST":
        """Build from ArMOR-style rows: ``{"ld": "SS", "st": "-M"}``
        where each row string is the successor order (ld, st)."""
        cells = {}
        for first in ACCESSES:
            row = rows.get(first, "")
            if len(row) != len(ACCESSES):
                raise MappingError(
                    f"MOST {name!r}: row {first!r} must have "
                    f"{len(ACCESSES)} cells, got {row!r}")
            for second, symbol in zip(ACCESSES, row):
                cells[f"{first}_{second}"] = Strength.parse(symbol)
        return cls(name=name, **cells)

    def cell(self, first: str, second: str) -> Strength:
        if first not in ACCESSES or second not in ACCESSES:
            raise MappingError(
                f"MOST cell ({first!r}, {second!r}): accesses must be "
                f"in {ACCESSES}")
        return getattr(self, f"{first}_{second}")

    def required_pairs(self) -> tuple[tuple[str, str], ...]:
        """Access pairs the source preserves and a weaker target must
        enforce, in row-major order (deterministic derivation)."""
        return tuple(
            (first, second)
            for first in ACCESSES for second in ACCESSES
            if self.cell(first, second) > Strength.NONE
        )

    def covers(self, other: "MOST") -> bool:
        """True when this table is cell-wise at least as strong."""
        return all(
            self.cell(f, s) >= other.cell(f, s)
            for f in ACCESSES for s in ACCESSES
        )

    def union(self, other: "MOST") -> "MOST":
        """Cell-wise max — the weakest table satisfying both."""
        return MOST(
            name=f"{self.name}|{other.name}",
            **{
                f"{f}_{s}": max(self.cell(f, s), other.cell(f, s))
                for f in ACCESSES for s in ACCESSES
            },
        )

    def render(self) -> str:
        """The ArMOR-style grid, for reports and docs."""
        head = "      " + "  ".join(f"{s:>2s}" for s in ACCESSES)
        rows = [
            f"{first:>4s}: " + "  ".join(
                f"{self.cell(first, second).symbol:>2s}"
                for second in ACCESSES)
            for first in ACCESSES
        ]
        return "\n".join([head] + rows)


#: Source requirement tables, per ArMOR's <model>2ppo MOSTs: what each
#: source model guarantees about program order that a fully-relaxed
#: target must re-enforce.  x86-TSO preserves everything but st->ld
#: (store buffering); its st->st order is multi-copy atomic.
SC_MOST = MOST.parse("sc", {"ld": "SS", "st": "SS"})
TSO_MOST = MOST.parse("tso", {"ld": "SS", "st": "-M"})
PSO_MOST = MOST.parse("pso", {"ld": "SS", "st": "--"})
RMO_MOST = MOST.parse("rmo", {"ld": "--", "st": "--"})

SOURCE_TABLES: dict[str, MOST] = {
    t.name: t for t in (SC_MOST, TSO_MOST, PSO_MOST, RMO_MOST)
}


# ----------------------------------------------------------------------
# Target fence menus
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MenuFence:
    """One fence the target offers: the pairs it orders and a relative
    cost.  ``kind`` is the TCG fence the frontend emits for it; menus
    for targets outside the pipeline (Power) carry ``None``."""

    name: str
    pairs: frozenset
    cost: int
    kind: Fence | None = None


@dataclass(frozen=True)
class TargetMenu:
    """A target's fence vocabulary, selectable by pair coverage."""

    name: str
    fences: tuple[MenuFence, ...]

    def select(self, pairs) -> MenuFence:
        """The cheapest menu fence covering every pair; ties go to the
        one ordering the fewest extra pairs, then to the name — the
        selection is total and deterministic."""
        needed = frozenset(pairs)
        candidates = [f for f in self.fences if needed <= f.pairs]
        if not candidates:
            raise MappingError(
                f"menu {self.name!r} has no fence covering "
                f"{sorted(needed)}")
        return min(candidates,
                   key=lambda f: (f.cost, len(f.pairs), f.name))


def _tcg_menu_fence(kind: Fence) -> MenuFence:
    pairs = frozenset(_TCG_FENCE_PAIRS[kind])
    # Cost mirrors the Arm lowering (lower_tcg_fence): kinds that
    # become dmb ld / dmb st are cheaper than anything needing dmb sy.
    ld_pairs = frozenset({("r", "r"), ("r", "w")})
    st_pairs = frozenset({("w", "w")})
    cost = 1 if (pairs <= ld_pairs or pairs <= st_pairs) else 2
    return MenuFence(name=kind.value, pairs=pairs, cost=cost, kind=kind)


#: The frontend-emittable TCG fence kinds (each lowers to one dmb
#: variant).  FMM is deliberately absent: it aliases FSC's coverage and
#: the pipeline spells the full barrier Fsc everywhere.
ARM_DMB_MENU = TargetMenu(
    name="arm-dmb",
    fences=tuple(
        _tcg_menu_fence(kind)
        for kind in (Fence.FRR, Fence.FRW, Fence.FRM, Fence.FWW,
                     Fence.FWR, Fence.FWM, Fence.FMR, Fence.FMW,
                     Fence.FSC)
    ),
)

_ALL_PAIRS = frozenset(
    (a, b) for a in ("r", "w") for b in ("r", "w"))

#: A Power-like menu kept as data: lwsync orders everything except
#: write->read; sync orders all pairs and is much more expensive.  No
#: Power backend exists — the menu exercises selection over a second
#: vocabulary (and documents what a Power port would derive).
POWER_SYNC_MENU = TargetMenu(
    name="power-sync",
    fences=(
        MenuFence(name="lwsync",
                  pairs=frozenset(_ALL_PAIRS - {("w", "r")}), cost=1),
        MenuFence(name="sync", pairs=_ALL_PAIRS, cost=3),
    ),
)

TARGET_MENUS: dict[str, TargetMenu] = {
    m.name: m for m in (ARM_DMB_MENU, POWER_SYNC_MENU)
}


# ----------------------------------------------------------------------
# Derivation: (table, menu, placement) -> concrete fence scheme
# ----------------------------------------------------------------------
#: Emission slots of a scheme, with the provenance-string format each
#: one stamps on its fence.  These formats *are* the origin vocabulary
#: the obs layer's by-origin cycle accounting buckets on — the frontend
#: renders them from the scheme instead of hand-typing literals.
ORIGIN_FORMATS: dict[str, str] = {
    "ld_pre": "RMOV->{kind};ld",
    "ld_post": "RMOV->ld;{kind}",
    "st_pre": "WMOV->{kind};st",
    "st_post": "WMOV->st;{kind}",
    "mfence": "MFENCE->{kind}",
    "lfence": "LFENCE->{kind}",
    "sfence": "SFENCE->{kind}",
}

SCHEME_SLOTS = tuple(ORIGIN_FORMATS)

#: Pair sets of the explicit x86 fence instructions (their meaning is
#: architectural, not table-derived): mfence orders everything, lfence
#: keeps loads before later accesses, sfence keeps stores ordered.
_EXPLICIT_FENCE_PAIRS = {
    "mfence": _ALL_PAIRS,
    "lfence": frozenset({("r", "r"), ("r", "w")}),
    "sfence": frozenset({("w", "w")}),
}


@dataclass(frozen=True)
class FenceScheme:
    """A derived mapping scheme: what to emit around loads and stores.

    One scheme is the full answer for a (source table, target menu,
    placement) triple: the fence kind in each of the four access slots
    (``None`` = no fence), the lowering of the explicit x86 fences, and
    the provenance string for every slot.  ``expect_sound`` records
    whether Theorem 1 should hold for x86-TSO sources — schemes derived
    from weaker tables (PSO/RMO) are registered as negative controls
    and are *expected* to fail the checker.
    """

    name: str
    source: str
    target: str
    placement_ld: str
    placement_st: str
    ld_pre: Fence | None = None
    ld_post: Fence | None = None
    st_pre: Fence | None = None
    st_post: Fence | None = None
    mfence: Fence | None = None
    lfence: Fence | None = None
    sfence: Fence | None = None
    expect_sound: bool = True

    def rule(self, slot: str) -> tuple[Fence, str] | None:
        """(fence kind, origin string) for one emission slot, or
        ``None`` when the scheme places nothing there."""
        if slot not in ORIGIN_FORMATS:
            raise MappingError(
                f"unknown scheme slot {slot!r}; expected one of "
                f"{SCHEME_SLOTS}")
        kind = getattr(self, slot)
        if kind is None:
            return None
        return kind, ORIGIN_FORMATS[slot].format(kind=kind.value)

    def rules(self) -> tuple[tuple[str, Fence, str], ...]:
        """Every populated slot as (slot, kind, origin) triples."""
        out = []
        for slot in SCHEME_SLOTS:
            rule = self.rule(slot)
            if rule is not None:
                out.append((slot, rule[0], rule[1]))
        return tuple(out)

    def origins(self) -> frozenset:
        """The provenance strings this scheme can stamp on fences."""
        return frozenset(origin for _, _, origin in self.rules())

    def describe(self) -> str:
        parts = [f"{slot}={kind.value}" for slot, kind, _ in self.rules()]
        return (f"{self.name}: source={self.source} "
                f"target={self.target} "
                f"placement=ld:{self.placement_ld},st:{self.placement_st} "
                + (" ".join(parts) if parts else "(no fences)"))


def derive_slots(table: MOST, placement: dict[str, str]) -> dict:
    """Assign every required pair of ``table`` to an emission slot.

    ``placement`` fixes the discipline per access class: ``"pre"``
    fences lead the access, ``"post"`` fences trail it.  A pair
    (a, b) is enforced by a fence *between* the two accesses, so it can
    live in a's post slot or b's pre slot; the derivation prefers the
    post slot (it keeps the fence adjacent to the access that created
    the obligation) and falls back to b's pre slot.  A pair neither
    slot can take — a leads and b trails — has no home between the
    accesses, and the placement is rejected rather than silently
    under-fenced.
    """
    for access in ACCESSES:
        if placement.get(access) not in ("pre", "post"):
            raise MappingError(
                f"placement for {access!r} must be 'pre' or 'post', "
                f"got {placement.get(access)!r}")
    slots: dict[tuple[str, str], set] = {
        (access, position): set()
        for access in ACCESSES for position in ("pre", "post")
    }
    for first, second in table.required_pairs():
        pair = (_CLASS[first], _CLASS[second])
        if placement[first] == "post":
            slots[(first, "post")].add(pair)
        elif placement[second] == "pre":
            slots[(second, "pre")].add(pair)
        else:
            raise MappingError(
                f"table {table.name!r}: pair {first}->{second} is not "
                f"coverable with placement ld:{placement['ld']},"
                f"st:{placement['st']} — {first} fences lead and "
                f"{second} fences trail, leaving no slot between the "
                f"accesses")
    return slots


def derive_scheme(table: MOST, menu: TargetMenu,
                  placement: dict[str, str], *, name: str | None = None,
                  explicit_fences: bool = True,
                  expect_sound: bool = True) -> FenceScheme:
    """Derive the concrete fence scheme for one (table, menu,
    placement) triple.

    Each populated slot gets the menu's cheapest fence covering the
    pairs assigned to it.  ``explicit_fences=False`` drops the x86
    ``mfence``/``lfence``/``sfence`` lowerings too (the no-fences
    performance oracle); otherwise they are selected from the menu by
    their architectural pair sets.
    """
    slots = derive_slots(table, placement)
    kinds: dict[str, Fence | None] = {}
    for (access, position), pairs in sorted(slots.items()):
        slot = f"{access}_{position}"
        if not pairs:
            kinds[slot] = None
            continue
        chosen = menu.select(pairs)
        if chosen.kind is None:
            raise MappingError(
                f"menu {menu.name!r} fence {chosen.name!r} has no TCG "
                f"kind; the frontend cannot emit it")
        kinds[slot] = chosen.kind
    for which, pairs in _EXPLICIT_FENCE_PAIRS.items():
        if not explicit_fences:
            kinds[which] = None
            continue
        chosen = menu.select(pairs)
        if chosen.kind is None:
            raise MappingError(
                f"menu {menu.name!r} fence {chosen.name!r} has no TCG "
                f"kind; the frontend cannot emit it")
        kinds[which] = chosen.kind
    return FenceScheme(
        name=name or f"{table.name}-{placement['ld']}-{placement['st']}",
        source=table.name,
        target=menu.name,
        placement_ld=placement["ld"],
        placement_st=placement["st"],
        expect_sound=expect_sound,
        **kinds,
    )


# ----------------------------------------------------------------------
# The registered scheme family
# ----------------------------------------------------------------------
def _derived(name: str, source: str, ld: str, st: str, *,
             expect_sound: bool) -> FenceScheme:
    return derive_scheme(
        SOURCE_TABLES[source], ARM_DMB_MENU, {"ld": ld, "st": st},
        name=name, expect_sound=expect_sound)


#: Figure 2: leading Frr before loads, leading Fmw before stores.
QEMU_SCHEME = _derived("qemu", "tso", "pre", "pre", expect_sound=True)
#: Figure 7a: trailing Frm after loads, leading Fww before stores —
#: the verified minimal scheme.
RISOTTO_SCHEME = _derived("risotto", "tso", "post", "pre",
                          expect_sound=True)
#: All-trailing TSO variant: Frm after loads, Fww after stores.
TSO_TRAIL_SCHEME = _derived("tso-trail", "tso", "post", "post",
                            expect_sound=True)
#: SC source tables over-fence x86 programs but stay sound.
SC_LEAD_SCHEME = _derived("sc-lead", "sc", "pre", "pre",
                          expect_sound=True)
SC_TRAIL_SCHEME = _derived("sc-trail", "sc", "post", "post",
                           expect_sound=True)
#: Negative controls: PSO drops the st->st requirement, RMO drops
#: everything — both must fail Theorem 1 for x86-TSO sources.
PSO_LEAD_SCHEME = _derived("pso-lead", "pso", "pre", "pre",
                           expect_sound=False)
RMO_BARE_SCHEME = _derived("rmo-bare", "rmo", "pre", "pre",
                           expect_sound=False)
#: The incorrect performance oracle: nothing, not even the explicit
#: x86 fences (matching the historical no-fences policy).
NOFENCES_SCHEME = derive_scheme(
    RMO_MOST, ARM_DMB_MENU, {"ld": "pre", "st": "pre"},
    name="no-fences", explicit_fences=False, expect_sound=False)

SCHEMES: dict[str, FenceScheme] = {
    s.name: s for s in (
        QEMU_SCHEME,
        RISOTTO_SCHEME,
        TSO_TRAIL_SCHEME,
        SC_LEAD_SCHEME,
        SC_TRAIL_SCHEME,
        PSO_LEAD_SCHEME,
        RMO_BARE_SCHEME,
        NOFENCES_SCHEME,
    )
}

#: Legacy FencePolicy value -> the table-derived equivalent scheme.
_POLICY_SCHEMES = {
    "qemu": QEMU_SCHEME,
    "risotto": RISOTTO_SCHEME,
    "no-fences": NOFENCES_SCHEME,
}


def scheme_for_policy(policy_value: str) -> FenceScheme:
    """The derived scheme reproducing a legacy ``FencePolicy`` value
    (``"qemu"``/``"risotto"``/``"no-fences"``) bit-for-bit."""
    try:
        return _POLICY_SCHEMES[policy_value]
    except KeyError:
        raise MappingError(
            f"no scheme for fence policy {policy_value!r}; expected "
            f"one of {sorted(_POLICY_SCHEMES)}") from None


# ----------------------------------------------------------------------
# Provenance registry (the obs layer validates against this)
# ----------------------------------------------------------------------
#: Origin tags stamped by optimizer passes rather than the frontend.
OPTIMIZER_ORIGINS = frozenset({"fence_merge:strengthen"})


def known_origins(schemes=None) -> frozenset:
    """Every fence-provenance string a pipeline stage may emit: the
    registered schemes' slot origins plus the optimizer's tags."""
    if schemes is None:
        schemes = SCHEMES.values()
    names = set(OPTIMIZER_ORIGINS)
    for scheme in schemes:
        names |= scheme.origins()
    return frozenset(names)


# ----------------------------------------------------------------------
# Schemes as verifiable op mappings (Theorem 1 / fuzz oracle)
# ----------------------------------------------------------------------
def scheme_x86_to_tcg(scheme: FenceScheme) -> OpMapping:
    """The op-level x86 -> TCG mapping a scheme induces — the exact
    counterpart of what the frontend emits around loads and stores."""

    def map_op(op: Op) -> tuple[Op, ...]:
        if isinstance(op, Load):
            out: list[Op] = []
            if scheme.ld_pre is not None:
                out.append(FenceOp(scheme.ld_pre))
            out.append(op)
            if scheme.ld_post is not None:
                out.append(FenceOp(scheme.ld_post))
            return tuple(out)
        if isinstance(op, Store):
            out = []
            if scheme.st_pre is not None:
                out.append(FenceOp(scheme.st_pre))
            out.append(op)
            if scheme.st_post is not None:
                out.append(FenceOp(scheme.st_post))
            return tuple(out)
        if isinstance(op, Rmw):
            return (Rmw(op.loc, op.expect, op.new, RmwFlavor.TCG,
                        out=op.out),)
        if isinstance(op, FenceOp):
            if op.kind is Fence.MFENCE:
                if scheme.mfence is None:
                    return ()
                return (FenceOp(scheme.mfence),)
            raise MappingError(f"unexpected x86 fence {op.kind}")
        raise MappingError(f"cannot map x86 op {op!r}")

    return OpMapping(
        name=f"most-{scheme.name}-x86-to-tcg",
        src_arch=Arch.X86, tgt_arch=Arch.TCG, map_op=map_op)


#: RMW lowerings a scheme composes with (Figure 7b's verified pair).
SCHEME_RMW_LOWERINGS = ("rmw1al", "rmw2ff")


def scheme_mapping(scheme: FenceScheme,
                   rmw_lowering: str = "rmw1al") -> OpMapping:
    """The end-to-end x86 -> Arm mapping of one (scheme, RMW lowering)
    pair, named ``most-<scheme>-<rmw>`` for registries and CLIs."""
    composed = scheme_x86_to_tcg(scheme).then(
        tcg_to_arm(rmw_lowering, f"tcg-to-arm-{rmw_lowering}"))
    return OpMapping(
        name=f"most-{scheme.name}-{rmw_lowering}",
        src_arch=Arch.X86, tgt_arch=Arch.ARM,
        map_op=composed.map_op)


def expected_verdict(scheme: FenceScheme, rmw_lowering: str) -> bool:
    """Whether Theorem 1 should hold over the corpus for this pair.

    A sound source table is necessary but not sufficient: the RMW1
    (``casal``) lowering relies on loads carrying a *trailing* fence to
    order the read of a failed CAS (Section 3.2 — the MPQ bug QEMU
    exhibits even with the GCC-10 helper).  Schemes that fence loads
    with a leading fence only are therefore expected to fail with
    ``rmw1al`` exactly as QEMU does, and to pass with ``rmw2ff``
    (whose surrounding DMBFFs restore the order).
    """
    if not scheme.expect_sound:
        return False
    if rmw_lowering == "rmw1al" and scheme.ld_post is None:
        return False
    return True


#: Every registered (scheme × RMW lowering) mapping, merged into
#: ``ALL_MAPPINGS`` so the verifier CLI and fuzz oracle resolve them
#: by name like any hand-written mapping.
SCHEME_MAPPINGS: dict[str, OpMapping] = {}
#: Mapping name -> whether the Theorem-1 corpus check should pass.
SCHEME_EXPECTED: dict[str, bool] = {}
for _scheme in SCHEMES.values():
    for _rmw in SCHEME_RMW_LOWERINGS:
        _mapping = scheme_mapping(_scheme, _rmw)
        SCHEME_MAPPINGS[_mapping.name] = _mapping
        SCHEME_EXPECTED[_mapping.name] = expected_verdict(_scheme, _rmw)
ALL_MAPPINGS.update(SCHEME_MAPPINGS)
del _scheme, _rmw, _mapping
