"""The paper's formal contribution, executable.

This package implements the axiomatic concurrency machinery of
Sections 5.1–5.4: events, relational algebra, candidate-execution
enumeration, the x86-TSO / Arm-Cats / TCG IR memory models, the mapping
schemes of Figures 2/3/7, the elimination and fence-merging
transformations of Figure 10, and a model-checking verifier for
Theorem 1 that stands in for the paper's Agda proofs.
"""

from .events import Arch, Event, Fence, Mode, RmwFlavor
from .execution import Execution
from .program import FenceOp, If, Load, Program, Rmw, Store
from .relations import Rel
from .enumerate import behaviors, consistent_executions, \
    enumerate_consistent, enumerate_executions
from .dpor import reduced_behaviors
from .models import ARM, ARM_ORIGINAL, MODEL_BY_NAME, SC, TCG, X86
# .most registers the derived scheme mappings into
# mappings.ALL_MAPPINGS as an import side effect — keep it in the
# package preamble so every entry point sees the full registry.
from . import corpus_large, litmus_library, mappings, most, \
    transforms, verifier
from .most import MOST, FenceScheme, SCHEMES, derive_scheme, \
    known_origins, scheme_mapping

__all__ = [
    "Arch", "Event", "Fence", "Mode", "RmwFlavor",
    "Execution", "Rel",
    "FenceOp", "If", "Load", "Program", "Rmw", "Store",
    "behaviors", "consistent_executions", "enumerate_consistent",
    "enumerate_executions", "reduced_behaviors",
    "ARM", "ARM_ORIGINAL", "MODEL_BY_NAME", "SC", "TCG", "X86",
    "corpus_large", "litmus_library", "mappings", "most",
    "transforms", "verifier",
    "MOST", "FenceScheme", "SCHEMES", "derive_scheme",
    "known_origins", "scheme_mapping",
]
