"""The paper's formal contribution, executable.

This package implements the axiomatic concurrency machinery of
Sections 5.1–5.4: events, relational algebra, candidate-execution
enumeration, the x86-TSO / Arm-Cats / TCG IR memory models, the mapping
schemes of Figures 2/3/7, the elimination and fence-merging
transformations of Figure 10, and a model-checking verifier for
Theorem 1 that stands in for the paper's Agda proofs.
"""

from .events import Arch, Event, Fence, Mode, RmwFlavor
from .execution import Execution
from .program import FenceOp, If, Load, Program, Rmw, Store
from .relations import Rel
from .enumerate import behaviors, consistent_executions, \
    enumerate_consistent, enumerate_executions
from .dpor import reduced_behaviors
from .models import ARM, ARM_ORIGINAL, MODEL_BY_NAME, SC, TCG, X86
from . import corpus_large, litmus_library, mappings, transforms, \
    verifier

__all__ = [
    "Arch", "Event", "Fence", "Mode", "RmwFlavor",
    "Execution", "Rel",
    "FenceOp", "If", "Load", "Program", "Rmw", "Store",
    "behaviors", "consistent_executions", "enumerate_consistent",
    "enumerate_executions", "reduced_behaviors",
    "ARM", "ARM_ORIGINAL", "MODEL_BY_NAME", "SC", "TCG", "X86",
    "corpus_large", "litmus_library", "mappings", "transforms",
    "verifier",
]
