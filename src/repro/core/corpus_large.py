"""A 5–6-thread litmus corpus sized beyond the naive enumerator.

These programs are the stress fixtures for the DPOR + symmetry +
coherence-class reduction stack (``repro.core.dpor``): their naive
rf × co cross products run to hundreds of thousands of candidates —
``W5+RR`` alone has 518 400, past any practical candidate limit — while
the reduced search materializes a few dozen.  The sharded verifier
(``python -m repro verify --corpus large``) and
``benchmarks/test_verify_sharded.py`` both run over this corpus.

Several programs deliberately repeat byte-identical thread bodies so
thread-symmetry breaking has orbits to collapse (up to 4! = 24 for
``W4+2RR``, 5! = 120 for ``CAS5``).
"""

from __future__ import annotations

from .litmus_library import (
    ALL_TESTS,
    CAS,
    If,
    LitmusTest,
    R,
    W,
    outcome,
    x86,
)

#: Classic IRIW widened with a duplicated reader pair: two writers, two
#: byte-identical readers of (X, Y), one reader of (Y, X).  x86-TSO
#: forbids the split-brain disagreement where one reader sees X before
#: Y and the mirrored reader sees Y before X.
IRIW5 = LitmusTest(
    program=x86(
        "IRIW5",
        (W("X", 1),),
        (W("Y", 1),),
        (R("a", "X"), R("b", "Y")),
        (R("a", "X"), R("b", "Y")),
        (R("c", "Y"), R("d", "X")),
    ),
    forbidden=(outcome(T2_a=1, T2_b=0, T4_c=1, T4_d=0),),
    allowed=(outcome(T2_a=1, T2_b=1, T4_c=1, T4_d=1),),
    description="IRIW with a duplicated reader: writes to X and Y must "
                "appear in one order to all readers on x86",
)

#: Five identical CAS threads racing on one location.  RMW source
#: disjointness forces exactly one winner, so the final value is always
#: 1 — and the 5! = 120 symmetric trace orbits collapse to one.
CAS5 = LitmusTest(
    program=x86(
        "CAS5",
        (CAS("X", 0, 1, out="r"),),
        (CAS("X", 0, 1, out="r"),),
        (CAS("X", 0, 1, out="r"),),
        (CAS("X", 0, 1, out="r"),),
        (CAS("X", 0, 1, out="r"),),
    ),
    forbidden=(outcome(X=0),),
    allowed=(outcome(X=1),),
    description="five racing CAS(0->1): exactly one succeeds, X ends 1",
)

#: Message passing through a chain of three forwarding threads: each
#: relay observes its incoming flag and conditionally raises the next.
#: The final reader seeing flag F4 must see the data write.
MP_CHAIN5 = LitmusTest(
    program=x86(
        "MP-chain5",
        (W("D", 1), W("F1", 1)),
        (R("a", "F1"), If("a", 1, then_ops=(W("F2", 1),))),
        (R("a", "F2"), If("a", 1, then_ops=(W("F3", 1),))),
        (R("a", "F3"), If("a", 1, then_ops=(W("F4", 1),))),
        (R("a", "F4"), R("d", "D")),
    ),
    forbidden=(outcome(T4_a=1, T4_d=0),),
    allowed=(outcome(T4_a=1, T4_d=1), outcome(T4_a=0, T4_d=0)),
    description="message passing relayed through three conditional "
                "forwarders: F4=1 implies D=1 on x86",
)

#: Store buffering closed into a five-thread ring: thread i writes Xi
#: then reads X(i+1 mod 5).  The all-zero outcome stays allowed under
#: TSO (every read overtakes the neighbouring write).
SB5_RING = LitmusTest(
    program=x86(
        "SB5-ring",
        (W("X0", 1), R("a", "X1")),
        (W("X1", 1), R("a", "X2")),
        (W("X2", 1), R("a", "X3")),
        (W("X3", 1), R("a", "X4")),
        (W("X4", 1), R("a", "X0")),
    ),
    allowed=(outcome(T0_a=0, T1_a=0, T2_a=0, T3_a=0, T4_a=0),),
    description="five-thread SB ring: all reads may miss all writes "
                "under TSO",
)

#: Four byte-identical writer threads (W X; W Y) against one reader
#: doing back-to-back reads of X then of Y.  Naive size is
#: 5^4 rf choices x (4!)^2 co orders = 360 000 candidates; symmetry
#: (4! orbits) plus coherence classes bring the reduced search down
#: three orders of magnitude.  CoRR forbids the X reads going backwards.
W4_2RR = LitmusTest(
    program=x86(
        "W4+2RR",
        (W("X", 1), W("Y", 1)),
        (W("X", 1), W("Y", 1)),
        (W("X", 1), W("Y", 1)),
        (W("X", 1), W("Y", 1)),
        (R("a", "X"), R("b", "X"), R("c", "Y"), R("d", "Y")),
    ),
    forbidden=(outcome(T4_a=1, T4_b=0),),
    allowed=(outcome(T4_a=0, T4_b=1),),
    description="four identical writers vs one double-reading reader: "
                "coherence forbids reading X=1 then X=0",
)

#: Five byte-identical writer threads against a single (R X; R Y)
#: reader.  36 rf choices x (5!)^2 forced-free co orders = 518 400
#: naive candidates — past the verifier's default large-corpus limit,
#: so the naive and plain staged paths are limit-capped while the
#: reduced search materializes a few dozen witnesses.
W5_RR = LitmusTest(
    program=x86(
        "W5+RR",
        (W("X", 1), W("Y", 1)),
        (W("X", 1), W("Y", 1)),
        (W("X", 1), W("Y", 1)),
        (W("X", 1), W("Y", 1)),
        (W("X", 1), W("Y", 1)),
        (R("a", "X"), R("b", "Y")),
    ),
    forbidden=(),
    allowed=(outcome(T5_a=1, T5_b=0), outcome(T5_a=0, T5_b=1)),
    description="five identical writers vs one reader: 518k naive "
                "candidates, the reduction's headline program",
)

FIVE_THREAD_CORPUS: tuple[LitmusTest, ...] = (
    IRIW5,
    CAS5,
    MP_CHAIN5,
    SB5_RING,
    W4_2RR,
    W5_RR,
)

LARGE_TESTS = {t.name: t for t in FIVE_THREAD_CORPUS}


def verify_registry() -> dict[str, LitmusTest]:
    """Every litmus test the sharded verifier can address by name:
    the classic corpus plus the large 5-thread fixtures."""
    merged = dict(ALL_TESTS)
    merged.update(LARGE_TESTS)
    return merged
