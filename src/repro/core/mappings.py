"""Mapping schemes between x86, TCG IR, and Arm litmus programs.

These are the op-level counterparts of the translation rules the DBT
implements, used by the verifier to check Theorem 1:

* :func:`qemu_x86_to_tcg` / :func:`qemu_tcg_to_arm` — QEMU's original
  scheme (Figure 2): leading ``Frr``/``Fmw`` fences, RMWs emulated by a
  helper call whose ordering comes from a GCC ``__atomic`` builtin
  (``ldaxr/stlxr`` with GCC 9, ``casal`` with GCC 10 — Section 3.1).
* :func:`risotto_x86_to_tcg` / :func:`risotto_tcg_to_arm` — the paper's
  verified scheme (Figure 7): *trailing* ``Frm`` after loads, *leading*
  ``Fww`` before stores, RMW as a native TCG RMW lowered to either
  ``RMW1_AL`` or ``DMBFF; RMW2; DMBFF``.
* :func:`nofences_x86_to_tcg` — the incorrect performance oracle used in
  the evaluation (drops every ordering).
* :func:`armcats_intended` — the direct x86→Arm mapping the Arm-Cats
  paper implies (Figure 3: ``ldapr``/``stlr``/``casal``), which
  Section 3.3 shows is broken under the original Arm model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import MappingError
from .events import Arch, Fence, Mode, RmwFlavor
from .program import FenceOp, If, Load, Op, Program, Rmw, Store

OpMapper = Callable[[Op], tuple[Op, ...]]


@dataclass(frozen=True)
class OpMapping:
    """A per-op rewriting from one program level to another."""

    name: str
    src_arch: Arch
    tgt_arch: Arch
    map_op: OpMapper

    def apply(self, program: Program) -> Program:
        """Translate a whole program, recursing into conditionals."""
        if program.arch is not self.src_arch:
            raise MappingError(
                f"{self.name}: expected {self.src_arch.value} program, "
                f"got {program.arch.value}"
            )
        threads = tuple(
            self._map_ops(ops) for ops in program.threads
        )
        return program.with_threads(
            threads, arch=self.tgt_arch, suffix=f"→{self.name}"
        )

    def _map_ops(self, ops: tuple[Op, ...]) -> tuple[Op, ...]:
        out: list[Op] = []
        for op in ops:
            if isinstance(op, If):
                out.append(If(
                    reg=op.reg,
                    value=op.value,
                    then_ops=self._map_ops(tuple(op.then_ops)),
                    else_ops=self._map_ops(tuple(op.else_ops)),
                ))
            else:
                out.extend(self.map_op(op))
        return tuple(out)

    def then(self, other: "OpMapping") -> "OpMapping":
        """Compose two mappings (this one first)."""
        if self.tgt_arch is not other.src_arch:
            raise MappingError(
                f"cannot compose {self.name} ({self.tgt_arch.value}) with "
                f"{other.name} ({other.src_arch.value})"
            )

        def composed(op: Op) -> tuple[Op, ...]:
            result: list[Op] = []
            for mid in self.map_op(op):
                result.extend(other.map_op(mid))
            return tuple(result)

        return OpMapping(
            name=f"{self.name}+{other.name}",
            src_arch=self.src_arch,
            tgt_arch=other.tgt_arch,
            map_op=composed,
        )


# ----------------------------------------------------------------------
# TCG fence lowering to Arm (shared by QEMU's and Risotto's backends)
# ----------------------------------------------------------------------
#: Ordered access-pair classes guaranteed by each Arm fence.
_DMBLD_PAIRS = {("r", "r"), ("r", "w")}
_DMBST_PAIRS = {("w", "w")}

#: What access-pair classes each TCG fence must order.
_TCG_FENCE_PAIRS: dict[Fence, set[tuple[str, str]]] = {
    Fence.FRR: {("r", "r")},
    Fence.FRW: {("r", "w")},
    Fence.FRM: {("r", "r"), ("r", "w")},
    Fence.FWR: {("w", "r")},
    Fence.FWW: {("w", "w")},
    Fence.FWM: {("w", "r"), ("w", "w")},
    Fence.FMR: {("r", "r"), ("w", "r")},
    Fence.FMW: {("r", "w"), ("w", "w")},
    Fence.FMM: {("r", "r"), ("r", "w"), ("w", "r"), ("w", "w")},
    Fence.FSC: {("r", "r"), ("r", "w"), ("w", "r"), ("w", "w")},
}


def lower_tcg_fence(kind: Fence) -> tuple[Op, ...]:
    """Lower one TCG fence to the weakest sufficient Arm fence.

    ``Frr``/``Frw``/``Frm`` become ``DMBLD``; ``Fww`` becomes ``DMBST``;
    everything ordering a write-before-read pair needs ``DMBFF``.
    ``Facq``/``Frel`` are free on Arm (Figure 7b).
    """
    if kind in (Fence.FACQ, Fence.FREL):
        return ()
    pairs = _TCG_FENCE_PAIRS.get(kind)
    if pairs is None:
        raise MappingError(f"not a TCG fence: {kind}")
    if pairs <= _DMBLD_PAIRS:
        return (FenceOp(Fence.DMBLD),)
    if pairs <= _DMBST_PAIRS:
        return (FenceOp(Fence.DMBST),)
    return (FenceOp(Fence.DMBFF),)


# ----------------------------------------------------------------------
# x86 → TCG IR
# ----------------------------------------------------------------------
def _qemu_x86_op(op: Op) -> tuple[Op, ...]:
    if isinstance(op, Load):
        # Fmr demoted to Frr because x86 allows store→load reordering
        # (Section 3.1).
        return (FenceOp(Fence.FRR), op)
    if isinstance(op, Store):
        return (FenceOp(Fence.FMW), op)
    if isinstance(op, Rmw):
        # Helper-call emulation; the TCG-level event is still an SC RMW,
        # the brokenness appears in the helper's Arm lowering.
        return (Rmw(op.loc, op.expect, op.new, RmwFlavor.TCG, out=op.out),)
    if isinstance(op, FenceOp):
        if op.kind is Fence.MFENCE:
            return (FenceOp(Fence.FSC),)
        raise MappingError(f"unexpected x86 fence {op.kind}")
    raise MappingError(f"cannot map x86 op {op!r}")


def _risotto_x86_op(op: Op) -> tuple[Op, ...]:
    if isinstance(op, Load):
        return (op, FenceOp(Fence.FRM))       # ld; Frm  (Figure 7a)
    if isinstance(op, Store):
        return (FenceOp(Fence.FWW), op)       # Fww; st
    if isinstance(op, Rmw):
        return (Rmw(op.loc, op.expect, op.new, RmwFlavor.TCG, out=op.out),)
    if isinstance(op, FenceOp):
        if op.kind is Fence.MFENCE:
            return (FenceOp(Fence.FSC),)
        raise MappingError(f"unexpected x86 fence {op.kind}")
    raise MappingError(f"cannot map x86 op {op!r}")


def _nofences_x86_op(op: Op) -> tuple[Op, ...]:
    if isinstance(op, (Load, Store)):
        return (op,)
    if isinstance(op, Rmw):
        return (Rmw(op.loc, op.expect, op.new, RmwFlavor.TCG, out=op.out),)
    if isinstance(op, FenceOp):
        return ()
    raise MappingError(f"cannot map x86 op {op!r}")


qemu_x86_to_tcg = OpMapping(
    "qemu-x86-to-tcg", Arch.X86, Arch.TCG, _qemu_x86_op)
risotto_x86_to_tcg = OpMapping(
    "risotto-x86-to-tcg", Arch.X86, Arch.TCG, _risotto_x86_op)
nofences_x86_to_tcg = OpMapping(
    "nofences-x86-to-tcg", Arch.X86, Arch.TCG, _nofences_x86_op)


# ----------------------------------------------------------------------
# TCG IR → Arm
# ----------------------------------------------------------------------
def _tcg_to_arm_op(op: Op, rmw_lowering: str) -> tuple[Op, ...]:
    if isinstance(op, Load):
        return (op,)
    if isinstance(op, Store):
        return (op,)
    if isinstance(op, FenceOp):
        return lower_tcg_fence(op.kind)
    if isinstance(op, Rmw):
        if op.flavor is not RmwFlavor.TCG:
            raise MappingError(f"TCG program holds non-TCG RMW {op!r}")
        if rmw_lowering == "rmw1al":
            return (Rmw(op.loc, op.expect, op.new, RmwFlavor.AMO,
                        acq=True, rel=True, out=op.out),)
        if rmw_lowering == "rmw2ff":
            return (
                FenceOp(Fence.DMBFF),
                Rmw(op.loc, op.expect, op.new, RmwFlavor.LXSX, out=op.out),
                FenceOp(Fence.DMBFF),
            )
        if rmw_lowering == "helper-gcc9":
            # QEMU helper via GCC 9 __atomic builtin: ldaxr/stlxr pair,
            # no surrounding full fences.
            return (Rmw(op.loc, op.expect, op.new, RmwFlavor.LXSX,
                        acq=True, rel=True, out=op.out),)
        if rmw_lowering == "helper-gcc10":
            # QEMU helper via GCC 10 __atomic builtin: casal.
            return (Rmw(op.loc, op.expect, op.new, RmwFlavor.AMO,
                        acq=True, rel=True, out=op.out),)
        raise MappingError(f"unknown RMW lowering {rmw_lowering!r}")
    raise MappingError(f"cannot map TCG op {op!r}")


def tcg_to_arm(rmw_lowering: str, name: str) -> OpMapping:
    return OpMapping(
        name, Arch.TCG, Arch.ARM,
        lambda op: _tcg_to_arm_op(op, rmw_lowering),
    )


#: QEMU's backend, by GCC version used to build the helper (§3.1).
qemu_tcg_to_arm_gcc9 = tcg_to_arm("helper-gcc9", "qemu-tcg-to-arm-gcc9")
qemu_tcg_to_arm_gcc10 = tcg_to_arm("helper-gcc10", "qemu-tcg-to-arm-gcc10")

#: Risotto's backend, with its two verified RMW lowerings (Figure 7b).
risotto_tcg_to_arm_rmw1 = tcg_to_arm("rmw1al", "risotto-tcg-to-arm-rmw1al")
risotto_tcg_to_arm_rmw2 = tcg_to_arm("rmw2ff", "risotto-tcg-to-arm-rmw2ff")


# ----------------------------------------------------------------------
# End-to-end compositions and the Arm-Cats direct mapping
# ----------------------------------------------------------------------
qemu_x86_to_arm_gcc9 = qemu_x86_to_tcg.then(qemu_tcg_to_arm_gcc9)
qemu_x86_to_arm_gcc10 = qemu_x86_to_tcg.then(qemu_tcg_to_arm_gcc10)
risotto_x86_to_arm_rmw1 = risotto_x86_to_tcg.then(risotto_tcg_to_arm_rmw1)
risotto_x86_to_arm_rmw2 = risotto_x86_to_tcg.then(risotto_tcg_to_arm_rmw2)
nofences_x86_to_arm = nofences_x86_to_tcg.then(risotto_tcg_to_arm_rmw1)


def _armcats_intended_op(op: Op) -> tuple[Op, ...]:
    if isinstance(op, Load):
        return (Load(op.reg, op.loc, mode=Mode.ACQ_PC),)   # LDRQ (ldapr)
    if isinstance(op, Store):
        return (Store(op.loc, op.value, mode=Mode.REL),)   # STRL (stlr)
    if isinstance(op, Rmw):
        return (Rmw(op.loc, op.expect, op.new, RmwFlavor.AMO,
                    acq=True, rel=True, out=op.out),)
    if isinstance(op, FenceOp):
        if op.kind is Fence.MFENCE:
            return (FenceOp(Fence.DMBFF),)
        raise MappingError(f"unexpected x86 fence {op.kind}")
    raise MappingError(f"cannot map x86 op {op!r}")


armcats_intended = OpMapping(
    "armcats-intended", Arch.X86, Arch.ARM, _armcats_intended_op)


#: Mapping registry for reporting and table generation.
ALL_MAPPINGS: dict[str, OpMapping] = {
    m.name: m for m in (
        qemu_x86_to_tcg,
        risotto_x86_to_tcg,
        nofences_x86_to_tcg,
        qemu_tcg_to_arm_gcc9,
        qemu_tcg_to_arm_gcc10,
        risotto_tcg_to_arm_rmw1,
        risotto_tcg_to_arm_rmw2,
        qemu_x86_to_arm_gcc9,
        qemu_x86_to_arm_gcc10,
        risotto_x86_to_arm_rmw1,
        risotto_x86_to_arm_rmw2,
        nofences_x86_to_arm,
        armcats_intended,
    )
}
