"""Consistency axioms shared by all three memory models.

Section 5.2 ("Common features"): both x86 and Arm — and the proposed
TCG IR model — enforce per-location coherence (sc-per-loc) and RMW
atomicity.  These predicates operate on candidate executions.
"""

from __future__ import annotations

from .execution import Execution
from .relations import Rel


def sc_per_loc(ex: Execution) -> bool:
    """Coherence: ``(po|loc ∪ rf ∪ co ∪ fr)+`` is irreflexive."""
    rel = ex.po_loc | ex.rf | ex.co | ex.fr
    return rel.is_acyclic()


def atomicity(ex: Execution) -> bool:
    """No write intervenes inside a successful RMW:
    ``rmw ∩ (fre ; coe) = ∅``."""
    violation = ex.rmw & (ex.fre @ ex.coe)
    return not violation


def rf_well_formed(ex: Execution) -> bool:
    """Sanity: every read has exactly one rf source with matching
    location and value.  The enumerator guarantees this; models assert
    it cheaply so hand-built executions are caught."""
    seen: dict[int, int] = {}
    for src, dst in ex.rf.pairs:
        if dst in seen:
            return False
        seen[dst] = src
        wsrc, rdst = ex.events[src], ex.events[dst]
        if not wsrc.is_write() or not rdst.is_read():
            return False
        if wsrc.loc != rdst.loc or wsrc.val != rdst.val:
            return False
    return set(seen) == set(ex.reads)


def co_well_formed(ex: Execution) -> bool:
    """Sanity: co totally orders writes per location, init first."""
    by_loc: dict[str, list[int]] = {}
    for eid in ex.writes:
        by_loc.setdefault(ex.events[eid].loc, []).append(eid)
    for writes in by_loc.values():
        per_loc = Rel(
            (a, b) for a, b in ex.co.pairs
            if a in writes and b in writes
        )
        if not per_loc.is_total_on(writes):
            return False
        for a, b in ex.co.pairs:
            if ex.events[b].is_init:
                return False
    return True
