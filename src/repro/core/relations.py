"""Finite binary-relation algebra used by the axiomatic memory models.

The paper (and the herd 'cat' language it builds on) expresses memory
models as algebraic combinations of binary relations over events:
unions, compositions, inverses, transitive closures, and acyclicity
checks.  This module implements that algebra for *finite* relations over
hashable elements (we use integer event ids).

The sizes involved are litmus-test sized (tens of events), so the
implementation favours clarity over asymptotic cleverness: relations are
frozen sets of pairs and the transitive closure is a simple worklist
saturation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import FrozenSet, Tuple

Pair = Tuple[int, int]


class Rel:
    """An immutable binary relation over integer event ids.

    Supports the operators used in 'cat'-style model definitions:

    * ``a | b`` — union
    * ``a & b`` — intersection
    * ``a - b`` — difference
    * ``a @ b`` — sequential composition (``a ; b`` in cat syntax)
    * ``a.inv()`` — inverse (``a^-1``)
    * ``a.plus()`` — transitive closure (``a^+``)
    * ``a.is_irreflexive()`` / ``a.is_acyclic()``
    """

    __slots__ = ("pairs",)

    def __init__(self, pairs: Iterable[Pair] = ()):
        self.pairs: FrozenSet[Pair] = frozenset(pairs)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "Rel":
        return _EMPTY

    @staticmethod
    def identity(elements: Iterable[int]) -> "Rel":
        """``[A]`` in cat notation: the identity relation on a set."""
        return Rel((e, e) for e in elements)

    @staticmethod
    def cross(left: Iterable[int], right: Iterable[int]) -> "Rel":
        """``A * B``: full cross product of two sets."""
        right_list = list(right)
        return Rel((a, b) for a in left for b in right_list)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __or__(self, other: "Rel") -> "Rel":
        return Rel(self.pairs | other.pairs)

    def __and__(self, other: "Rel") -> "Rel":
        return Rel(self.pairs & other.pairs)

    def __sub__(self, other: "Rel") -> "Rel":
        return Rel(self.pairs - other.pairs)

    def __matmul__(self, other: "Rel") -> "Rel":
        """Sequential composition ``self ; other``."""
        by_src: dict[int, list[int]] = {}
        for a, b in other.pairs:
            by_src.setdefault(a, []).append(b)
        out: set[Pair] = set()
        for a, b in self.pairs:
            for c in by_src.get(b, ()):
                out.add((a, c))
        return Rel(out)

    def inv(self) -> "Rel":
        return Rel((b, a) for a, b in self.pairs)

    def plus(self) -> "Rel":
        """Transitive closure via worklist saturation."""
        succ: dict[int, set[int]] = {}
        for a, b in self.pairs:
            succ.setdefault(a, set()).add(b)
        closure: set[Pair] = set(self.pairs)
        frontier = list(self.pairs)
        while frontier:
            a, b = frontier.pop()
            for c in succ.get(b, ()):
                if (a, c) not in closure:
                    closure.add((a, c))
                    frontier.append((a, c))
                    succ.setdefault(a, set()).add(c)
        return Rel(closure)

    def opt(self, elements: Iterable[int]) -> "Rel":
        """Reflexive closure over the given carrier set (``r?``)."""
        return self | Rel.identity(elements)

    # ------------------------------------------------------------------
    # Restriction and projection
    # ------------------------------------------------------------------
    def restrict(self, domain: Iterable[int] | None = None,
                 codomain: Iterable[int] | None = None) -> "Rel":
        """Keep only pairs whose endpoints lie in the given sets."""
        dom = set(domain) if domain is not None else None
        cod = set(codomain) if codomain is not None else None
        return Rel(
            (a, b)
            for a, b in self.pairs
            if (dom is None or a in dom) and (cod is None or b in cod)
        )

    def domain(self) -> FrozenSet[int]:
        """``dom(S)``: the set of sources."""
        return frozenset(a for a, _ in self.pairs)

    def codomain(self) -> FrozenSet[int]:
        """``codom(S)``: the set of targets."""
        return frozenset(b for _, b in self.pairs)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def is_irreflexive(self) -> bool:
        return all(a != b for a, b in self.pairs)

    def is_acyclic(self) -> bool:
        """True when the transitive closure is irreflexive.

        Implemented as a DFS cycle check rather than materializing the
        closure, since acyclicity is the hot predicate in consistency
        checking.
        """
        succ: dict[int, list[int]] = {}
        nodes: set[int] = set()
        for a, b in self.pairs:
            succ.setdefault(a, []).append(b)
            nodes.add(a)
            nodes.add(b)
        WHITE, GREY, BLACK = 0, 1, 2
        color = {n: WHITE for n in nodes}
        for root in nodes:
            if color[root] != WHITE:
                continue
            stack: list[tuple[int, Iterator[int]]] = [
                (root, iter(succ.get(root, ())))
            ]
            color[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GREY:
                        return False
                    if color[nxt] == WHITE:
                        color[nxt] = GREY
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    def is_total_on(self, elements: Iterable[int]) -> bool:
        """True when the relation totally orders ``elements``."""
        elems = list(elements)
        for i, a in enumerate(elems):
            for b in elems[i + 1:]:
                if (a, b) not in self.pairs and (b, a) not in self.pairs:
                    return False
        return self.is_acyclic()

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __contains__(self, pair: Pair) -> bool:
        return pair in self.pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(sorted(self.pairs))

    def __len__(self) -> int:
        return len(self.pairs)

    def __bool__(self) -> bool:
        return bool(self.pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rel):
            return NotImplemented
        return self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}->{b}" for a, b in sorted(self.pairs))
        return f"Rel({{{inner}}})"


_EMPTY = Rel(())


def union(rels: Iterable[Rel]) -> Rel:
    """N-ary union, convenient when a model has many clauses."""
    pairs: set[Pair] = set()
    for rel in rels:
        pairs |= rel.pairs
    return Rel(pairs)


def total_order_extensions(elements: list[int], first: int | None = None):
    """Yield every strict total order of ``elements`` as a Rel.

    When ``first`` is given it is pinned to the front (used for the
    initialization write, which is co-before every other write).
    """
    import itertools

    rest = [e for e in elements if e != first] if first is not None \
        else list(elements)
    for perm in itertools.permutations(rest):
        order = ([first] if first is not None else []) + list(perm)
        yield Rel(
            (order[i], order[j])
            for i in range(len(order))
            for j in range(i + 1, len(order))
        )


def linear_extensions(elements: list[int], partial: Iterable[Pair]):
    """Yield every strict total order of ``elements`` extending
    ``partial``, as a Rel (same shape as ``total_order_extensions``).

    ``partial`` is any set of (before, after) pairs over ``elements``;
    pairs mentioning other ids are ignored.  Enumeration is a
    backtracking topological sort, so each extension is produced exactly
    once and a cyclic ``partial`` yields nothing.  With no pairs this
    degenerates to all permutations; with a total order it yields the
    single compatible permutation — the staged enumerator's common case,
    where the forced coherence edges already pin every write.
    """
    elems = list(elements)
    members = set(elems)
    succ: dict[int, list[int]] = {e: [] for e in elems}
    indeg: dict[int, int] = {e: 0 for e in elems}
    for a, b in partial:
        if a in members and b in members and a != b:
            succ[a].append(b)
            indeg[b] += 1

    order: list[int] = []

    def rec():
        if len(order) == len(elems):
            yield Rel(
                (order[i], order[j])
                for i in range(len(order))
                for j in range(i + 1, len(order))
            )
            return
        for e in elems:
            if indeg[e] == 0:
                indeg[e] = -1  # claimed
                for s in succ[e]:
                    indeg[s] -= 1
                order.append(e)
                yield from rec()
                order.pop()
                for s in succ[e]:
                    indeg[s] += 1
                indeg[e] = 0

    yield from rec()


def linear_extensions_with_last(elements: list[int],
                                partial: Iterable[Pair], last: int):
    """Linear extensions of ``partial`` that place ``last`` at the end.

    Equivalent to :func:`linear_extensions` with the extra constraints
    ``(e, last)`` for every other element — so a ``last`` that the
    partial order already forces before some element yields nothing.
    The coherence-class search uses this to ask "is there a total co
    where *this* write wins the location?" without filtering the full
    extension set.
    """
    members = set(elements)
    if last not in members:
        return
    extra = [(e, last) for e in elements if e != last]
    yield from linear_extensions(
        elements, list(partial) + extra)
