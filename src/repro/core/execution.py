"""Execution graphs: events plus po/rf/co and derived relations.

This realizes Section 5.1 of the paper: an execution
``X = <E, po, rf, co>`` with the derived relations ``fr``, the external
variants ``rfe``/``coe``/``fre``, the ``rmw`` pairing relation, and the
behaviour function ``Behav`` (final values of all memory locations).

Dependency relations (``data``, ``addr``, ``ctrl``) are carried along
because the Arm model orders some dependent accesses (``dob``); the x86
and TCG models ignore them — which is exactly why TCG may legally erase
false dependencies (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import FrozenSet

from .events import Event, Fence, Mode, RmwFlavor
from .relations import Rel

Behavior = FrozenSet[tuple[str, int]]


@dataclass
class Execution:
    """An immutable candidate execution.

    The relations are over event ids; ``events`` maps ids to
    :class:`~repro.core.events.Event` objects.  Derived relations are
    cached: executions are never mutated after construction.
    """

    events: dict[int, Event]
    po: Rel
    rf: Rel
    co: Rel
    data: Rel = field(default_factory=Rel)
    addr: Rel = field(default_factory=Rel)
    ctrl: Rel = field(default_factory=Rel)
    #: Final register values, as ("T<tid>:<reg>", value) pairs.  These
    #: stand in for the paper's "augment the program with additional
    #: shared variables to observe thread-local values" device, without
    #: polluting the event graph.
    regs: Behavior = frozenset()

    # ------------------------------------------------------------------
    # Event classes
    # ------------------------------------------------------------------
    @cached_property
    def all_ids(self) -> frozenset[int]:
        return frozenset(self.events)

    @cached_property
    def reads(self) -> frozenset[int]:
        return frozenset(e for e, ev in self.events.items() if ev.is_read())

    @cached_property
    def writes(self) -> frozenset[int]:
        return frozenset(e for e, ev in self.events.items() if ev.is_write())

    @cached_property
    def memory_events(self) -> frozenset[int]:
        return self.reads | self.writes

    def fences(self, *kinds: Fence) -> frozenset[int]:
        """Event ids of fences of any of the given kinds."""
        wanted = set(kinds)
        return frozenset(
            e for e, ev in self.events.items()
            if ev.is_fence() and ev.fence in wanted
        )

    def with_mode(self, kind: str, mode: Mode) -> frozenset[int]:
        """Memory events of ``kind`` ("R"/"W") carrying annotation ``mode``."""
        return frozenset(
            e for e, ev in self.events.items()
            if ev.kind == kind and ev.mode == mode
        )

    @cached_property
    def acquires(self) -> frozenset[int]:
        """Arm ``A`` events (acquire reads)."""
        return self.with_mode("R", Mode.ACQ)

    @cached_property
    def acquire_pcs(self) -> frozenset[int]:
        """Arm ``Q`` events (acquirePC reads, e.g. from ``ldapr``)."""
        return self.with_mode("R", Mode.ACQ_PC)

    @cached_property
    def releases(self) -> frozenset[int]:
        """Arm ``L`` events (release writes)."""
        return self.with_mode("W", Mode.REL)

    @cached_property
    def sc_reads(self) -> frozenset[int]:
        """TCG ``Rsc`` events."""
        return self.with_mode("R", Mode.SC)

    @cached_property
    def sc_writes(self) -> frozenset[int]:
        """TCG ``Wsc`` events."""
        return self.with_mode("W", Mode.SC)

    # ------------------------------------------------------------------
    # RMW relations
    # ------------------------------------------------------------------
    @cached_property
    def rmw(self) -> Rel:
        """Pairs of rmw-related (read, write) events of successful RMWs."""
        pairs = []
        for eid, ev in self.events.items():
            if ev.is_read() and ev.rmw_partner is not None:
                pairs.append((eid, ev.rmw_partner))
        return Rel(pairs)

    def rmw_of_flavor(self, *flavors: RmwFlavor) -> Rel:
        wanted = set(flavors)
        return Rel(
            (r, w) for r, w in self.rmw.pairs
            if self.events[r].rmw_flavor in wanted
        )

    @cached_property
    def amo(self) -> Rel:
        """Arm single-instruction RMW pairs (``RMW1``)."""
        return self.rmw_of_flavor(RmwFlavor.AMO)

    @cached_property
    def lxsx(self) -> Rel:
        """Arm load/store-exclusive RMW pairs (``RMW2``)."""
        return self.rmw_of_flavor(RmwFlavor.LXSX)

    # ------------------------------------------------------------------
    # Derived communication relations
    # ------------------------------------------------------------------
    @cached_property
    def fr(self) -> Rel:
        """from-read: ``rf^-1 ; co``."""
        return self.rf.inv() @ self.co

    def _external(self, rel: Rel) -> Rel:
        """Strip same-thread pairs (po-related or init-involving pairs on
        the same thread never occur; externality is cross-thread)."""
        return Rel(
            (a, b) for a, b in rel.pairs
            if self.events[a].tid != self.events[b].tid
        )

    @cached_property
    def rfe(self) -> Rel:
        return self._external(self.rf)

    @cached_property
    def rfi(self) -> Rel:
        return self.rf - self.rfe

    @cached_property
    def coe(self) -> Rel:
        return self._external(self.co)

    @cached_property
    def fre(self) -> Rel:
        return self._external(self.fr)

    @cached_property
    def po_loc(self) -> Rel:
        """po restricted to same-location memory accesses."""
        return Rel(
            (a, b) for a, b in self.po.pairs
            if self.events[a].is_memory() and self.events[b].is_memory()
            and self.events[a].loc == self.events[b].loc
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    @cached_property
    def behavior(self) -> Behavior:
        """Final value of every location: writes with no co-successor."""
        out: dict[str, int] = {}
        co_sources = self.co.domain()
        for eid, ev in self.events.items():
            if ev.is_write() and eid not in co_sources:
                assert ev.loc is not None and ev.val is not None
                out[ev.loc] = ev.val
        return frozenset(out.items())

    @cached_property
    def full_behavior(self) -> Behavior:
        """Memory behaviour plus observed final register values.

        This is the quantity compared by the Theorem-1 verifier: two
        executions "agree" when both the final memory contents and every
        observed register match.
        """
        return self.behavior | self.regs

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def identity(self, ids: frozenset[int] | set[int]) -> Rel:
        """``[A]`` over a subset of this execution's events."""
        return Rel.identity(ids)

    def describe(self) -> str:
        """Multi-line human-readable dump, for verifier witnesses."""
        lines = []
        by_tid: dict[int, list[Event]] = {}
        for ev in self.events.values():
            by_tid.setdefault(ev.tid, []).append(ev)
        for tid in sorted(by_tid):
            evs = sorted(by_tid[tid], key=lambda e: e.idx)
            lines.append(
                f"  T{tid}: " + "; ".join(repr(e) for e in evs)
            )
        lines.append(f"  rf: {sorted(self.rf.pairs)}")
        lines.append(f"  co: {sorted(self.co.pairs)}")
        lines.append(f"  behavior: {dict(sorted(self.behavior))}")
        return "\n".join(lines)
