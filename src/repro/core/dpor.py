"""Source-DPOR-style reduction over the rf/co candidate search.

The staged enumerator of PR 2 walked the *full* rf product and ran the
model precheck once per complete rf assignment — so a doomed choice for
one read was rediscovered under every assignment of the other reads,
and every surviving rf choice still expanded the full linear-extension
product of coherence orders.  This module replaces that walk with the
machinery real stateless model checkers use:

* :class:`RfSearch` — a DFS over rf assignments in most-constrained-
  first order with (a) incremental forced-coherence closures per
  location, (b) RMW source-disjointness cuts, (c) the model's monotone
  rf-stage precheck on every *partial* assignment, so an inconsistent
  prefix kills its whole subtree, and (d) sleep-set memoization: a
  rejected (read, source) pair is remembered with the exact assignment
  *footprint* that doomed it, and skipped without re-running closure or
  precheck whenever that footprint recurs.  The search is exact — it
  removes only candidates no consistent execution can extend — so
  :func:`~repro.core.enumerate.enumerate_consistent` keeps its full
  execution-set semantics on top of it.

* :func:`reduced_behaviors` — the representative mode used by
  :func:`~repro.core.enumerate.behaviors`: one canonical trace combo
  per orbit of identical-thread permutations (behaviours of the others
  recovered by register renaming), and one coherence *witness* per
  behaviour-distinguishing class of co instead of every linear
  extension.  Executions sharing (combo, rf, per-location final write
  value) have the same ``full_behavior``, so the class search explores
  candidates until the first consistent witness and moves on — exact
  for behaviour *sets*, which is all Theorem-1 checking consumes.

Soundness notes (each prune, in one line):

* prefix precheck — ``rf_stage_consistent`` is monotone in rf and co
  (see :class:`~repro.core.models.base.MemoryModel`); extending an
  assignment only grows rf and the forced co edges, so a violated
  axiom stays violated.
* sleep sets — a rejection's footprint is the set of (read, source)
  assignments it depended on (same-location assignments for coherence
  cycles, the whole prefix for precheck failures); any later state
  whose assignment set contains the footprint reproduces a superset of
  the offending edges.
* symmetry — identical thread bodies yield identical trace lists, and
  relabeling identical threads is an isomorphism of candidate
  executions for tid-agnostic models; behaviours follow by renaming
  the ``T<tid>:<reg>`` register keys (memory keys are invariant).
* coherence classes — the final value of a location under a total co
  is its co-last write, which must be maximal in the forced partial
  order; grouping maximal writes by value partitions the co extensions
  into behaviour-equivalent classes.
"""

from __future__ import annotations

import itertools
import math

from ..errors import ModelError
from ..obs.trace import get_tracer
from .execution import Execution
from .program import Program
from .relations import Rel, linear_extensions_with_last
from . import enumerate as enumerate_mod
from .enumerate import (
    DEFAULT_CANDIDATE_LIMIT,
    EnumerationStats,
    _feasible_rf_options,
    _forced_co_base,
    _materialize_combo,
    _naive_size,
    _trace_sets,
)

#: Rejection footprints memoized per (read, source) key.  A small cap
#: keeps the memo O(reads × sources): the first few footprints catch
#: the recurring rejections, the long tail is cheaper to re-derive.
SLEEP_FOOTPRINT_CAP = 8


class RfSearch:
    """DFS over rf assignments for one combo graph.

    Iterating yields ``(rf_choice, forced)`` pairs for every assignment
    no monotone argument could reject: ``rf_choice`` is aligned with
    ``graph.reads`` (whatever order the DFS explored), ``forced`` maps
    each location to the transitive closure of its forced coherence
    edges under that assignment.
    """

    def __init__(self, graph, rf_options: list[list[int]], model,
                 stats: EnumerationStats):
        self.graph = graph
        self.options = rf_options
        self.model = model
        self.stats = stats
        self.reads = graph.reads
        # Most-constrained-first: reads with few sources sit near the
        # root, so each rejection cuts the biggest possible subtree.
        # The eid tiebreak keeps the walk (and every counter)
        # deterministic.
        self.order = sorted(
            range(len(self.reads)),
            key=lambda i: (len(rf_options[i]), self.reads[i].eid))
        self.edges = {loc: set(pairs)
                      for loc, pairs in _forced_co_base(graph).items()}
        self.closed = {loc: Rel(pairs).plus()
                       for loc, pairs in self.edges.items()}
        self.choice: dict[int, int] = {}       # read eid -> source eid
        self.rmw_used: set[int] = set()
        self.assigned: set[tuple[int, int]] = set()
        self.by_loc_assigned = {loc: set() for loc in self.edges}
        self.sleep: dict[tuple[int, int], list[frozenset]] = {}

    def __iter__(self):
        yield from self._rec(0)

    # ------------------------------------------------------------------
    def _rec(self, depth: int):
        if depth == len(self.order):
            yield (tuple(self.choice[rd.eid] for rd in self.reads),
                   dict(self.closed))
            return
        i = self.order[depth]
        rd = self.reads[i]
        loc = rd.loc
        is_rmw = rd.rmw_partner is not None
        stats = self.stats
        last_depth = depth + 1 == len(self.order)
        for src in self.options[i]:
            if is_rmw and src in self.rmw_used:
                stats.rf_rejected_rmw += 1
                continue
            key = (rd.eid, src)
            if self._asleep(key):
                stats.rf_sleep_skips += 1
                continue
            new_edges = self._forced_edges(rd, src) - self.edges[loc]
            self.edges[loc] |= new_edges
            closure = Rel(self.edges[loc]).plus()
            if not closure.is_irreflexive():
                stats.rf_rejected_coherence += 1
                # Only same-location assignments contribute edges at
                # ``loc``, so they are the whole footprint of the cycle.
                self._remember(key,
                               frozenset(self.by_loc_assigned[loc]))
                self.edges[loc] -= new_edges
                continue
            prev_closed = self.closed[loc]
            self.closed[loc] = closure
            self.choice[rd.eid] = src
            self.assigned.add(key)
            self.by_loc_assigned[loc].add(key)
            if is_rmw:
                self.rmw_used.add(src)
            if self._precheck():
                yield from self._rec(depth + 1)
            else:
                stats.rf_rejected_precheck += 1
                if not last_depth:
                    stats.rf_prefix_rejected += 1
                self._remember(key, frozenset(self.assigned - {key}))
            if is_rmw:
                self.rmw_used.discard(src)
            self.by_loc_assigned[loc].discard(key)
            self.assigned.discard(key)
            del self.choice[rd.eid]
            self.closed[loc] = prev_closed
            self.edges[loc] -= new_edges

    # ------------------------------------------------------------------
    def _forced_edges(self, rd, src) -> set:
        """Coherence edges forced by ``rd`` observing ``src``: for every
        same-location write V of rd's own thread, ``co(V, src)`` when V
        is po-before rd (else fr(rd,V) cycles with po_loc) and
        ``co(src, V)`` when V is po-after rd (else rf;po_loc;co cycles).
        The po-after clause pins a successful RMW's source immediately
        co-before the pair's own write."""
        out = set()
        for v in self.graph.writes_by_loc[rd.loc]:
            if v.eid == src or v.tid != rd.tid:
                continue
            if v.idx < rd.idx:
                out.add((v.eid, src))
            else:
                out.add((src, v.eid))
        return out

    def _precheck(self) -> bool:
        """The model's monotone precheck on the current partial
        assignment: rf over assigned reads, co the union of per-location
        forced closures."""
        graph = self.graph
        rf = Rel((src, eid) for eid, src in self.choice.items())
        partial_co = Rel(frozenset().union(
            *(rel.pairs for rel in self.closed.values())
        )) if self.closed else Rel()
        ex = Execution(
            events=graph.events, po=graph.po, rf=rf, co=partial_co,
            data=graph.data, ctrl=graph.ctrl, regs=graph.regs,
        )
        return self.model.rf_stage_consistent(ex)

    def _asleep(self, key) -> bool:
        return any(fp <= self.assigned
                   for fp in self.sleep.get(key, ()))

    def _remember(self, key, footprint: frozenset) -> None:
        entries = self.sleep.setdefault(key, [])
        if any(fp <= footprint for fp in entries):
            return  # an existing footprint already covers this state
        if len(entries) < SLEEP_FOOTPRINT_CAP:
            entries.append(footprint)


# ----------------------------------------------------------------------
# Thread symmetry
# ----------------------------------------------------------------------
def thread_symmetry_classes(program: Program) -> tuple[tuple[int, ...],
                                                       ...]:
    """Groups of thread ids with byte-identical op sequences (size > 1
    only — singleton classes admit no reduction)."""
    groups: dict = {}
    for tid, ops in enumerate(program.threads):
        groups.setdefault(ops, []).append(tid)
    return tuple(tuple(tids) for tids in groups.values()
                 if len(tids) > 1)


def _is_canonical(combo_idx: tuple[int, ...], classes) -> bool:
    """A combo is the orbit representative when trace indices are
    non-decreasing within every identity class."""
    for tids in classes:
        for a, b in zip(tids, tids[1:]):
            if combo_idx[a] > combo_idx[b]:
                return False
    return True


def _orbit_size(combo_idx: tuple[int, ...], classes) -> int:
    """Distinct combos reachable by permuting identical threads: the
    multinomial k!/Π(mult!) per class, multiplied over classes."""
    size = 1
    for tids in classes:
        counts: dict[int, int] = {}
        for t in tids:
            counts[combo_idx[t]] = counts.get(combo_idx[t], 0) + 1
        class_size = math.factorial(len(tids))
        for mult in counts.values():
            class_size //= math.factorial(mult)
        size *= class_size
    return size


def _tid_renamings(classes) -> list[dict[int, int]]:
    """Every tid permutation generated by the identity classes (the
    identity mapping included)."""
    per_class = [
        [dict(zip(tids, perm))
         for perm in itertools.permutations(tids)]
        for tids in classes
    ]
    renamings = []
    for parts in itertools.product(*per_class):
        mapping: dict[int, int] = {}
        for part in parts:
            mapping.update(part)
        renamings.append(mapping)
    return renamings or [{}]


def _rename_behavior(beh: frozenset, mapping: dict[int, int]):
    """Rename the ``T<tid>:<reg>`` register keys of one behaviour under
    a tid permutation; memory keys pass through untouched."""
    if not mapping:
        return beh
    renamed = set()
    for key, val in beh:
        tid_part, sep, reg = key.partition(":")
        if sep and tid_part.startswith("T") and tid_part[1:].isdigit():
            tid = int(tid_part[1:])
            if tid in mapping:
                key = f"T{mapping[tid]}:{reg}"
        renamed.add((key, val))
    return frozenset(renamed)


# ----------------------------------------------------------------------
# Representative-mode behaviour enumeration
# ----------------------------------------------------------------------
def reduced_behaviors(program: Program, model,
                      limit: int | None = None,
                      stats: EnumerationStats | None = None) -> frozenset:
    """The behaviour set of ``program`` under ``model`` via the full
    reduction stack: DPOR rf search + thread symmetry + coherence
    classes.  Bit-identical to the naive/staged behaviour sets (the
    differential tests pin this); exponentially fewer candidates
    materialized.

    ``limit`` bounds *materialized* candidates like the other paths;
    models without ``supports_staged`` fall back to the (accounted)
    naive filter.  Counters merge into the module-wide
    :func:`~repro.core.enumerate.enumeration_stats` and ``stats``.
    """
    limit = DEFAULT_CANDIDATE_LIMIT if limit is None else limit
    if not getattr(model, "supports_staged", False):
        return frozenset(
            ex.full_behavior
            for ex in enumerate_mod.enumerate_consistent(
                program, model, limit=limit, stats=stats)
        )
    run = EnumerationStats()
    tracer = get_tracer()
    try:
        with tracer.span("enum.reduced", cat="enum",
                         program=program.name):
            result = _reduced_staged(program, model, limit, run)
    finally:
        if tracer.enabled:
            tracer.counter(
                "enum.stats", combos=run.combos,
                rf_choices=run.rf_choices,
                executions=run.executions_enumerated,
                consistent=run.consistent)
        enumerate_mod._ENUM_STATS.merge(run)
        if stats is not None:
            stats.merge(run)
    return result


def _reduced_staged(program: Program, model, limit: int,
                    stats: EnumerationStats) -> frozenset:
    per_thread, locations = _trace_sets(program)
    classes = thread_symmetry_classes(program)
    renamings = _tid_renamings(classes)
    produced = 0
    behaviors: set = set()

    for combo_idx in itertools.product(
            *(range(len(traces)) for traces in per_thread)):
        if classes and not _is_canonical(combo_idx, classes):
            stats.symmetry_collapsed += 1
            continue
        combo = tuple(per_thread[t][i]
                      for t, i in enumerate(combo_idx))
        graph = _materialize_combo(program, locations, combo)
        stats.combos += 1
        naive = _naive_size(graph)
        orbit = _orbit_size(combo_idx, classes) if classes else 1
        # The whole orbit contributes to the naive denominator — every
        # symmetric image has the same cross-product size.
        stats.candidates_naive += naive * orbit
        if naive == 0:
            continue
        rf_options = _feasible_rf_options(graph, stats)
        if rf_options is None:
            continue
        write_ids = {
            loc: [w.eid for w in writes]
            for loc, writes in graph.writes_by_loc.items()
        }

        for rf_choice, forced in RfSearch(graph, rf_options, model,
                                          stats):
            stats.rf_choices += 1
            rf = Rel(
                (src, rd.eid)
                for src, rd in zip(rf_choice, graph.reads)
            )
            # Per location: forced-order-maximal writes, grouped by the
            # value they would leave behind.  Each cross-location value
            # class is one candidate behaviour; search it for a single
            # consistent witness.
            class_lists = []
            for loc in locations:
                ids = write_ids[loc]
                closed_pairs = forced[loc].pairs
                maximal = [
                    w for w in ids
                    if not any((w, x) in closed_pairs for x in ids)
                ]
                by_val: dict[int, list[int]] = {}
                for w in maximal:
                    by_val.setdefault(graph.events[w].val,
                                      []).append(w)
                class_lists.append(
                    [wids for _, wids in sorted(by_val.items())])

            for class_choice in itertools.product(*class_lists):
                stats.co_classes += 1
                witness = None
                for lasts in itertools.product(*class_choice):
                    exts = [
                        linear_extensions_with_last(
                            write_ids[loc], forced[loc].pairs, last)
                        for loc, last in zip(locations, lasts)
                    ]
                    for co_parts in itertools.product(*exts):
                        produced += 1
                        stats.executions_enumerated += 1
                        if produced > limit:
                            raise ModelError(
                                f"{program.name}: candidate executions "
                                f"exceed limit {limit}"
                            )
                        co = Rel(frozenset().union(
                            *(part.pairs for part in co_parts)
                        )) if co_parts else Rel()
                        ex = Execution(
                            events=graph.events, po=graph.po, rf=rf,
                            co=co, data=graph.data, ctrl=graph.ctrl,
                            regs=graph.regs,
                        )
                        if model.is_consistent(ex):
                            witness = ex
                            break
                    if witness is not None:
                        break
                if witness is None:
                    continue
                stats.consistent += 1
                beh = witness.full_behavior
                for mapping in renamings:
                    behaviors.add(_rename_behavior(beh, mapping))

    return frozenset(behaviors)
