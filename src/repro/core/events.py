"""Events of axiomatic executions.

An execution of a concurrent program is a graph whose nodes are *events*
(Section 5.1 of the paper): reads (R), writes (W) and fences (F),
possibly carrying ordering annotations (acquire ``A``, acquirePC ``Q``,
release ``L``, and the SC annotation carried by TCG RMW events).

The same event vocabulary serves the three languages involved in the
translation pipeline — x86, TCG IR, and Arm — so mapped programs can be
compared event-for-event by the verifier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Arch(enum.Enum):
    """The language a litmus program (and its events) belongs to."""

    X86 = "x86"
    TCG = "tcg"
    ARM = "arm"


class Mode(enum.Enum):
    """Ordering annotation on a memory access event.

    * ``PLAIN`` — ordinary access.
    * ``ACQ`` — Arm acquire (``A``), e.g. the load of ``ldaxr``/``casal``.
    * ``ACQ_PC`` — Arm acquirePC (``Q``), e.g. ``ldapr``.
    * ``REL`` — Arm release (``L``), e.g. ``stlr``/the store of ``casal``.
    * ``SC`` — the SC-annotated events of TCG IR RMW accesses
      (``Rsc``/``Wsc`` in Figure 6).
    """

    PLAIN = "plain"
    ACQ = "acq"
    ACQ_PC = "acqpc"
    REL = "rel"
    SC = "sc"


class Fence(enum.Enum):
    """Fence instruction kinds across the three languages (Figure 1)."""

    # x86
    MFENCE = "MFENCE"
    # TCG IR (Frr orders read-read, Fwm orders write-any, etc.)
    FRR = "Frr"
    FRW = "Frw"
    FRM = "Frm"
    FWW = "Fww"
    FWR = "Fwr"
    FWM = "Fwm"
    FMR = "Fmr"
    FMW = "Fmw"
    FMM = "Fmm"
    FACQ = "Facq"
    FREL = "Frel"
    FSC = "Fsc"
    # Arm
    DMBFF = "DMBFF"
    DMBLD = "DMBLD"
    DMBST = "DMBST"


#: TCG fences, keyed by (predecessor-class, successor-class) where the
#: classes are "r" (reads), "w" (writes), "m" (both).  Used by the TCG
#: model's ``ord`` relation and by the fence-merging correctness rules.
TCG_FENCE_ORDERS: dict[Fence, tuple[str, str]] = {
    Fence.FRR: ("r", "r"),
    Fence.FRW: ("r", "w"),
    Fence.FRM: ("r", "m"),
    Fence.FWW: ("w", "w"),
    Fence.FWR: ("w", "r"),
    Fence.FWM: ("w", "m"),
    Fence.FMR: ("m", "r"),
    Fence.FMW: ("m", "w"),
    Fence.FMM: ("m", "m"),
}


class RmwFlavor(enum.Enum):
    """How an RMW pair was produced, which decides its model treatment.

    * ``X86`` — a ``LOCK``-prefixed x86 RMW; acts as a full fence.
    * ``TCG`` — a TCG IR RMW; generates ``Rsc``/``Wsc`` events.
    * ``AMO`` — an Arm single-instruction RMW (``RMW1``, e.g. ``casal``).
    * ``LXSX`` — an Arm exclusive-pair RMW (``RMW2``).
    """

    X86 = "x86"
    TCG = "tcg"
    AMO = "amo"
    LXSX = "lxsx"


@dataclass
class Event:
    """One node of an execution graph.

    ``eid`` is unique within an execution.  ``tid``/``idx`` give the
    issuing thread and the event's program-order position in it; the
    initialization writes use ``tid == INIT_TID``.
    """

    eid: int
    tid: int
    idx: int
    kind: str  # "R", "W" or "F"
    loc: str | None = None
    val: int | None = None
    fence: Fence | None = None
    mode: Mode = Mode.PLAIN
    rmw_flavor: RmwFlavor | None = None
    #: eid of the paired event of a *successful* RMW (R points to W and
    #: vice versa); None for plain accesses and failed RMWs.
    rmw_partner: int | None = None
    is_init: bool = False
    #: Free-form origin tag (source statement) for diagnostics.
    tag: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    def is_read(self) -> bool:
        return self.kind == "R"

    def is_write(self) -> bool:
        return self.kind == "W"

    def is_fence(self) -> bool:
        return self.kind == "F"

    def is_memory(self) -> bool:
        return self.kind in ("R", "W")

    def __hash__(self) -> int:
        return hash(self.eid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_fence():
            core = self.fence.value if self.fence else "F?"
        else:
            ann = {
                Mode.PLAIN: "",
                Mode.ACQ: "^A",
                Mode.ACQ_PC: "^Q",
                Mode.REL: "^L",
                Mode.SC: "^sc",
            }[self.mode]
            core = f"{self.kind}{ann}({self.loc},{self.val})"
        rmw = f"[{self.rmw_flavor.value}]" if self.rmw_flavor else ""
        return f"e{self.eid}:T{self.tid}:{core}{rmw}"


#: Thread id used for initialization writes.
INIT_TID = -1
