"""Litmus tests: every example from the paper plus a classic corpus.

The x86-level tests drive mapping verification (Theorem 1); the
TCG-level tests (LB-IR, MP-IR, FMR, Figure 9) drive the minimality and
transformation-correctness experiments.

Outcome conventions: an *outcome* is a set of (key, value) pairs where a
key is either a shared location (final value) or ``"T<tid>:<reg>"`` (a
final register).  An outcome "shows up" in a behaviour set when some
behaviour contains all its pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import Arch, Fence, RmwFlavor
from .program import FenceOp, If, Load, Program, Rmw, Store

Outcome = frozenset


def outcome(**kv: int) -> Outcome:
    """Build an outcome; ``T0_a=1`` keys become ``"T0:a"``."""
    return frozenset(
        (key.replace("_", ":", 1) if key.startswith("T") else key, val)
        for key, val in kv.items()
    )


def shows(behaviors: frozenset, out: Outcome) -> bool:
    """True when some behaviour exhibits the outcome."""
    return any(out <= beh for beh in behaviors)


@dataclass(frozen=True)
class LitmusTest:
    """A program plus the outcomes its source model forbids/allows."""

    program: Program
    #: Outcomes the source model must forbid (and hence any correct
    #: translation must forbid too).
    forbidden: tuple[Outcome, ...] = ()
    #: Outcomes the source model must allow (sanity, not correctness).
    allowed: tuple[Outcome, ...] = ()
    description: str = ""

    @property
    def name(self) -> str:
        return self.program.name


# ----------------------------------------------------------------------
# Small constructors (x86 level)
# ----------------------------------------------------------------------
def W(loc: str, value: int | str) -> Store:
    return Store(loc, value)


def R(reg: str, loc: str) -> Load:
    return Load(reg, loc)


def MFENCE() -> FenceOp:
    return FenceOp(Fence.MFENCE)


def CAS(loc: str, expect: int, new: int, out: str | None = None) -> Rmw:
    return Rmw(loc, expect, new, RmwFlavor.X86, out=out)


def x86(name: str, *threads: tuple) -> Program:
    return Program(name=name, arch=Arch.X86, threads=tuple(threads))


def tcg(name: str, *threads: tuple) -> Program:
    return Program(name=name, arch=Arch.TCG, threads=tuple(threads))


# ----------------------------------------------------------------------
# Paper examples — Section 2.1 and 3.2/3.3
# ----------------------------------------------------------------------
#: Message passing (Section 2.1).  Weak outcome a=1,b=0 is allowed on
#: Arm without fences but forbidden on x86.
MP = LitmusTest(
    program=x86(
        "MP",
        (W("X", 1), W("Y", 1)),
        (R("a", "Y"), R("b", "X")),
    ),
    forbidden=(outcome(T1_a=1, T1_b=0),),
    allowed=(
        outcome(T1_a=0, T1_b=0),
        outcome(T1_a=1, T1_b=1),
        outcome(T1_a=0, T1_b=1),
    ),
    description="message passing: load of Y=1 implies load of X=1 on x86",
)

#: Store buffering — the weak outcome IS allowed on x86 (no forbidden
#: entry); used to check translations don't over-strengthen reports.
SB = LitmusTest(
    program=x86(
        "SB",
        (W("X", 1), R("a", "Y")),
        (W("Y", 1), R("b", "X")),
    ),
    allowed=(outcome(T0_a=0, T1_b=0),),
    description="store buffering: a=b=0 allowed even on x86 (TSO)",
)

#: Store buffering with MFENCEs — now forbidden on x86.
SB_MFENCE = LitmusTest(
    program=x86(
        "SB+mfences",
        (W("X", 1), MFENCE(), R("a", "Y")),
        (W("Y", 1), MFENCE(), R("b", "X")),
    ),
    forbidden=(outcome(T0_a=0, T1_b=0),),
    description="SB with full fences: a=b=0 forbidden",
)

#: Load buffering — forbidden on x86 (no load-store reordering).
LB = LitmusTest(
    program=x86(
        "LB",
        (R("a", "X"), W("Y", 1)),
        (R("b", "Y"), W("X", 1)),
    ),
    forbidden=(outcome(T0_a=1, T1_b=1),),
    description="load buffering: a=b=1 forbidden on x86",
)

#: MPQ (Section 3.2): QEMU's RMW1_AL lowering admits a=1 with a failed
#: RMW (final X=1), which x86 forbids.
MPQ = LitmusTest(
    program=x86(
        "MPQ",
        (W("X", 1), W("Y", 1)),
        (R("a", "Y"), If("a", 1, then_ops=(CAS("X", 1, 2),))),
    ),
    forbidden=(outcome(T1_a=1, X=1),),
    allowed=(outcome(T1_a=1, X=2), outcome(T1_a=0)),
    description="Qemu RMW1_AL bug: read + read-acquire reorder on Arm",
)

#: SBQ (Section 3.2): QEMU's RMW2_AL lowering cannot order the
#: store→load pairs, admitting Z=U=1, a=b=0.
SBQ = LitmusTest(
    program=x86(
        "SBQ",
        (W("X", 1), CAS("Z", 0, 1), R("a", "Y")),
        (W("Y", 1), CAS("U", 0, 1), R("b", "X")),
    ),
    forbidden=(outcome(Z=1, U=1, T0_a=0, T1_b=0),),
    description="Qemu RMW2_AL bug: successful RMW must act as MFENCE",
)

#: SBAL (Section 3.3): breaks the intended Arm-Cats direct mapping
#: under the ORIGINAL Arm model; fixed by the strengthened bob.
SBAL = LitmusTest(
    program=x86(
        "SBAL",
        (CAS("X", 0, 1), R("a", "Y")),
        (CAS("Y", 0, 1), R("b", "X")),
    ),
    forbidden=(outcome(X=1, Y=1, T0_a=0, T1_b=0),),
    description="casal must be a full barrier for x86 RMW emulation",
)


# ----------------------------------------------------------------------
# Paper examples — TCG IR level (Sections 3.2, 5.4)
# ----------------------------------------------------------------------
def _f(kind: Fence) -> FenceOp:
    return FenceOp(kind)


#: FMR (Section 3.2): the TCG source program; Fmr + Frw order X=3 before
#: Z=2 through the read of Y, so a=2,c=3 is forbidden...
FMR_SOURCE = Program(
    name="FMR-source",
    arch=Arch.TCG,
    threads=(
        (W("X", 3), _f(Fence.FMR), W("Y", 2), R("a", "Y"),
         _f(Fence.FRW), W("Z", 2)),
        (R("z", "Z"),
         If("z", 2, then_ops=(_f(Fence.FRW), W("X", 4), R("c", "X")))),
    ),
)

#: ...but after RAW constant propagation removes the read of Y, the
#: ordering chain collapses and a=2,c=3 becomes allowed: the RAW
#: transformation is incorrect in the presence of Fmr.
FMR_TRANSFORMED = Program(
    name="FMR-transformed",
    arch=Arch.TCG,
    threads=(
        (W("X", 3), _f(Fence.FMR), W("Y", 2),
         _f(Fence.FRW), W("Z", 2)),
        (R("z", "Z"),
         If("z", 2, then_ops=(_f(Fence.FRW), W("X", 4), R("c", "X")))),
    ),
)

#: The FMR outcome in question (register a folded to 2 by the transform,
#: so only c and the final X value are compared).
FMR_OUTCOME = outcome(T1_c=3, X=3)

#: LB-IR (Figure 8): the trailing Frw after each load forbids a=b=1.
LB_IR = LitmusTest(
    program=tcg(
        "LB-IR",
        (R("a", "X"), _f(Fence.FRW), W("Y", 1)),
        (R("b", "Y"), _f(Fence.FRW), W("X", 1)),
    ),
    forbidden=(outcome(T0_a=1, T1_b=1),),
    description="Figure 8: ld-st order needs at least Frw",
)

#: MP-IR (Figure 8): leading Fww + trailing Frr forbid a=1,b=0.
MP_IR = LitmusTest(
    program=tcg(
        "MP-IR",
        (W("X", 1), _f(Fence.FWW), W("Y", 1)),
        (R("a", "Y"), _f(Fence.FRR), R("b", "X")),
    ),
    forbidden=(outcome(T0_a=1, T0_b=0),),
    description="Figure 8: st-st and ld-ld orders need Fww and Frr",
)


def _tcg_cas(loc: str, expect: int, new: int, out: str | None = None) -> Rmw:
    return Rmw(loc, expect, new, RmwFlavor.TCG, out=out)


#: Figure 9 (left): RMW2 needs its *leading* DMBFF to keep W→RMW order.
FIG9_WR = LitmusTest(
    program=tcg(
        "Fig9-W-RMW",
        (W("X", 2), _tcg_cas("Y", 0, 1)),
        (W("Y", 2), _tcg_cas("X", 0, 1)),
    ),
    forbidden=(outcome(X=1, Y=1),),
    description="Figure 9: leading DMBFF around RMW2 is necessary",
)

#: Figure 9 (right): RMW2 needs its *trailing* DMBFF to keep RMW→R order.
FIG9_RR = LitmusTest(
    program=tcg(
        "Fig9-RMW-R",
        (_tcg_cas("X", 0, 1), R("a", "Y")),
        (_tcg_cas("Y", 0, 1), R("b", "X")),
    ),
    forbidden=(outcome(T0_a=0, T1_b=0, X=1, Y=1),),
    description="Figure 9: trailing DMBFF around RMW2 is necessary",
)


# ----------------------------------------------------------------------
# Classic corpus (x86 level) for broad mapping verification
# ----------------------------------------------------------------------
#: MP with an MFENCE in the writer and reader.
MP_MFENCE = LitmusTest(
    program=x86(
        "MP+mfences",
        (W("X", 1), MFENCE(), W("Y", 1)),
        (R("a", "Y"), MFENCE(), R("b", "X")),
    ),
    forbidden=(outcome(T1_a=1, T1_b=0),),
)

#: S: write after write vs read — forbidden on x86.
S_TEST = LitmusTest(
    program=x86(
        "S",
        (W("X", 2), W("Y", 1)),
        (R("a", "Y"), If("a", 1, then_ops=(W("X", 1),))),
    ),
    forbidden=(outcome(T1_a=1, X=2),),
    description="W(X,2) before W(Y,1); seeing Y=1 then writing X=1 must "
                "leave X=1 co-last on x86",
)

#: R: two writers racing plus an observer pair — forbidden on x86.
R_TEST = LitmusTest(
    program=x86(
        "R",
        (W("X", 1), W("Y", 1)),
        (W("Y", 2), MFENCE(), R("a", "X")),
    ),
    forbidden=(outcome(Y=2, T1_a=0),),
    description="if Y=2 survives, T1's fenced read must see X=1",
)

#: 2+2W: coherence-driven; forbidden everywhere with fences.
W2PLUS2 = LitmusTest(
    program=x86(
        "2+2W",
        (W("X", 1), MFENCE(), W("Y", 2)),
        (W("Y", 1), MFENCE(), W("X", 2)),
    ),
    forbidden=(outcome(X=1, Y=1),),
)

#: IRIW with fenced readers — forbidden on x86 (multi-copy atomic).
IRIW_MFENCE = LitmusTest(
    program=x86(
        "IRIW+mfences",
        (W("X", 1),),
        (W("Y", 1),),
        (R("a", "X"), MFENCE(), R("b", "Y")),
        (R("c", "Y"), MFENCE(), R("d", "X")),
    ),
    forbidden=(outcome(T2_a=1, T2_b=0, T3_c=1, T3_d=0),),
)

#: CoRR: coherence of two reads of the same location — forbidden in all
#: models via sc-per-loc.
CORR = LitmusTest(
    program=x86(
        "CoRR",
        (W("X", 1),),
        (R("a", "X"), R("b", "X")),
    ),
    forbidden=(outcome(T1_a=1, T1_b=0),),
)

#: Atomic increment chain: both CAS succeed in some order; the final
#: value must be 2 when both saw distinct values.
CAS_CHAIN = LitmusTest(
    program=x86(
        "CAS-chain",
        (CAS("X", 0, 1, out="a"),),
        (CAS("X", 1, 2, out="b"),),
    ),
    forbidden=(outcome(T0_a=0, T1_b=1, X=1),),
    description="if T0's CAS succeeded first and T1 read 1, X must be 2",
)

#: RMW acting as a fence for MP-style publication.
MP_RMW = LitmusTest(
    program=x86(
        "MP+rmw",
        (W("X", 1), CAS("F", 0, 1)),
        (R("a", "F"), If("a", 1, then_ops=(R("b", "X"),))),
    ),
    forbidden=(outcome(T1_a=1, T1_b=0),),
    description="a successful x86 RMW publishes earlier stores",
)

#: SB with RMW on one side only (RMW = full fence on x86).
SB_RMW_ONE = LitmusTest(
    program=x86(
        "SB+rmw-one-side",
        (W("X", 1), CAS("Z", 0, 1), R("a", "Y")),
        (W("Y", 1), MFENCE(), R("b", "X")),
    ),
    forbidden=(outcome(T0_a=0, T1_b=0),),
)


#: IRIW with plain loads — *also* forbidden on x86 (TSO is multicopy
#: atomic and preserves read-read order), making it a sharp test for
#: the load-side fences of any mapping.
IRIW_PLAIN = LitmusTest(
    program=x86(
        "IRIW",
        (W("X", 1),),
        (W("Y", 1),),
        (R("a", "X"), R("b", "Y")),
        (R("c", "Y"), R("d", "X")),
    ),
    forbidden=(outcome(T2_a=1, T2_b=0, T3_c=1, T3_d=0),),
)

#: WRC: write-read causality across three threads — forbidden on x86.
WRC = LitmusTest(
    program=x86(
        "WRC",
        (W("X", 1),),
        (R("a", "X"), If("a", 1, then_ops=(W("Y", 1),))),
        (R("b", "Y"), R("c", "X")),
    ),
    forbidden=(outcome(T2_b=1, T2_c=0),),
    description="causality: T2 seeing Y=1 implies it sees X=1",
)

#: ISA2: message passing chained through two buffers — forbidden.
ISA2 = LitmusTest(
    program=x86(
        "ISA2",
        (W("X", 1), W("Y", 1)),
        (R("a", "Y"), If("a", 1, then_ops=(W("Z", 1),))),
        (R("b", "Z"), R("c", "X")),
    ),
    forbidden=(outcome(T2_b=1, T2_c=0),),
)

#: CoWW/CoWR: same-location coherence shapes (hold in every model).
COWR = LitmusTest(
    program=x86(
        "CoWR",
        (W("X", 1), R("a", "X")),
        (W("X", 2),),
    ),
    forbidden=(outcome(T0_a=2, X=1),),
    description="reading the foreign write means it is co-later",
)

#: S-shape resolved through an XCHG-style RMW.
S_RMW = LitmusTest(
    program=x86(
        "S+rmw",
        (W("X", 2), CAS("Y", 0, 1)),
        (R("a", "Y"), If("a", 1, then_ops=(W("X", 1),))),
    ),
    forbidden=(outcome(T1_a=1, X=2),),
)


#: The x86-level verification corpus (drives Theorem-1 checking).
X86_CORPUS: tuple[LitmusTest, ...] = (
    MP, SB, SB_MFENCE, LB, MPQ, SBQ, SBAL,
    MP_MFENCE, S_TEST, R_TEST, W2PLUS2, IRIW_MFENCE, CORR,
    CAS_CHAIN, MP_RMW, SB_RMW_ONE,
    IRIW_PLAIN, WRC, ISA2, COWR, S_RMW,
)

#: TCG-level tests (minimality, Figure 8/9).
TCG_CORPUS: tuple[LitmusTest, ...] = (LB_IR, MP_IR, FIG9_WR, FIG9_RR)

ALL_TESTS: dict[str, LitmusTest] = {
    t.name: t for t in X86_CORPUS + TCG_CORPUS
}
