"""Persistent behaviour cache keyed by content fingerprints.

``behaviors(program, model)`` is pure: the behaviour set is a function
of the program text, the model definition, and the enumeration code.
This module captures that identity as a sha256 fingerprint and memoizes
the result on disk, so repeated sweeps — and the ``run_parallel``
workers, which each start with a cold in-process memo — share one
store instead of re-enumerating the same litmus programs.

Key structure (any change misses, never corrupts):

* **program** — architecture, initial values and thread bodies, via the
  canonical ``repr`` of the (frozen) op dataclasses.  The program *name*
  is excluded: two differently-named but identical programs share
  behaviours.
* **model** — :meth:`~repro.core.models.base.MemoryModel.fingerprint`,
  covering class identity, class source and instance configuration.
* **code salt** — a digest of the source of every module the behaviour
  computation flows through, so editing the enumerator or an axiom
  invalidates every stale entry instead of silently serving it.

Entries are JSON files written atomically (temp file + ``os.replace``),
making concurrent writers from a process pool safe: last writer wins
with identical content.

Configuration via ``REPRO_BEHAVIOR_CACHE``: unset uses
``<cwd>/.repro-cache/behaviors``; a path overrides the directory; ``0``
or ``off`` disables the disk layer entirely (the in-process memo in
:mod:`repro.core.enumerate` still applies).

``REPRO_BEHAVIOR_CACHE_NS`` names a *namespace* — a subdirectory of the
store.  Sharded verification runs set it so concurrent sweeps with
different corpora (or experimental model edits) never interleave in one
directory; writers in the same namespace stay safe through the atomic
replace, and ``clear_disk_cache`` touches only the active namespace.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

ENV_VAR = "REPRO_BEHAVIOR_CACHE"
NAMESPACE_ENV = "REPRO_BEHAVIOR_CACHE_NS"
_OFF_VALUES = frozenset({"0", "off", "none", "disabled"})

#: Lazily computed digest of the behaviour-computation source.
_CODE_SALT: str | None = None


def _code_salt() -> str:
    global _CODE_SALT
    if _CODE_SALT is None:
        import inspect

        from . import axioms, dpor, enumerate as enum_mod, events, \
            execution, program, relations
        from .models import armcats, base, tcg, x86tso

        hasher = hashlib.sha256()
        for module in (enum_mod, dpor, relations, execution, axioms,
                       events, program, base, x86tso, armcats, tcg):
            try:
                hasher.update(inspect.getsource(module).encode())
            except (OSError, TypeError):  # pragma: no cover - frozen envs
                hasher.update(module.__name__.encode())
        _CODE_SALT = hasher.hexdigest()
    return _CODE_SALT


def program_fingerprint(program) -> str:
    """Digest of a program's content (name excluded)."""
    canonical = repr((program.arch.value,
                      tuple(sorted(program.init)),
                      program.threads))
    return hashlib.sha256(canonical.encode()).hexdigest()


def model_fingerprint(model) -> str:
    """Digest of a model's identity; falls back to class+name for
    duck-typed models without a ``fingerprint`` method."""
    fp = getattr(model, "fingerprint", None)
    if callable(fp):
        return fp()
    return hashlib.sha256(
        f"{type(model).__module__}.{type(model).__qualname__}"
        f"|{model.name}".encode()).hexdigest()


def entry_key(program, model) -> str:
    """The combined cache key for one (program, model) pair."""
    return hashlib.sha256(
        f"{program_fingerprint(program)}|{model_fingerprint(model)}"
        f"|{_code_salt()}".encode()).hexdigest()


# ----------------------------------------------------------------------
# Disk layer
# ----------------------------------------------------------------------
def enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in _OFF_VALUES


def namespace() -> str:
    """The active cache namespace (sanitized), or "" for the root.

    Only ``[A-Za-z0-9._-]`` survive, and a name reduced to dots alone
    is dropped entirely — ``..`` must never become a path component.
    """
    raw = os.environ.get(NAMESPACE_ENV, "").strip()
    ns = "".join(c for c in raw if c.isalnum() or c in "._-")
    if not ns.strip("."):
        return ""
    return ns


def base_dir() -> Path:
    """The store root, *before* namespace scoping."""
    override = os.environ.get(ENV_VAR, "").strip()
    if override and override.lower() not in _OFF_VALUES:
        return Path(override)
    return Path.cwd() / ".repro-cache" / "behaviors"


def cache_dir() -> Path:
    base = base_dir()
    ns = namespace()
    return base / ns if ns else base


def namespace_usage() -> dict[str, dict]:
    """Per-namespace ``{"entries": n, "bytes": b}`` of the disk store,
    keyed by namespace name ("" is the root namespace).

    Entries live flat in their namespace directory (``<key>.json``),
    so any subdirectory of the root is a namespace and the root's own
    entry files form the "" namespace.
    """
    base = base_dir()
    usage: dict[str, dict] = {}
    if not base.is_dir():
        return usage
    root_files = root_bytes = 0
    namespaces: list[tuple[str, int, int]] = []
    for child in sorted(base.iterdir()):
        if child.is_dir():
            files = size = 0
            for path in child.glob("*.json"):
                try:
                    size += path.stat().st_size
                    files += 1
                except OSError:  # pragma: no cover
                    continue
            namespaces.append((child.name, files, size))
        elif child.suffix == ".json":
            try:
                root_bytes += child.stat().st_size
                root_files += 1
            except OSError:  # pragma: no cover
                continue
    usage[""] = {"entries": root_files, "bytes": root_bytes}
    for name, files, size in namespaces:
        usage[name] = {"entries": files, "bytes": size}
    return usage


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.json"


def load(program, model) -> frozenset | None:
    """The cached behaviour set, or None on miss/corruption/disabled."""
    if not enabled():
        return None
    path = _entry_path(entry_key(program, model))
    try:
        payload = json.loads(path.read_text())
        return frozenset(
            frozenset((str(k), int(v)) for k, v in beh)
            for beh in payload["behaviors"]
        )
    except (OSError, ValueError, KeyError, TypeError):
        # Missing, unreadable or malformed entries are plain misses;
        # the store below rewrites them.
        return None


def store(program, model, behaviors: frozenset) -> None:
    """Persist one behaviour set atomically; failures are silent (the
    cache is an accelerator, never a correctness dependency)."""
    if not enabled():
        return
    payload = json.dumps({
        "program": program.name,
        "model": model.name,
        "behaviors": sorted(
            [[k, v] for k, v in sorted(b)] for b in behaviors
        ),
    }, separators=(",", ":"))
    path = _entry_path(entry_key(program, model))
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:  # pragma: no cover - read-only cache dir
        pass


def clear_disk_cache() -> int:
    """Remove every cached entry; returns the number removed.

    Alongside the ``*.json`` entries this sweeps orphaned ``*.tmp``
    files: a writer that dies between ``mkstemp`` and ``os.replace``
    leaves its temp file behind, and nothing else ever cleans it up.
    Orphans count toward the return value like any other removal.
    """
    removed = 0
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    for pattern in ("*.json", "*.tmp"):
        for path in directory.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
    return removed
