"""Candidate-execution enumeration for litmus programs.

Given a :class:`~repro.core.program.Program`, this module produces every
candidate execution graph, in the style of the herd7 simulator:

1. **Value oracle** — each thread is executed symbolically; every load
   (and RMW read) branches over the values any write in the program
   could give to that location.  This fixes branch outcomes and RMW
   success/failure, yielding a set of per-thread *traces*.
2. **reads-from** — every read is matched with every same-location,
   same-value write (including the implicit initialization writes).
3. **coherence** — every per-location total order of writes, with the
   initialization write pinned first.

Consistency filtering against a memory model and behaviour collection
are thin wrappers at the bottom.  Dependencies (data/ctrl) are tracked
during the symbolic execution because the Arm model consumes them.

Address dependencies are not modelled: the litmus AST has no computed
addresses, which mirrors the paper's mapping-verification corpus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ModelError
from .events import INIT_TID, Event, Mode, RmwFlavor
from .execution import Execution
from .program import FenceOp, If, Load, Op, Program, Rmw, Store
from .relations import Rel, total_order_extensions

#: Safety valve: enumeration aborts (with a clear error) past this many
#: candidate executions, so a malformed "litmus" program cannot hang the
#: test suite.
DEFAULT_CANDIDATE_LIMIT = 2_000_000


@dataclass
class _Spec:
    """An event-to-be, local to one thread trace (pre eid assignment)."""

    kind: str
    loc: str | None = None
    val: int | None = None
    fence: object = None
    mode: Mode = Mode.PLAIN
    rmw_flavor: RmwFlavor | None = None
    partner: int | None = None  # trace-local index of the rmw partner
    tag: str = ""


@dataclass
class _Trace:
    """One symbolic path through a thread."""

    specs: list[_Spec] = field(default_factory=list)
    data: set[tuple[int, int]] = field(default_factory=set)
    ctrl: set[tuple[int, int]] = field(default_factory=set)
    regs: dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Value domains
# ----------------------------------------------------------------------
def location_domains(program: Program) -> dict[str, frozenset[int]]:
    """All values each location might hold at any point.

    Constant stores and RMW news contribute directly; a store of a
    register makes the location's domain the global domain (computed to
    a fixpoint), which is conservative but always sound.
    """
    domains: dict[str, set[int]] = {
        loc: {program.init_value(loc)} for loc in program.locations()
    }
    reg_stores: set[str] = set()

    def visit(ops: tuple[Op, ...]) -> None:
        for op in ops:
            if isinstance(op, Store):
                if isinstance(op.value, int):
                    domains[op.loc].add(op.value)
                else:
                    reg_stores.add(op.loc)
            elif isinstance(op, Rmw):
                domains[op.loc].add(op.new)
            elif isinstance(op, If):
                visit(tuple(op.then_ops))
                visit(tuple(op.else_ops))

    for ops in program.threads:
        visit(ops)

    if reg_stores:
        # Fixpoint: register values come from loads, so a reg-valued
        # store can deposit any currently-known value anywhere.
        for _ in range(len(domains) + 1):
            universe = set().union(*domains.values())
            changed = False
            for loc in reg_stores:
                if not universe <= domains[loc]:
                    domains[loc] |= universe
                    changed = True
            if not changed:
                break
    return {loc: frozenset(vals) for loc, vals in domains.items()}


# ----------------------------------------------------------------------
# Per-thread symbolic execution
# ----------------------------------------------------------------------
def _mode_for_rmw_read(op: Rmw) -> Mode:
    if op.flavor is RmwFlavor.TCG:
        return Mode.SC
    if op.flavor in (RmwFlavor.AMO, RmwFlavor.LXSX) and op.acq:
        return Mode.ACQ
    return Mode.PLAIN


def _mode_for_rmw_write(op: Rmw) -> Mode:
    if op.flavor is RmwFlavor.TCG:
        return Mode.SC
    if op.flavor in (RmwFlavor.AMO, RmwFlavor.LXSX) and op.rel:
        return Mode.REL
    return Mode.PLAIN


def thread_traces(ops: tuple[Op, ...],
                  domains: dict[str, frozenset[int]]) -> list[_Trace]:
    """All oracle-driven symbolic paths through one thread."""
    results: list[_Trace] = []

    def run(pending: list[Op], trace: _Trace,
            regs: dict[str, tuple[int, int | None]],
            ctrl_srcs: frozenset[int]) -> None:
        if not pending:
            results.append(_Trace(
                specs=list(trace.specs),
                data=set(trace.data),
                ctrl=set(trace.ctrl),
                regs={r: v for r, (v, _) in regs.items()},
            ))
            return
        op, rest = pending[0], pending[1:]
        idx = len(trace.specs)

        def emit(spec: _Spec) -> int:
            trace.specs.append(spec)
            for src in ctrl_srcs:
                trace.ctrl.add((src, len(trace.specs) - 1))
            return len(trace.specs) - 1

        def retract(count: int, data_before: set, ctrl_before: set) -> None:
            del trace.specs[idx:]
            trace.data.intersection_update(data_before)
            trace.ctrl.intersection_update(ctrl_before)

        data_before = set(trace.data)
        ctrl_before = set(trace.ctrl)

        if isinstance(op, FenceOp):
            emit(_Spec(kind="F", fence=op.kind, tag=str(op)))
            run(rest, trace, regs, ctrl_srcs)
            retract(idx, data_before, ctrl_before)

        elif isinstance(op, Store):
            if isinstance(op.value, int):
                val, src = op.value, None
            else:
                val, src = regs[op.value]
            eidx = emit(_Spec(kind="W", loc=op.loc, val=val,
                              mode=op.mode, tag=str(op)))
            if src is not None:
                trace.data.add((src, eidx))
            if op.dep is not None:
                __, dep_src = regs[op.dep]
                if dep_src is not None:
                    trace.data.add((dep_src, eidx))
            run(rest, trace, regs, ctrl_srcs)
            retract(idx, data_before, ctrl_before)

        elif isinstance(op, Load):
            for val in sorted(domains[op.loc]):
                emit(_Spec(kind="R", loc=op.loc, val=val,
                           mode=op.mode, tag=str(op)))
                new_regs = dict(regs)
                new_regs[op.reg] = (val, idx)
                run(rest, trace, new_regs, ctrl_srcs)
                retract(idx, data_before, ctrl_before)

        elif isinstance(op, Rmw):
            for val in sorted(domains[op.loc]):
                rmode = _mode_for_rmw_read(op)
                if val == op.expect:
                    emit(_Spec(kind="R", loc=op.loc, val=val, mode=rmode,
                               rmw_flavor=op.flavor, partner=idx + 1,
                               tag=str(op)))
                    emit(_Spec(kind="W", loc=op.loc, val=op.new,
                               mode=_mode_for_rmw_write(op),
                               rmw_flavor=op.flavor, partner=idx,
                               tag=str(op)))
                else:
                    emit(_Spec(kind="R", loc=op.loc, val=val, mode=rmode,
                               rmw_flavor=op.flavor, tag=str(op)))
                new_regs = dict(regs)
                if op.out:
                    new_regs[op.out] = (val, idx)
                run(rest, trace, new_regs, ctrl_srcs)
                retract(idx, data_before, ctrl_before)

        elif isinstance(op, If):
            val, src = regs[op.reg]
            branch = list(op.then_ops) if val == op.value \
                else list(op.else_ops)
            new_ctrl = ctrl_srcs | ({src} if src is not None else set())
            run(branch + list(rest), trace, regs, new_ctrl)
            retract(idx, data_before, ctrl_before)

        else:  # pragma: no cover - defensive
            raise ModelError(f"unknown op {op!r}")

    run(list(ops), _Trace(), {}, frozenset())
    return results


# ----------------------------------------------------------------------
# Whole-program enumeration
# ----------------------------------------------------------------------
def enumerate_executions(program: Program,
                         limit: int = DEFAULT_CANDIDATE_LIMIT):
    """Yield every candidate :class:`Execution` of ``program``."""
    domains = location_domains(program)
    per_thread = [thread_traces(ops, domains) for ops in program.threads]
    locations = sorted(program.locations())
    produced = 0

    for combo in itertools.product(*per_thread):
        # --- materialize events -------------------------------------
        events: dict[int, Event] = {}
        next_eid = 0
        init_writes: dict[str, int] = {}
        for loc in locations:
            events[next_eid] = Event(
                eid=next_eid, tid=INIT_TID, idx=next_eid, kind="W",
                loc=loc, val=program.init_value(loc), is_init=True,
                tag=f"init {loc}",
            )
            init_writes[loc] = next_eid
            next_eid += 1

        po_pairs: list[tuple[int, int]] = []
        data_pairs: list[tuple[int, int]] = []
        ctrl_pairs: list[tuple[int, int]] = []
        reg_obs: set[tuple[str, int]] = set()
        ok = True

        for tid, trace in enumerate(combo):
            base = next_eid
            for i, spec in enumerate(trace.specs):
                partner = base + spec.partner \
                    if spec.partner is not None else None
                events[next_eid] = Event(
                    eid=next_eid, tid=tid, idx=i, kind=spec.kind,
                    loc=spec.loc, val=spec.val, fence=spec.fence,
                    mode=spec.mode, rmw_flavor=spec.rmw_flavor,
                    rmw_partner=partner, tag=spec.tag,
                )
                next_eid += 1
            n = len(trace.specs)
            po_pairs.extend(
                (base + i, base + j)
                for i in range(n) for j in range(i + 1, n)
            )
            data_pairs.extend((base + a, base + b) for a, b in trace.data)
            ctrl_pairs.extend((base + a, base + b) for a, b in trace.ctrl)
            for reg, val in trace.regs.items():
                reg_obs.add((f"T{tid}:{reg}", val))

        if not ok:  # pragma: no cover - placeholder for future pruning
            continue

        po = Rel(po_pairs)
        data = Rel(data_pairs)
        ctrl = Rel(ctrl_pairs)
        regs = frozenset(reg_obs)

        # --- rf choices ----------------------------------------------
        reads = [e for e in events.values() if e.is_read()]
        writes_by_loc: dict[str, list[Event]] = {}
        for ev in events.values():
            if ev.is_write():
                writes_by_loc.setdefault(ev.loc, []).append(ev)

        rf_options: list[list[int]] = []
        feasible = True
        for rd in reads:
            srcs = [
                w.eid for w in writes_by_loc.get(rd.loc, ())
                if w.val == rd.val and w.eid != rd.eid
            ]
            if not srcs:
                feasible = False
                break
            rf_options.append(srcs)
        if not feasible:
            continue

        co_options = [
            list(total_order_extensions(
                [w.eid for w in writes_by_loc[loc]],
                first=init_writes[loc],
            ))
            for loc in locations if loc in writes_by_loc
        ]

        for rf_choice in itertools.product(*rf_options):
            rf = Rel(
                (src, rd.eid) for src, rd in zip(rf_choice, reads)
            )
            for co_parts in itertools.product(*co_options):
                produced += 1
                if produced > limit:
                    raise ModelError(
                        f"{program.name}: candidate executions exceed "
                        f"limit {limit}"
                    )
                co = Rel(frozenset().union(
                    *(part.pairs for part in co_parts)
                )) if co_parts else Rel()
                yield Execution(
                    events=events, po=po, rf=rf, co=co,
                    data=data, ctrl=ctrl, regs=regs,
                )


# ----------------------------------------------------------------------
# Consistency and behaviour
# ----------------------------------------------------------------------
_BEHAVIOR_CACHE: dict[tuple[Program, str], frozenset] = {}


@dataclass
class BehaviorCacheStats:
    """Hit/miss counters for the behaviour memo (observability layer)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "BehaviorCacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


_CACHE_STATS = BehaviorCacheStats()


def behavior_cache_stats() -> BehaviorCacheStats:
    """A snapshot of the cache counters since the last reset."""
    return BehaviorCacheStats(hits=_CACHE_STATS.hits,
                              misses=_CACHE_STATS.misses)


def consistent_executions(program: Program, model) -> list[Execution]:
    """All candidate executions consistent in ``model``."""
    return [
        ex for ex in enumerate_executions(program)
        if model.is_consistent(ex)
    ]


def behaviors(program: Program, model) -> frozenset:
    """The set of ``full_behavior`` values of consistent executions.

    Results are cached: programs are immutable and models are stateless
    singletons, and the verifier asks for the same source behaviours for
    many target mappings.
    """
    key = (program, model.name)
    cached = _BEHAVIOR_CACHE.get(key)
    if cached is None:
        _CACHE_STATS.misses += 1
        cached = frozenset(
            ex.full_behavior for ex in consistent_executions(program, model)
        )
        _BEHAVIOR_CACHE[key] = cached
    else:
        _CACHE_STATS.hits += 1
    return cached


def clear_behavior_cache() -> None:
    """Drop memoized behaviours (used by tests that tweak models)."""
    _BEHAVIOR_CACHE.clear()
    _CACHE_STATS.hits = 0
    _CACHE_STATS.misses = 0
