"""Candidate-execution enumeration for litmus programs.

Given a :class:`~repro.core.program.Program`, this module produces every
candidate execution graph, in the style of the herd7 simulator:

1. **Value oracle** — each thread is executed symbolically; every load
   (and RMW read) branches over the values any write in the program
   could give to that location.  This fixes branch outcomes and RMW
   success/failure, yielding a set of per-thread *traces*.
2. **reads-from** — every read is matched with every same-location,
   same-value write (including the implicit initialization writes).
3. **coherence** — every per-location total order of writes, with the
   initialization write pinned first.

Two enumeration paths share that pipeline:

* :func:`enumerate_executions` — the naive path: the full rf × co cross
  product, no model consulted.  Kept as the differential-testing oracle.
* :func:`enumerate_consistent` — the staged fast path used by
  :func:`consistent_executions`/:func:`behaviors`.  It prunes rf
  candidates with model-independent coherence facts, then walks the
  rf assignment space as a DPOR-style DFS (:class:`repro.core.dpor.
  RfSearch`): RMW source-disjointness cuts, incremental forced-
  coherence closures, the model's monotone rf-stage precheck on every
  *partial* assignment (so an inconsistent prefix kills its whole
  subtree, not one leaf), and sleep-set memoization of rejections.
  Surviving rf leaves expand only the linear extensions of the forced
  coherence order.  Every prune is justified by sc-per-loc/atomicity
  alone (the axioms all the paper's models share), and the prefix
  precheck by rf/co-monotonicity of the axioms;
  ``tests/core/test_differential_enumeration.py`` checks the two paths
  bit-identical over the whole corpus.
* :func:`repro.core.dpor.reduced_behaviors` — the representative mode
  behind :func:`behaviors`: on top of the DFS it collapses symmetric
  trace combinations (identical threads) and enumerates one coherence
  witness per behaviour-distinguishing class of co instead of every
  linear extension.  It computes behaviour *sets* (bit-identical to
  the full enumeration), not execution lists.

Consistency filtering against a memory model and behaviour collection
are thin wrappers at the bottom; behaviours are memoized in-process and
(via :mod:`repro.core.behavior_cache`) on disk, keyed by content
fingerprints rather than names.  Dependencies (data/ctrl) are tracked
during the symbolic execution because the Arm model consumes them.

Address dependencies are not modelled: the litmus AST has no computed
addresses, which mirrors the paper's mapping-verification corpus.
"""

from __future__ import annotations

import itertools
import math
import os
from dataclasses import dataclass, field

from ..errors import ModelError
from ..obs.trace import get_tracer
from . import behavior_cache
from .events import INIT_TID, Event, Mode, RmwFlavor
from .execution import Execution
from .program import FenceOp, If, Load, Op, Program, Rmw, Store
from .relations import Rel, linear_extensions, total_order_extensions

#: Safety valve: enumeration aborts (with a clear error) past this many
#: candidate executions, so a malformed "litmus" program cannot hang the
#: test suite.
DEFAULT_CANDIDATE_LIMIT = 2_000_000


@dataclass
class _Spec:
    """An event-to-be, local to one thread trace (pre eid assignment)."""

    kind: str
    loc: str | None = None
    val: int | None = None
    fence: object = None
    mode: Mode = Mode.PLAIN
    rmw_flavor: RmwFlavor | None = None
    partner: int | None = None  # trace-local index of the rmw partner
    tag: str = ""


@dataclass
class _Trace:
    """One symbolic path through a thread."""

    specs: list[_Spec] = field(default_factory=list)
    data: set[tuple[int, int]] = field(default_factory=set)
    ctrl: set[tuple[int, int]] = field(default_factory=set)
    regs: dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Value domains
# ----------------------------------------------------------------------
def location_domains(program: Program) -> dict[str, frozenset[int]]:
    """All values each location might hold at any point.

    Constant stores and RMW news contribute directly; a store of a
    register makes the location's domain the global domain (computed to
    a fixpoint), which is conservative but always sound.
    """
    domains: dict[str, set[int]] = {
        loc: {program.init_value(loc)} for loc in program.locations()
    }
    reg_stores: set[str] = set()

    def visit(ops: tuple[Op, ...]) -> None:
        for op in ops:
            if isinstance(op, Store):
                if isinstance(op.value, int):
                    domains[op.loc].add(op.value)
                else:
                    reg_stores.add(op.loc)
            elif isinstance(op, Rmw):
                domains[op.loc].add(op.new)
            elif isinstance(op, If):
                visit(tuple(op.then_ops))
                visit(tuple(op.else_ops))

    for ops in program.threads:
        visit(ops)

    if reg_stores:
        # Fixpoint: register values come from loads, so a reg-valued
        # store can deposit any currently-known value anywhere.
        for _ in range(len(domains) + 1):
            universe = set().union(*domains.values())
            changed = False
            for loc in reg_stores:
                if not universe <= domains[loc]:
                    domains[loc] |= universe
                    changed = True
            if not changed:
                break
    return {loc: frozenset(vals) for loc, vals in domains.items()}


# ----------------------------------------------------------------------
# Per-thread symbolic execution
# ----------------------------------------------------------------------
def _mode_for_rmw_read(op: Rmw) -> Mode:
    if op.flavor is RmwFlavor.TCG:
        return Mode.SC
    if op.flavor in (RmwFlavor.AMO, RmwFlavor.LXSX) and op.acq:
        return Mode.ACQ
    return Mode.PLAIN


def _mode_for_rmw_write(op: Rmw) -> Mode:
    if op.flavor is RmwFlavor.TCG:
        return Mode.SC
    if op.flavor in (RmwFlavor.AMO, RmwFlavor.LXSX) and op.rel:
        return Mode.REL
    return Mode.PLAIN


def thread_traces(ops: tuple[Op, ...],
                  domains: dict[str, frozenset[int]]) -> list[_Trace]:
    """All oracle-driven symbolic paths through one thread."""
    results: list[_Trace] = []

    def run(pending: list[Op], trace: _Trace,
            regs: dict[str, tuple[int, int | None]],
            ctrl_srcs: frozenset[int]) -> None:
        if not pending:
            results.append(_Trace(
                specs=list(trace.specs),
                data=set(trace.data),
                ctrl=set(trace.ctrl),
                regs={r: v for r, (v, _) in regs.items()},
            ))
            return
        op, rest = pending[0], pending[1:]
        idx = len(trace.specs)

        def emit(spec: _Spec) -> int:
            trace.specs.append(spec)
            for src in ctrl_srcs:
                trace.ctrl.add((src, len(trace.specs) - 1))
            return len(trace.specs) - 1

        def retract(count: int, data_before: set, ctrl_before: set) -> None:
            del trace.specs[idx:]
            trace.data.intersection_update(data_before)
            trace.ctrl.intersection_update(ctrl_before)

        data_before = set(trace.data)
        ctrl_before = set(trace.ctrl)

        if isinstance(op, FenceOp):
            emit(_Spec(kind="F", fence=op.kind, tag=str(op)))
            run(rest, trace, regs, ctrl_srcs)
            retract(idx, data_before, ctrl_before)

        elif isinstance(op, Store):
            if isinstance(op.value, int):
                val, src = op.value, None
            else:
                val, src = regs[op.value]
            eidx = emit(_Spec(kind="W", loc=op.loc, val=val,
                              mode=op.mode, tag=str(op)))
            if src is not None:
                trace.data.add((src, eidx))
            if op.dep is not None:
                __, dep_src = regs[op.dep]
                if dep_src is not None:
                    trace.data.add((dep_src, eidx))
            run(rest, trace, regs, ctrl_srcs)
            retract(idx, data_before, ctrl_before)

        elif isinstance(op, Load):
            for val in sorted(domains[op.loc]):
                emit(_Spec(kind="R", loc=op.loc, val=val,
                           mode=op.mode, tag=str(op)))
                new_regs = dict(regs)
                new_regs[op.reg] = (val, idx)
                run(rest, trace, new_regs, ctrl_srcs)
                retract(idx, data_before, ctrl_before)

        elif isinstance(op, Rmw):
            for val in sorted(domains[op.loc]):
                rmode = _mode_for_rmw_read(op)
                if val == op.expect:
                    emit(_Spec(kind="R", loc=op.loc, val=val, mode=rmode,
                               rmw_flavor=op.flavor, partner=idx + 1,
                               tag=str(op)))
                    emit(_Spec(kind="W", loc=op.loc, val=op.new,
                               mode=_mode_for_rmw_write(op),
                               rmw_flavor=op.flavor, partner=idx,
                               tag=str(op)))
                else:
                    emit(_Spec(kind="R", loc=op.loc, val=val, mode=rmode,
                               rmw_flavor=op.flavor, tag=str(op)))
                new_regs = dict(regs)
                if op.out:
                    new_regs[op.out] = (val, idx)
                run(rest, trace, new_regs, ctrl_srcs)
                retract(idx, data_before, ctrl_before)

        elif isinstance(op, If):
            val, src = regs[op.reg]
            branch = list(op.then_ops) if val == op.value \
                else list(op.else_ops)
            new_ctrl = ctrl_srcs | ({src} if src is not None else set())
            run(branch + list(rest), trace, regs, new_ctrl)
            retract(idx, data_before, ctrl_before)

        else:  # pragma: no cover - defensive
            raise ModelError(f"unknown op {op!r}")

    run(list(ops), _Trace(), {}, frozenset())
    return results


# ----------------------------------------------------------------------
# Combo materialization shared by both enumeration paths
# ----------------------------------------------------------------------
@dataclass
class _ComboGraph:
    """Everything fixed by one trace combination, before rf/co choice."""

    events: dict[int, Event]
    po: Rel
    data: Rel
    ctrl: Rel
    regs: frozenset
    reads: list[Event]
    writes_by_loc: dict[str, list[Event]]
    init_writes: dict[str, int]
    locations: list[str]


def _trace_sets(program: Program):
    """Per-thread symbolic trace lists plus the sorted location list.

    Identical thread bodies produce identical trace lists (the symbolic
    execution is deterministic), which is what the symmetry reduction
    in :mod:`repro.core.dpor` relies on to treat trace *indices* of
    identical threads as interchangeable.
    """
    domains = location_domains(program)
    per_thread = [thread_traces(ops, domains) for ops in program.threads]
    locations = sorted(program.locations())
    return per_thread, locations


def _materialize_combo(program: Program, locations: list[str],
                       combo: tuple) -> _ComboGraph:
    """Build the :class:`_ComboGraph` for one trace combination."""
    events: dict[int, Event] = {}
    next_eid = 0
    init_writes: dict[str, int] = {}
    for loc in locations:
        events[next_eid] = Event(
            eid=next_eid, tid=INIT_TID, idx=next_eid, kind="W",
            loc=loc, val=program.init_value(loc), is_init=True,
            tag=f"init {loc}",
        )
        init_writes[loc] = next_eid
        next_eid += 1

    po_pairs: list[tuple[int, int]] = []
    data_pairs: list[tuple[int, int]] = []
    ctrl_pairs: list[tuple[int, int]] = []
    reg_obs: set[tuple[str, int]] = set()

    for tid, trace in enumerate(combo):
        base = next_eid
        for i, spec in enumerate(trace.specs):
            partner = base + spec.partner \
                if spec.partner is not None else None
            events[next_eid] = Event(
                eid=next_eid, tid=tid, idx=i, kind=spec.kind,
                loc=spec.loc, val=spec.val, fence=spec.fence,
                mode=spec.mode, rmw_flavor=spec.rmw_flavor,
                rmw_partner=partner, tag=spec.tag,
            )
            next_eid += 1
        n = len(trace.specs)
        po_pairs.extend(
            (base + i, base + j)
            for i in range(n) for j in range(i + 1, n)
        )
        data_pairs.extend((base + a, base + b) for a, b in trace.data)
        ctrl_pairs.extend((base + a, base + b) for a, b in trace.ctrl)
        for reg, val in trace.regs.items():
            reg_obs.add((f"T{tid}:{reg}", val))

    reads = [e for e in events.values() if e.is_read()]
    writes_by_loc: dict[str, list[Event]] = {}
    for ev in events.values():
        if ev.is_write():
            writes_by_loc.setdefault(ev.loc, []).append(ev)

    return _ComboGraph(
        events=events,
        po=Rel(po_pairs),
        data=Rel(data_pairs),
        ctrl=Rel(ctrl_pairs),
        regs=frozenset(reg_obs),
        reads=reads,
        writes_by_loc=writes_by_loc,
        init_writes=init_writes,
        locations=locations,
    )


def _combo_graphs(program: Program):
    """Yield one :class:`_ComboGraph` per trace combination."""
    per_thread, locations = _trace_sets(program)
    for combo in itertools.product(*per_thread):
        yield _materialize_combo(program, locations, combo)


def _naive_size(graph: _ComboGraph) -> int:
    """Arithmetic size of the naive rf × co cross product for one
    combo: Π (value-matching sources per read) × Π (n-1)! co orders."""
    naive = 1
    for rd in graph.reads:
        naive *= sum(
            1 for w in graph.writes_by_loc.get(rd.loc, ())
            if w.val == rd.val and w.eid != rd.eid
        )
    for writes in graph.writes_by_loc.values():
        naive *= math.factorial(len(writes) - 1)
    return naive


# ----------------------------------------------------------------------
# Naive whole-program enumeration (the differential oracle)
# ----------------------------------------------------------------------
def enumerate_executions(program: Program,
                         limit: int = DEFAULT_CANDIDATE_LIMIT,
                         stats: "EnumerationStats | None" = None):
    """Yield every candidate :class:`Execution` of ``program``.

    When ``stats`` is given, combos, the arithmetic candidate count and
    every materialized execution are accounted — the naive path counts
    ``executions_enumerated == candidates_naive`` by construction, so a
    mixed-model sweep reports a 0% pruned fraction for it instead of a
    bogus denominator.
    """
    produced = 0
    for graph in _combo_graphs(program):
        if stats is not None:
            stats.combos += 1
            stats.candidates_naive += _naive_size(graph)
        rf_options: list[list[int]] = []
        feasible = True
        for rd in graph.reads:
            srcs = [
                w.eid for w in graph.writes_by_loc.get(rd.loc, ())
                if w.val == rd.val and w.eid != rd.eid
            ]
            if not srcs:
                feasible = False
                break
            rf_options.append(srcs)
        if not feasible:
            continue

        co_options = [
            list(total_order_extensions(
                [w.eid for w in graph.writes_by_loc[loc]],
                first=graph.init_writes[loc],
            ))
            for loc in graph.locations if loc in graph.writes_by_loc
        ]

        for rf_choice in itertools.product(*rf_options):
            rf = Rel(
                (src, rd.eid) for src, rd in zip(rf_choice, graph.reads)
            )
            for co_parts in itertools.product(*co_options):
                produced += 1
                if stats is not None:
                    stats.executions_enumerated += 1
                if produced > limit:
                    raise ModelError(
                        f"{program.name}: candidate executions exceed "
                        f"limit {limit}"
                    )
                co = Rel(frozenset().union(
                    *(part.pairs for part in co_parts)
                )) if co_parts else Rel()
                yield Execution(
                    events=graph.events, po=graph.po, rf=rf, co=co,
                    data=graph.data, ctrl=graph.ctrl, regs=graph.regs,
                )


# ----------------------------------------------------------------------
# Staged enumeration (the fast path)
# ----------------------------------------------------------------------
@dataclass
class EnumerationStats:
    """Counters from one (or many merged) staged enumeration runs."""

    #: Trace combinations examined.
    combos: int = 0
    #: What the naive rf × co cross product would have materialized,
    #: computed arithmetically — the denominator of the saving.
    candidates_naive: int = 0
    #: Per-read rf sources removed by the coherence-over-po prunes.
    rf_options_pruned: int = 0
    #: Complete rf assignments surviving the DFS (one per leaf).
    rf_choices: int = 0
    #: DFS branches cut because two successful RMWs shared a source.
    rf_rejected_rmw: int = 0
    #: rf extensions whose forced coherence edges were cyclic.
    rf_rejected_coherence: int = 0
    #: rf prefixes rejected by the model's monotone precheck (at any
    #: depth of the DFS — each cut kills the whole subtree below it).
    rf_rejected_precheck: int = 0
    #: The subset of precheck rejections that happened *above* the
    #: leaves, i.e. genuine subtree cuts the per-leaf staged path of
    #: PR 2 could not make.
    rf_prefix_rejected: int = 0
    #: DFS branches skipped because a memoized sleep-set footprint
    #: proved the same rejection without re-running closure/precheck.
    rf_sleep_skips: int = 0
    #: Trace combinations skipped as symmetric images of a canonical
    #: combo (identical-thread permutations; representative mode only).
    symmetry_collapsed: int = 0
    #: Behaviour-distinguishing coherence classes examined instead of
    #: full linear-extension products (representative mode only).
    co_classes: int = 0
    #: Full executions actually materialized (the staged numerator).
    executions_enumerated: int = 0
    #: Executions found consistent and yielded.
    consistent: int = 0

    @property
    def pruned_fraction(self) -> float:
        """Share of the naive cross product never materialized."""
        if not self.candidates_naive:
            return 0.0
        return 1.0 - self.executions_enumerated / self.candidates_naive

    def merge(self, other: "EnumerationStats") -> None:
        self.combos += other.combos
        self.candidates_naive += other.candidates_naive
        self.rf_options_pruned += other.rf_options_pruned
        self.rf_choices += other.rf_choices
        self.rf_rejected_rmw += other.rf_rejected_rmw
        self.rf_rejected_coherence += other.rf_rejected_coherence
        self.rf_rejected_precheck += other.rf_rejected_precheck
        self.rf_prefix_rejected += other.rf_prefix_rejected
        self.rf_sleep_skips += other.rf_sleep_skips
        self.symmetry_collapsed += other.symmetry_collapsed
        self.co_classes += other.co_classes
        self.executions_enumerated += other.executions_enumerated
        self.consistent += other.consistent

    def snapshot(self) -> "EnumerationStats":
        copy = EnumerationStats()
        copy.merge(self)
        return copy


_ENUM_STATS = EnumerationStats()


def enumeration_stats() -> EnumerationStats:
    """Process-wide staged-enumeration counters since the last reset."""
    return _ENUM_STATS.snapshot()


def reset_enumeration_stats() -> None:
    global _ENUM_STATS
    _ENUM_STATS = EnumerationStats()


def _pruned_sources(rd: Event, writes: list[Event],
                    stats: EnumerationStats) -> list[int]:
    """Value-matching rf sources minus choices no consistent execution
    can make.  Each prune follows from sc-per-loc alone:

    * a po-*later* same-thread write W cannot feed rd — rf(W,rd) with
      po_loc(rd,W) is an sc-per-loc cycle;
    * a same-thread source masked by an intervening same-location write
      V cannot feed rd — co(W,V) is forced by po (else co ∪ po_loc
      cycles), and then fr(rd,V) with po_loc(V,rd) cycles;
    * the initialization write cannot feed rd once rd's own thread
      wrote the location po-before rd — the same masking argument with
      W = init (init is co-first by construction).
    """
    own_before = [
        w for w in writes if w.tid == rd.tid and w.idx < rd.idx
    ]
    srcs: list[int] = []
    for w in writes:
        if w.val != rd.val or w.eid == rd.eid:
            continue
        if w.tid == rd.tid and w.idx > rd.idx:
            stats.rf_options_pruned += 1
            continue
        if w.is_init and own_before:
            stats.rf_options_pruned += 1
            continue
        if w.tid == rd.tid and any(v.idx > w.idx for v in own_before):
            stats.rf_options_pruned += 1
            continue
        srcs.append(w.eid)
    return srcs


def _feasible_rf_options(graph: _ComboGraph,
                         stats: EnumerationStats) -> list[list[int]] | None:
    """Pruned rf source lists per read, or None when some read has no
    source left (the combo is infeasible)."""
    rf_options: list[list[int]] = []
    for rd in graph.reads:
        srcs = _pruned_sources(
            rd, graph.writes_by_loc.get(rd.loc, []), stats)
        if not srcs:
            return None
        rf_options.append(srcs)
    return rf_options


def _forced_co_base(graph: _ComboGraph) -> dict[str, set]:
    """rf-independent forced coherence edges, per location: the init
    write first, and same-thread same-location writes in program order
    (both are consequences of sc-per-loc ∪ co well-formedness)."""
    base: dict[str, set] = {}
    for loc, writes in graph.writes_by_loc.items():
        init = graph.init_writes[loc]
        edges = {(init, w.eid) for w in writes if w.eid != init}
        for w1, w2 in itertools.combinations(writes, 2):
            if w1.tid == w2.tid and not w1.is_init:
                if w1.idx < w2.idx:
                    edges.add((w1.eid, w2.eid))
                else:
                    edges.add((w2.eid, w1.eid))
        base[loc] = edges
    return base


def enumerate_consistent(program: Program, model,
                         limit: int = DEFAULT_CANDIDATE_LIMIT,
                         stats: EnumerationStats | None = None):
    """Yield every ``model``-consistent execution via the staged path.

    Requires ``model.supports_staged`` (axioms monotone in rf and co,
    inclusive of sc-per-loc + atomicity); models without it fall back
    to filtering the naive product.  Both paths account identically:
    counters accumulate into the module-wide :func:`enumeration_stats`
    and, when given, ``stats``.
    """
    run = EnumerationStats()
    tracer = get_tracer()
    supports_staged = getattr(model, "supports_staged", False)
    span = "enum.staged" if supports_staged else "enum.naive_fallback"
    try:
        with tracer.span(span, cat="enum", program=program.name):
            if supports_staged:
                yield from _enumerate_staged(program, model, limit, run)
            else:
                for ex in enumerate_executions(program, limit=limit,
                                               stats=run):
                    if model.is_consistent(ex):
                        run.consistent += 1
                        yield ex
    finally:
        if tracer.enabled:
            tracer.counter(
                "enum.stats", combos=run.combos,
                rf_choices=run.rf_choices,
                executions=run.executions_enumerated,
                consistent=run.consistent)
        _ENUM_STATS.merge(run)
        if stats is not None:
            stats.merge(run)


def _enumerate_staged(program: Program, model, limit: int,
                      stats: EnumerationStats):
    from .dpor import RfSearch

    produced = 0
    tracer = get_tracer()
    trace_stages = tracer.enabled
    for graph in _combo_graphs(program):
        stats.combos += 1
        if trace_stages:
            tracer.instant("enum.combo", cat="enum",
                           combo=stats.combos,
                           reads=len(graph.reads))

        naive = _naive_size(graph)
        stats.candidates_naive += naive
        if naive == 0:
            continue

        rf_options = _feasible_rf_options(graph, stats)
        if rf_options is None:
            continue

        write_ids = {
            loc: [w.eid for w in writes]
            for loc, writes in graph.writes_by_loc.items()
        }

        for rf_choice, forced in RfSearch(graph, rf_options, model,
                                          stats):
            stats.rf_choices += 1
            rf = Rel(
                (src, rd.eid) for src, rd in zip(rf_choice, graph.reads)
            )
            ext_per_loc = [
                list(linear_extensions(write_ids[loc],
                                       forced[loc].pairs))
                for loc in graph.locations
            ]
            for co_parts in itertools.product(*ext_per_loc):
                produced += 1
                stats.executions_enumerated += 1
                if produced > limit:
                    raise ModelError(
                        f"{program.name}: candidate executions exceed "
                        f"limit {limit}"
                    )
                co = Rel(frozenset().union(
                    *(part.pairs for part in co_parts)
                )) if co_parts else Rel()
                ex = Execution(
                    events=graph.events, po=graph.po, rf=rf, co=co,
                    data=graph.data, ctrl=graph.ctrl, regs=graph.regs,
                )
                # rf_stage_consistent is only a monotone *precheck* —
                # even when the forced order is already total, the full
                # axioms must judge the candidate (a model's precheck
                # may be strictly weaker than is_consistent).
                if model.is_consistent(ex):
                    stats.consistent += 1
                    yield ex


# ----------------------------------------------------------------------
# Consistency and behaviour
# ----------------------------------------------------------------------
_BEHAVIOR_CACHE: dict[tuple[Program, str], frozenset] = {}


@dataclass
class BehaviorCacheStats:
    """Hit/miss counters for the behaviour memo (observability layer).

    ``hits``/``misses`` describe the in-process memo; every miss then
    consults the persistent layer, splitting into ``disk_hits`` (loaded
    from :mod:`repro.core.behavior_cache`) and ``disk_misses``
    (enumerated from scratch, then stored).  Both stay zero when the
    disk layer is disabled.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "BehaviorCacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.disk_hits += other.disk_hits
        self.disk_misses += other.disk_misses


_CACHE_STATS = BehaviorCacheStats()


def behavior_cache_stats() -> BehaviorCacheStats:
    """A snapshot of the cache counters since the last reset."""
    return BehaviorCacheStats(hits=_CACHE_STATS.hits,
                              misses=_CACHE_STATS.misses,
                              disk_hits=_CACHE_STATS.disk_hits,
                              disk_misses=_CACHE_STATS.disk_misses)


def consistent_executions(program: Program, model,
                          limit: int | None = None,
                          staged: bool | None = None) -> list[Execution]:
    """All candidate executions consistent in ``model``.

    ``limit`` overrides :data:`DEFAULT_CANDIDATE_LIMIT` (the safety
    valve on materialized candidates); ``staged`` forces the fast or
    the naive path, defaulting to whatever the model supports.
    """
    limit = DEFAULT_CANDIDATE_LIMIT if limit is None else limit
    if staged is None:
        staged = getattr(model, "supports_staged", False)
    if staged:
        return list(enumerate_consistent(program, model, limit=limit))
    return [
        ex for ex in enumerate_executions(program, limit=limit)
        if model.is_consistent(ex)
    ]


#: Environment override for the enumeration strategy behind
#: :func:`behaviors`: ``dpor`` (default — DFS + symmetry + coherence
#: classes), ``staged`` (the DFS without the representative-mode
#: reductions, materializing every consistent execution) or ``naive``
#: (the full cross product, the differential oracle).
REDUCTION_ENV = "REPRO_ENUM_REDUCTION"
REDUCTIONS = ("dpor", "staged", "naive")


def resolve_reduction(reduction: str | None) -> str:
    """Validate a reduction mode, defaulting from the environment."""
    if reduction is None:
        reduction = os.environ.get(REDUCTION_ENV, "").strip().lower() \
            or "dpor"
    if reduction not in REDUCTIONS:
        raise ModelError(
            f"unknown enumeration reduction {reduction!r}; expected "
            f"one of {REDUCTIONS}")
    return reduction


def _enumerate_behaviors(program: Program, model, limit: int | None,
                         reduction: str | None) -> frozenset:
    """Behaviour set via the chosen reduction (no caching)."""
    mode = resolve_reduction(reduction)
    if mode == "dpor":
        from .dpor import reduced_behaviors
        return reduced_behaviors(program, model, limit=limit)
    if mode == "staged":
        return frozenset(
            ex.full_behavior
            for ex in consistent_executions(program, model, limit=limit)
        )
    return frozenset(
        ex.full_behavior
        for ex in consistent_executions(program, model, limit=limit,
                                        staged=False)
    )


def behaviors(program: Program, model, limit: int | None = None,
              reduction: str | None = None) -> frozenset:
    """The set of ``full_behavior`` values of consistent executions.

    Results are memoized in-process and persisted on disk: programs are
    immutable and the cache key is a *content fingerprint* of program
    and model (plus a source-code salt), so two model instances only
    share entries when their class source and configuration agree —
    ``model.name`` alone is not trusted, as ablation-built variants
    legitimately reuse standard names.  A cached result is returned
    without re-enumerating, so ``limit`` only takes effect on misses.

    ``reduction`` picks the enumeration strategy on a miss (see
    :data:`REDUCTIONS`; default ``dpor``, overridable via
    :data:`REDUCTION_ENV`).  All strategies compute the identical set —
    the differential tests pin that — so cache entries are shared
    across modes.
    """
    key = (program, behavior_cache.model_fingerprint(model))
    cached = _BEHAVIOR_CACHE.get(key)
    if cached is None:
        _CACHE_STATS.misses += 1
        cached = behavior_cache.load(program, model)
        if cached is not None:
            _CACHE_STATS.disk_hits += 1
        else:
            if behavior_cache.enabled():
                _CACHE_STATS.disk_misses += 1
            cached = _enumerate_behaviors(program, model, limit,
                                          reduction)
            behavior_cache.store(program, model, cached)
        _BEHAVIOR_CACHE[key] = cached
    else:
        _CACHE_STATS.hits += 1
    return cached


def clear_behavior_cache(disk: bool = False) -> None:
    """Drop memoized behaviours (used by tests that tweak models).

    ``disk=True`` additionally clears the persistent layer.
    """
    _BEHAVIOR_CACHE.clear()
    _CACHE_STATS.hits = 0
    _CACHE_STATS.misses = 0
    _CACHE_STATS.disk_hits = 0
    _CACHE_STATS.disk_misses = 0
    if disk:
        behavior_cache.clear_disk_cache()
