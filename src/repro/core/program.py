"""Litmus-program AST for the axiomatic engine.

A litmus program is a tiny multi-threaded program over shared locations
and thread-local registers (Section 2.1 of the paper).  The same AST
expresses programs at all three levels of the translation pipeline —
x86, TCG IR, and Arm — distinguished by the fence kinds and access
annotations each level permits; :mod:`repro.core.mappings` rewrites a
program from one level into another.

Statements:

* :class:`Store` — write a constant or a register to a location.
* :class:`Load` — read a location into a register.
* :class:`FenceOp` — a fence of some :class:`~repro.core.events.Fence`.
* :class:`Rmw` — a compare-and-swap style atomic update
  ``RMW(loc, expect, new)``; succeeds (atomically writing ``new``) when
  the location holds ``expect``.
* :class:`If` — conditional on a register, creating control
  dependencies (used by MPQ and FMR from the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import LitmusError
from .events import Arch, Fence, Mode, RmwFlavor

Value = "int | str"  # constants, or a register name for data dependencies


@dataclass(frozen=True)
class Store:
    loc: str
    value: int | str
    mode: Mode = Mode.PLAIN
    #: A *syntactic* dependency on a register whose value does not
    #: influence the stored constant — models false dependencies such
    #: as ``X = a*0`` (Section 6.1).  Arm's ``dob`` orders through it;
    #: the TCG IR model does not, which is what makes eliminating it
    #: legal on the IR.
    dep: str | None = None

    def __str__(self) -> str:
        ann = "" if self.mode is Mode.PLAIN else f"^{self.mode.value}"
        dep = f" (dep {self.dep})" if self.dep else ""
        return f"{self.loc}{ann} = {self.value}{dep}"


@dataclass(frozen=True)
class Load:
    reg: str
    loc: str
    mode: Mode = Mode.PLAIN

    def __str__(self) -> str:
        ann = "" if self.mode is Mode.PLAIN else f"^{self.mode.value}"
        return f"{self.reg} = {self.loc}{ann}"


@dataclass(frozen=True)
class FenceOp:
    kind: Fence

    def __str__(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class Rmw:
    """``RMW(loc, expect, new)`` — CAS-style atomic update.

    ``flavor`` selects the event treatment (x86 LOCK RMW, TCG RMW, Arm
    ``RMW1``/``RMW2``); ``acq``/``rel`` add the Arm A/L annotations of
    the ``RMW^A``/``RMW^L``/``RMW^AL`` variants in Figure 1.  ``out``
    optionally names a register receiving the value read.
    """

    loc: str
    expect: int
    new: int
    flavor: RmwFlavor
    acq: bool = False
    rel: bool = False
    out: str | None = None

    def __str__(self) -> str:
        name = {
            RmwFlavor.X86: "RMW",
            RmwFlavor.TCG: "RMW",
            RmwFlavor.AMO: "RMW1",
            RmwFlavor.LXSX: "RMW2",
        }[self.flavor]
        suffix = ("A" if self.acq else "") + ("L" if self.rel else "")
        if suffix:
            name = f"{name}^{suffix}"
        prefix = f"{self.out} = " if self.out else ""
        return f"{prefix}{name}({self.loc},{self.expect},{self.new})"


@dataclass(frozen=True)
class If:
    """``if (reg == value) then_ops else else_ops``."""

    reg: str
    value: int
    then_ops: tuple = ()
    else_ops: tuple = ()

    def __str__(self) -> str:
        body = "; ".join(str(op) for op in self.then_ops)
        out = f"if ({self.reg} == {self.value}) {{ {body} }}"
        if self.else_ops:
            out += " else { " + "; ".join(str(o) for o in self.else_ops) + " }"
        return out


Op = Store | Load | FenceOp | Rmw | If


@dataclass(frozen=True)
class Program:
    """A named litmus program: parallel threads over shared locations."""

    name: str
    arch: Arch
    threads: tuple[tuple[Op, ...], ...]
    #: Initial values; locations default to 0.
    init: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for tid, ops in enumerate(self.threads):
            defined: set[str] = set()
            self._validate_ops(tid, ops, defined)

    def _validate_ops(self, tid: int, ops: tuple[Op, ...],
                      defined: set[str]) -> None:
        for op in ops:
            if isinstance(op, Load):
                defined.add(op.reg)
            elif isinstance(op, Store):
                if isinstance(op.value, str) and op.value not in defined:
                    raise LitmusError(
                        f"{self.name}: T{tid} stores undefined register "
                        f"{op.value!r}"
                    )
                if op.dep is not None and op.dep not in defined:
                    raise LitmusError(
                        f"{self.name}: T{tid} store depends on undefined "
                        f"register {op.dep!r}"
                    )
            elif isinstance(op, Rmw):
                if op.out:
                    defined.add(op.out)
            elif isinstance(op, If):
                if op.reg not in defined:
                    raise LitmusError(
                        f"{self.name}: T{tid} branches on undefined "
                        f"register {op.reg!r}"
                    )
                # Branch arms see a copy so a register defined in only
                # one arm is not considered defined afterwards.
                then_defined = set(defined)
                else_defined = set(defined)
                self._validate_ops(tid, tuple(op.then_ops), then_defined)
                self._validate_ops(tid, tuple(op.else_ops), else_defined)
                defined |= then_defined & else_defined

    # ------------------------------------------------------------------
    def locations(self) -> frozenset[str]:
        locs: set[str] = {loc for loc, _ in self.init}

        def visit(ops: tuple[Op, ...]) -> None:
            for op in ops:
                if isinstance(op, (Store, Load, Rmw)):
                    locs.add(op.loc)
                elif isinstance(op, If):
                    visit(tuple(op.then_ops))
                    visit(tuple(op.else_ops))

        for ops in self.threads:
            visit(ops)
        return frozenset(locs)

    def init_value(self, loc: str) -> int:
        for name, val in self.init:
            if name == loc:
                return val
        return 0

    def pretty(self) -> str:
        lines = [f"{self.name} [{self.arch.value}]"]
        for tid, ops in enumerate(self.threads):
            lines.append(f"  T{tid}: " + "; ".join(str(op) for op in ops))
        return "\n".join(lines)

    def with_arch(self, arch: Arch, suffix: str = "") -> "Program":
        """Copy with a new architecture tag (used by mapping schemes)."""
        return Program(
            name=self.name + suffix,
            arch=arch,
            threads=self.threads,
            init=self.init,
        )

    def with_threads(self, threads: tuple[tuple[Op, ...], ...],
                     arch: Arch | None = None,
                     suffix: str = "") -> "Program":
        return Program(
            name=self.name + suffix,
            arch=arch or self.arch,
            threads=threads,
            init=self.init,
        )
