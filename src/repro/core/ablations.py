"""Named minimality ablations (Section 5.4 / Figures 8-9).

Each entry weakens one fence class out of Risotto's verified mappings;
running it over the litmus corpus shows which tests break — the
executable version of "every placed fence is necessary".

The registry is keyed by name so the parallel evaluation harness can
ship an ablation across a process boundary as a plain string and
rebuild the (unpicklable) mapping closure inside the worker.
"""

from __future__ import annotations

from typing import Callable

from . import litmus_library as L
from . import mappings as M
from .events import Fence
from .mappings import OpMapping
from .models import ARM, TCG, X86
from .models.base import MemoryModel
from .program import FenceOp
from .verifier import AblationResult, ablate, drop_fences, drop_rmw_fence
from ..errors import ModelError


def _drop_frm() -> OpMapping:
    return drop_fences(M.risotto_x86_to_tcg, frozenset({Fence.FRM}),
                       "frm")


def _drop_fww() -> OpMapping:
    return drop_fences(M.risotto_x86_to_tcg, frozenset({Fence.FWW}),
                       "fww")


def _drop_rmw2_leading() -> OpMapping:
    return M.risotto_x86_to_tcg.then(
        drop_rmw_fence(M.risotto_tcg_to_arm_rmw2, leading=True,
                       suffix="lead"))


def _drop_rmw2_trailing() -> OpMapping:
    return M.risotto_x86_to_tcg.then(
        drop_rmw_fence(M.risotto_tcg_to_arm_rmw2, leading=False,
                       suffix="trail"))


def _miscompiled_frm() -> OpMapping:
    """A deliberately wrong backend: read fences lowered to DMBST."""
    base = M.risotto_x86_to_arm_rmw1

    def weakened(op):
        out = []
        for mapped in base.map_op(op):
            if isinstance(mapped, FenceOp) and \
                    mapped.kind is Fence.DMBLD:
                out.append(FenceOp(Fence.DMBST))
            else:
                out.append(mapped)
        return tuple(out)

    return OpMapping("risotto-frm-as-dmbst", base.src_arch,
                     base.tgt_arch, weakened)


#: label -> (mapping builder, target model the mapping lands in).
ABLATION_REGISTRY: dict[str, tuple[Callable[[], OpMapping],
                                   MemoryModel]] = {
    "drop trailing Frm after loads": (_drop_frm, TCG),
    "drop leading Fww before stores": (_drop_fww, TCG),
    "drop leading DMBFF around RMW2": (_drop_rmw2_leading, ARM),
    "drop trailing DMBFF around RMW2": (_drop_rmw2_trailing, ARM),
    "lower Frm to DMBST instead of DMBLD": (_miscompiled_frm, ARM),
}


def run_named_ablation(label: str) -> AblationResult:
    """Build and run one registered ablation over the x86 corpus."""
    try:
        make_mapping, tgt_model = ABLATION_REGISTRY[label]
    except KeyError:
        raise ModelError(
            f"unknown ablation {label!r}; expected one of "
            f"{sorted(ABLATION_REGISTRY)}") from None
    return ablate(L.X86_CORPUS, make_mapping(), X86, tgt_model, label)
