"""Model-checking verifier for Theorem 1 (Transformation Correctness).

The paper proves, in 14k lines of Agda, that its mapping schemes and IR
transformations satisfy:

    for each consistent target execution Xt ∈ [[Pt]]Mt there exists a
    consistent source execution Xs ∈ [[Ps]]Ms with Behav(Xt) = Behav(Xs).

Because behaviours of a program form a finite set here, the quantifier
collapses to *behaviour-set inclusion*:

    behaviors(Pt, Mt)  ⊆  behaviors(Ps, Ms)

This module checks that inclusion exhaustively over litmus programs —
the executable substitute for the mechanized proofs.  It reproduces
every verdict the paper reports: QEMU's RMW bugs (MPQ, SBQ), the FMR
transformation bug, the SBAL Arm-model bug, the correctness of Risotto's
mappings, and the *minimality* of each inserted fence (dropping any one
fence class breaks some corpus test).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..errors import ModelError
from ..obs.trace import get_tracer
from .enumerate import behaviors
from .events import Fence, RmwFlavor
from .litmus_library import LitmusTest, shows
from .mappings import OpMapping
from .models.base import MemoryModel
from .program import FenceOp, If, Op, Program, Rmw


@dataclass(frozen=True)
class MappingVerdict:
    """Result of checking one program under one mapping."""

    test_name: str
    mapping_name: str
    ok: bool
    #: Behaviours of the target that no source execution exhibits.
    new_behaviors: frozenset = frozenset()
    #: Forbidden outcomes (per the litmus annotation) that the target
    #: admits — the human-readable witnesses of a translation bug.
    violated_outcomes: tuple = ()

    def __str__(self) -> str:
        status = "OK" if self.ok else "BROKEN"
        out = f"{self.test_name:<18} {self.mapping_name:<28} {status}"
        if not self.ok and self.violated_outcomes:
            shown = "; ".join(
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(o)) + "}"
                for o in self.violated_outcomes
            )
            out += f"  admits forbidden {shown}"
        return out


@dataclass
class CorpusReport:
    """Aggregated verdicts for a mapping over a corpus."""

    mapping_name: str
    verdicts: list[MappingVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def failures(self) -> list[MappingVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def __str__(self) -> str:
        head = f"mapping {self.mapping_name}: " + (
            "all tests pass" if self.ok
            else f"{len(self.failures)}/{len(self.verdicts)} tests broken"
        )
        return "\n".join([head] + [f"  {v}" for v in self.verdicts])


# ----------------------------------------------------------------------
# Core checks
# ----------------------------------------------------------------------
def check_translation(source: Program, target: Program,
                      src_model: MemoryModel, tgt_model: MemoryModel,
                      test: LitmusTest | None = None,
                      mapping_name: str = "?",
                      limit: int | None = None,
                      *,
                      allow_extra_target_keys: bool = False
                      ) -> MappingVerdict:
    """Theorem 1 via behaviour-set inclusion.

    Register observations are projected to the registers common to both
    programs, so transformations that constant-fold a register away
    (e.g. FMR's RAW elimination) remain comparable.  ``limit`` adjusts
    the candidate-enumeration safety valve for *both* programs — mapped
    targets blow up faster than their sources.

    Projection is only sound in the source direction: keys the *target*
    alone observes would be silently erased, so a mapping that renames
    an observed register (or invents a fresh observable) could corrupt
    it undetected.  Target-only keys therefore raise unless the caller
    opts out with ``allow_extra_target_keys=True`` (which still warns) —
    the opt-out is for deliberate comparisons of a target that observes
    strictly more, never for mapped lowerings, which must preserve the
    source's observables key-for-key.
    """
    tracer = get_tracer()
    with tracer.span("verify.source_behaviors", cat="verify",
                     test=source.name, mapping=mapping_name):
        src_behs = behaviors(source, src_model, limit=limit)
    with tracer.span("verify.target_behaviors", cat="verify",
                     test=source.name, mapping=mapping_name):
        tgt_behs = behaviors(target, tgt_model, limit=limit)

    src_keys = _behavior_keys(src_behs)
    tgt_keys = _behavior_keys(tgt_behs)
    common = src_keys & tgt_keys
    if src_keys and tgt_keys and not common:
        # With no shared observable, every target behaviour projects to
        # the empty set and inclusion holds vacuously — a comparison of
        # unrelated programs, never a proof of translation correctness.
        raise ModelError(
            f"{source.name} vs {target.name} ({mapping_name}): source "
            f"and target share no behaviour keys; inclusion would pass "
            f"vacuously"
        )
    extra_tgt = tgt_keys - common
    if extra_tgt:
        # Target-only observables would be projected away before the
        # inclusion check — a renamed or invented observed register
        # could carry any value and still "pass".
        detail = (
            f"{source.name} vs {target.name} ({mapping_name}): target "
            f"observes keys the source never does "
            f"({', '.join(sorted(extra_tgt))}); projecting them away "
            f"would hide corrupted observables"
        )
        if not allow_extra_target_keys:
            raise ModelError(detail)
        warnings.warn(detail, stacklevel=2)

    src_proj = frozenset(_project(b, common) for b in src_behs)
    new = frozenset(
        b for b in tgt_behs if _project(b, common) not in src_proj
    )

    violated: list = []
    if test is not None:
        for out in test.forbidden:
            if shows(tgt_behs, out) and not shows(src_behs, out):
                violated.append(out)

    return MappingVerdict(
        test_name=source.name,
        mapping_name=mapping_name,
        ok=not new,
        new_behaviors=new,
        violated_outcomes=tuple(violated),
    )


def _behavior_keys(behs: frozenset) -> frozenset:
    keys: set = set()
    for beh in behs:
        keys |= {k for k, _ in beh}
    return frozenset(keys)


def _project(beh: frozenset, keys: frozenset) -> frozenset:
    return frozenset((k, v) for k, v in beh if k in keys)


def check_mapping(test: LitmusTest, mapping: OpMapping,
                  src_model: MemoryModel,
                  tgt_model: MemoryModel,
                  limit: int | None = None, *,
                  allow_extra_target_keys: bool = False) -> MappingVerdict:
    """Map the test's program and check Theorem 1 for it."""
    target = mapping.apply(test.program)
    verdict = check_translation(
        test.program, target, src_model, tgt_model,
        test=test, mapping_name=mapping.name, limit=limit,
        allow_extra_target_keys=allow_extra_target_keys,
    )
    return verdict


def check_corpus(corpus: tuple[LitmusTest, ...], mapping: OpMapping,
                 src_model: MemoryModel,
                 tgt_model: MemoryModel,
                 limit: int | None = None, *,
                 allow_extra_target_keys: bool = False) -> CorpusReport:
    report = CorpusReport(mapping_name=mapping.name)
    for test in corpus:
        report.verdicts.append(
            check_mapping(test, mapping, src_model, tgt_model,
                          limit=limit,
                          allow_extra_target_keys=allow_extra_target_keys)
        )
    return report


# ----------------------------------------------------------------------
# Sanity: the litmus annotations themselves hold in the source model
# ----------------------------------------------------------------------
def check_annotations(test: LitmusTest, model: MemoryModel,
                      limit: int | None = None) -> list[str]:
    """Return problems with the test's forbidden/allowed annotations."""
    problems = []
    behs = behaviors(test.program, model, limit=limit)
    for out in test.forbidden:
        if shows(behs, out):
            problems.append(
                f"{test.name}: outcome {dict(sorted(out))} marked "
                f"forbidden but {model.name} allows it"
            )
    for out in test.allowed:
        if not shows(behs, out):
            problems.append(
                f"{test.name}: outcome {dict(sorted(out))} marked "
                f"allowed but {model.name} forbids it"
            )
    return problems


# ----------------------------------------------------------------------
# Minimality ablation (Section 5.4 / Figures 8-9)
# ----------------------------------------------------------------------
def drop_fences(mapping: OpMapping, kinds: frozenset[Fence],
                suffix: str) -> OpMapping:
    """A weakened mapping that omits the given fence kinds.

    The strip recurses into ``If`` arms: a lowering may place fences
    inside a mapped conditional (MPQ-style RMW guards do), and leaving
    those behind would overstate fence necessity on branchy programs —
    the ablation would report "broken without the fence" while the
    fence was in fact still there.
    """

    def strip(ops: tuple[Op, ...]) -> tuple[Op, ...]:
        out = []
        for mapped in ops:
            if isinstance(mapped, FenceOp) and mapped.kind in kinds:
                continue
            if isinstance(mapped, If):
                mapped = If(
                    mapped.reg, mapped.value,
                    then_ops=strip(mapped.then_ops),
                    else_ops=strip(mapped.else_ops),
                )
            out.append(mapped)
        return tuple(out)

    def weakened(op: Op) -> tuple[Op, ...]:
        return strip(tuple(mapping.map_op(op)))

    return OpMapping(
        name=f"{mapping.name}-minus-{suffix}",
        src_arch=mapping.src_arch,
        tgt_arch=mapping.tgt_arch,
        map_op=weakened,
    )


def drop_rmw_fence(mapping: OpMapping, leading: bool,
                   suffix: str) -> OpMapping:
    """Weaken only the DMBFF emitted around RMW lowerings.

    Matching on the fence *kind* matters: a lowering may legitimately
    start or end with some other fence, and ablating such a mapping
    must not silently strip it instead of the DMBFF this weakening is
    about.
    """

    def weakened(op: Op) -> tuple[Op, ...]:
        mapped = list(mapping.map_op(op))
        if not isinstance(op, Rmw):
            return tuple(mapped)
        if leading and mapped and isinstance(mapped[0], FenceOp) \
                and mapped[0].kind is Fence.DMBFF:
            mapped = mapped[1:]
        if not leading and mapped and isinstance(mapped[-1], FenceOp) \
                and mapped[-1].kind is Fence.DMBFF:
            mapped = mapped[:-1]
        return tuple(mapped)

    return OpMapping(
        name=f"{mapping.name}-minus-{suffix}",
        src_arch=mapping.src_arch,
        tgt_arch=mapping.tgt_arch,
        map_op=weakened,
    )


@dataclass(frozen=True)
class AblationResult:
    """Whether removing a fence class broke at least one corpus test."""

    ablation: str
    broken_tests: tuple[str, ...]

    @property
    def fence_was_necessary(self) -> bool:
        return bool(self.broken_tests)


def ablate(corpus: tuple[LitmusTest, ...], weakened: OpMapping,
           src_model: MemoryModel, tgt_model: MemoryModel,
           label: str, limit: int | None = None) -> AblationResult:
    """Run a weakened mapping over the corpus; collect broken tests."""
    broken = []
    for test in corpus:
        verdict = check_mapping(test, weakened, src_model, tgt_model,
                                limit=limit)
        if not verdict.ok:
            broken.append(test.name)
    return AblationResult(ablation=label, broken_tests=tuple(broken))
