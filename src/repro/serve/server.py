"""The translation-as-a-service server (``python -m repro serve``).

Protocol: one JSON object per line over a TCP connection.  Requests::

    {"op": "submit", "job": {... JobSpec.to_json ...}}
    {"op": "ping"} | {"op": "stats"} | {"op": "shutdown"}

Responses mirror the request order on the connection (pipelining is
how one client gets its requests batched)::

    {"schema": "repro-serve/1", "op": "submit", "ok": true,
     "result": {... JobResult.to_json ...}}
    {"schema": "repro-serve/1", "op": "submit", "ok": false,
     "error": {"code": ..., "message": ..., "retryable": ...}}

Architecture: every connection handler enqueues submitted jobs into
one :class:`JobDispatcher`.  A single dispatcher thread gathers the
queue for up to ``batch_window`` seconds (or ``max_batch`` jobs),
partitions the gathered jobs into namespace-compatible batches
(:func:`form_batches` — pure and unit-tested), and ships each batch
to a ``ProcessPoolExecutor`` worker, which pins the tenant's cache
namespaces once and runs the jobs back to back.  Worker processes are
long-lived, so their in-memory translation LRUs stay warm across
requests — the serving win the paper's cache layer was built for.

Per-request observability flows into the process metrics registry
(queue wait, batch size, cache hit tier, end-to-end latency, typed
error counts) and the trace lanes (one ``serve.batch`` span per
dispatched batch).
"""

from __future__ import annotations

import argparse
import json
import queue
import socketserver
import sys
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import ErrorInfo, JobError, classify_error
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..workloads.parallel import default_workers
from .jobs import JOB_SCHEMA, JobResult, JobSpec, batch_key, run_job

#: Histogram bucket bounds for second-scale serve latencies (the
#: registry default buckets are count-scale and useless here).
TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Batch-size histogram bounds.
BATCH_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ServeConfig:
    """Server knobs (the CLI flags, as one value)."""

    host: str = "127.0.0.1"
    port: int = 7421
    #: pool size; ``None`` = :func:`default_workers`, ``0`` = inline
    #: execution in the dispatcher thread (tests, tiny deployments).
    workers: int | None = None
    #: how long the dispatcher waits to grow a batch, seconds.
    batch_window: float = 0.005
    #: jobs per dispatched batch, upper bound.
    max_batch: int = 8


def form_batches(items: list, max_batch: int, key=batch_key) -> list:
    """Partition gathered items into dispatchable batches.

    Rules (unit-tested in ``tests/serve/test_loadgen.py``):

    * only items with equal ``key(item)`` share a batch (the worker
      pins one cache namespace per batch);
    * arrival order is preserved within a key, and batches are emitted
      in first-arrival order of their key;
    * no batch exceeds ``max_batch`` items.
    """
    if max_batch < 1:
        raise JobError(f"max_batch must be >= 1, got {max_batch}")
    groups: dict = {}
    order: list = []
    for item in items:
        k = key(item)
        if k not in groups:
            groups[k] = []
            order.append(k)
        groups[k].append(item)
    batches = []
    for k in order:
        bucket = groups[k]
        for i in range(0, len(bucket), max_batch):
            batches.append(bucket[i:i + max_batch])
    return batches


def _run_batch(payloads: list[dict]) -> list[dict]:
    """Worker entry point: run one batch of wire jobs, return wire
    results.  Top-level so the pool can pickle it; every outcome is a
    result dict — errors are classified, never raised."""
    results = []
    for payload in payloads:
        try:
            job = JobSpec.from_json(payload)
        except Exception as exc:  # noqa: BLE001 - boundary
            stub = JobSpec(
                kind=str(payload.get("kind") or "kernel"),
                benchmark=str(payload.get("benchmark") or "?"),
                variant=str(payload.get("variant") or "?"),
                job_id=str(payload.get("job_id") or ""))
            results.append(JobResult.from_error(
                stub, classify_error(exc)).to_json())
            continue
        results.append(run_job(job).to_json())
    return results


@dataclass
class _Pending:
    job: JobSpec
    future: Future
    enqueued_at: float


class JobDispatcher:
    """Batched async dispatch over the process pool.

    ``submit`` returns a future resolving to a :class:`JobResult`
    (never raising for job failures — those come back typed).  One
    dispatcher thread owns batching; the pool owns execution.
    """

    _SHUTDOWN = object()

    def __init__(self, *, workers: int | None = None,
                 batch_window: float = 0.005, max_batch: int = 8):
        self.workers = default_workers() if workers is None \
            else max(0, workers)
        self.batch_window = batch_window
        self.max_batch = max(1, max_batch)
        self.jobs_dispatched = 0
        self.batches_dispatched = 0
        self._queue: queue.Queue = queue.Queue()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._registry = get_registry()
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, job: JobSpec) -> Future:
        if self._closed:
            raise JobError("dispatcher is shut down")
        pending = _Pending(job=job, future=Future(),
                           enqueued_at=time.perf_counter())
        self._queue.put(pending)
        return pending.future

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.put(self._SHUTDOWN)
        self._thread.join(timeout=30)
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    # ------------------------------------------------------------------
    def _get_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers)
            return self._pool

    def _drop_pool(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def _gather(self, first: _Pending) -> tuple[list[_Pending], bool]:
        """One batching window: the first item plus whatever arrives
        before the window closes or the size cap is hit.  Returns the
        gathered items and whether shutdown was seen."""
        batch = [first]
        deadline = time.perf_counter() + self.batch_window
        while len(batch) < self.max_batch:
            timeout = deadline - time.perf_counter()
            if timeout <= 0:
                break
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                break
            if item is self._SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._SHUTDOWN:
                return
            gathered, stop = self._gather(item)
            for batch in form_batches(gathered, self.max_batch,
                                      key=lambda p: batch_key(p.job)):
                self._dispatch(batch)
            if stop:
                return

    def _dispatch(self, batch: list[_Pending]) -> None:
        now = time.perf_counter()
        payloads = [p.job.to_json() for p in batch]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("serve.batch", jobs=len(batch))
        self.batches_dispatched += 1
        self.jobs_dispatched += len(batch)
        queue_waits = [now - p.enqueued_at for p in batch]
        if self.workers == 0:
            results = _run_batch(payloads)
            self._deliver(batch, results, queue_waits)
            return
        try:
            pool_future = self._get_pool().submit(_run_batch, payloads)
        except Exception as exc:  # noqa: BLE001 - pool creation died
            self._fail_batch(batch, queue_waits, exc)
            return
        pool_future.add_done_callback(
            lambda f, b=batch, w=queue_waits: self._on_done(f, b, w))

    def _on_done(self, pool_future: Future, batch: list[_Pending],
                 queue_waits: list[float]) -> None:
        try:
            results = pool_future.result()
        except BrokenProcessPool as exc:
            self._drop_pool()
            self._fail_batch(batch, queue_waits, exc,
                             code="unavailable")
            return
        except Exception as exc:  # noqa: BLE001 - boundary
            self._fail_batch(batch, queue_waits, exc)
            return
        self._deliver(batch, results, queue_waits)

    def _fail_batch(self, batch: list[_Pending],
                    queue_waits: list[float], exc: Exception,
                    code: str | None = None) -> None:
        info = classify_error(exc)
        if code is not None:
            info = ErrorInfo(code=code, message=info.message,
                             retryable=True)
        for pending, wait in zip(batch, queue_waits):
            result = JobResult.from_error(pending.job, info)
            result.queue_seconds = wait
            result.batch_size = len(batch)
            self._record(result)
            pending.future.set_result(result)

    def _deliver(self, batch: list[_Pending], results: list[dict],
                 queue_waits: list[float]) -> None:
        for pending, payload, wait in zip(batch, results, queue_waits):
            try:
                result = JobResult.from_json(payload)
            except Exception as exc:  # noqa: BLE001
                result = JobResult.from_error(pending.job,
                                              classify_error(exc))
            result.queue_seconds = wait
            result.batch_size = len(batch)
            self._record(result)
            pending.future.set_result(result)

    # ------------------------------------------------------------------
    def _record(self, result: JobResult) -> None:
        """Per-request metrics into the process registry."""
        reg = self._registry
        reg.counter("repro_serve_jobs_total",
                    "Jobs served, by kind/namespace/cache tier") \
            .labels(kind=result.kind, namespace=result.namespace,
                    cache_tier=result.cache_tier).inc()
        if not result.ok and result.error is not None:
            reg.counter("repro_serve_errors_total",
                        "Typed job errors, by taxonomy code") \
                .labels(code=result.error.code).inc()
        reg.histogram("repro_serve_queue_seconds",
                      "Dispatcher queue wait per job",
                      buckets=TIME_BUCKETS) \
            .observe(result.queue_seconds)
        reg.histogram("repro_serve_batch_size",
                      "Jobs per dispatched batch",
                      buckets=BATCH_BUCKETS) \
            .observe(result.batch_size)
        reg.histogram("repro_serve_exec_seconds",
                      "Worker-side execution seconds per job",
                      buckets=TIME_BUCKETS) \
            .observe(result.wall_seconds)


# ----------------------------------------------------------------------
# The socket front-end
# ----------------------------------------------------------------------
class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a reader loop (this thread) and a writer
    thread draining responses in request order — the queue of futures
    preserves ordering while letting many jobs be in flight, which is
    exactly what lets a single client's requests form batches."""

    def handle(self) -> None:  # noqa: C901 - protocol switch
        server: ReproServer = self.server.repro_server  # type: ignore
        out: queue.Queue = queue.Queue()
        writer = threading.Thread(target=self._write_loop,
                                  args=(out,), daemon=True)
        writer.start()
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                out.put(self._respond(server, line))
                if self._shutdown_requested:
                    break
        finally:
            out.put(None)
            writer.join(timeout=60)
            if self._shutdown_requested:
                server.request_shutdown()

    _shutdown_requested = False

    def _respond(self, server: "ReproServer", line: str):
        """Parse one request line; returns either a response dict or
        a (op, future) pair the writer resolves in order."""
        try:
            request = json.loads(line)
        except ValueError as exc:
            return _error_response(
                "?", ErrorInfo("bad-request",
                               f"unparseable request: {exc}", False))
        op = request.get("op") if isinstance(request, dict) else None
        if op == "ping":
            return {"schema": JOB_SCHEMA, "op": "ping", "ok": True}
        if op == "stats":
            return {"schema": JOB_SCHEMA, "op": "stats", "ok": True,
                    "stats": server.stats_payload()}
        if op == "shutdown":
            self._shutdown_requested = True
            return {"schema": JOB_SCHEMA, "op": "shutdown",
                    "ok": True}
        if op == "submit":
            try:
                job = JobSpec.from_json(request.get("job"))
                return ("submit", server.dispatcher.submit(job))
            except Exception as exc:  # noqa: BLE001 - boundary
                return _error_response("submit", classify_error(exc))
        return _error_response(
            str(op), ErrorInfo("bad-request",
                               f"unknown op {op!r}", False))

    def _write_loop(self, out: queue.Queue) -> None:
        while True:
            item = out.get()
            if item is None:
                return
            if isinstance(item, tuple):
                op, future = item
                result: JobResult = future.result()
                item = {"schema": JOB_SCHEMA, "op": op,
                        "ok": result.ok,
                        "result": result.to_json()}
                if not result.ok and result.error is not None:
                    item["error"] = result.error.to_json()
            try:
                self.wfile.write(
                    (json.dumps(item, separators=(",", ":"))
                     + "\n").encode("utf-8"))
                self.wfile.flush()
            except OSError:
                return  # client went away; drain and exit


def _error_response(op: str, info: ErrorInfo) -> dict:
    return {"schema": JOB_SCHEMA, "op": op, "ok": False,
            "error": info.to_json()}


class ReproServer:
    """The assembled service: TCP front-end + batched dispatcher."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.started_at = time.time()
        self.dispatcher = JobDispatcher(
            workers=self.config.workers,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch)
        self._tcp = _ThreadingServer(
            (self.config.host, self.config.port), _Handler)
        self._tcp.repro_server = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def stats_payload(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.dispatcher.workers,
            "batch_window": self.dispatcher.batch_window,
            "max_batch": self.dispatcher.max_batch,
            "jobs_dispatched": self.dispatcher.jobs_dispatched,
            "batches_dispatched": self.dispatcher.batches_dispatched,
            "metrics": get_registry().snapshot(),
        }

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        self._tcp.serve_forever(poll_interval=0.1)

    def start_background(self) -> tuple[str, int]:
        """Serve from a daemon thread; returns the bound address
        (tests and the loadgen's ``--spawn`` mode)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept",
            daemon=True)
        self._serve_thread.start()
        return self.address

    def request_shutdown(self) -> None:
        """Async-safe shutdown trigger (used by the shutdown op)."""
        threading.Thread(target=self.close, daemon=True).start()

    def close(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        self.dispatcher.close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)


# ----------------------------------------------------------------------
# CLI (`python -m repro serve`)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Translation-as-a-service: line-delimited JSON "
                    "jobs over TCP, batched over the process pool.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7421,
                        help="bind port (default 7421; 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: REPRO_WORKERS or "
                             "cpu count; 0 = inline execution)")
    parser.add_argument("--batch-window-ms", type=float, default=5.0,
                        help="batching window in milliseconds "
                             "(default 5)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="max jobs per dispatched batch "
                             "(default 8)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    server = ReproServer(ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        batch_window=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch))
    host, port = server.address
    print(f"repro-serve {JOB_SCHEMA} listening on {host}:{port} "
          f"(workers={server.dispatcher.workers}, "
          f"window={server.dispatcher.batch_window * 1000:.1f}ms, "
          f"max_batch={server.dispatcher.max_batch})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
