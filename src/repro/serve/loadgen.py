"""QPS load harness for the serve front-end.

Replays a deterministic, seed-generated mix of kernel / library / CAS
jobs against a running server at a configurable request rate, over
several pipelined client connections, and reports:

* end-to-end latency percentiles (p50/p95/p99, linear interpolation —
  :func:`percentile` is the unit-tested primitive),
* achieved throughput vs the requested QPS,
* cache-tier and error breakdowns, queue-wait and batch-size stats
  straight off the typed results.

The machine-readable export reuses the bench pipeline end to end: the
deterministic per-cell quantities (cycles, checksums — identical for
every run of the same seed) are synthesized into
:class:`~repro.workloads.parallel.RunRow` cells and flow through
``bench_payload`` into ``results/bench_serve.json`` with an optional
history record, so the perf sentinel gates the served results exactly
like a local sweep; the host-noisy latency numbers ride in ``extra``,
which the sentinel ignores.
"""

from __future__ import annotations

import argparse
import random
import struct
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from ..errors import ReproError
from ..workloads.casbench import CasConfig
from ..workloads.kernels import KernelSpec
from ..workloads.parallel import RunRow, SweepResult
from .client import ServeClient
from .jobs import JobResult, JobSpec, cas_job, kernel_job, library_job
from .server import ReproServer, ServeConfig

#: The loadgen's kernel shapes: Figure 12 mixes scaled down to serve
#: request size (a few ms each), deterministic like their parents.
_KERNEL_SHAPES: tuple[KernelSpec, ...] = (
    KernelSpec(name="serve-hist", loads=2, stores=1, alu=4, fp=0,
               iterations=60, threads=2, working_set=64),
    KernelSpec(name="serve-linreg", loads=2, stores=0, alu=2, fp=2,
               iterations=60, threads=2, working_set=64),
    KernelSpec(name="serve-stream", loads=1, stores=1, alu=1, fp=0,
               iterations=80, threads=2, working_set=64),
)


def _bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


#: (function, args, calls) library calls against libm.
_LIBRARY_CALLS: tuple[tuple[str, tuple[int, ...], int], ...] = (
    ("sqrt", (_bits(0.5),), 20),
    ("sin", (_bits(0.5),), 12),
    ("log", (_bits(1.5),), 12),
)

#: CAS configurations: one uncontended, one contended.
_CAS_CONFIGS: tuple[CasConfig, ...] = (
    CasConfig(threads=2, variables=2, attempts=60),
    CasConfig(threads=2, variables=1, attempts=60),
)


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run: rate, volume, tenancy and workload mix."""

    host: str = "127.0.0.1"
    port: int = 7421
    qps: float = 25.0
    jobs: int = 24
    seed: int = 11
    clients: int = 2
    namespace: str = "loadgen"
    variants: tuple[str, ...] = ("qemu", "risotto")
    #: relative weights of (kernel, library, cas) in the mix.
    mix: tuple[float, float, float] = (0.4, 0.4, 0.2)


@dataclass
class LoadgenReport:
    """Everything one load run measured."""

    config: LoadgenConfig
    jobs: list[JobSpec] = field(default_factory=list)
    results: list[JobResult] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def errors(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def achieved_qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.results) / self.wall_seconds

    def cache_tiers(self) -> dict[str, int]:
        return dict(Counter(r.cache_tier for r in self.results))

    def xlat_totals(self) -> dict[str, int]:
        return {
            "hits": sum(r.xlat_hits for r in self.results),
            "misses": sum(r.xlat_misses for r in self.results),
            "disk_hits": sum(r.xlat_disk_hits for r in self.results),
        }


# ----------------------------------------------------------------------
# Percentile math (unit-tested)
# ----------------------------------------------------------------------
def percentile(values, q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation between
    closest ranks — numpy's default method, dependency-free."""
    if not 0 <= q <= 100:
        raise ReproError(f"percentile q must be in [0, 100], got {q}")
    xs = sorted(values)
    if not xs:
        raise ReproError("percentile of an empty sample")
    if len(xs) == 1:
        return float(xs[0])
    pos = (len(xs) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return float(xs[lo] * (1.0 - frac) + xs[hi] * frac)


def latency_summary(latencies) -> dict:
    """The percentile/mean/extremes block of the report."""
    xs = list(latencies)
    if not xs:
        return {"count": 0}
    return {
        "count": len(xs),
        "p50": percentile(xs, 50),
        "p95": percentile(xs, 95),
        "p99": percentile(xs, 99),
        "mean": sum(xs) / len(xs),
        "min": min(xs),
        "max": max(xs),
    }


# ----------------------------------------------------------------------
# Deterministic job generation
# ----------------------------------------------------------------------
def gen_jobs(config: LoadgenConfig) -> list[JobSpec]:
    """The run's job list — a pure function of (seed, jobs, variants,
    mix, namespace), so two runs of one config replay identical work
    and their per-cell results are bit-comparable."""
    rng = random.Random(config.seed)
    kinds = ("kernel", "library", "cas")
    jobs: list[JobSpec] = []
    for i in range(config.jobs):
        kind = rng.choices(kinds, weights=config.mix)[0]
        variant = rng.choice(config.variants)
        job_id = f"lg-{config.seed}-{i:04d}"
        if kind == "kernel":
            spec = rng.choice(_KERNEL_SHAPES)
            jobs.append(kernel_job(
                spec, variant=variant, seed=7,
                namespace=config.namespace, job_id=job_id))
        elif kind == "library":
            function, args, calls = rng.choice(_LIBRARY_CALLS)
            jobs.append(library_job(
                function, args, calls, variant=variant,
                library="libm", seed=7,
                namespace=config.namespace, job_id=job_id))
        else:
            cas = rng.choice(_CAS_CONFIGS)
            jobs.append(cas_job(
                cas, variant=variant, seed=7,
                namespace=config.namespace, job_id=job_id))
    return jobs


# ----------------------------------------------------------------------
# The replay loop
# ----------------------------------------------------------------------
def _client_worker(config: LoadgenConfig,
                   assigned: list[tuple[int, JobSpec]],
                   epoch: float, out: dict) -> None:
    """One connection's replay: a writer thread paces the sends on
    the global schedule (job *i* goes out at ``epoch + i/qps``) while
    this thread reads the pipelined responses in order — in-flight
    depth is what gives the server's dispatcher batches to form."""
    client = ServeClient(config.host, config.port)
    send_times: dict[int, float] = {}

    def _writer() -> None:
        for index, job in assigned:
            target = epoch + index / config.qps
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            send_times[index] = time.perf_counter()
            client._send({"op": "submit", "job": job.to_json()})

    writer = threading.Thread(target=_writer, daemon=True)
    writer.start()
    try:
        for index, _job in assigned:
            result = client._result_of(client._recv())
            out[index] = (result,
                          time.perf_counter() - send_times[index])
    finally:
        writer.join(timeout=60)
        client.close()


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Replay the generated mix against the configured server."""
    jobs = gen_jobs(config)
    clients = max(1, min(config.clients, len(jobs)))
    assignments: list[list[tuple[int, JobSpec]]] = \
        [[] for _ in range(clients)]
    for index, job in enumerate(jobs):
        assignments[index % clients].append((index, job))
    out: dict[int, tuple[JobResult, float]] = {}
    epoch = time.perf_counter() + 0.05
    started = time.perf_counter()
    threads = [
        threading.Thread(target=_client_worker,
                         args=(config, assigned, epoch, out),
                         daemon=True)
        for assigned in assignments if assigned
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if len(out) != len(jobs):
        missing = sorted(set(range(len(jobs))) - set(out))
        raise ReproError(
            f"loadgen lost {len(missing)} of {len(jobs)} responses "
            f"(indexes {missing[:5]}...)")
    ordered = [out[i] for i in range(len(jobs))]
    return LoadgenReport(
        config=config,
        jobs=jobs,
        results=[r for r, _ in ordered],
        latencies=[lat for _, lat in ordered],
        wall_seconds=wall)


# ----------------------------------------------------------------------
# Reporting / export
# ----------------------------------------------------------------------
def synthesized_rows(report: LoadgenReport) -> list[RunRow]:
    """One deterministic RunRow per (benchmark, variant) cell.

    Only spec-determined quantities go in (cycles, fences, checksum —
    the first successful result of each cell; repeats are identical
    by determinism), so the bench history's row metrics gate the
    *served results*, not the host's mood.
    """
    cells: dict[tuple[str, str], JobResult] = {}
    for result in report.results:
        if result.ok:
            cells.setdefault((result.benchmark, result.variant),
                             result)
    rows = []
    for (benchmark, variant), result in sorted(cells.items()):
        rows.append(RunRow(
            benchmark=benchmark,
            variant=variant,
            cycles=result.cycles,
            fence_cycles=result.fence_cycles,
            total_cycles=result.total_cycles,
            checksum=result.checksum,
            exit_code=result.exit_code,
            blocks_translated=result.blocks_translated,
        ))
    return rows


def bench_extra(report: LoadgenReport) -> dict:
    """The free-form (non-gated) block of the export."""
    results = report.results
    queue_waits = [r.queue_seconds for r in results]
    batch_sizes = [r.batch_size for r in results]
    return {
        "requested_qps": report.config.qps,
        "achieved_qps": report.achieved_qps,
        "jobs": len(results),
        "clients": report.config.clients,
        "namespace": report.config.namespace,
        "errors": report.errors,
        "error_codes": dict(Counter(
            r.error.code for r in results
            if not r.ok and r.error is not None)),
        "latency": latency_summary(report.latencies),
        "cache_tiers": report.cache_tiers(),
        "xlat": report.xlat_totals(),
        "queue_seconds": latency_summary(queue_waits),
        "mean_batch_size": (sum(batch_sizes) / len(batch_sizes))
        if batch_sizes else 0.0,
        "max_batch_size": max(batch_sizes, default=0),
    }


def bench_config(config: LoadgenConfig) -> dict:
    """The comparability knobs (feeds the history fingerprint)."""
    return {
        "jobs": config.jobs,
        "seed": config.seed,
        "qps": config.qps,
        "clients": config.clients,
        "variants": list(config.variants),
        "namespace": config.namespace,
        "mix": list(config.mix),
    }


def write_report(report: LoadgenReport, path: str,
                 record: bool = False) -> str:
    """``results/bench_serve.json`` through the standard exporter."""
    from ..analysis.export import write_bench_json
    from ..analysis.stats import BenchTable

    rows = synthesized_rows(report)
    table = BenchTable.from_rows("serve", rows)
    sweep = SweepResult(rows=rows, wall_seconds=report.wall_seconds,
                        workers=report.config.clients)
    return str(write_bench_json(
        path, "serve", table=table, sweep=sweep,
        extra=bench_extra(report), config=bench_config(report.config),
        record=record))


def render_report(report: LoadgenReport) -> str:
    lat = latency_summary(report.latencies)
    tiers = report.cache_tiers()
    xlat = report.xlat_totals()
    lines = [
        f"serve loadgen — {len(report.results)} jobs @ "
        f"{report.config.qps:g} qps over {report.config.clients} "
        f"client(s), namespace {report.config.namespace!r}",
        f"  latency  p50 {lat.get('p50', 0) * 1000:8.2f} ms   "
        f"p95 {lat.get('p95', 0) * 1000:8.2f} ms   "
        f"p99 {lat.get('p99', 0) * 1000:8.2f} ms",
        f"  mean {lat.get('mean', 0) * 1000:8.2f} ms   "
        f"min {lat.get('min', 0) * 1000:8.2f} ms   "
        f"max {lat.get('max', 0) * 1000:8.2f} ms",
        f"  throughput {report.achieved_qps:8.2f} qps achieved "
        f"({report.config.qps:g} requested), "
        f"wall {report.wall_seconds:.2f} s",
        f"  errors {report.errors}   cache tiers " + ", ".join(
            f"{tier}={tiers.get(tier, 0)}"
            for tier in ("cold", "disk", "memory", "none")),
        f"  xlat hits={xlat['hits']} misses={xlat['misses']} "
        f"disk_hits={xlat['disk_hits']}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI (`python -m repro loadgen`)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="Replay a deterministic job mix against a "
                    "repro-serve server at a fixed QPS.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421)
    parser.add_argument("--qps", type=float, default=25.0,
                        help="request rate (default 25)")
    parser.add_argument("--jobs", type=int, default=24,
                        help="total jobs to send (default 24)")
    parser.add_argument("--seed", type=int, default=11,
                        help="mix seed (default 11)")
    parser.add_argument("--clients", type=int, default=2,
                        help="concurrent connections (default 2)")
    parser.add_argument("--namespace", default="loadgen",
                        help="cache namespace the jobs run under")
    parser.add_argument("--variants", default="qemu,risotto",
                        help="comma-separated variant mix")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="write the machine-readable export here "
                             "(e.g. results/bench_serve.json)")
    parser.add_argument("--record", action="store_true",
                        help="append the export to the bench history")
    parser.add_argument("--spawn", action="store_true",
                        help="spawn an in-process server on an "
                             "ephemeral port instead of connecting")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for --spawn (0 = inline)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    variants = tuple(v.strip() for v in args.variants.split(",")
                     if v.strip())
    if not variants:
        raise ReproError(f"empty variant list {args.variants!r}")
    server = None
    host, port = args.host, args.port
    if args.spawn:
        server = ReproServer(ServeConfig(host="127.0.0.1", port=0,
                                         workers=args.workers))
        host, port = server.start_background()
    try:
        config = LoadgenConfig(
            host=host, port=port, qps=args.qps, jobs=args.jobs,
            seed=args.seed, clients=args.clients,
            namespace=args.namespace, variants=variants)
        report = run_loadgen(config)
        print(render_report(report))
        if args.bench_json:
            path = write_report(report, args.bench_json,
                                record=args.record)
            print(f"wrote {path}")
    finally:
        if server is not None:
            server.close()
    return 1 if report.errors else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
