"""Translation-as-a-service: typed jobs, a batching server, a client
and a QPS load harness over the :mod:`repro.api` run surface.

* :mod:`repro.serve.jobs` — the ``repro-serve/1`` JobSpec/JobResult
  schema and the in-process executor (`api.submit` is built on it);
* :mod:`repro.serve.server` — ``python -m repro serve``: batched
  async dispatch over the process pool behind a line-delimited JSON
  socket protocol;
* :mod:`repro.serve.client` — the matching client;
* :mod:`repro.serve.loadgen` — ``python -m repro loadgen``: replay a
  deterministic job mix at a fixed QPS, report latency percentiles.
"""

from .client import ServeClient
from .jobs import (
    JOB_SCHEMA,
    JobResult,
    JobSpec,
    batch_key,
    cas_job,
    execute_job,
    kernel_job,
    library_job,
    run_job,
)
from .server import JobDispatcher, ReproServer, ServeConfig, \
    form_batches

__all__ = [
    "JOB_SCHEMA", "JobSpec", "JobResult", "batch_key",
    "kernel_job", "library_job", "cas_job",
    "execute_job", "run_job",
    "ServeClient", "ReproServer", "ServeConfig", "JobDispatcher",
    "form_batches",
]
