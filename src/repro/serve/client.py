"""Client for the serve protocol (line-delimited JSON over TCP).

:class:`ServeClient` speaks the same :class:`~repro.serve.jobs`
codecs as the server, so a submitted :class:`JobSpec` round-trips to
a :class:`JobResult` with no re-interpretation anywhere.
``submit_many`` pipelines: it writes every request before reading any
response, which is what lets the server's dispatcher see several of
this client's jobs inside one batching window.

Job *failures* are data, not exceptions: a result with ``ok=False``
carries its typed :class:`~repro.errors.ErrorInfo`.  Only protocol
breakage (unparseable response, schema mismatch, dead socket) raises.
"""

from __future__ import annotations

import json
import socket

from ..errors import ErrorInfo, JobError
from .jobs import JOB_SCHEMA, JobResult, JobSpec


class ServeClient:
    """One connection to a repro-serve server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7421,
                 timeout: float = 120.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------
    def _send(self, request: dict) -> None:
        self._wfile.write(
            (json.dumps(request, separators=(",", ":")) + "\n")
            .encode("utf-8"))
        self._wfile.flush()

    def _recv(self) -> dict:
        line = self._rfile.readline()
        if not line:
            raise JobError("server closed the connection")
        try:
            response = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise JobError(f"unparseable response: {exc}") from None
        if response.get("schema") != JOB_SCHEMA:
            raise JobError(f"response schema "
                           f"{response.get('schema')!r} unsupported "
                           f"(expected {JOB_SCHEMA!r})")
        return response

    def _result_of(self, response: dict) -> JobResult:
        payload = response.get("result")
        if payload is not None:
            return JobResult.from_json(payload)
        # Request-level rejection (bad op / unparseable job): surface
        # it as the typed error the protocol promised.
        error = response.get("error")
        if error is not None:
            raise JobError(
                f"[{error.get('code')}] {error.get('message')}")
        raise JobError(f"malformed response: {response!r}")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def submit(self, job: JobSpec) -> JobResult:
        """Submit one job and wait for its result."""
        self._send({"op": "submit", "job": job.to_json()})
        return self._result_of(self._recv())

    def submit_many(self, jobs) -> list[JobResult]:
        """Pipeline a job list: all requests go out before any result
        is read; results come back in submission order."""
        jobs = list(jobs)
        for job in jobs:
            self._send({"op": "submit", "job": job.to_json()})
        return [self._result_of(self._recv()) for _ in jobs]

    def ping(self) -> bool:
        self._send({"op": "ping"})
        return bool(self._recv().get("ok"))

    def stats(self) -> dict:
        self._send({"op": "stats"})
        response = self._recv()
        if not response.get("ok"):
            error = ErrorInfo.from_json(response.get("error", {
                "code": "internal", "message": "stats failed"}))
            raise JobError(f"[{error.code}] {error.message}")
        return response.get("stats", {})

    def shutdown(self) -> None:
        """Ask the server to exit (it finishes in-flight work)."""
        self._send({"op": "shutdown"})
        self._recv()

    # ------------------------------------------------------------------
    def close(self) -> None:
        for stream in (self._wfile, self._rfile):
            try:
                stream.close()
            except OSError:  # pragma: no cover
                pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
