"""Typed job schema for translation-as-a-service.

A :class:`JobSpec` is the canonical description of one run — what
``api.run_kernel`` / ``run_library_workload`` / ``run_cas_benchmark``
used to take as argument lists — and a :class:`JobResult` the typed
response.  Both carry JSON codecs under the :data:`JOB_SCHEMA` tag, so
the same objects travel through a local ``api.submit(job)`` call and
over the serve socket protocol, and a served run is bit-identical to a
direct one (the job *is* the run description; there is nothing else to
diverge on).

Tenancy: ``namespace`` scopes both persistent caches
(``REPRO_XLAT_CACHE_NS`` + ``REPRO_BEHAVIOR_CACHE_NS``) for the
duration of the run via :func:`scoped_namespace`, so concurrent
clients never read each other's cache entries.  An empty namespace
inherits the executing process's environment unchanged — the local
``api.run_*`` wrappers therefore behave exactly as before.

Failures never cross a boundary as tracebacks: :func:`run_job` maps
any exception through :func:`repro.errors.classify_error` into the
result's typed :class:`~repro.errors.ErrorInfo`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..core import behavior_cache
from ..dbt import xlat_cache
from ..errors import ErrorInfo, JobError, classify_error
from ..machine.timing import CostModel
from ..machine.weakmem import BufferMode
from ..workloads.casbench import CasConfig, run_cas_benchmark
from ..workloads.kernels import KernelSpec
from ..workloads.parallel import LIBRARY_BUILDERS, MEMORY_SETUPS
from ..workloads.runner import WorkloadResult, run_kernel, \
    run_library_workload

#: Wire-format version; both sides check it and reject mismatches.
JOB_SCHEMA = "repro-serve/1"

#: The job kinds the dispatcher knows how to execute.
JOB_KINDS = ("kernel", "library", "cas")


def sanitize_namespace(raw: str) -> str:
    """The cache layers' namespace sanitizer (shared spelling): only
    ``[A-Za-z0-9._-]`` survive and all-dots names collapse to ""."""
    ns = "".join(c for c in raw.strip() if c.isalnum() or c in "._-")
    if not ns.strip("."):
        return ""
    return ns


@dataclass(frozen=True)
class JobSpec:
    """One run request, complete and self-contained.

    Exactly one payload group applies, selected by ``kind``:
    ``kernel`` (an inline :class:`KernelSpec` — generated specs from
    the fuzzer work like registry ones), ``library`` (registry name +
    call description) or ``cas`` (an inline :class:`CasConfig`).
    """

    kind: str
    benchmark: str
    variant: str
    seed: int = 7
    max_steps: int = 80_000_000
    buffer_mode: BufferMode = BufferMode.WEAK
    tier2_threshold: int | None = None
    costs: CostModel | None = None
    #: cache tenancy scope; "" inherits the executor's environment.
    namespace: str = ""
    #: client-chosen correlation id, echoed verbatim on the result.
    job_id: str = ""
    # kind == "kernel"
    kernel: KernelSpec | None = None
    # kind == "library"
    library: str | None = None     # LIBRARY_BUILDERS key
    function: str | None = None
    args: tuple[int, ...] = ()
    calls: int = 0
    setup: str | None = None       # MEMORY_SETUPS key
    # kind == "cas"
    cas: CasConfig | None = None

    def validate(self) -> None:
        """Raise :class:`JobError` on any malformed field."""
        if self.kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {self.kind!r}; expected "
                           f"one of {JOB_KINDS}")
        if not self.benchmark:
            raise JobError("job benchmark must be non-empty")
        if not self.variant:
            raise JobError("job variant must be non-empty")
        if self.namespace != sanitize_namespace(self.namespace):
            raise JobError(
                f"namespace {self.namespace!r} contains characters "
                f"outside [A-Za-z0-9._-]")
        if self.kind == "kernel" and self.kernel is None:
            raise JobError(f"kernel payload missing for "
                           f"{self.benchmark!r}")
        if self.kind == "library" and (not self.function
                                       or self.calls <= 0):
            raise JobError(f"library payload incomplete for "
                           f"{self.benchmark!r} (function + calls "
                           f"required)")
        if self.kind == "cas" and self.cas is None:
            raise JobError(f"cas payload missing for "
                           f"{self.benchmark!r}")

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        payload: dict = {
            "schema": JOB_SCHEMA,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "variant": self.variant,
            "seed": self.seed,
            "max_steps": self.max_steps,
            "buffer_mode": self.buffer_mode.value,
            "tier2_threshold": self.tier2_threshold,
            "namespace": self.namespace,
            "job_id": self.job_id,
        }
        if self.costs is not None:
            payload["costs"] = dataclasses.asdict(self.costs)
        if self.kernel is not None:
            payload["kernel"] = dataclasses.asdict(self.kernel)
        if self.kind == "library":
            payload["library"] = self.library
            payload["function"] = self.function
            payload["args"] = list(self.args)
            payload["calls"] = self.calls
            payload["setup"] = self.setup
        if self.cas is not None:
            payload["cas"] = dataclasses.asdict(self.cas)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobError(f"job payload must be an object, got "
                           f"{type(payload).__name__}")
        schema = payload.get("schema")
        if schema != JOB_SCHEMA:
            raise JobError(f"job schema {schema!r} unsupported "
                           f"(expected {JOB_SCHEMA!r})")
        try:
            buffer_mode = BufferMode(
                payload.get("buffer_mode", BufferMode.WEAK.value))
        except ValueError:
            raise JobError(f"unknown buffer_mode "
                           f"{payload.get('buffer_mode')!r}") from None
        try:
            costs = payload.get("costs")
            kernel = payload.get("kernel")
            cas = payload.get("cas")
            tier2 = payload.get("tier2_threshold")
            job = cls(
                kind=str(payload["kind"]),
                benchmark=str(payload["benchmark"]),
                variant=str(payload["variant"]),
                seed=int(payload.get("seed", 7)),
                max_steps=int(payload.get("max_steps", 80_000_000)),
                buffer_mode=buffer_mode,
                tier2_threshold=None if tier2 is None else int(tier2),
                costs=None if costs is None else CostModel(**costs),
                namespace=str(payload.get("namespace", "")),
                job_id=str(payload.get("job_id", "")),
                kernel=None if kernel is None else KernelSpec(**kernel),
                library=payload.get("library"),
                function=payload.get("function"),
                args=tuple(int(a) for a in payload.get("args", ())),
                calls=int(payload.get("calls", 0)),
                setup=payload.get("setup"),
                cas=None if cas is None else CasConfig(**cas),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JobError(f"malformed job payload: {exc}") from None
        job.validate()
        return job


@dataclass
class JobResult:
    """The typed response to one :class:`JobSpec`.

    ``ok`` selects which half is meaningful: measured quantities on
    success, the classified ``error`` on failure.  ``queue_seconds``
    and ``batch_size`` are stamped by the server's dispatcher; local
    submission leaves them at their inline defaults.
    """

    job_id: str
    kind: str
    benchmark: str
    variant: str
    seed: int
    namespace: str = ""
    ok: bool = True
    error: ErrorInfo | None = None
    # Measured quantities (success only).
    cycles: int = 0
    fence_cycles: int = 0
    total_cycles: int = 0
    checksum: int | None = None
    exit_code: int = 0
    wall_seconds: float = 0.0
    blocks_translated: int = 0
    xlat_hits: int = 0
    xlat_misses: int = 0
    xlat_disk_hits: int = 0
    #: which cache level served the run's translations:
    #: "cold" (pipeline ran), "disk", "memory", or "none" (no lookups).
    cache_tier: str = "none"
    # Serve-side observability (stamped by the dispatcher).
    queue_seconds: float = 0.0
    batch_size: int = 1
    #: The full in-process outcome — never serialized; this is what
    #: lets ``api.run_*`` keep returning :class:`WorkloadResult`.
    outcome: WorkloadResult | None = field(
        default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_workload(cls, job: JobSpec, outcome: WorkloadResult,
                      wall: float) -> "JobResult":
        stats = outcome.result.stats
        hits = getattr(stats, "xlat_hits", 0)
        misses = getattr(stats, "xlat_misses", 0)
        disk_hits = getattr(stats, "xlat_disk_hits", 0)
        return cls(
            job_id=job.job_id,
            kind=job.kind,
            benchmark=job.benchmark,
            variant=job.variant,
            seed=job.seed,
            namespace=job.namespace,
            ok=True,
            cycles=outcome.result.elapsed_cycles,
            fence_cycles=outcome.result.fence_cycles,
            total_cycles=outcome.result.total_cycles,
            checksum=outcome.checksum,
            exit_code=outcome.result.exit_code,
            wall_seconds=outcome.wall_seconds or wall,
            blocks_translated=stats.blocks_translated,
            xlat_hits=hits,
            xlat_misses=misses,
            xlat_disk_hits=disk_hits,
            cache_tier=cache_tier(hits, misses, disk_hits),
            outcome=outcome,
        )

    @classmethod
    def from_error(cls, job: JobSpec, error: ErrorInfo,
                   wall: float = 0.0) -> "JobResult":
        return cls(
            job_id=job.job_id,
            kind=job.kind,
            benchmark=job.benchmark,
            variant=job.variant,
            seed=job.seed,
            namespace=job.namespace,
            ok=False,
            error=error,
            wall_seconds=wall,
        )

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        payload: dict = {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "variant": self.variant,
            "seed": self.seed,
            "namespace": self.namespace,
            "ok": self.ok,
            "cycles": self.cycles,
            "fence_cycles": self.fence_cycles,
            "total_cycles": self.total_cycles,
            "checksum": self.checksum,
            "exit_code": self.exit_code,
            "wall_seconds": self.wall_seconds,
            "blocks_translated": self.blocks_translated,
            "xlat_hits": self.xlat_hits,
            "xlat_misses": self.xlat_misses,
            "xlat_disk_hits": self.xlat_disk_hits,
            "cache_tier": self.cache_tier,
            "queue_seconds": self.queue_seconds,
            "batch_size": self.batch_size,
        }
        if self.error is not None:
            payload["error"] = self.error.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "JobResult":
        schema = payload.get("schema")
        if schema != JOB_SCHEMA:
            raise JobError(f"result schema {schema!r} unsupported "
                           f"(expected {JOB_SCHEMA!r})")
        error = payload.get("error")
        checksum = payload.get("checksum")
        try:
            return cls(
                job_id=str(payload.get("job_id", "")),
                kind=str(payload["kind"]),
                benchmark=str(payload["benchmark"]),
                variant=str(payload["variant"]),
                seed=int(payload.get("seed", 0)),
                namespace=str(payload.get("namespace", "")),
                ok=bool(payload.get("ok", False)),
                error=None if error is None
                else ErrorInfo.from_json(error),
                cycles=int(payload.get("cycles", 0)),
                fence_cycles=int(payload.get("fence_cycles", 0)),
                total_cycles=int(payload.get("total_cycles", 0)),
                checksum=None if checksum is None else int(checksum),
                exit_code=int(payload.get("exit_code", 0)),
                wall_seconds=float(payload.get("wall_seconds", 0.0)),
                blocks_translated=int(
                    payload.get("blocks_translated", 0)),
                xlat_hits=int(payload.get("xlat_hits", 0)),
                xlat_misses=int(payload.get("xlat_misses", 0)),
                xlat_disk_hits=int(payload.get("xlat_disk_hits", 0)),
                cache_tier=str(payload.get("cache_tier", "none")),
                queue_seconds=float(payload.get("queue_seconds", 0.0)),
                batch_size=int(payload.get("batch_size", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JobError(
                f"malformed result payload: {exc}") from None


def cache_tier(hits: int, misses: int, disk_hits: int) -> str:
    """Which translation-cache level effectively served the run.

    Any full-pipeline translation makes the request "cold" (the
    engine counts a miss for every block it translates, whether or
    not the cache is on); otherwise the persistent disk layer or the
    in-memory LRU served everything; "none" means the run translated
    nothing at all (e.g. a native run).
    """
    if misses > 0:
        return "cold"
    if disk_hits > 0:
        return "disk"
    if hits > 0:
        return "memory"
    return "none"


def batch_key(job: JobSpec) -> tuple:
    """Jobs sharing a key may run in one dispatched batch: the worker
    pins the cache namespace once per batch, so only same-namespace
    jobs are compatible."""
    return (job.namespace,)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@contextmanager
def scoped_namespace(namespace: str):
    """Scope both persistent caches to ``namespace`` for the block.

    An empty namespace leaves the environment untouched (the caller's
    ambient namespaces keep applying — local ``api.run_*`` calls must
    behave exactly as before the serve layer existed).
    """
    if not namespace:
        yield
        return
    env_vars = (xlat_cache.NAMESPACE_ENV, behavior_cache.NAMESPACE_ENV)
    saved = {var: os.environ.get(var) for var in env_vars}
    try:
        for var in env_vars:
            os.environ[var] = namespace
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def _execute(job: JobSpec, *, library=None) -> WorkloadResult:
    if job.kind == "kernel":
        return run_kernel(job.kernel, job.variant, seed=job.seed,
                          costs=job.costs, max_steps=job.max_steps,
                          buffer_mode=job.buffer_mode,
                          tier2_threshold=job.tier2_threshold)
    if job.kind == "library":
        if library is None:
            try:
                library = LIBRARY_BUILDERS[job.library]()
            except KeyError:
                raise JobError(
                    f"unknown library {job.library!r}; expected one "
                    f"of {sorted(LIBRARY_BUILDERS)}") from None
        setup = None
        if job.setup is not None:
            try:
                setup = MEMORY_SETUPS[job.setup]
            except KeyError:
                raise JobError(
                    f"unknown memory setup {job.setup!r}; expected "
                    f"one of {sorted(MEMORY_SETUPS)}") from None
        return run_library_workload(
            job.function, job.args, job.calls, job.variant, library,
            setup_memory=setup, seed=job.seed, costs=job.costs,
            max_steps=job.max_steps, buffer_mode=job.buffer_mode,
            tier2_threshold=job.tier2_threshold)
    if job.kind == "cas":
        return run_cas_benchmark(job.cas, job.variant, seed=job.seed,
                                 costs=job.costs,
                                 buffer_mode=job.buffer_mode)
    raise JobError(f"unknown job kind {job.kind!r}")  # unreachable


def execute_job(job: JobSpec, *, library=None) -> JobResult:
    """Run one job in-process and return its result; raises on
    failure (the local :func:`repro.api.submit` contract — callers
    keep the exception types they always had).

    ``library`` optionally overrides the registry lookup with an
    already-built :class:`~repro.loader.hostlibs.HostLibrary`, so the
    facade wrapper can pass user-constructed libraries through
    unchanged.
    """
    job.validate()
    started = time.perf_counter()
    with scoped_namespace(job.namespace):
        outcome = _execute(job, library=library)
    return JobResult.from_workload(
        job, outcome, time.perf_counter() - started)


def run_job(job: JobSpec, *, library=None) -> JobResult:
    """The catching variant for service boundaries: any exception
    comes back as a typed error result, never a traceback."""
    started = time.perf_counter()
    try:
        return execute_job(job, library=library)
    except Exception as exc:  # noqa: BLE001 - the boundary by design
        return JobResult.from_error(
            job, classify_error(exc), time.perf_counter() - started)


# ----------------------------------------------------------------------
# Job builders (the facade wrappers' construction path)
# ----------------------------------------------------------------------
def kernel_job(spec: KernelSpec, *, variant: str, seed: int = 7,
               costs: CostModel | None = None,
               max_steps: int = 80_000_000,
               buffer_mode: BufferMode = BufferMode.WEAK,
               tier2_threshold: int | None = None,
               namespace: str = "", job_id: str = "") -> JobSpec:
    """A kernel run as a job (inline spec: generated kernels work)."""
    return JobSpec(kind="kernel", benchmark=spec.name, variant=variant,
                   seed=seed, costs=costs, max_steps=max_steps,
                   buffer_mode=buffer_mode,
                   tier2_threshold=tier2_threshold,
                   namespace=namespace, job_id=job_id, kernel=spec)


def library_job(function: str, args: tuple[int, ...], calls: int, *,
                variant: str, library: str | None = None,
                setup: str | None = None, seed: int = 7,
                costs: CostModel | None = None,
                max_steps: int = 80_000_000,
                buffer_mode: BufferMode = BufferMode.WEAK,
                tier2_threshold: int | None = None,
                namespace: str = "", job_id: str = "") -> JobSpec:
    """A library-call benchmark as a job.  ``library`` is a
    :data:`LIBRARY_BUILDERS` registry name; leave it ``None`` only
    when the executor will receive the library object directly."""
    return JobSpec(kind="library", benchmark=function, variant=variant,
                   seed=seed, costs=costs, max_steps=max_steps,
                   buffer_mode=buffer_mode,
                   tier2_threshold=tier2_threshold,
                   namespace=namespace, job_id=job_id, library=library,
                   function=function, args=tuple(args), calls=calls,
                   setup=setup)


def cas_job(config: CasConfig, *, variant: str, seed: int = 7,
            costs: CostModel | None = None,
            buffer_mode: BufferMode = BufferMode.WEAK,
            namespace: str = "", job_id: str = "") -> JobSpec:
    """A Figure 15 CAS configuration as a job."""
    return JobSpec(kind="cas", benchmark=config.label, variant=variant,
                   seed=seed, costs=costs, buffer_mode=buffer_mode,
                   namespace=namespace, job_id=job_id, cas=config)
