"""Paper-style text rendering of benchmark tables and figures.

Every figure harness prints the same rows/series the paper plots, as
plain text tables, so `pytest benchmarks/ --benchmark-only` output can
be compared side by side with the paper's Figures 12-15.
"""

from __future__ import annotations

from .stats import BenchTable, SweepStats, aggregate_sweep


def _fmt_pct(x: float) -> str:
    return f"{100 * x:6.1f}%"


def _fence_origin_lines(by_origin: dict, total: int,
                        indent: str = "  ") -> str:
    """Render a fence-by-origin breakdown, largest bucket first.

    The buckets partition ``total`` exactly (each executed DMB is
    charged to one origin), so the percentages are of the fence
    cycles, not of total run time.
    """
    ranked = sorted(by_origin.items(),
                    key=lambda item: (-item[1], item[0]))
    lines = ["fence cycles by origin:"]
    for origin, cycles in ranked:
        share = cycles / total if total else 0.0
        lines.append(
            f"{indent}{origin:<24s} {cycles:>12d} "
            f"({_fmt_pct(share).strip()})")
    accounted = sum(by_origin.values())
    if accounted != total:
        lines.append(
            f"{indent}[unaccounted]            "
            f"{total - accounted:>12d}")
    return "\n".join(lines)


def run_stats_footer(sweep, title: str = "harness stats") -> str:
    """The timing/observability footer every figure harness prints.

    ``sweep`` is a :class:`~repro.workloads.parallel.SweepResult` (or
    any iterable of result rows): per-run wall time, translation and
    optimizer counters, fence-cycle share, and the behaviour-cache
    hit/miss line when litmus enumeration was involved.
    """
    stats: SweepStats = aggregate_sweep(sweep)
    lines = [
        f"--- {title} " + "-" * max(1, 64 - len(title)),
        f"runs: {stats.runs}   workers: {stats.workers}   "
        f"wall: {stats.wall_seconds:.2f}s   "
        f"sum of per-run wall: {stats.run_seconds:.2f}s",
    ]
    if stats.failed_runs:
        failures = getattr(sweep, "failures", ())
        lines.append(f"FAILED runs: {stats.failed_runs}")
        for failure in failures:
            lines.append(f"  {failure}")
    if stats.blocks_translated or stats.block_dispatches:
        lines.append(
            f"translated: {stats.blocks_translated} blocks / "
            f"{stats.guest_insns_translated} guest insns   "
            f"dispatches: {stats.block_dispatches} "
            f"({_fmt_pct(stats.chain_rate).strip()} chained)   "
            f"helper calls: {stats.helper_calls}")
        lines.append(
            f"optimizer: {stats.opt_folded} folded, "
            f"{stats.opt_mem_eliminated} mem-eliminated, "
            f"{stats.opt_fences_merged} fences merged, "
            f"{stats.opt_dead_removed} dead ops removed")
        if stats.opt_empty_fences_dropped or stats.opt_helpers_inlined:
            lines.append(
                f"           {stats.opt_empty_fences_dropped} empty "
                f"fences dropped, {stats.opt_helpers_inlined} helpers "
                f"inlined")
    if stats.tier2_traces or stats.tier2_trace_dispatches:
        lines.append(
            f"tier-2: {stats.tier2_traces} traces / "
            f"{stats.tier2_trace_blocks} blocks   "
            f"trace dispatches: {stats.tier2_trace_dispatches}   "
            f"cycles in traces: {stats.tier2_cycles}")
    if stats.total_cycles:
        lines.append(
            f"fence cycles: {_fmt_pct(stats.fence_share).strip()} "
            f"of {stats.total_cycles} total cycles")
    if stats.fence_cycles_by_origin:
        lines.append(_fence_origin_lines(
            stats.fence_cycles_by_origin, stats.fence_cycles))
    if stats.xlat_hits or stats.xlat_misses:
        line = (
            f"translation cache: {stats.xlat_hits} hits / "
            f"{stats.xlat_misses} misses "
            f"({_fmt_pct(stats.xlat_hit_rate).strip()} hit rate)")
        if stats.xlat_disk_hits:
            line += f"   from disk: {stats.xlat_disk_hits}"
        lines.append(line)
    if stats.cache_hits or stats.cache_misses:
        line = (
            f"behavior cache: {stats.cache_hits} hits / "
            f"{stats.cache_misses} misses "
            f"({_fmt_pct(stats.cache_hit_rate).strip()} hit rate)")
        if stats.cache_disk_hits or stats.cache_disk_misses:
            line += (f"   disk: {stats.cache_disk_hits} hits / "
                     f"{stats.cache_disk_misses} misses")
        lines.append(line)
    if stats.enum_candidates_naive:
        lines.append(
            f"staged enumeration: {stats.enum_executions} of "
            f"{stats.enum_candidates_naive} naive candidates "
            f"materialized "
            f"({_fmt_pct(stats.enum_pruned_fraction).strip()} pruned; "
            f"{stats.enum_rf_pruned} rf options pruned, "
            f"{stats.enum_rf_rejected} rf choices rejected)")
        if (stats.enum_sleep_skips or stats.enum_symmetry_collapsed
                or stats.enum_co_classes):
            lines.append(
                f"reduction: {stats.enum_sleep_skips} sleep-set skips, "
                f"{stats.enum_symmetry_collapsed} symmetric combos "
                f"collapsed, {stats.enum_co_classes} coherence classes, "
                f"{stats.enum_consistent} consistent witnesses")
    return "\n".join(lines)


def figure12_report(table: BenchTable) -> str:
    """Run time of each benchmark relative to QEMU (lower is better)."""
    variants = [v for v in ("no-fences", "tcg-ver", "risotto", "native")
                if v in table.variants()]
    lines = [
        "Figure 12 — run time relative to QEMU (lower is better)",
        f"{'benchmark':18s}" + "".join(f"{v:>11s}" for v in variants)
        + f"{'qemu-fence%':>13s}",
    ]
    for bench in table.benchmarks():
        cells = "".join(
            f"{table.relative_runtime(bench, v):11.3f}"
            for v in variants)
        fence = table.rows[(bench, "qemu")].fence_share
        lines.append(f"{bench:18s}{cells}{_fmt_pct(fence):>13s}")
    lines.append("-" * 78)
    if "tcg-ver" in variants:
        lines.append(
            f"tcg-ver gain: avg {_fmt_pct(table.average_gain('tcg-ver'))} "
            f"(paper: 6.7%), max {_fmt_pct(table.max_gain('tcg-ver'))} "
            f"(paper: 19.7%)")
    if "no-fences" in variants:
        worst, share = table.max_fence_share("qemu")
        lines.append(
            f"fence cost share (qemu): avg "
            f"{_fmt_pct(table.average_fence_share('qemu'))} "
            f"(paper: 48%), max {_fmt_pct(share)} on {worst} "
            f"(paper: 75% on freqmine)")
    for variant in ("qemu", "risotto"):
        if variant not in table.variants():
            continue
        by_origin = table.fence_cycles_by_origin(variant)
        if not by_origin:
            continue
        total = table.fence_cycles_total(variant)
        lines.append(_fence_origin_lines(
            by_origin, total).replace(
                "fence cycles by origin:",
                f"fence cycles by origin ({variant}):", 1))
    return "\n".join(lines)


def speedup_report(table: BenchTable, title: str,
                   variants: tuple[str, ...] = ("risotto", "native"),
                   ) -> str:
    """Speedup over QEMU (Figures 13 and 14, higher is better)."""
    lines = [
        title,
        f"{'benchmark':22s}" + "".join(f"{v:>11s}" for v in variants),
    ]
    for bench in table.benchmarks():
        cells = "".join(
            f"{table.speedup(bench, v):10.2f}x" for v in variants)
        lines.append(f"{bench:22s}{cells}")
    return "\n".join(lines)


def figure15_report(series: dict[str, list[tuple[str, float]]]) -> str:
    """CAS throughput per (threads-vars) configuration."""
    variants = list(series)
    configs = [label for label, _ in series[variants[0]]]
    lines = [
        "Figure 15 — CAS throughput (ops/s, higher is better)",
        f"{'config':>8s}" + "".join(f"{v:>12s}" for v in variants),
    ]
    table = {
        variant: dict(points) for variant, points in series.items()
    }
    for config in configs:
        cells = "".join(
            f"{table[v][config] / 1e6:11.1f}M" for v in variants)
        lines.append(f"{config:>8s}{cells}")
    if "qemu" in table and "risotto" in table:
        gains = [
            table["risotto"][c] / table["qemu"][c] - 1 for c in configs
        ]
        uncontended = [
            table["risotto"][c] / table["qemu"][c] - 1
            for c in configs
            if c.split("-")[0] == c.split("-")[1]
        ]
        lines.append(
            f"risotto vs qemu: avg {_fmt_pct(sum(gains) / len(gains))} "
            f"(paper: 14.5%), best uncontended "
            f"{_fmt_pct(max(uncontended))} (paper: 48%)")
    return "\n".join(lines)


def mapping_table_report() -> str:
    """Figures 2, 3 and 7 as text (the mapping-scheme tables)."""
    lines = [
        "Figure 2 — QEMU mappings (x86 -> TCG IR -> Arm)",
        "  RMOV   -> Frr; ld   -> DMBLD; LDR",
        "  WMOV   -> Fmw; st   -> DMBFF; STR",
        "  RMW    -> call      -> BLR; RMW; RET",
        "  MFENCE -> Fsc       -> DMBFF",
        "",
        "Figure 3 — intended Arm-Cats direct mapping",
        "  RMOV -> LDRQ   WMOV -> STRL   RMW -> RMW1_AL   "
        "MFENCE -> DMBFF",
        "",
        "Figure 7 — Risotto's verified mappings",
        "  RMOV   -> ld; Frm   -> LDR; DMBLD",
        "  WMOV   -> Fww; st   -> DMBST; STR",
        "  RMW    -> RMW       -> DMBFF; RMW2; DMBFF  or  RMW1_AL",
        "  MFENCE -> Fsc       -> DMBFF",
    ]
    return "\n".join(lines)
