"""Result aggregation for the evaluation harness.

Collects per-benchmark runs into the exact quantities the paper
reports: run time relative to QEMU (Figure 12), speedup over QEMU
(Figures 13-14), CAS throughput (Figure 15), fence-cost share and
average/maximum gains (Section 7.2's prose numbers).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field


@dataclass
class BenchRow:
    """One benchmark × variant measurement."""

    benchmark: str
    variant: str
    cycles: int
    fence_cycles: int = 0
    total_cycles: int = 0
    checksum: int | None = None

    @property
    def fence_share(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.fence_cycles / self.total_cycles


@dataclass
class BenchTable:
    """All measurements of one experiment, keyed by (bench, variant)."""

    name: str
    baseline: str = "qemu"
    rows: dict[tuple[str, str], BenchRow] = field(default_factory=dict)

    def add(self, row: BenchRow) -> None:
        self.rows[(row.benchmark, row.variant)] = row

    # ------------------------------------------------------------------
    def benchmarks(self) -> list[str]:
        seen: dict[str, None] = {}
        for bench, _ in self.rows:
            seen.setdefault(bench)
        return list(seen)

    def variants(self) -> list[str]:
        seen: dict[str, None] = {}
        for _, variant in self.rows:
            seen.setdefault(variant)
        return list(seen)

    def cycles(self, benchmark: str, variant: str) -> int:
        return self.rows[(benchmark, variant)].cycles

    # ------------------------------------------------------------------
    def relative_runtime(self, benchmark: str, variant: str) -> float:
        """Run time relative to the baseline (Figure 12's y axis)."""
        return self.cycles(benchmark, variant) / \
            self.cycles(benchmark, self.baseline)

    def speedup(self, benchmark: str, variant: str) -> float:
        """Baseline time / variant time (Figures 13-14's y axis)."""
        return self.cycles(benchmark, self.baseline) / \
            self.cycles(benchmark, variant)

    def gain(self, benchmark: str, variant: str) -> float:
        """Fractional improvement over the baseline."""
        return 1.0 - self.relative_runtime(benchmark, variant)

    # ------------------------------------------------------------------
    def average_gain(self, variant: str) -> float:
        return statistics.mean(
            self.gain(b, variant) for b in self.benchmarks())

    def max_gain(self, variant: str) -> float:
        return max(self.gain(b, variant) for b in self.benchmarks())

    def average_relative(self, variant: str) -> float:
        return statistics.mean(
            self.relative_runtime(b, variant)
            for b in self.benchmarks())

    def average_fence_share(self, variant: str) -> float:
        return statistics.mean(
            self.rows[(b, variant)].fence_share
            for b in self.benchmarks())

    def max_fence_share(self, variant: str) -> tuple[str, float]:
        best = max(self.benchmarks(),
                   key=lambda b: self.rows[(b, variant)].fence_share)
        return best, self.rows[(best, variant)].fence_share

    def checksums_consistent(self, benchmark: str) -> bool:
        values = {
            row.checksum for (bench, _), row in self.rows.items()
            if bench == benchmark and row.checksum is not None
        }
        return len(values) <= 1
