"""Result aggregation for the evaluation harness.

Collects per-benchmark runs into the exact quantities the paper
reports: run time relative to QEMU (Figure 12), speedup over QEMU
(Figures 13-14), CAS throughput (Figure 15), fence-cost share and
average/maximum gains (Section 7.2's prose numbers).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field


@dataclass
class BenchRow:
    """One benchmark × variant measurement."""

    benchmark: str
    variant: str
    cycles: int
    fence_cycles: int = 0
    total_cycles: int = 0
    checksum: int | None = None

    @property
    def fence_share(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.fence_cycles / self.total_cycles


@dataclass
class BenchTable:
    """All measurements of one experiment, keyed by (bench, variant)."""

    name: str
    baseline: str = "qemu"
    rows: dict[tuple[str, str], BenchRow] = field(default_factory=dict)

    def add(self, row: BenchRow) -> None:
        self.rows[(row.benchmark, row.variant)] = row

    @classmethod
    def from_rows(cls, name: str, rows, baseline: str = "qemu",
                  ) -> "BenchTable":
        """Build a table from parallel-harness result rows (anything
        with benchmark/variant/cycles/fence_cycles/total_cycles/
        checksum attributes)."""
        table = cls(name=name, baseline=baseline)
        for row in rows:
            table.add(BenchRow(
                benchmark=row.benchmark,
                variant=row.variant,
                cycles=row.cycles,
                fence_cycles=row.fence_cycles,
                total_cycles=row.total_cycles,
                checksum=row.checksum,
            ))
        return table

    # ------------------------------------------------------------------
    def benchmarks(self) -> list[str]:
        seen: dict[str, None] = {}
        for bench, _ in self.rows:
            seen.setdefault(bench)
        return list(seen)

    def variants(self) -> list[str]:
        seen: dict[str, None] = {}
        for _, variant in self.rows:
            seen.setdefault(variant)
        return list(seen)

    def cycles(self, benchmark: str, variant: str) -> int:
        return self.rows[(benchmark, variant)].cycles

    # ------------------------------------------------------------------
    def relative_runtime(self, benchmark: str, variant: str) -> float:
        """Run time relative to the baseline (Figure 12's y axis)."""
        return self.cycles(benchmark, variant) / \
            self.cycles(benchmark, self.baseline)

    def speedup(self, benchmark: str, variant: str) -> float:
        """Baseline time / variant time (Figures 13-14's y axis)."""
        return self.cycles(benchmark, self.baseline) / \
            self.cycles(benchmark, variant)

    def gain(self, benchmark: str, variant: str) -> float:
        """Fractional improvement over the baseline."""
        return 1.0 - self.relative_runtime(benchmark, variant)

    # ------------------------------------------------------------------
    def average_gain(self, variant: str) -> float:
        return statistics.mean(
            self.gain(b, variant) for b in self.benchmarks())

    def max_gain(self, variant: str) -> float:
        return max(self.gain(b, variant) for b in self.benchmarks())

    def average_relative(self, variant: str) -> float:
        return statistics.mean(
            self.relative_runtime(b, variant)
            for b in self.benchmarks())

    def average_fence_share(self, variant: str) -> float:
        return statistics.mean(
            self.rows[(b, variant)].fence_share
            for b in self.benchmarks())

    def max_fence_share(self, variant: str) -> tuple[str, float]:
        best = max(self.benchmarks(),
                   key=lambda b: self.rows[(b, variant)].fence_share)
        return best, self.rows[(best, variant)].fence_share

    def checksums_consistent(self, benchmark: str) -> bool:
        values = {
            row.checksum for (bench, _), row in self.rows.items()
            if bench == benchmark and row.checksum is not None
        }
        return len(values) <= 1


@dataclass
class SweepStats:
    """Observability aggregate over one sweep's result rows."""

    runs: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    run_seconds: float = 0.0          # sum of per-run wall times
    blocks_translated: int = 0
    guest_insns_translated: int = 0
    block_dispatches: int = 0
    chained_dispatches: int = 0
    helper_calls: int = 0
    opt_folded: int = 0
    opt_mem_eliminated: int = 0
    opt_fences_merged: int = 0
    opt_dead_removed: int = 0
    fence_cycles: int = 0
    total_cycles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_disk_hits: int = 0
    cache_disk_misses: int = 0
    enum_candidates_naive: int = 0
    enum_executions: int = 0
    enum_rf_pruned: int = 0
    enum_rf_rejected: int = 0

    @property
    def fence_share(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.fence_cycles / self.total_cycles

    @property
    def chain_rate(self) -> float:
        if not self.block_dispatches:
            return 0.0
        return self.chained_dispatches / self.block_dispatches

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def enum_pruned_fraction(self) -> float:
        """Share of the naive rf × co product never materialized by the
        staged enumerator."""
        if not self.enum_candidates_naive:
            return 0.0
        return 1.0 - self.enum_executions / self.enum_candidates_naive


def aggregate_sweep(sweep) -> SweepStats:
    """Fold a :class:`~repro.workloads.parallel.SweepResult` (or any
    iterable of rows) into one :class:`SweepStats`."""
    stats = SweepStats(
        workers=getattr(sweep, "workers", 1),
        wall_seconds=getattr(sweep, "wall_seconds", 0.0),
    )
    for row in sweep:
        stats.runs += 1
        stats.run_seconds += row.wall_seconds
        stats.blocks_translated += row.blocks_translated
        stats.guest_insns_translated += row.guest_insns_translated
        stats.block_dispatches += row.block_dispatches
        stats.chained_dispatches += row.chained_dispatches
        stats.helper_calls += row.helper_calls
        stats.opt_folded += row.opt_folded
        stats.opt_mem_eliminated += row.opt_mem_eliminated
        stats.opt_fences_merged += row.opt_fences_merged
        stats.opt_dead_removed += row.opt_dead_removed
        stats.fence_cycles += row.fence_cycles
        stats.total_cycles += row.total_cycles
        stats.cache_hits += row.cache_hits
        stats.cache_misses += row.cache_misses
        # getattr-with-default: older row shapes (plain BenchRow-likes
        # in tests) predate the staged-enumeration counters.
        stats.cache_disk_hits += getattr(row, "cache_disk_hits", 0)
        stats.cache_disk_misses += getattr(row, "cache_disk_misses", 0)
        stats.enum_candidates_naive += getattr(
            row, "enum_candidates_naive", 0)
        stats.enum_executions += getattr(row, "enum_executions", 0)
        stats.enum_rf_pruned += getattr(row, "enum_rf_pruned", 0)
        stats.enum_rf_rejected += getattr(row, "enum_rf_rejected", 0)
    return stats
