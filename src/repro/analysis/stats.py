"""Result aggregation for the evaluation harness.

Collects per-benchmark runs into the exact quantities the paper
reports: run time relative to QEMU (Figure 12), speedup over QEMU
(Figures 13-14), CAS throughput (Figure 15), fence-cost share and
average/maximum gains (Section 7.2's prose numbers).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass
class BenchRow:
    """One benchmark × variant measurement."""

    benchmark: str
    variant: str
    cycles: int
    fence_cycles: int = 0
    total_cycles: int = 0
    checksum: int | None = None
    #: Fence cycles by provenance tag; sums to ``fence_cycles``.
    fence_origin_cycles: dict = field(default_factory=dict)

    @property
    def fence_share(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.fence_cycles / self.total_cycles


@dataclass
class BenchTable:
    """All measurements of one experiment, keyed by (bench, variant)."""

    name: str
    baseline: str = "qemu"
    rows: dict[tuple[str, str], BenchRow] = field(default_factory=dict)

    def add(self, row: BenchRow) -> None:
        self.rows[(row.benchmark, row.variant)] = row

    @classmethod
    def from_rows(cls, name: str, rows, baseline: str = "qemu",
                  ) -> "BenchTable":
        """Build a table from parallel-harness result rows (anything
        with benchmark/variant/cycles/fence_cycles/total_cycles/
        checksum attributes)."""
        table = cls(name=name, baseline=baseline)
        for row in rows:
            table.add(BenchRow(
                benchmark=row.benchmark,
                variant=row.variant,
                cycles=row.cycles,
                fence_cycles=row.fence_cycles,
                total_cycles=row.total_cycles,
                checksum=row.checksum,
                fence_origin_cycles=dict(
                    getattr(row, "fence_origin_cycles", {}) or {}),
            ))
        return table

    # ------------------------------------------------------------------
    def benchmarks(self) -> list[str]:
        seen: dict[str, None] = {}
        for bench, _ in self.rows:
            seen.setdefault(bench)
        return list(seen)

    def variants(self) -> list[str]:
        seen: dict[str, None] = {}
        for _, variant in self.rows:
            seen.setdefault(variant)
        return list(seen)

    def cycles(self, benchmark: str, variant: str) -> int:
        row = self.rows.get((benchmark, variant))
        if row is None:
            raise ReproError(
                f"table {self.name!r} has no row for benchmark "
                f"{benchmark!r} variant {variant!r}")
        return row.cycles

    def _cells(self, variant: str,
               need_baseline: bool = False) -> list[str]:
        """Benchmarks with a cell for ``variant`` (and, if asked, the
        baseline too).  Sparse tables — e.g. a sweep with failed runs —
        aggregate over what is present instead of raising ``KeyError``;
        a variant with no rows at all is a harness bug and errors."""
        if variant not in self.variants():
            raise ReproError(
                f"table {self.name!r} has no rows for variant "
                f"{variant!r} (variants present: {self.variants()})")
        cells = [
            b for b in self.benchmarks()
            if (b, variant) in self.rows
            and (not need_baseline or (b, self.baseline) in self.rows)
        ]
        if not cells:
            raise ReproError(
                f"table {self.name!r}: no benchmark has both "
                f"{variant!r} and baseline {self.baseline!r} rows")
        return cells

    # ------------------------------------------------------------------
    def relative_runtime(self, benchmark: str, variant: str) -> float:
        """Run time relative to the baseline (Figure 12's y axis)."""
        return self.cycles(benchmark, variant) / \
            self.cycles(benchmark, self.baseline)

    def speedup(self, benchmark: str, variant: str) -> float:
        """Baseline time / variant time (Figures 13-14's y axis)."""
        return self.cycles(benchmark, self.baseline) / \
            self.cycles(benchmark, variant)

    def gain(self, benchmark: str, variant: str) -> float:
        """Fractional improvement over the baseline."""
        return 1.0 - self.relative_runtime(benchmark, variant)

    # ------------------------------------------------------------------
    def average_gain(self, variant: str) -> float:
        return statistics.mean(
            self.gain(b, variant)
            for b in self._cells(variant, need_baseline=True))

    def max_gain(self, variant: str) -> float:
        return max(self.gain(b, variant)
                   for b in self._cells(variant, need_baseline=True))

    def average_relative(self, variant: str) -> float:
        return statistics.mean(
            self.relative_runtime(b, variant)
            for b in self._cells(variant, need_baseline=True))

    def average_fence_share(self, variant: str) -> float:
        return statistics.mean(
            self.rows[(b, variant)].fence_share
            for b in self._cells(variant))

    def max_fence_share(self, variant: str) -> tuple[str, float]:
        best = max(self._cells(variant),
                   key=lambda b: self.rows[(b, variant)].fence_share)
        return best, self.rows[(best, variant)].fence_share

    def fence_cycles_by_origin(self, variant: str) -> dict[str, int]:
        """Fence cycles summed over benchmarks, split by provenance.

        Values total exactly the variant's summed ``fence_cycles`` —
        each executed DMB is charged to one origin bucket.
        """
        merged: dict[str, int] = {}
        for b in self._cells(variant):
            for origin, cycles in \
                    self.rows[(b, variant)].fence_origin_cycles.items():
                merged[origin] = merged.get(origin, 0) + cycles
        return merged

    def fence_cycles_total(self, variant: str) -> int:
        return sum(self.rows[(b, variant)].fence_cycles
                   for b in self._cells(variant))

    def checksums_consistent(self, benchmark: str) -> bool:
        values = {
            row.checksum for (bench, _), row in self.rows.items()
            if bench == benchmark and row.checksum is not None
        }
        return len(values) <= 1


@dataclass
class SweepStats:
    """Observability aggregate over one sweep's result rows."""

    runs: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    run_seconds: float = 0.0          # sum of per-run wall times
    blocks_translated: int = 0
    guest_insns_translated: int = 0
    block_dispatches: int = 0
    chained_dispatches: int = 0
    helper_calls: int = 0
    opt_folded: int = 0
    opt_mem_eliminated: int = 0
    opt_fences_merged: int = 0
    opt_dead_removed: int = 0
    opt_empty_fences_dropped: int = 0
    opt_helpers_inlined: int = 0
    #: tier-2 (superblock) counters summed over the sweep's rows.
    tier2_traces: int = 0
    tier2_trace_blocks: int = 0
    tier2_trace_dispatches: int = 0
    tier2_cycles: int = 0
    fence_cycles: int = 0
    total_cycles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_disk_hits: int = 0
    cache_disk_misses: int = 0
    enum_candidates_naive: int = 0
    enum_executions: int = 0
    enum_rf_pruned: int = 0
    enum_rf_rejected: int = 0
    #: Reduction counters: consistent executions found, sleep-set
    #: skips, symmetric trace combos collapsed, and coherence classes
    #: explored by the DPOR search.
    enum_consistent: int = 0
    enum_sleep_skips: int = 0
    enum_symmetry_collapsed: int = 0
    enum_co_classes: int = 0
    #: Translation-cache counters: ``xlat_misses`` counts actual
    #: frontend+optimizer+backend runs (0 on a fully warm sweep);
    #: ``blocks_translated`` above counts installs, warm or cold.
    xlat_hits: int = 0
    xlat_misses: int = 0
    xlat_disk_hits: int = 0
    #: Fence cycles by provenance tag, summed over the sweep's rows;
    #: values total exactly ``fence_cycles`` when every row is tagged.
    fence_cycles_by_origin: dict = field(default_factory=dict)
    #: Runs that died in a worker (see SweepResult.failures).
    failed_runs: int = 0

    @property
    def fence_share(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.fence_cycles / self.total_cycles

    @property
    def chain_rate(self) -> float:
        if not self.block_dispatches:
            return 0.0
        return self.chained_dispatches / self.block_dispatches

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def xlat_hit_rate(self) -> float:
        lookups = self.xlat_hits + self.xlat_misses
        if not lookups:
            return 0.0
        return self.xlat_hits / lookups

    @property
    def enum_pruned_fraction(self) -> float:
        """Share of the naive rf × co product never materialized by the
        staged enumerator."""
        if not self.enum_candidates_naive:
            return 0.0
        return 1.0 - self.enum_executions / self.enum_candidates_naive


def aggregate_sweep(sweep) -> SweepStats:
    """Fold a :class:`~repro.workloads.parallel.SweepResult` (or any
    iterable of rows) into one :class:`SweepStats`."""
    stats = SweepStats(
        workers=getattr(sweep, "workers", 1),
        wall_seconds=getattr(sweep, "wall_seconds", 0.0),
        failed_runs=len(getattr(sweep, "failures", ())),
    )
    for row in sweep:
        stats.runs += 1
        stats.run_seconds += row.wall_seconds
        stats.blocks_translated += row.blocks_translated
        stats.guest_insns_translated += row.guest_insns_translated
        stats.block_dispatches += row.block_dispatches
        stats.chained_dispatches += row.chained_dispatches
        stats.helper_calls += row.helper_calls
        stats.opt_folded += row.opt_folded
        stats.opt_mem_eliminated += row.opt_mem_eliminated
        stats.opt_fences_merged += row.opt_fences_merged
        stats.opt_dead_removed += row.opt_dead_removed
        stats.fence_cycles += row.fence_cycles
        stats.total_cycles += row.total_cycles
        stats.cache_hits += row.cache_hits
        stats.cache_misses += row.cache_misses
        # getattr-with-default: older row shapes (plain BenchRow-likes
        # in tests) predate the staged-enumeration counters.
        stats.cache_disk_hits += getattr(row, "cache_disk_hits", 0)
        stats.cache_disk_misses += getattr(row, "cache_disk_misses", 0)
        stats.enum_candidates_naive += getattr(
            row, "enum_candidates_naive", 0)
        stats.enum_executions += getattr(row, "enum_executions", 0)
        stats.enum_rf_pruned += getattr(row, "enum_rf_pruned", 0)
        stats.enum_rf_rejected += getattr(row, "enum_rf_rejected", 0)
        stats.enum_consistent += getattr(row, "enum_consistent", 0)
        stats.enum_sleep_skips += getattr(row, "enum_sleep_skips", 0)
        stats.enum_symmetry_collapsed += getattr(
            row, "enum_symmetry_collapsed", 0)
        stats.enum_co_classes += getattr(row, "enum_co_classes", 0)
        stats.xlat_hits += getattr(row, "xlat_hits", 0)
        stats.xlat_misses += getattr(row, "xlat_misses", 0)
        stats.xlat_disk_hits += getattr(row, "xlat_disk_hits", 0)
        stats.opt_empty_fences_dropped += getattr(
            row, "opt_empty_fences_dropped", 0)
        stats.opt_helpers_inlined += getattr(
            row, "opt_helpers_inlined", 0)
        stats.tier2_traces += getattr(row, "tier2_traces", 0)
        stats.tier2_trace_blocks += getattr(
            row, "tier2_trace_blocks", 0)
        stats.tier2_trace_dispatches += getattr(
            row, "tier2_trace_dispatches", 0)
        stats.tier2_cycles += getattr(row, "tier2_cycles", 0)
        by_origin = getattr(row, "fence_origin_cycles", None) or {}
        for origin, cycles in by_origin.items():
            stats.fence_cycles_by_origin[origin] = \
                stats.fence_cycles_by_origin.get(origin, 0) + cycles
    return stats
