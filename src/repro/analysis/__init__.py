"""Result aggregation and paper-style reporting."""

from .export import (
    BENCH_SCHEMA,
    bench_payload,
    load_bench_json,
    write_bench_json,
)
from .report import (
    figure12_report,
    figure15_report,
    mapping_table_report,
    run_stats_footer,
    speedup_report,
)
from .stats import BenchRow, BenchTable, SweepStats, aggregate_sweep

__all__ = [
    "BENCH_SCHEMA", "bench_payload", "load_bench_json",
    "write_bench_json",
    "BenchRow", "BenchTable", "SweepStats", "aggregate_sweep",
    "figure12_report", "figure15_report", "mapping_table_report",
    "run_stats_footer", "speedup_report",
]
