"""Result aggregation and paper-style reporting."""

from .report import (
    figure12_report,
    figure15_report,
    mapping_table_report,
    speedup_report,
)
from .stats import BenchRow, BenchTable

__all__ = [
    "BenchRow", "BenchTable",
    "figure12_report", "figure15_report", "mapping_table_report",
    "speedup_report",
]
