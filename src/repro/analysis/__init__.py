"""Result aggregation and paper-style reporting."""

from .report import (
    figure12_report,
    figure15_report,
    mapping_table_report,
    run_stats_footer,
    speedup_report,
)
from .stats import BenchRow, BenchTable, SweepStats, aggregate_sweep

__all__ = [
    "BenchRow", "BenchTable", "SweepStats", "aggregate_sweep",
    "figure12_report", "figure15_report", "mapping_table_report",
    "run_stats_footer", "speedup_report",
]
