"""Machine-readable export of benchmark results.

Every figure harness writes one ``results/bench_<figure>.json`` next
to its text report so downstream tooling (plotting, CI artefact diffs,
:mod:`repro.analysis.obsreport`) never has to scrape the text tables.
The payload is schema-versioned: consumers check ``schema`` and reject
what they do not understand instead of misreading it.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ReproError
from .stats import BenchTable, aggregate_sweep

#: Version tag of the export payload.  Bump on breaking layout change.
BENCH_SCHEMA = "repro-bench/1"


def _table_rows(table: BenchTable) -> list[dict]:
    rows = []
    for (benchmark, variant), row in sorted(table.rows.items()):
        rows.append({
            "benchmark": benchmark,
            "variant": variant,
            "cycles": row.cycles,
            "fence_cycles": row.fence_cycles,
            "total_cycles": row.total_cycles,
            "fence_share": row.fence_share,
            "checksum": row.checksum,
            "fence_cycles_by_origin": dict(
                sorted(row.fence_origin_cycles.items())),
        })
    return rows


def _sweep_stats(sweep) -> dict:
    stats = aggregate_sweep(sweep)
    return {
        "runs": stats.runs,
        "failed_runs": stats.failed_runs,
        "workers": stats.workers,
        "wall_seconds": stats.wall_seconds,
        "run_seconds": stats.run_seconds,
        "blocks_translated": stats.blocks_translated,
        "guest_insns_translated": stats.guest_insns_translated,
        "block_dispatches": stats.block_dispatches,
        "chained_dispatches": stats.chained_dispatches,
        "helper_calls": stats.helper_calls,
        "opt_folded": stats.opt_folded,
        "opt_mem_eliminated": stats.opt_mem_eliminated,
        "opt_fences_merged": stats.opt_fences_merged,
        "opt_dead_removed": stats.opt_dead_removed,
        "opt_empty_fences_dropped": stats.opt_empty_fences_dropped,
        "opt_helpers_inlined": stats.opt_helpers_inlined,
        "tier2_traces": stats.tier2_traces,
        "tier2_trace_blocks": stats.tier2_trace_blocks,
        "tier2_trace_dispatches": stats.tier2_trace_dispatches,
        "tier2_cycles": stats.tier2_cycles,
        "fence_cycles": stats.fence_cycles,
        "total_cycles": stats.total_cycles,
        "fence_cycles_by_origin": dict(
            sorted(stats.fence_cycles_by_origin.items())),
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "xlat_hits": stats.xlat_hits,
        "xlat_misses": stats.xlat_misses,
        "xlat_disk_hits": stats.xlat_disk_hits,
        "enum_candidates_naive": stats.enum_candidates_naive,
        "enum_executions": stats.enum_executions,
        "enum_rf_pruned": stats.enum_rf_pruned,
        "enum_rf_rejected": stats.enum_rf_rejected,
        "enum_consistent": stats.enum_consistent,
        "enum_sleep_skips": stats.enum_sleep_skips,
        "enum_symmetry_collapsed": stats.enum_symmetry_collapsed,
        "enum_co_classes": stats.enum_co_classes,
        "enum_pruned_fraction": stats.enum_pruned_fraction,
    }


def bench_payload(figure: str, table: BenchTable | None = None,
                  sweep=None, series: dict | None = None,
                  extra: dict | None = None,
                  config: dict | None = None) -> dict:
    """Assemble the export dict for one figure.

    ``table`` contributes per-cell rows, ``sweep`` the harness-level
    aggregate (including the sweep-wide metrics snapshot when the
    sweep carries one), ``series``/``extra`` free-form figure data
    (e.g. Figure 15's throughput curves or prose numbers).
    ``config`` declares the knobs that make runs comparable (iteration
    counts, enumeration limits, …): it feeds the history store's
    :func:`~repro.obs.history.config_fingerprint`, never the measured
    quantities.
    """
    payload: dict = {"schema": BENCH_SCHEMA, "figure": figure}
    if config:
        payload["config"] = dict(config)
    if table is not None:
        payload["baseline"] = table.baseline
        payload["rows"] = _table_rows(table)
    if sweep is not None:
        payload["stats"] = _sweep_stats(sweep)
        metrics = getattr(sweep, "metrics", None)
        if metrics:
            payload["metrics"] = metrics
        failures = getattr(sweep, "failures", ())
        if failures:
            payload["failures"] = [str(f) for f in failures]
        hot: dict = {}
        for row in sweep:
            blocks = getattr(row, "hot_blocks", ())
            if blocks:
                hot[f"{row.benchmark}/{row.variant}"] = [
                    list(entry) for entry in blocks
                ]
            elif blocks is None:
                # Untracked profile (native rows): export an explicit
                # null so consumers can tell "not tracked" apart from
                # "tracked, no hot blocks" (which is simply omitted).
                hot[f"{row.benchmark}/{row.variant}"] = None
        if hot:
            payload["hot_blocks"] = hot
    if series is not None:
        payload["series"] = series
    if extra:
        payload["extra"] = extra
    return payload


def write_bench_json(path, figure: str, table: BenchTable | None = None,
                     sweep=None, series: dict | None = None,
                     extra: dict | None = None,
                     config: dict | None = None,
                     record: bool = False) -> Path:
    """Write the figure's export payload; returns the path written.

    ``record=True`` additionally appends the payload to the bench
    history store (``history/`` next to the file, or
    ``REPRO_BENCH_HISTORY_DIR``) — the harness ``emit_bench`` fixture
    passes it so every benchmark run leaves a durable perf record;
    ``REPRO_BENCH_HISTORY=0`` switches recording off globally.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = bench_payload(figure, table=table, sweep=sweep,
                            series=series, extra=extra, config=config)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                    + "\n")
    if record:
        from ..obs import history as _history
        if _history.history_enabled():
            _history.record_bench(
                payload,
                history=_history.history_dir(path.parent / "history"))
    return path


def load_bench_json(path) -> dict:
    """Load and schema-check one ``bench_*.json`` payload."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read bench json {path}: {exc}") \
            from None
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if schema != BENCH_SCHEMA:
        raise ReproError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(expected {BENCH_SCHEMA!r})")
    return payload
