"""Render observability artefacts as text reports.

``python -m repro.analysis.obsreport FILE...`` pretty-prints, in the
same text-table style as :mod:`repro.analysis.report`:

* ``bench_*.json`` exports (:mod:`repro.analysis.export`) — per-cell
  rows, the harness aggregate, the fence-by-origin breakdown, hot
  blocks, and the sweep's metrics snapshot;
* Chrome ``trace_event`` files written by :mod:`repro.obs.trace` —
  validated, then summarized as per-span totals.

Files are dispatched on content, not name, so ``obsreport`` can be
pointed at a whole ``results/`` directory's JSON artefacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..errors import ReproError
from ..obs.metrics import parse_labels
from ..obs.trace import validate_chrome_events
from .export import BENCH_SCHEMA, load_bench_json
from .report import _fence_origin_lines, _fmt_pct


# ----------------------------------------------------------------------
# bench_*.json rendering
# ----------------------------------------------------------------------
def render_bench(payload: dict, source: str = "") -> str:
    """One text report for a bench export payload."""
    lines = [f"=== bench export: {payload.get('figure', '?')} "
             f"({source or 'inline'}) ==="]
    rows = payload.get("rows", [])
    if rows:
        lines.append(
            f"{'benchmark':20s}{'variant':>12s}{'cycles':>14s}"
            f"{'fence%':>9s}")
        for row in rows:
            lines.append(
                f"{row['benchmark']:20s}{row['variant']:>12s}"
                f"{row['cycles']:>14d}"
                f"{_fmt_pct(row.get('fence_share', 0.0)):>9s}")
    stats = payload.get("stats")
    if stats:
        lines.append(
            f"runs: {stats.get('runs', 0)}"
            f"   failed: {stats.get('failed_runs', 0)}"
            f"   workers: {stats.get('workers', 1)}"
            f"   wall: {stats.get('wall_seconds', 0.0):.2f}s")
        by_origin = stats.get("fence_cycles_by_origin") or {}
        if by_origin:
            lines.append(_fence_origin_lines(
                by_origin, stats.get("fence_cycles", 0)))
    for failure in payload.get("failures", []):
        lines.append(f"FAILED: {failure}")
    hot = payload.get("hot_blocks") or {}
    if hot:
        lines.append(render_hot_blocks(hot))
    metrics = payload.get("metrics")
    if metrics:
        lines.append(render_metrics(metrics))
    return "\n".join(lines)


def render_hot_blocks(hot: dict) -> str:
    """Per-run hot-block tables: dispatches and cycle share.

    A run whose profile was never tracked (native runs export an
    explicit ``None``) renders as such — callers no longer need to
    strip those entries before rendering; tracked-but-empty profiles
    are simply omitted.
    """
    lines = ["hot blocks (guest pc, dispatches, cycles, share of "
             "listed):"]
    for run, blocks in sorted(hot.items()):
        if blocks is None:
            lines.append(f"  {run}: (profile not tracked)")
            continue
        if not blocks:
            continue
        total = sum(cycles for _, _, cycles in blocks) or 1
        lines.append(f"  {run}:")
        for pc, dispatches, cycles in blocks:
            lines.append(
                f"    {int(pc):#012x}  {dispatches:>8d}  "
                f"{cycles:>12d}  "
                f"{_fmt_pct(cycles / total).strip():>7s}")
    return "\n".join(lines)


def render_metrics(snapshot: dict) -> str:
    """A metrics-registry snapshot as a labelled text table."""
    metrics = snapshot.get("metrics", {})
    lines = [f"metrics ({snapshot.get('schema', '?')}):"]
    for name in sorted(metrics):
        metric = metrics[name]
        kind = metric.get("kind", "?")
        lines.append(f"  {name} [{kind}]")
        for key in sorted(metric.get("series", {})):
            value = metric["series"][key]
            labels = parse_labels(key)
            label_text = ", ".join(
                f"{k}={v}" for k, v in sorted(labels.items())) \
                or "(no labels)"
            if kind == "histogram":
                value = (f"count={value.get('count', 0)} "
                         f"sum={value.get('sum', 0)}")
            lines.append(f"    {label_text:<44s} {value}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace rendering
# ----------------------------------------------------------------------
def render_trace(payload: dict, source: str = "") -> str:
    """Validate a Chrome trace payload and summarize its spans."""
    events = payload.get("traceEvents", [])
    validate_chrome_events(events)
    spans: dict[str, list[float]] = {}
    counters = 0
    instants = 0
    for event in events:
        if event["ph"] == "X":
            bucket = spans.setdefault(event["name"], [0, 0.0])
            bucket[0] += 1
            bucket[1] += event.get("dur", 0)
        elif event["ph"] == "C":
            counters += 1
        elif event["ph"] == "i":
            instants += 1
    lines = [
        f"=== chrome trace ({source or 'inline'}) ===",
        f"events: {len(events)} "
        f"({sum(c for c, _ in spans.values())} spans, "
        f"{counters} counter samples, {instants} instants)",
    ]
    if spans:
        lines.append(f"{'span':32s}{'count':>8s}{'total us':>14s}")
        ranked = sorted(spans.items(),
                        key=lambda item: (-item[1][1], item[0]))
        for name, (count, total_us) in ranked:
            lines.append(f"{name:32s}{count:>8d}{total_us:>14.0f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def render_file(path) -> str:
    """Dispatch one JSON artefact to the right renderer."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read {path}: {exc}") from None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return render_trace(payload, source=path.name)
    if isinstance(payload, dict) and \
            payload.get("schema") == BENCH_SCHEMA:
        return render_bench(load_bench_json(path), source=path.name)
    raise ReproError(
        f"{path}: neither a bench export ({BENCH_SCHEMA!r}) nor a "
        f"Chrome trace (no traceEvents key)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.obsreport",
        description="Render bench_*.json exports and Chrome traces "
                    "as text reports.")
    parser.add_argument("files", nargs="+",
                        help="bench_*.json and/or trace JSON files")
    args = parser.parse_args(argv)
    status = 0
    for entry in args.files:
        try:
            print(render_file(entry))
        except ReproError as exc:
            print(f"obsreport: {exc}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
