"""The Interface Definition Language of Section 6.2.

Function signatures "in a form similar to C function prototypes"
describe, at run time, which shared-library functions may be linked to
their native host versions and how to marshal their arguments::

    # libm
    f64 sin(f64);
    f64 atan(f64);
    # libcrypto
    i64 md5(ptr, i64);
    void sqlite_exec(i64, i64, i64);

Types: ``i64`` (integer), ``f64`` (IEEE-754 double, passed as its bit
pattern), ``ptr`` (guest address), ``void`` (return only).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import LoaderError

TYPES = ("i64", "f64", "ptr", "void")

_PROTO_RE = re.compile(
    r"^\s*(?P<ret>\w+)\s+(?P<name>\w+)\s*\(\s*(?P<params>[^)]*)\)\s*;\s*$"
)


@dataclass(frozen=True)
class Signature:
    """One IDL prototype."""

    name: str
    ret: str
    params: tuple[str, ...]

    def __post_init__(self):
        if self.ret not in TYPES:
            raise LoaderError(f"{self.name}: bad return type {self.ret!r}")
        for param in self.params:
            if param not in TYPES or param == "void":
                raise LoaderError(
                    f"{self.name}: bad parameter type {param!r}")

    def __str__(self) -> str:
        return f"{self.ret} {self.name}({', '.join(self.params)});"


def parse_idl(source: str) -> dict[str, Signature]:
    """Parse an IDL file into {function name: signature}."""
    signatures: dict[str, Signature] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _PROTO_RE.match(line)
        if not match:
            raise LoaderError(f"IDL line {lineno}: cannot parse {raw!r}")
        params_text = match.group("params").strip()
        params: tuple[str, ...] = ()
        if params_text and params_text != "void":
            params = tuple(p.strip() for p in params_text.split(","))
        signature = Signature(
            name=match.group("name"),
            ret=match.group("ret"),
            params=params,
        )
        if signature.name in signatures:
            raise LoaderError(
                f"IDL line {lineno}: duplicate prototype for "
                f"{signature.name!r}")
        signatures[signature.name] = signature
    return signatures
