"""Host shared libraries: native implementations of guest imports.

A :class:`HostFunction` bundles one shared-library entry point:

* its IDL :class:`~repro.loader.idl.Signature`,
* the *guest* x86 implementation (the "guest shared library" body that
  gets translated when the host linker is off),
* a *native cost* formula — the cycles the precompiled host version
  takes.

The native implementation's **result** is obtained by running the guest
implementation through the x86 reference interpreter against the same
machine memory: host and guest versions therefore agree bit-for-bit by
construction (the property the paper relies on for transparent
linking), while their **costs** differ exactly the way precompiled vs
translated code does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import LinkError
from ..isa.x86.assembler import Assembly, assemble
from ..isa.x86.semantics import CpuState, X86Interpreter
from .idl import Signature

#: Private address range for interpreting host-function bodies and the
#: scratch stack the interpreter uses.
_EVAL_CODE_BASE = 0xF100_0000
_EVAL_STACK_TOP = 0xF1F0_0000
_RETURN_SENTINEL = 0xF1FF_FFF0

#: x86 SysV-ish integer argument registers (used for all IDL types;
#: f64 travels as its bit pattern — the simplification DESIGN.md notes).
ARG_REGISTERS: tuple[str, ...] = ("rdi", "rsi", "rdx", "rcx")


class _EvalMemory:
    """Memory adapter: code fetches from the function body, data from
    the live machine memory (so ``ptr`` arguments work)."""

    def __init__(self, machine_memory, assembly: Assembly):
        self._memory = machine_memory
        self._assembly = assembly

    def read_bytes(self, addr: int, count: int) -> bytes:
        base = self._assembly.base
        if base <= addr < base + len(self._assembly.code):
            off = addr - base
            return self._assembly.code[off:off + count]
        return self._memory.read_bytes(addr, count)

    def load_word(self, addr: int) -> int:
        return self._memory.load_word(addr)

    def store_word(self, addr: int, value: int) -> None:
        self._memory.store_word(addr, value)


@dataclass
class HostFunction:
    """One dynamically linkable library function."""

    signature: Signature
    guest_asm: str
    #: cycles the native host version takes, as f(args).
    native_cost: Callable[..., int]
    _assembly: Assembly | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.signature.name

    def assembly(self) -> Assembly:
        if self._assembly is None:
            self._assembly = assemble(self.guest_asm,
                                      base=_EVAL_CODE_BASE)
            if self.name not in self._assembly.labels:
                raise LinkError(
                    f"{self.name}: guest implementation defines no "
                    f"{self.name}: label")
        return self._assembly

    def invoke(self, machine_memory, args: tuple[int, ...],
               max_steps: int = 2_000_000) -> int:
        """Run the native version: guest semantics, host speed."""
        if len(args) != len(self.signature.params):
            raise LinkError(
                f"{self.name}: expected {len(self.signature.params)} "
                f"args, got {len(args)}")
        assembly = self.assembly()
        memory = _EvalMemory(machine_memory, assembly)
        state = CpuState()
        state.rip = assembly.labels[self.name]
        state.regs["rsp"] = _EVAL_STACK_TOP
        for register, value in zip(ARG_REGISTERS, args):
            state.regs[register] = value & ((1 << 64) - 1)
        # The body ends with `ret`; give it a sentinel return address.
        state.regs["rsp"] -= 8
        memory.store_word(state.regs["rsp"], _RETURN_SENTINEL)
        interp = X86Interpreter(memory)
        steps = 0
        while state.rip != _RETURN_SENTINEL:
            interp.step(state)
            steps += 1
            if steps > max_steps:
                raise LinkError(
                    f"{self.name}: native evaluation did not return")
        return state.regs["rax"]

    def cost(self, args: tuple[int, ...]) -> int:
        return int(self.native_cost(*args))


class HostLibrary:
    """A named collection of host functions (libm, libcrypto, ...)."""

    def __init__(self, name: str,
                 functions: dict[str, HostFunction] | None = None):
        self.name = name
        self.functions: dict[str, HostFunction] = dict(functions or {})

    def add(self, function: HostFunction) -> None:
        if function.name in self.functions:
            raise LinkError(
                f"{self.name}: duplicate function {function.name!r}")
        self.functions[function.name] = function

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __getitem__(self, name: str) -> HostFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise LinkError(
                f"{self.name} has no function {name!r}") from None

    def guest_sources(self) -> dict[str, str]:
        """The guest-side library bodies, for GELF building."""
        return {name: fn.guest_asm
                for name, fn in self.functions.items()}

    def idl_source(self) -> str:
        """Emit the IDL file describing this library."""
        return "\n".join(
            str(fn.signature) for fn in self.functions.values()
        ) + "\n"


def merge_libraries(*libraries: HostLibrary) -> HostLibrary:
    merged = HostLibrary("merged")
    for library in libraries:
        for function in library.functions.values():
            merged.add(function)
    return merged
