"""Guest binary loading and Risotto's dynamic host library linker."""

from .gelf import (
    DATA_BASE,
    GuestBinary,
    LIB_BASE,
    PLT_BASE,
    Section,
    TEXT_BASE,
    build_binary,
)
from .hostlibs import (
    ARG_REGISTERS,
    HostFunction,
    HostLibrary,
    merge_libraries,
)
from .idl import Signature, parse_idl
from .linker import HostLinker, LinkReport, link_binary

__all__ = [
    "DATA_BASE", "GuestBinary", "LIB_BASE", "PLT_BASE", "Section",
    "TEXT_BASE", "build_binary",
    "ARG_REGISTERS", "HostFunction", "HostLibrary", "merge_libraries",
    "Signature", "parse_idl",
    "HostLinker", "LinkReport", "link_binary",
]
