"""GELF: the guest binary format (a compact ELF stand-in).

A guest binary carries what Risotto's dynamic linker needs from ELF
(Section 6.2): a ``.text`` image, a ``.data`` image, the **dynamic
symbol table** (imported shared-library functions), and a **PLT** with
one stub per import.  Application code calls imports *via the PLT
entry*; each stub is a one-instruction trampoline into the guest
version of the library function, so:

* with the host linker off, the stub and the guest library body are
  translated like any other guest code;
* with the host linker on, the runtime recognizes the PLT entry address
  at dispatch time and runs the native host function instead — the
  paper's capture mechanism.

The format serializes to bytes (magic ``GELF``) so load/parse is a real
code path, exercised by tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import LoaderError
from ..isa.x86.assembler import Assembly, assemble

MAGIC = b"GELF"

#: Default load addresses.
TEXT_BASE = 0x0040_0000
PLT_BASE = 0x0060_0000
LIB_BASE = 0x0068_0000
DATA_BASE = 0x0080_0000


@dataclass(frozen=True)
class Section:
    name: str
    base: int
    data: bytes


@dataclass
class GuestBinary:
    """A loaded (or built) guest program image."""

    entry: int
    sections: tuple[Section, ...]
    #: Imported shared-library function names (.dynsym).
    dynsym: tuple[str, ...]
    #: import name -> guest address of its PLT entry.
    plt: dict[str, int]
    #: Exported label addresses (main, helper functions...).
    symbols: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def section(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise LoaderError(f"no section {name!r}")

    def load_into(self, memory) -> None:
        """Map every section into a machine's memory."""
        for section in self.sections:
            if section.data:
                memory.add_image(section.base, section.data)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        out = bytearray(MAGIC)
        out += struct.pack("<Q", self.entry)

        def pack_str(s: str) -> bytes:
            raw = s.encode()
            return struct.pack("<H", len(raw)) + raw

        out += struct.pack("<H", len(self.sections))
        for section in self.sections:
            out += pack_str(section.name)
            out += struct.pack("<QI", section.base, len(section.data))
            out += section.data
        out += struct.pack("<H", len(self.dynsym))
        for name in self.dynsym:
            out += pack_str(name)
            out += struct.pack("<Q", self.plt[name])
        out += struct.pack("<H", len(self.symbols))
        for name, addr in sorted(self.symbols.items()):
            out += pack_str(name)
            out += struct.pack("<Q", addr)
        return bytes(out)

    @staticmethod
    def from_bytes(data: bytes) -> "GuestBinary":
        if data[:4] != MAGIC:
            raise LoaderError("bad GELF magic")
        offset = 4

        def unpack(fmt: str):
            nonlocal offset
            values = struct.unpack_from(fmt, data, offset)
            offset += struct.calcsize(fmt)
            return values

        def unpack_str() -> str:
            nonlocal offset
            (length,) = unpack("<H")
            raw = data[offset:offset + length]
            offset += length
            return raw.decode()

        (entry,) = unpack("<Q")
        (n_sections,) = unpack("<H")
        sections = []
        for _ in range(n_sections):
            name = unpack_str()
            base, size = unpack("<QI")
            body = data[offset:offset + size]
            offset += size
            sections.append(Section(name, base, body))
        (n_dynsym,) = unpack("<H")
        dynsym = []
        plt = {}
        for _ in range(n_dynsym):
            name = unpack_str()
            (addr,) = unpack("<Q")
            dynsym.append(name)
            plt[name] = addr
        (n_symbols,) = unpack("<H")
        symbols = {}
        for _ in range(n_symbols):
            name = unpack_str()
            (addr,) = unpack("<Q")
            symbols[name] = addr
        return GuestBinary(
            entry=entry, sections=tuple(sections),
            dynsym=tuple(dynsym), plt=plt, symbols=symbols,
        )


def build_binary(main_asm: str,
                 guest_libs: dict[str, str] | None = None,
                 entry_symbol: str = "main",
                 data: dict[int, int] | None = None) -> GuestBinary:
    """Assemble a guest program with PLT-linked library imports.

    ``guest_libs`` maps import names to their *guest implementation*
    assembly (each must define a ``<name>:`` label); the builder lays
    out PLT stubs and the guest library bodies, and binds
    ``<name>@plt``-style references in ``main_asm`` (written simply as
    the import name) to the PLT entries.
    """
    guest_libs = guest_libs or {}

    # Lay out guest library bodies first (they only reference their own
    # labels and possibly other imports — handled via externals too).
    lib_sections: list[Section] = []
    lib_symbols: dict[str, int] = {}
    cursor = LIB_BASE
    lib_assemblies: dict[str, Assembly] = {}
    for name, source in sorted(guest_libs.items()):
        assembly = assemble(source, base=cursor)
        if name not in assembly.labels:
            raise LoaderError(
                f"guest library for {name!r} defines no {name}: label")
        lib_assemblies[name] = assembly
        lib_symbols.update(assembly.labels)
        lib_sections.append(Section(f".lib.{name}", cursor,
                                    assembly.code))
        cursor += (len(assembly.code) + 0xFF) & ~0xFF

    # PLT: one `jmp <guest impl>` stub per import.
    plt: dict[str, int] = {}
    plt_parts: list[bytes] = []
    plt_cursor = PLT_BASE
    for name in sorted(guest_libs):
        stub = assemble(f"jmp {name}", base=plt_cursor,
                        external_labels={name: lib_symbols[name]})
        plt[name] = plt_cursor
        plt_parts.append(stub.code)
        plt_cursor += (len(stub.code) + 0xF) & ~0xF
        plt_parts.append(b"\x00" * ((-len(stub.code)) % 0x10))

    main = assemble(main_asm, base=TEXT_BASE, external_labels=dict(plt))
    if entry_symbol not in main.labels:
        raise LoaderError(f"program defines no {entry_symbol!r} label")

    sections = [Section(".text", TEXT_BASE, main.code)]
    if plt_parts:
        sections.append(Section(".plt", PLT_BASE, b"".join(plt_parts)))
    sections.extend(lib_sections)
    if data:
        # One .data section per contiguous-enough region is overkill;
        # emit one word-granular section per address.
        for addr, value in sorted(data.items()):
            sections.append(Section(
                f".data.{addr:x}", addr,
                struct.pack("<Q", value)))

    symbols = dict(main.labels)
    symbols.update(lib_symbols)
    return GuestBinary(
        entry=main.labels[entry_symbol],
        sections=tuple(sections),
        dynsym=tuple(sorted(guest_libs)),
        plt=plt,
        symbols=symbols,
    )
