"""Risotto's dynamic host library linker (Section 6.2, Figure 11).

Workflow, exactly as the paper describes:

1. **Load IDL** — function signatures are read and indexed.
2. **Load GELF** — the guest binary's ``.dynsym`` is scanned; every
   import that has both an IDL signature *and* a host implementation
   gets its PLT entry address recorded in a lookup table.
3. **Capture** — at dispatch time the runtime consults that table
   before translating: a hit runs a marshaling thunk (guest registers →
   host arguments, host return value → guest ``rax``) and calls the
   native host function; a miss lets the PLT stub and the guest library
   body be translated as usual.

Marshaling costs ``marshal_per_arg`` cycles per argument plus the
native call overhead — which is why short libm calls don't reach native
speed (Figure 14) while OpenSSL/SQLite do (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dbt.runtime import Runtime, guest_reg, set_guest_reg
from ..errors import LinkError
from ..machine.cpu import ArmCore
from .gelf import GuestBinary
from .hostlibs import ARG_REGISTERS, HostFunction, HostLibrary
from .idl import Signature, parse_idl


@dataclass
class LinkReport:
    """What the linker resolved (surfaced in examples/benchmarks)."""

    linked: list[str] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        return (f"linked: {', '.join(self.linked) or '(none)'}; "
                f"translated: {', '.join(self.unresolved) or '(none)'}")


class HostLinker:
    """Connects guest PLT entries to native host library functions."""

    def __init__(self, library: HostLibrary, idl_source: str):
        self.library = library
        self.signatures: dict[str, Signature] = parse_idl(idl_source)
        #: per-function native call counts (benchmark instrumentation)
        self.call_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def link(self, binary: GuestBinary, runtime: Runtime) -> LinkReport:
        """Step 2: scan .dynsym, build the PLT lookup table."""
        report = LinkReport()
        for name in binary.dynsym:
            signature = self.signatures.get(name)
            if signature is None or name not in self.library:
                report.unresolved.append(name)
                continue
            function = self.library[name]
            if function.signature != signature:
                raise LinkError(
                    f"{name}: IDL signature {signature} does not match "
                    f"library signature {function.signature}")
            plt_addr = binary.plt[name]
            runtime.plt_thunks[plt_addr] = self._make_thunk(
                function, runtime)
            report.linked.append(name)
        return report

    # ------------------------------------------------------------------
    def _make_thunk(self, function: HostFunction, runtime: Runtime):
        """Step 3: the marshal-call-return thunk run at dispatch time."""
        n_args = len(function.signature.params)
        arg_regs = ARG_REGISTERS[:n_args]
        returns_value = function.signature.ret != "void"

        def thunk(core: ArmCore) -> None:
            costs = core.costs
            # Marshal guest argument registers to host values.
            args = tuple(guest_reg(core, r) for r in arg_regs)
            core.cycles += costs.marshal_per_arg * max(1, n_args)
            # Ordering at the boundary: the host function must see the
            # guest's prior stores (it runs on host memory directly).
            core.drain_buffer()
            # Native execution.
            result = function.invoke(runtime.machine.memory, args)
            core.cycles += function.cost(args) + costs.native_call
            self.call_counts[function.name] = \
                self.call_counts.get(function.name, 0) + 1
            runtime.stats.plt_calls += 1
            if returns_value:
                set_guest_reg(core, "rax", result)
                core.cycles += costs.marshal_per_arg
            # Return: pop the guest return address pushed by `call`.
            rsp = guest_reg(core, "rsp")
            return_pc = runtime.machine.memory.load_word(rsp)
            set_guest_reg(core, "rsp", rsp + 8)
            runtime.dispatch_to(core, return_pc)

        return thunk


def link_binary(binary: GuestBinary, runtime: Runtime,
                library: HostLibrary,
                idl_source: str | None = None) -> LinkReport:
    """Convenience: build a linker from a library (IDL auto-derived
    unless given) and link one binary."""
    linker = HostLinker(library, idl_source or library.idl_source())
    return linker.link(binary, runtime)
