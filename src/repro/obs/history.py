"""Append-only, schema-versioned bench-history store.

Every figure harness already writes a machine-readable
``results/bench_<figure>.json`` (:mod:`repro.analysis.export`), but
only the *latest* one — a PR that silently regresses Figure 12 or the
DPOR verify path leaves no durable evidence.  This module records each
export into ``results/history/<figure>.jsonl``:

* **append-only** — one JSON record per line, never rewritten, so the
  store is a time series that survives re-runs and is trivially
  diffable in CI artefacts;
* **schema-versioned** — every record carries
  :data:`HISTORY_SCHEMA`; readers skip records they do not understand
  instead of misreading them;
* **keyed** — records are identified by figure, per-cell
  ``benchmark/variant`` keys, a :func:`config_fingerprint` of the
  run's configuration, and the git revision that produced them.  The
  regression sentinel (:mod:`repro.obs.sentinel`) only ever compares
  runs with equal fingerprints, so an iteration-count change can never
  masquerade as a perf delta.

Recording is wired into :func:`repro.analysis.export.write_bench_json`
(the funnel under every harness's ``emit_bench``) and exposed directly
as ``python -m repro perf record``.

Environment knobs:

* ``REPRO_BENCH_HISTORY=0`` disables recording entirely;
* ``REPRO_BENCH_HISTORY_DIR`` overrides the store location (default:
  ``history/`` next to the bench json being recorded, i.e.
  ``results/history/`` for the standard harnesses).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from pathlib import Path

from ..errors import ReproError

#: Version tag of one history record.  Bump on breaking layout change.
HISTORY_SCHEMA = "repro-bench-history/1"

#: Default store location relative to the repo/check-out root.
DEFAULT_HISTORY_DIR = Path("results") / "history"

#: Per-cell metrics lifted out of a bench payload's ``rows``.
ROW_METRICS = ("cycles", "fence_cycles", "total_cycles", "checksum")

#: Sweep-level metrics lifted out of a payload's ``stats``.
STAT_METRICS = (
    "fence_cycles",
    "total_cycles",
    "blocks_translated",
    "guest_insns_translated",
    "helper_calls",
    "block_dispatches",
    "enum_candidates_naive",
    "enum_executions",
    "enum_consistent",
    "enum_pruned_fraction",
)


def history_enabled() -> bool:
    """Recording is on unless ``REPRO_BENCH_HISTORY`` disables it."""
    value = os.environ.get("REPRO_BENCH_HISTORY", "1")
    return value.lower() not in ("0", "false", "no", "")


def history_dir(default: Path | str | None = None) -> Path:
    """The store directory: env override, else ``default``, else
    :data:`DEFAULT_HISTORY_DIR`."""
    env = os.environ.get("REPRO_BENCH_HISTORY_DIR")
    if env:
        return Path(env)
    if default is not None:
        return Path(default)
    return DEFAULT_HISTORY_DIR


def config_fingerprint(payload: dict) -> str:
    """A short digest of everything that makes runs comparable.

    Covers the figure name, the payload's explicit ``config`` dict
    (iteration counts, variant subsets, enumeration knobs — whatever
    the harness declared), and the set of per-cell keys.  Measured
    quantities never contribute, so two runs of the same configuration
    always share a fingerprint whatever their numbers.
    """
    basis = {
        "figure": payload.get("figure"),
        "config": payload.get("config") or {},
        "cells": sorted(
            f"{row['benchmark']}/{row['variant']}"
            for row in payload.get("rows", [])
        ),
    }
    canonical = json.dumps(basis, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


_GIT_REV: str | None = None


def git_rev() -> str:
    """The current short git revision (cached; ``unknown`` outside a
    checkout)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10)
            _GIT_REV = out.stdout.strip() if out.returncode == 0 \
                else "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = "unknown"
    return _GIT_REV or "unknown"


def history_record(payload: dict, *, rev: str | None = None,
                   note: str = "",
                   recorded_at: str | None = None) -> dict:
    """Normalize one bench payload into a history record."""
    figure = payload.get("figure")
    if not figure:
        raise ReproError("bench payload has no figure name")
    rows: dict[str, dict] = {}
    for row in payload.get("rows", []):
        key = f"{row['benchmark']}/{row['variant']}"
        rows[key] = {m: row[m] for m in ROW_METRICS if m in row}
    stats_in = payload.get("stats") or {}
    stats = {m: stats_in[m] for m in STAT_METRICS if m in stats_in}
    return {
        "schema": HISTORY_SCHEMA,
        "figure": figure,
        "fingerprint": config_fingerprint(payload),
        "rev": git_rev() if rev is None else rev,
        "recorded_at": recorded_at or time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "note": note,
        "config": payload.get("config") or {},
        "rows": rows,
        "stats": stats,
    }


def history_path(figure: str, history: Path | str | None = None) -> Path:
    """Where one figure's records live."""
    return history_dir(history) / f"{figure}.jsonl"


def record_bench(payload: dict, *, history: Path | str | None = None,
                 rev: str | None = None, note: str = "") -> Path:
    """Append one bench payload to the store; returns the file path."""
    record = history_record(payload, rev=rev, note=note)
    path = history_path(record["figure"], history)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(figure: str,
                 history: Path | str | None = None) -> list[dict]:
    """All readable records of one figure, oldest first.

    Records with an unknown schema tag are skipped (forward
    compatibility); a line that is not JSON at all raises — an
    append-only store should never contain one.
    """
    path = history_path(figure, history)
    if not path.exists():
        return []
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ReproError(
                f"{path}:{lineno}: corrupt history record: {exc}") \
                from None
        if not isinstance(record, dict) \
                or record.get("schema") != HISTORY_SCHEMA:
            continue
        records.append(record)
    return records


def figures_in_history(history: Path | str | None = None) -> list[str]:
    """Figure names with at least one record in the store."""
    root = history_dir(history)
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("*.jsonl"))


# ----------------------------------------------------------------------
# Trend rendering (``python -m repro perf report``)
# ----------------------------------------------------------------------
def _pct(new: float, old: float) -> str:
    if not old:
        return "n/a"
    return f"{(new - old) / old * 100.0:+.1f}%"


def _trend_lines(records: list[dict], section: str,
                 metric: str) -> list[tuple[str, str, list]]:
    """(key, metric, values-oldest-first) triples for one metric."""
    keys: dict[str, list] = {}
    for record in records:
        cells = record.get(section) or {}
        if section == "stats":
            cells = {"sweep": cells}
        for key, metrics in cells.items():
            if metric in metrics:
                keys.setdefault(key, []).append(metrics[metric])
    return [(key, metric, values)
            for key, values in sorted(keys.items()) if values]


def render_trend(figure: str, records: list[dict],
                 fmt: str = "text") -> str:
    """A per-cell trend table over one figure's history.

    ``fmt`` is ``"text"`` (aligned columns) or ``"md"`` (a GitHub
    markdown table).  Records are grouped by config fingerprint so
    incomparable runs never share a row.
    """
    if fmt not in ("text", "md"):
        raise ReproError(f"unknown trend format {fmt!r} "
                         "(expected 'text' or 'md')")
    lines: list[str] = []
    by_fp: dict[str, list[dict]] = {}
    for record in records:
        by_fp.setdefault(record.get("fingerprint", "?"), []) \
            .append(record)
    if fmt == "md":
        lines.append(f"### {figure}")
    else:
        lines.append(f"=== perf trend: {figure} ===")
    if not records:
        lines.append("(no history records)")
        return "\n".join(lines)
    for fingerprint, group in sorted(by_fp.items()):
        revs = " -> ".join(r.get("rev", "?") for r in group)
        header = (f"fingerprint {fingerprint} "
                  f"({len(group)} records: {revs})")
        rows: list[tuple[str, str, list]] = []
        for metric in ("cycles", "fence_cycles"):
            rows.extend(_trend_lines(group, "rows", metric))
        for metric in ("enum_pruned_fraction", "enum_executions",
                       "total_cycles"):
            rows.extend(_trend_lines(group, "stats", metric))
        if fmt == "md":
            lines.append(f"\n**{header}**\n")
            lines.append("| cell | metric | values (oldest..newest) "
                         "| Δ |")
            lines.append("|---|---|---|---|")
            for key, metric, values in rows:
                series = " → ".join(_fmt_value(v) for v in values)
                lines.append(
                    f"| {key} | {metric} | {series} "
                    f"| {_pct(values[-1], values[0])} |")
        else:
            lines.append(header)
            lines.append(f"  {'cell':28s}{'metric':>22s}"
                         f"{'oldest':>14s}{'newest':>14s}{'Δ':>9s}")
            for key, metric, values in rows:
                lines.append(
                    f"  {key:28s}{metric:>22s}"
                    f"{_fmt_value(values[0]):>14s}"
                    f"{_fmt_value(values[-1]):>14s}"
                    f"{_pct(values[-1], values[0]):>9s}")
    return "\n".join(lines)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
