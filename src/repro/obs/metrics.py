"""Metrics registry: counters, gauges, histograms with labeled series.

The registry replaces hand-threaded counter plumbing with a single
protocol:

* code increments named metrics, optionally with labels::

      reg = get_registry()
      reg.counter("fence_cycles").labels(origin="RMOV->ld;Frm").inc(28)

* a worker process folds everything it recorded into a plain-dict
  :meth:`MetricsRegistry.snapshot` (picklable / JSON-able),
* the parent merges snapshots with :meth:`MetricsRegistry.merge` —
  counters and histograms add, gauges keep the latest value.

Label sets are serialized into a stable ``k=v,k2=v2`` key so snapshots
survive JSON round-trips; :func:`parse_labels` recovers the dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError

#: Snapshot schema version (bumped on layout changes).
SNAPSHOT_SCHEMA = "repro-metrics/1"

#: Default histogram bucket upper bounds (last bucket is +inf).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


def label_key(labels: dict) -> str:
    """Stable serialization of a label dict (sorted ``k=v`` pairs)."""
    for k, v in labels.items():
        text = f"{k}={v}"
        if "," in text or "=" in str(k) or "=" in str(v):
            raise ReproError(
                f"label {k}={v!r} may not contain ',' or '='")
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def parse_labels(key: str) -> dict[str, str]:
    """Inverse of :func:`label_key` (values come back as strings)."""
    if not key:
        return {}
    return dict(pair.split("=", 1) for pair in key.split(","))


class _CounterSeries:
    __slots__ = ("_store", "_key")

    def __init__(self, store: dict, key: str):
        self._store = store
        self._key = key

    @property
    def value(self):
        return self._store.get(self._key, 0)

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ReproError("counters only go up")
        self._store[self._key] = self._store.get(self._key, 0) + amount


class _GaugeSeries(_CounterSeries):
    def set(self, value) -> None:
        self._store[self._key] = value

    def inc(self, amount=1) -> None:
        self._store[self._key] = self._store.get(self._key, 0) + amount


class _HistogramSeries:
    __slots__ = ("_store", "_key", "_buckets")

    def __init__(self, store: dict, key: str,
                 buckets: tuple[float, ...]):
        self._store = store
        self._key = key
        self._buckets = buckets
        if key not in store:
            store[key] = {
                "count": 0, "sum": 0.0,
                "buckets": [0] * (len(buckets) + 1),
            }

    @property
    def value(self) -> dict:
        return self._store[self._key]

    def observe(self, value) -> None:
        cell = self._store[self._key]
        cell["count"] += 1
        cell["sum"] += value
        for i, bound in enumerate(self._buckets):
            if value <= bound:
                cell["buckets"][i] += 1
                return
        cell["buckets"][-1] += 1


@dataclass
class _Metric:
    name: str
    kind: str                      # "counter" | "gauge" | "histogram"
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    series: dict = field(default_factory=dict)

    def labels(self, **labels):
        key = label_key(labels)
        if self.kind == "counter":
            return _CounterSeries(self.series, key)
        if self.kind == "gauge":
            return _GaugeSeries(self.series, key)
        return _HistogramSeries(self.series, key, self.buckets)

    # Label-less convenience -----------------------------------------
    def inc(self, amount=1) -> None:
        self.labels().inc(amount)

    def set(self, value) -> None:
        self.labels().set(value)

    def observe(self, value) -> None:
        self.labels().observe(value)

    @property
    def value(self):
        return self.labels().value


class MetricsRegistry:
    """Named metrics + the snapshot/merge protocol."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: str, help: str,
                       **extra) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = _Metric(name=name, kind=kind, help=help, **extra)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ReproError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> _Metric:
        return self._get_or_create(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> _Metric:
        return self._get_or_create(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  ) -> _Metric:
        return self._get_or_create(name, "histogram", help,
                                   buckets=tuple(buckets))

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Snapshot / merge (the process-boundary protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict copy of every series (picklable, JSON-able)."""
        metrics = {}
        for name, metric in sorted(self._metrics.items()):
            series = {}
            for key, value in metric.series.items():
                series[key] = dict(
                    value, buckets=list(value["buckets"]),
                ) if metric.kind == "histogram" else value
            metrics[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": series,
                **({"buckets": list(metric.buckets)}
                   if metric.kind == "histogram" else {}),
            }
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms add; gauges keep the incoming value
        (last write wins — the snapshots of a sweep arrive in
        submission order).
        """
        if not snapshot:
            return
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ReproError(
                f"cannot merge metrics snapshot with schema "
                f"{snapshot.get('schema')!r} (expected "
                f"{SNAPSHOT_SCHEMA})")
        for name, payload in snapshot["metrics"].items():
            kind = payload["kind"]
            if kind == "histogram":
                metric = self.histogram(
                    name, payload.get("help", ""),
                    tuple(payload.get("buckets", DEFAULT_BUCKETS)))
            else:
                metric = self._get_or_create(
                    name, kind, payload.get("help", ""))
            for key, value in payload["series"].items():
                if kind == "counter":
                    metric.series[key] = \
                        metric.series.get(key, 0) + value
                elif kind == "gauge":
                    metric.series[key] = value
                else:
                    cell = metric.series.get(key)
                    if cell is None:
                        metric.series[key] = {
                            "count": value["count"],
                            "sum": value["sum"],
                            "buckets": list(value["buckets"]),
                        }
                    else:
                        if len(cell["buckets"]) != \
                                len(value["buckets"]):
                            raise ReproError(
                                f"histogram {name!r} bucket layouts "
                                f"differ across snapshots")
                        cell["count"] += value["count"]
                        cell["sum"] += value["sum"]
                        cell["buckets"] = [
                            a + b for a, b in zip(cell["buckets"],
                                                  value["buckets"])
                        ]

    # ------------------------------------------------------------------
    def counter_series(self, name: str) -> dict[str, int]:
        """All series of a counter as ``{label_key: value}`` (empty
        dict when the metric was never recorded)."""
        metric = self._metrics.get(name)
        if metric is None:
            return {}
        return dict(metric.series)

    def total(self, name: str):
        """Sum of a counter across all label sets."""
        return sum(self.counter_series(name).values())


# ----------------------------------------------------------------------
# The process-wide registry
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous
