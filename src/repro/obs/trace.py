"""Low-overhead structured tracing for the DBT pipeline.

The tracer records two event shapes:

* **spans** — a named interval with a duration (``ph: "X"`` complete
  events in Chrome's ``trace_event`` vocabulary), opened with
  ``with tracer.span("translate", pc=...):``;
* **instants** — a point event (``ph: "i"``), and **counters**
  (``ph: "C"``) for sampled time series.

The default tracer is a process-wide :class:`NullTracer`: every method
is a no-op and ``span()`` returns one shared, reusable null context
manager, so instrumented code paths allocate nothing and record
nothing until someone calls :func:`trace_enable` (or sets
``REPRO_TRACE=1`` in the environment before the first import).

Output formats:

* :meth:`Tracer.write_jsonl` — one JSON object per line, the raw
  event stream for ad-hoc tooling;
* :meth:`Tracer.write_chrome` — a ``{"traceEvents": [...]}`` document
  loadable in Perfetto / ``chrome://tracing``.

:func:`validate_chrome_trace` checks a file against the subset of the
``trace_event`` schema we emit — CI's trace smoke leg and the figure
harness tests both call it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..errors import ReproError

#: Chrome trace_event phase codes we emit ("M" carries the
#: process/thread naming metadata of merged multi-worker traces).
_PHASES = {"X", "i", "C", "M"}


class _NullSpan:
    """The shared do-nothing context manager of the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: records nothing, allocates nothing."""

    enabled = False
    events: tuple = ()

    def span(self, name, cat="", **args):
        return _NULL_SPAN

    def instant(self, name, cat="", **args):
        return None

    def counter(self, name, **values):
        return None


class _Span:
    """An open span: records one complete ("X") event on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "start")

    def __init__(self, tracer, name, cat, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start = time.perf_counter_ns()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        end = time.perf_counter_ns()
        self.tracer._record({
            "name": self.name,
            "ph": "X",
            "ts": (self.start - self.tracer.epoch_ns) / 1000.0,
            "dur": (end - self.start) / 1000.0,
            "pid": self.tracer.pid,
            "tid": self.tracer.tid,
            "cat": self.cat or "repro",
            "args": self.args,
        })
        return False


@dataclass
class Tracer:
    """An enabled tracer accumulating trace_event-shaped dicts."""

    enabled: bool = True
    pid: int = field(default_factory=os.getpid)
    #: Logical thread lane.  The simulator is single-threaded; sites
    #: that model per-core work may pass their own lane via ``tid=``.
    tid: int = 0
    events: list[dict] = field(default_factory=list)
    epoch_ns: int = field(default_factory=time.perf_counter_ns)

    def _record(self, event: dict) -> None:
        self.events.append(event)

    def _ts(self) -> float:
        return (time.perf_counter_ns() - self.epoch_ns) / 1000.0

    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "", **args) -> _Span:
        """Open a duration span; use as a context manager."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "", **args) -> None:
        self._record({
            "name": name, "ph": "i", "ts": self._ts(),
            "pid": self.pid, "tid": self.tid, "cat": cat or "repro",
            "s": "t", "args": args,
        })

    def counter(self, name: str, **values) -> None:
        self._record({
            "name": name, "ph": "C", "ts": self._ts(),
            "pid": self.pid, "tid": self.tid, "cat": "repro",
            "args": values,
        })

    def process_metadata(self, pid: int, name: str) -> None:
        """Record a Chrome ``process_name`` metadata event so merged
        traces label each worker lane."""
        self._record({
            "name": "process_name", "ph": "M", "ts": 0,
            "pid": pid, "tid": 0, "cat": "__metadata",
            "args": {"name": name},
        })

    def merge_events(self, events, epoch_ns: int | None = None) -> int:
        """Fold another tracer's events into this one.

        ``epoch_ns`` is the source tracer's epoch; timestamps are
        rebased onto this tracer's timeline (``perf_counter_ns`` is a
        shared monotonic clock, so spans from pool workers line up
        with the parent's).  Events keep their own ``pid``/``tid`` —
        that is what makes the merged trace show one lane per worker.
        Returns the number of events merged.
        """
        offset_us = 0.0 if epoch_ns is None \
            else (epoch_ns - self.epoch_ns) / 1000.0
        for event in events:
            event = dict(event)
            if isinstance(event.get("ts"), (int, float)):
                event["ts"] = max(0.0, event["ts"] + offset_us)
            self.events.append(event)
        return len(events)

    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }

    def write_chrome(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
        return path

    def write_jsonl(self, path):
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event) + "\n")
        return path

    def clear(self) -> None:
        self.events.clear()


# ----------------------------------------------------------------------
# The process-wide tracer
# ----------------------------------------------------------------------
_NULL_TRACER = NullTracer()
_tracer: NullTracer | Tracer = _NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The current process-wide tracer (NullTracer unless enabled)."""
    return _tracer


def install_tracer(tracer: NullTracer | Tracer) -> NullTracer | Tracer:
    """Swap in a specific tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def trace_enable() -> Tracer:
    """Enable tracing process-wide; returns the live tracer."""
    global _tracer
    if not isinstance(_tracer, Tracer):
        _tracer = Tracer()
    return _tracer


def trace_disable() -> None:
    """Back to the zero-overhead null tracer."""
    global _tracer
    _tracer = _NULL_TRACER


def _env_truthy(value: str | None) -> bool:
    return bool(value) and value.lower() not in ("0", "false", "no", "")


#: ``REPRO_TRACE=1`` enables tracing for the whole process;
#: ``REPRO_TRACE_FILE`` selects where :func:`flush_env_trace` writes
#: (extension picks the format: ``.jsonl`` raw, anything else Chrome).
if _env_truthy(os.environ.get("REPRO_TRACE")):  # pragma: no cover
    trace_enable()


def flush_env_trace(default_path: str = "results/trace.json") -> str | None:
    """Write the live tracer to ``REPRO_TRACE_FILE`` (or the default).

    Returns the path written, or ``None`` when tracing is disabled.
    Harnesses call this after their sweep so ``REPRO_TRACE=1`` runs
    always leave an artefact.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    path = os.environ.get("REPRO_TRACE_FILE", default_path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if path.endswith(".jsonl"):
        tracer.write_jsonl(path)
    else:
        tracer.write_chrome(path)
    return path


# ----------------------------------------------------------------------
# Schema validation (trace_event subset)
# ----------------------------------------------------------------------
def validate_chrome_events(events) -> int:
    """Validate a list of trace_event dicts; returns the event count.

    Raises :class:`~repro.errors.ReproError` with the first offending
    event on any violation of the subset we emit: required keys,
    known phase codes, numeric non-negative timestamps, and durations
    on complete events.
    """
    if not isinstance(events, list):
        raise ReproError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ReproError(f"event #{i} is not an object: {event!r}")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ReproError(f"event #{i} missing {key!r}: {event}")
        if event["ph"] not in _PHASES:
            raise ReproError(
                f"event #{i} has unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ReproError(f"event #{i} has bad ts {event['ts']!r}")
        if event["ph"] == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ReproError(
                    f"event #{i} (metadata) has no args.name")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ReproError(
                    f"event #{i} (complete) has bad dur {dur!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ReproError(f"event #{i} has bad name")
    return len(events)


def validate_chrome_trace(path) -> int:
    """Validate a Chrome-trace JSON file; returns the event count."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable chrome trace {path}: {exc}") \
            from exc
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ReproError(f"{path}: no traceEvents array")
    return validate_chrome_events(doc["traceEvents"])
