"""Observability layer: structured tracing and a metrics registry.

Two small, dependency-free subsystems every other layer can import
without cost:

* :mod:`repro.obs.trace` — span/instant event tracing with a no-op
  default tracer.  When enabled (programmatically or via
  ``REPRO_TRACE=1``) the DBT pipeline, optimizer passes, scheduler
  loop and staged enumerator emit events renderable as JSONL or Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.metrics` — counters, gauges and histograms with
  labeled series and a snapshot/merge protocol that crosses the
  ``run_parallel`` process boundary.

The contract is zero overhead when disabled: the default tracer is a
shared :class:`~repro.obs.trace.NullTracer` whose methods record
nothing, and call sites guard any non-trivial argument construction
with ``tracer.enabled``.
"""

from .flame import collapsed_stacks, write_collapsed
from .history import (
    HISTORY_SCHEMA,
    config_fingerprint,
    figures_in_history,
    history_dir,
    history_enabled,
    load_history,
    record_bench,
    render_trend,
)
from .metrics import MetricsRegistry, get_registry, set_registry
from .sentinel import Finding, SentinelReport, check_payload, \
    load_floors
from .trace import (
    NullTracer,
    Tracer,
    get_tracer,
    install_tracer,
    trace_disable,
    trace_enable,
    validate_chrome_trace,
)

__all__ = [
    "MetricsRegistry", "get_registry", "set_registry",
    "NullTracer", "Tracer", "get_tracer", "install_tracer",
    "trace_disable", "trace_enable", "validate_chrome_trace",
    # bench history + regression sentinel
    "HISTORY_SCHEMA", "config_fingerprint", "figures_in_history",
    "history_dir", "history_enabled", "load_history", "record_bench",
    "render_trend",
    "Finding", "SentinelReport", "check_payload", "load_floors",
    # flamegraph export
    "collapsed_stacks", "write_collapsed",
]
