"""Collapsed-stack (flamegraph) export of hot-block profiles.

The runtime already attributes dispatch counts and cycles to every
translated guest block (``hot_blocks`` in each bench export).  This
module folds those profiles into the *collapsed stack* format that
``flamegraph.pl``, speedscope and most flame viewers consume — one
line per stack, semicolon-separated frames, a space, and the sample
weight::

    fig12;blackscholes/risotto;pc_0x400290 912

Frames are ``figure;benchmark/variant;pc_<guest pc>`` and the weight
is the attributed cycle count, so the rendered flame shows exactly
where the simulated cycles went across the whole sweep.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ReproError


def collapsed_stacks(payload: dict) -> list[str]:
    """Collapsed-stack lines from one bench payload's hot blocks.

    Untracked profiles (native runs export ``None``) and empty
    profiles contribute nothing; runs with blocks contribute one line
    per (run, guest pc) with the attributed cycles as the weight.
    """
    figure = payload.get("figure", "?")
    lines: list[str] = []
    for run, blocks in sorted((payload.get("hot_blocks") or {}).items()):
        if not blocks:       # None (untracked) or [] (nothing hot)
            continue
        for entry in blocks:
            try:
                pc, _dispatches, cycles = entry
            except (TypeError, ValueError):
                raise ReproError(
                    f"malformed hot-block entry for {run}: "
                    f"{entry!r}") from None
            if cycles <= 0:
                continue
            lines.append(
                f"{figure};{run};pc_{int(pc):#x} {int(cycles)}")
    return lines


def write_collapsed(path, payloads) -> Path:
    """Write the collapsed stacks of one or more payloads; returns the
    path written (the file may be empty when nothing was profiled)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines: list[str] = []
    for payload in payloads:
        lines.extend(collapsed_stacks(payload))
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path
