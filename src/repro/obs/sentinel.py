"""Noise-aware perf-regression sentinel over the bench history.

The sentinel compares a fresh ``bench_*.json`` payload against the
recorded baseline in the history store (:mod:`repro.obs.history`):

* **baseline** — the median of the last ``window`` records with the
  same config fingerprint, per cell and per metric;
* **tolerance** — ``max(mad_k · 1.4826 · MAD, rel_tol · |median|,
  abs_tol)``: the MAD term absorbs run-to-run noise where it exists,
  the relative and absolute floors keep deterministic metrics (the
  simulator's cycle counts repeat exactly) from tripping on nothing
  while still catching a real ≥10% move at the default 5% band;
* **direction** — every metric declares which way is bad:
  ``cycles`` up is a regression, ``enum_pruned_fraction`` *down* is a
  regression, ``checksum`` must match exactly (a change is a
  determinism break, not noise).

Beyond history baselines the sentinel applies **floors** — absolute
minima for up-is-good metrics.  The legacy
``results/verify_floor.json`` file (``{"min_pruned_fraction": x}``)
loads directly as a floor on ``enum_pruned_fraction``, subsuming the
ad-hoc CI gate it used to drive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median

from ..errors import ReproError
from .history import config_fingerprint, history_record

#: Consistency constant: 1.4826 · MAD estimates a Gaussian sigma.
MAD_SIGMA = 1.4826


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is judged."""

    #: "down" (increase is bad), "up" (decrease is bad), or "exact"
    #: (any change is bad — determinism breaks, not noise).
    direction: str
    #: Absolute tolerance floor in the metric's own unit.
    abs_tol: float = 0.0


#: Per-cell metrics (payload ``rows``) the sentinel judges.
ROW_METRIC_SPECS: dict[str, MetricSpec] = {
    "cycles": MetricSpec("down", abs_tol=16),
    "fence_cycles": MetricSpec("down", abs_tol=16),
    "total_cycles": MetricSpec("down", abs_tol=16),
    "checksum": MetricSpec("exact"),
}

#: Sweep-level metrics (payload ``stats``) the sentinel judges.
#: Wall-clock quantities are deliberately absent: they measure the
#: host, not the change under test.
STAT_METRIC_SPECS: dict[str, MetricSpec] = {
    "fence_cycles": MetricSpec("down", abs_tol=64),
    "total_cycles": MetricSpec("down", abs_tol=64),
    "enum_executions": MetricSpec("down", abs_tol=8),
    "enum_pruned_fraction": MetricSpec("up", abs_tol=0.005),
}

#: Legacy floor-file keys -> the stats metric they bound.
_LEGACY_FLOOR_KEYS = {
    "min_pruned_fraction": "enum_pruned_fraction",
}


@dataclass(frozen=True)
class Finding:
    """One judged (cell, metric) pair."""

    figure: str
    scope: str          # "rows" | "stats" | "floor"
    key: str            # "benchmark/variant", or "sweep" for stats
    metric: str
    value: float | int | None
    baseline: float | int | None
    tolerance: float
    #: "ok" | "regression" | "improvement" | "no-baseline"
    kind: str
    detail: str = ""

    def __str__(self) -> str:
        head = (f"{self.kind.upper():12s} {self.figure} "
                f"{self.key} {self.metric}")
        if self.kind == "no-baseline":
            return f"{head}: {self.detail or 'no history baseline'}"
        return (f"{head}: {self.value} vs baseline {self.baseline} "
                f"(tolerance {self.tolerance:g})"
                + (f" — {self.detail}" if self.detail else ""))


@dataclass
class SentinelReport:
    """Every finding of one payload check."""

    figure: str
    fingerprint: str
    records_used: int
    findings: list[Finding] = field(default_factory=list)

    def _kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    @property
    def regressions(self) -> list[Finding]:
        return self._kind("regression")

    @property
    def improvements(self) -> list[Finding]:
        return self._kind("improvement")

    @property
    def missing(self) -> list[Finding]:
        return self._kind("no-baseline")

    def ok(self, require_baseline: bool = False) -> bool:
        if self.regressions:
            return False
        if require_baseline and self.missing:
            return False
        return True

    def render(self) -> str:
        checked = len(self.findings) - len(self.missing)
        lines = [
            f"=== perf sentinel: {self.figure} "
            f"(fingerprint {self.fingerprint}, "
            f"{self.records_used} baseline records) ===",
            f"checked {checked} metrics: "
            f"{len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, "
            f"{len(self.missing)} without baseline",
        ]
        for finding in self.findings:
            if finding.kind != "ok":
                lines.append(str(finding))
        verdict = "FAIL" if self.regressions else "OK"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def load_floors(path) -> dict[str, float]:
    """Read a floors file: ``{"floors": {metric: min}}`` or the legacy
    ``verify_floor.json`` shape (``{"min_pruned_fraction": x}``)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read floors file {path}: {exc}") \
            from None
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: floors file must be an object")
    if isinstance(payload.get("floors"), dict):
        return {str(k): float(v)
                for k, v in payload["floors"].items()}
    floors = {}
    for legacy, metric in _LEGACY_FLOOR_KEYS.items():
        if legacy in payload:
            floors[metric] = float(payload[legacy])
    if not floors:
        raise ReproError(
            f"{path}: no floors found (expected a 'floors' object or "
            f"one of {sorted(_LEGACY_FLOOR_KEYS)})")
    return floors


def _mad(values: list[float], center: float) -> float:
    return median([abs(v - center) for v in values]) if values else 0.0


def _tolerance(spec: MetricSpec, center: float, values: list,
               mad_k: float, rel_tol: float) -> float:
    noise = mad_k * MAD_SIGMA * _mad([float(v) for v in values],
                                     center)
    return max(noise, rel_tol * abs(center), spec.abs_tol)


def _judge(figure: str, scope: str, key: str, metric: str,
           spec: MetricSpec, value, values: list,
           mad_k: float, rel_tol: float) -> Finding:
    """Judge one current value against its baseline series."""
    if spec.direction == "exact":
        baseline = values[-1]
        kind = "ok" if value == baseline else "regression"
        return Finding(figure, scope, key, metric, value, baseline,
                       0.0, kind,
                       detail="" if kind == "ok"
                       else "exact-match metric changed "
                            "(determinism break)")
    center = median([float(v) for v in values])
    tol = _tolerance(spec, center, values, mad_k, rel_tol)
    delta = float(value) - center
    bad = delta > tol if spec.direction == "down" else delta < -tol
    good = delta < -tol if spec.direction == "down" else delta > tol
    kind = "regression" if bad else "improvement" if good else "ok"
    detail = ""
    if kind != "ok" and center:
        detail = f"{delta / center * 100.0:+.1f}% vs median"
    return Finding(figure, scope, key, metric, value, center, tol,
                   kind, detail=detail)


def check_payload(payload: dict, records: list[dict], *,
                  window: int = 5, mad_k: float = 3.0,
                  rel_tol: float = 0.05,
                  floors: dict[str, float] | None = None,
                  ) -> SentinelReport:
    """Judge one bench payload against its recorded history.

    ``records`` is the figure's full history (oldest first, as
    :func:`repro.obs.history.load_history` returns it); only the last
    ``window`` records with the payload's own config fingerprint form
    the baseline.  Returns a :class:`SentinelReport`; the caller
    decides whether missing baselines are fatal.
    """
    current = history_record(payload, rev="<current>")
    figure = current["figure"]
    fingerprint = config_fingerprint(payload)
    matching = [r for r in records
                if r.get("fingerprint") == fingerprint][-window:]
    report = SentinelReport(figure=figure, fingerprint=fingerprint,
                            records_used=len(matching))

    sections = (
        ("rows", current["rows"], ROW_METRIC_SPECS),
        ("stats", {"sweep": current["stats"]}, STAT_METRIC_SPECS),
    )
    for scope, cells, specs in sections:
        for key, metrics in sorted(cells.items()):
            for metric, value in sorted(metrics.items()):
                spec = specs.get(metric)
                if spec is None:
                    continue
                values = []
                for record in matching:
                    prior = record.get(scope) or {}
                    if scope == "stats":
                        prior = {"sweep": prior}
                    if key in prior and metric in prior[key]:
                        values.append(prior[key][metric])
                if not values:
                    report.findings.append(Finding(
                        figure, scope, key, metric, value, None, 0.0,
                        "no-baseline",
                        detail="no matching history record"))
                    continue
                report.findings.append(_judge(
                    figure, scope, key, metric, spec, value, values,
                    mad_k, rel_tol))

    for metric, floor in sorted((floors or {}).items()):
        value = current["stats"].get(metric)
        if value is None:
            report.findings.append(Finding(
                figure, "floor", "sweep", metric, None, floor, 0.0,
                "no-baseline",
                detail="payload carries no such stats metric"))
            continue
        kind = "ok" if float(value) >= floor else "regression"
        report.findings.append(Finding(
            figure, "floor", "sweep", metric, value, floor, 0.0,
            kind, detail="" if kind == "ok"
            else f"below recorded floor {floor:g}"))
    return report
