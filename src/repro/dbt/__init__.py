"""The Risotto DBT system: configs, runtime, and execution engine."""

from .config import (
    DBTConfig,
    NATIVE,
    NO_FENCES,
    QEMU,
    RISOTTO,
    TCG_VER,
    VARIANT_NAMES,
    VARIANTS,
    resolve_variant,
)
from .engine import DBTEngine, NativeRunner, RunResult
from .runtime import (
    Runtime,
    RunStats,
    SYS_EXIT,
    SYS_JOIN,
    SYS_SPAWN,
    SYS_WRITE_INT,
    guest_reg,
    set_guest_reg,
)

__all__ = [
    "DBTConfig", "NO_FENCES", "QEMU", "RISOTTO", "TCG_VER", "VARIANTS",
    "NATIVE", "VARIANT_NAMES", "resolve_variant",
    "DBTEngine", "NativeRunner", "RunResult",
    "Runtime", "RunStats",
    "SYS_EXIT", "SYS_JOIN", "SYS_SPAWN", "SYS_WRITE_INT",
    "guest_reg", "set_guest_reg",
]
