"""DBT runtime: guest state, helpers, syscalls, threads, dispatch.

The guest's architectural state lives permanently in host registers
(the backend's fixed map); the runtime provides everything around the
translated code:

* **helpers** — the QEMU-style C-helper equivalents (RMW emulation via
  GCC-builtin-like atomics, softfloat FP) as costed Python callables
  installed at trap addresses,
* **the dispatcher** — block-cache lookup / translate-on-miss, with
  chain-aware entry costs,
* **user-mode syscalls** — exit / write / spawn / join (spawn+join
  substitute for clone(2)+futex; DESIGN.md),
* **guest threads** — mapped 1:1 onto simulated cores.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from ..errors import GuestFault, TranslationError
from ..isa.x86.insns import GPR as X86_GPR
from ..isa.arm.insns import CODER as ARM_CODER
from ..isa.common import Imm, Insn
from ..machine.cpu import ArmCore
from ..machine.scheduler import Machine
from ..tcg.backend_arm import GUEST_FLAG_MAP, GUEST_REG_MAP

U64 = (1 << 64) - 1

#: Sentinel a helper returns to re-enter its trap on the next step
#: (used by blocking syscalls like join).
RETRY = object()

#: Address-space layout.
CODE_CACHE_BASE = 0x4000_0000
TRAP_BASE = 0xE000_0000
STACK_BASE = 0x7000_0000
STACK_SIZE = 0x10_0000
#: Magic guest pc meaning "this guest thread's entry function returned".
THREAD_EXIT_PC = 0xDEAD_0000

#: Guest syscall numbers (custom user-mode ABI, see DESIGN.md).
SYS_EXIT = 60
SYS_WRITE_INT = 1
SYS_SPAWN = 1000
SYS_JOIN = 1001

_SVC_SIZE = len(ARM_CODER.encode(Insn("svc", (Imm(0),))))

_ARM_REG_OF_GUEST = {
    name: GUEST_REG_MAP[f"g_{name}"] for name in X86_GPR
}


def guest_reg(core: ArmCore, name: str) -> int:
    """Read a guest x86 register out of its host register."""
    return core.get(_ARM_REG_OF_GUEST[name])


def set_guest_reg(core: ArmCore, name: str, value: int) -> None:
    core.set(_ARM_REG_OF_GUEST[name], value)


def guest_flag(core: ArmCore, name: str) -> int:
    return core.get(GUEST_FLAG_MAP[f"g_{name}"])


def _bits_to_double(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & U64))[0]


def _double_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


@dataclass
class GuestThread:
    tid: int
    core_id: int
    finished: bool = False
    exit_code: int = 0


@dataclass
class RunStats:
    """Aggregated execution statistics for a DBT run."""

    blocks_translated: int = 0
    block_dispatches: int = 0
    chained_dispatches: int = 0
    helper_calls: int = 0
    guest_insns_translated: int = 0
    plt_calls: int = 0
    syscalls: int = 0
    #: Translation-cache accounting.  ``blocks_translated`` counts
    #: *installs* (identical warm or cold); ``xlat_misses`` counts
    #: actual frontend+optimizer+backend pipeline runs, so a fully warm
    #: run reports 0 misses.  hits + misses == blocks_translated.
    xlat_hits: int = 0
    xlat_misses: int = 0
    xlat_disk_hits: int = 0
    #: Tier-2 (superblock) accounting.  ``tier2_traces`` counts
    #: installed traces, ``tier2_trace_blocks`` the tier-1 blocks they
    #: cover, ``tier2_trace_dispatches`` dispatcher entries that landed
    #: on a trace, and ``tier2_cycles`` the cycles attributed to code
    #: executing inside traces (a subset of the profile totals).
    tier2_traces: int = 0
    tier2_trace_blocks: int = 0
    tier2_trace_dispatches: int = 0
    tier2_cycles: int = 0
    output: list[int] = field(default_factory=list)


class Runtime:
    """Shared services for translated guest code on a machine."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.stats = RunStats()
        self.threads: dict[int, GuestThread] = {}
        self._next_tid = 1
        self._next_trap = TRAP_BASE
        self._next_code = CODE_CACHE_BASE
        #: guest pc -> host pc of the translated block
        self.block_map: dict[int, int] = {}
        #: Hot-block profile: guest pc -> [dispatches, attributed
        #: cycles].  Cycles accrue on the *next* dispatch of the same
        #: core (or thread exit): the delta of the core clock since
        #: block entry, so host-lib time between dispatches stays
        #: unattributed rather than inflating the calling block.
        self.block_profile: dict[int, list[int]] = {}
        #: core id -> (guest pc, core cycles at entry, in-trace flag)
        #: of the block/trace that core is currently executing.  The
        #: entry cycles are captured *before* the dispatch-entry cost
        #: (tb_entry/tb_chain) is charged, so that cost is attributed
        #: to the entered block and per-pc cycles sum to the core
        #: total (the conservation the tier promoter relies on).
        self._profile_open: dict[int, tuple[int, int, bool]] = {}
        #: guest pcs whose direct (goto_tb) dispatch is already chained
        self._chained: set[int] = set()
        #: Tier-2 state: promoted trace heads -> host pc of the trace.
        self.trace_map: dict[int, int] = {}
        #: goto_tb edge profile: pred guest pc -> {succ pc: count}.
        self._succ_counts: dict[int, dict[int, int]] = {}
        #: heads whose promotion failed (don't retry every dispatch).
        self._tier2_rejected: set[int] = set()
        #: set by the engine when tier-2 is enabled: a Tier2Config.
        self.tier2 = None
        #: set by the engine: translate_trace(chain) -> host pc | None.
        self.trace_translator = None
        #: guest pc -> PLT thunk callable(core) (host linker entries)
        self.plt_thunks: dict[int, callable] = {}
        #: set by the engine: translate(guest_pc) -> host pc
        self.translator = None
        #: native mode: code is already host code; no translation.
        self.native_mode = False
        #: trap address a native thread returns to when its entry
        #: function completes (installed by NativeRunner).
        self.native_exit: int | None = None

        for core in machine.cores:
            core.svc_handler = self._svc

    # ------------------------------------------------------------------
    # Address allocation
    # ------------------------------------------------------------------
    def alloc_trap(self, fn) -> int:
        """Install ``fn`` at a fresh trap address on every core."""
        addr = self._next_trap
        self._next_trap += 0x10
        for core in self.machine.cores:
            core.traps[addr] = fn
        return addr

    def alloc_code(self, size: int) -> int:
        addr = self._next_code
        self._next_code += (size + 0xFF) & ~0xFF
        return addr

    # ------------------------------------------------------------------
    # Helper implementations (Section 2.3 / 6.3)
    # ------------------------------------------------------------------
    def make_helper_trap(self, helper: str, arg_regs: tuple[str, ...],
                         ret_reg: str | None) -> int:
        impl = getattr(self, f"_helper_{helper.removeprefix('helper_')}",
                       None)
        if impl is None and helper != "dispatch":
            raise TranslationError(f"unknown helper {helper!r}")

        def trap(core: ArmCore) -> None:
            core.cycles += core.costs.helper_call
            self.stats.helper_calls += 1
            args = [core.get(r) for r in arg_regs]
            result = impl(core, *args)
            if result is RETRY:
                return  # pc still points at the trap: re-enter next step
            if ret_reg is not None:
                core.set(ret_reg, 0 if result is None else result)
            core.pc = core.get("x30")

        return self.alloc_trap(trap)

    # --- RMW helpers: QEMU's GCC-builtin-backed emulation ------------
    def _atomic_entry(self, core: ArmCore, addr: int) -> None:
        """Common cost/ordering work of an atomic helper: the builtin
        compiles to casal/ldaxr+stlxr, which drains the buffer."""
        core.drain_buffer()
        if core.coherence:
            core.cycles += core.coherence.on_write(core.core_id, addr)
        core.cycles += core.costs.cas_op

    def _helper_cmpxchg(self, core: ArmCore, addr: int, expected: int,
                        new: int) -> int:
        self._atomic_entry(core, addr)
        old = self.machine.memory.load_word(addr)
        if old == expected:
            self.machine.memory.store_word(addr, new)
        return old

    def _helper_xadd(self, core: ArmCore, addr: int,
                     addend: int) -> int:
        self._atomic_entry(core, addr)
        old = self.machine.memory.load_word(addr)
        self.machine.memory.store_word(addr, (old + addend) & U64)
        return old

    def _helper_xchg(self, core: ArmCore, addr: int, new: int) -> int:
        self._atomic_entry(core, addr)
        old = self.machine.memory.load_word(addr)
        self.machine.memory.store_word(addr, new)
        return old

    # --- softfloat helpers (QEMU's FP emulation, Section 7.3) --------
    def _softfloat(self, core: ArmCore) -> None:
        core.cycles += core.costs.fp_emulated

    def _helper_fadd(self, core: ArmCore, a: int, b: int) -> int:
        self._softfloat(core)
        return _double_to_bits(_bits_to_double(a) + _bits_to_double(b))

    def _helper_fmul(self, core: ArmCore, a: int, b: int) -> int:
        self._softfloat(core)
        return _double_to_bits(_bits_to_double(a) * _bits_to_double(b))

    def _helper_fdiv(self, core: ArmCore, a: int, b: int) -> int:
        self._softfloat(core)
        db = _bits_to_double(b)
        if db == 0.0:
            raise GuestFault("guest float division by zero")
        return _double_to_bits(_bits_to_double(a) / db)

    def _helper_fsqrt(self, core: ArmCore, a: int) -> int:
        self._softfloat(core)
        da = _bits_to_double(a)
        if da < 0:
            raise GuestFault("guest sqrt of negative value")
        return _double_to_bits(math.sqrt(da))

    def _helper_halt(self, core: ArmCore) -> None:
        self._finish_thread(core, guest_reg(core, "rdi"))

    def _helper_syscall(self, core: ArmCore):
        return self._do_syscall(core)

    # ------------------------------------------------------------------
    # Syscalls
    # ------------------------------------------------------------------
    def _svc(self, core: ArmCore, imm: int) -> None:
        # Native (non-translated) code path: pc has advanced past the
        # SVC; a blocking syscall rewinds it to retry.
        if self._do_syscall(core) is RETRY:
            core.pc -= _SVC_SIZE

    def _do_syscall(self, core: ArmCore):
        number = guest_reg(core, "rax")
        self.stats.syscalls += 1
        core.cycles += core.costs.syscall
        if number == SYS_EXIT:
            self._finish_thread(core, guest_reg(core, "rdi"))
        elif number == SYS_WRITE_INT:
            self.stats.output.append(guest_reg(core, "rdi"))
            set_guest_reg(core, "rax", 0)
        elif number == SYS_SPAWN:
            tid = self._spawn(guest_reg(core, "rdi"),
                              guest_reg(core, "rsi"))
            set_guest_reg(core, "rax", tid)
        elif number == SYS_JOIN:
            target = self.threads.get(guest_reg(core, "rdi"))
            if target is None:
                set_guest_reg(core, "rax", U64)  # -1: no such thread
            elif target.finished:
                set_guest_reg(core, "rax", 0)
            else:
                core.cycles += 40  # polling backoff
                return RETRY
        else:
            raise GuestFault(f"unknown guest syscall {number}")
        return None

    def _finish_thread(self, core: ArmCore, exit_code: int) -> None:
        thread = self._thread_of(core)
        if thread:
            thread.finished = True
            thread.exit_code = exit_code
        # Drain before closing the profile interval: the store-buffer
        # drain at thread exit belongs to the final block, not to the
        # unattributed gap after it.
        core.drain_buffer()
        self._profile_close(core)
        core.halted = True

    def _thread_of(self, core: ArmCore) -> GuestThread | None:
        for thread in self.threads.values():
            if thread.core_id == core.core_id:
                return thread
        return None

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def start_main_thread(self, entry_pc: int) -> GuestThread:
        return self._start_thread(entry_pc, arg=None)

    def _spawn(self, fn_pc: int, arg: int) -> int:
        thread = self._start_thread(fn_pc, arg=arg)
        return thread.tid

    def _start_thread(self, entry_pc: int, arg: int | None) -> GuestThread:
        core = self._free_core()
        tid = self._next_tid
        self._next_tid += 1
        thread = GuestThread(tid=tid, core_id=core.core_id)
        self.threads[tid] = thread

        stack_top = STACK_BASE + core.core_id * STACK_SIZE \
            + STACK_SIZE - 0x100
        if arg is not None:
            set_guest_reg(core, "rdi", arg)
        if self.native_mode:
            core.set("sp", stack_top)
            core.set("x30", self.native_exit)
            core.pc = entry_pc
        else:
            # Returning from the entry function lands on THREAD_EXIT_PC.
            self.machine.memory.store_word(stack_top - 8,
                                           THREAD_EXIT_PC)
            set_guest_reg(core, "rsp", stack_top - 8)
            self.dispatch_to(core, entry_pc)
        core.halted = False
        return thread

    def _free_core(self) -> ArmCore:
        used = {t.core_id for t in self.threads.values()
                if not t.finished}
        for core in self.machine.cores:
            if core.core_id not in used:
                return core
        raise GuestFault(
            f"no free core for guest thread "
            f"({len(self.machine.cores)} cores)")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def make_dispatch_trap(self, direct: bool) -> int:
        def trap(core: ArmCore) -> None:
            target = core.get("x7")
            self._dispatch(core, target, direct=direct)

        return self.alloc_trap(trap)

    def dispatch_to(self, core: ArmCore, guest_pc: int) -> None:
        self._dispatch(core, guest_pc, direct=False)

    def _dispatch(self, core: ArmCore, guest_pc: int,
                  direct: bool) -> None:
        if guest_pc == THREAD_EXIT_PC:
            self._finish_thread(core, guest_reg(core, "rax"))
            return
        thunk = self.plt_thunks.get(guest_pc)
        if thunk is not None:
            self._profile_close(core)
            thunk(core)
            return
        if direct and self.tier2 is not None:
            # Record the goto_tb edge for superblock formation before
            # the predecessor's interval closes.
            open_entry = self._profile_open.get(core.core_id)
            if open_entry is not None:
                succs = self._succ_counts.setdefault(open_entry[0], {})
                succs[guest_pc] = succs.get(guest_pc, 0) + 1
        self._profile_close(core)
        self.stats.block_dispatches += 1
        entry_cycles = core.cycles
        host_pc = self.block_map.get(guest_pc)
        if host_pc is None:
            if self.translator is None:
                raise TranslationError("runtime has no translator bound")
            host_pc = self.translator(guest_pc)
            self.block_map[guest_pc] = host_pc
            core.cycles += core.costs.tb_entry
        elif direct and guest_pc in self._chained:
            core.cycles += core.costs.tb_chain
            self.stats.chained_dispatches += 1
        else:
            core.cycles += core.costs.tb_entry
            if direct:
                self._chained.add(guest_pc)
        entry = self.block_profile.get(guest_pc)
        if entry is None:
            entry = self.block_profile[guest_pc] = [0, 0]
        entry[0] += 1
        in_trace = False
        trace_pc = self.trace_map.get(guest_pc)
        if trace_pc is None and self.tier2 is not None \
                and self.trace_translator is not None \
                and entry[0] >= self.tier2.threshold \
                and guest_pc not in self._tier2_rejected:
            trace_pc = self._promote(guest_pc)
        if trace_pc is not None:
            host_pc = trace_pc
            in_trace = True
            self.stats.tier2_trace_dispatches += 1
        self._profile_open[core.core_id] = \
            (guest_pc, entry_cycles, in_trace)
        core.pc = host_pc

    # ------------------------------------------------------------------
    # Tier-2 promotion
    # ------------------------------------------------------------------
    def _promote(self, guest_pc: int) -> int | None:
        """Compile the hot chain headed at ``guest_pc`` into a trace;
        returns its host pc, or ``None`` (head blacklisted) when the
        chain is not worth a trace or fails to compile."""
        chain = self._form_chain(guest_pc)
        host_pc = self.trace_translator(chain)
        if host_pc is None:
            self._tier2_rejected.add(guest_pc)
            return None
        self.trace_map[guest_pc] = host_pc
        self.stats.tier2_traces += 1
        self.stats.tier2_trace_blocks += len(chain)
        return host_pc

    def _form_chain(self, head: int) -> list[int]:
        """Follow the dominant recorded goto_tb successor across
        consecutive hot blocks.  Stops at cold/unseen successors, at
        non-dominant splits, on revisiting a chain member (the
        stitcher turns such edges into in-trace back-branches), and at
        PLT entries."""
        chain = [head]
        seen = {head}
        threshold = self.tier2.threshold
        while len(chain) < self.tier2.max_blocks:
            succs = self._succ_counts.get(chain[-1])
            if not succs:
                break
            nxt, count = max(succs.items(), key=lambda kv: kv[1])
            total = sum(succs.values())
            profile = self.block_profile.get(nxt)
            if nxt in seen or nxt in self.plt_thunks \
                    or nxt == THREAD_EXIT_PC \
                    or count * 2 < total \
                    or profile is None or profile[0] < threshold:
                break
            chain.append(nxt)
            seen.add(nxt)
        return chain

    # ------------------------------------------------------------------
    # Hot-block profile
    # ------------------------------------------------------------------
    def _profile_close(self, core: ArmCore) -> None:
        open_entry = self._profile_open.pop(core.core_id, None)
        if open_entry is not None:
            guest_pc, entry_cycles, in_trace = open_entry
            delta = core.cycles - entry_cycles
            self.block_profile[guest_pc][1] += delta
            if in_trace:
                self.stats.tier2_cycles += delta

    def block_profile_snapshot(self) -> dict[int, tuple[int, int]]:
        """The hot-block profile as ``{guest_pc: (dispatches,
        cycles)}``, including each core's still-open interval.

        Non-destructive: an open interval is accounted up to the
        core's current cycle count and re-opened in place, so a
        mid-run snapshot (the tier promoter reads profiles mid-run)
        never drops the cycles between the snapshot and the next
        dispatch."""
        for core in self.machine.cores:
            open_entry = self._profile_open.get(core.core_id)
            if open_entry is not None:
                guest_pc, entry_cycles, in_trace = open_entry
                delta = core.cycles - entry_cycles
                self.block_profile[guest_pc][1] += delta
                if in_trace:
                    self.stats.tier2_cycles += delta
                self._profile_open[core.core_id] = \
                    (guest_pc, core.cycles, in_trace)
        return {
            pc: (entry[0], entry[1])
            for pc, entry in self.block_profile.items()
        }
