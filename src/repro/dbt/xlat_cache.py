"""Persistent sharded translation cache for the DBT pipeline.

Translation is pure: the compiled artifact of a guest block is a
function of the guest code bytes, the mapping scheme (fence/CAS
policy), the optimizer pass list, and the translation code itself.
"On Architecture to Architecture Mapping for Concurrency" makes the
same observation for the mapping proper — the whole pipeline is
deterministic, hence perfectly memoizable.  Yet every
:class:`~repro.dbt.engine.DBTEngine` re-runs frontend → optimizer →
backend for every block, in every variant, in every ``run_parallel``
worker, on every invocation, even though the Figure 12–15 sweeps
translate the same bytes under the same configs each time.

This module memoizes the *pre-install* artifact — the backend's
:class:`~repro.tcg.backend_arm.CompiledBlock` (relocatable asm text,
helper/dispatch relocation requests, fence-origin metadata) together
with the block's :class:`~repro.tcg.optimizer.OptStats` — in two
levels:

* an **in-memory LRU** shared by every engine in the process (bounded
  by ``REPRO_XLAT_CACHE_MEM`` entries), and
* a **persistent on-disk store**, sharded by the first two hex digits
  of the content fingerprint, shared across ``run_parallel`` workers
  and across runs.

On a hit the engine skips frontend, optimizer and backend entirely;
``_install`` still runs per engine, binding the run-specific trap
addresses through the stored relocation requests, so cached and
freshly-translated runs are bit-identical (simulated cycles never
depend on host-side translation work).

Key structure (any change misses, never corrupts):

* **guest code bytes** — a fixed-size window at the block's pc (the
  decoder's maximal reach, so identical windows imply identical
  decode), plus the pc itself (blocks embed absolute continuation
  targets);
* **config** — the frontend fence/CAS policy and the optimizer pass
  list (``DBTConfig.name`` is deliberately excluded: identically
  configured variants share entries);
* **code salt** — a digest of every module the artifact flows
  through (IR, frontend, optimizer passes, backend, this module), so
  editing the translator invalidates stale entries;
* **schema tag** — :data:`SCHEMA`, bumped on entry-layout changes.

Entries are JSON files written atomically (temp file + ``os.replace``),
making concurrent pool workers safe: last writer wins with an
equivalent artifact.  Corrupt or truncated entries read as misses and
are rewritten by the following store.  The disk layer enforces a byte
budget (``REPRO_XLAT_CACHE_BUDGET``) by evicting the
least-recently-written entries.

Configuration via ``REPRO_XLAT_CACHE``: unset uses
``<cwd>/.repro-cache/xlat``; a path overrides the directory; ``0`` or
``off`` disables the cache entirely (both levels).

``REPRO_XLAT_CACHE_NS`` names a *namespace* — a subdirectory of the
store, mirroring the behavior cache's ``REPRO_BEHAVIOR_CACHE_NS``.
The serve front-end scopes each tenant's entries under its namespace
so concurrent clients never read each other's artifacts; eviction,
``clear_disk_cache`` and the in-memory LRU all operate per namespace
(instances are keyed by the resolved directory), and
:func:`namespace_usage` enumerates every namespace for
``python -m repro cache stats``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path

from ..errors import MachineError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_tracer
from ..tcg.backend_arm import CompiledBlock, HelperRequest
from ..tcg.optimizer import OptStats

#: Entry-layout version; part of the key, so a bump orphans (and a
#: later budget sweep collects) every pre-bump entry.
#: /2: opt_stats grew empty_fences_dropped + helpers_inlined.
SCHEMA = "repro-xlat/2"

#: Distinct tag for tier-2 superblock artifacts: a trace keyed over
#: the same head pc as a plain block must never collide with it, so
#: trace keys hash this tag plus the ordered (pc, window) list.
TRACE_SCHEMA = "repro-xlat-trace/2"

ENV_VAR = "REPRO_XLAT_CACHE"
NAMESPACE_ENV = "REPRO_XLAT_CACHE_NS"
ENV_BUDGET = "REPRO_XLAT_CACHE_BUDGET"
ENV_MEM = "REPRO_XLAT_CACHE_MEM"
_OFF_VALUES = frozenset({"0", "off", "none", "disabled"})

#: Disk budget in bytes (entries are a few hundred bytes each).
DEFAULT_DISK_BUDGET = 64 * 1024 * 1024
#: In-memory LRU capacity in entries.
DEFAULT_MEM_ENTRIES = 4096

#: Bytes the frontend may consult per decoded instruction (it reads
#: ``read_bytes(cursor, 32)`` per step), so a window of
#: ``block_insn_limit * 32`` bytes covers every byte a block's decode
#: can depend on.  Identical windows ⇒ identical translation; a wider
#: window only risks spurious misses, never wrong hits.
DECODE_WINDOW = 32

#: Lazily computed digest of the translation-pipeline source.
_CODE_SALT: str | None = None


def _code_salt() -> str:
    global _CODE_SALT
    if _CODE_SALT is None:
        import inspect
        import sys

        from ..tcg import backend_arm, frontend_x86, ir, superblock
        from ..tcg.optimizer import constprop, deadcode, fence_merge, \
            inline_helpers, memopt
        from ..tcg import optimizer

        hasher = hashlib.sha256()
        this_module = sys.modules[__name__]
        for module in (ir, frontend_x86, optimizer, constprop, memopt,
                       fence_merge, deadcode, inline_helpers,
                       superblock, backend_arm, this_module):
            try:
                hasher.update(inspect.getsource(module).encode())
            except (OSError, TypeError):  # pragma: no cover - frozen
                hasher.update(module.__name__.encode())
        _CODE_SALT = hasher.hexdigest()
    return _CODE_SALT


def config_fingerprint(config) -> str:
    """Digest of what translation consumes from a ``DBTConfig``.

    Covers the frontend config (fence policy, CAS policy, block limit)
    and the optimizer pass list.  The variant *name* and the host
    linker flag are excluded: neither changes a single translated
    block, so identically configured variants share entries.
    """
    canonical = repr((config.frontend, config.optimizer))
    return hashlib.sha256(
        f"{SCHEMA}|{canonical}|{_code_salt()}".encode()).hexdigest()


def block_key(config_fp: str, guest_pc: int, window: bytes) -> str:
    """The full content fingerprint of one block translation."""
    hasher = hashlib.sha256()
    hasher.update(config_fp.encode())
    hasher.update(guest_pc.to_bytes(8, "little"))
    hasher.update(window)
    return hasher.hexdigest()


def trace_key(config_fp: str,
              segments: list[tuple[int, bytes]]) -> str:
    """Content fingerprint of a tier-2 superblock: the ordered chain
    of (guest pc, decode window) pairs under the trace schema tag."""
    hasher = hashlib.sha256()
    hasher.update(TRACE_SCHEMA.encode())
    hasher.update(config_fp.encode())
    for guest_pc, window in segments:
        hasher.update(guest_pc.to_bytes(8, "little"))
        hasher.update(len(window).to_bytes(4, "little"))
        hasher.update(window)
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Counters (surfaced via repro.obs metrics and `python -m repro cache`)
# ----------------------------------------------------------------------
@dataclass
class XlatCacheStats:
    """Process-wide cache event counters."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


_STATS = XlatCacheStats()


def cache_stats() -> XlatCacheStats:
    """A copy of the process-wide counters."""
    return XlatCacheStats(**{
        f.name: getattr(_STATS, f.name) for f in fields(_STATS)
    })


def reset_stats() -> None:
    for f in fields(_STATS):
        setattr(_STATS, f.name, 0)


def metrics_snapshot() -> dict:
    """The counters as a :mod:`repro.obs.metrics` snapshot, mergeable
    into any sweep- or process-level registry."""
    reg = MetricsRegistry()
    counter = reg.counter("repro_xlat_cache_events_total",
                          "Translation-cache events by kind")
    for f in fields(_STATS):
        value = getattr(_STATS, f.name)
        if value:
            counter.labels(event=f.name).inc(value)
    return reg.snapshot()


# ----------------------------------------------------------------------
# Environment plumbing
# ----------------------------------------------------------------------
def enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() \
        not in _OFF_VALUES


def namespace() -> str:
    """The active cache namespace (sanitized), or "" for the root.

    Only ``[A-Za-z0-9._-]`` survive, and a name reduced to dots alone
    is dropped entirely — ``..`` must never become a path component.
    """
    raw = os.environ.get(NAMESPACE_ENV, "").strip()
    ns = "".join(c for c in raw if c.isalnum() or c in "._-")
    if not ns.strip("."):
        return ""
    return ns


def base_dir() -> Path:
    """The store root, *before* namespace scoping."""
    override = os.environ.get(ENV_VAR, "").strip()
    if override and override.lower() not in _OFF_VALUES:
        return Path(override)
    return Path.cwd() / ".repro-cache" / "xlat"


def cache_dir() -> Path:
    base = base_dir()
    ns = namespace()
    return base / ns if ns else base


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def disk_budget() -> int:
    """Disk budget in bytes; 0 disables eviction."""
    return _env_int(ENV_BUDGET, DEFAULT_DISK_BUDGET)


def mem_entries() -> int:
    """In-memory LRU capacity; 0 disables the memory level."""
    return _env_int(ENV_MEM, DEFAULT_MEM_ENTRIES)


# ----------------------------------------------------------------------
# Entry (de)serialization
# ----------------------------------------------------------------------
def _entry_to_json(compiled: CompiledBlock, opt: OptStats) -> str:
    return json.dumps({
        "schema": SCHEMA,
        "guest_pc": compiled.guest_pc,
        "asm": compiled.asm,
        "helper_requests": [
            [r.trap_label, r.helper, list(r.arg_regs), r.ret_reg]
            for r in compiled.helper_requests
        ],
        "guest_insns": compiled.guest_insns,
        "op_count": compiled.op_count,
        "fence_origins": list(compiled.fence_origins),
        "opt_stats": [opt.folded, opt.mem_eliminated,
                      opt.fences_merged, opt.dead_removed,
                      opt.empty_fences_dropped, opt.helpers_inlined],
    }, separators=(",", ":"))


def _entry_from_json(text: str) -> tuple[CompiledBlock, OptStats]:
    payload = json.loads(text)
    if payload["schema"] != SCHEMA:
        raise ValueError(f"schema {payload['schema']!r}")
    compiled = CompiledBlock(
        guest_pc=int(payload["guest_pc"]),
        asm=str(payload["asm"]),
        helper_requests=[
            HelperRequest(trap_label=str(label), helper=str(helper),
                          arg_regs=tuple(args),
                          ret_reg=ret if ret is None else str(ret))
            for label, helper, args, ret in payload["helper_requests"]
        ],
        guest_insns=int(payload["guest_insns"]),
        op_count=int(payload["op_count"]),
        fence_origins=[
            origin if origin is None else str(origin)
            for origin in payload["fence_origins"]
        ],
    )
    folded, mem_eliminated, fences_merged, dead_removed, \
        empty_fences_dropped, helpers_inlined = payload["opt_stats"]
    opt = OptStats(folded=int(folded),
                   mem_eliminated=int(mem_eliminated),
                   fences_merged=int(fences_merged),
                   dead_removed=int(dead_removed),
                   empty_fences_dropped=int(empty_fences_dropped),
                   helpers_inlined=int(helpers_inlined))
    return compiled, opt


@dataclass
class XlatHit:
    """A successful lookup: the artifact plus which level served it."""

    compiled: CompiledBlock
    opt_stats: OptStats
    source: str  # "memory" | "disk"


class XlatCache:
    """One two-level translation cache (memory LRU over a disk store).

    ``directory=None`` runs memory-only (used by tests); the public
    entry point is :func:`get_cache`, which builds instances from the
    environment and shares them process-wide so every engine sees one
    LRU.
    """

    def __init__(self, directory: Path | None,
                 max_mem_entries: int = DEFAULT_MEM_ENTRIES,
                 max_disk_bytes: int = DEFAULT_DISK_BUDGET):
        self.directory = Path(directory) if directory else None
        self.max_mem_entries = max_mem_entries
        self.max_disk_bytes = max_disk_bytes
        self._mem: OrderedDict[str, tuple[CompiledBlock, OptStats]] = \
            OrderedDict()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(self, memory, guest_pc: int, config_fp: str,
                window_bytes: int) -> str | None:
        """The content fingerprint for the block at ``guest_pc``, or
        ``None`` when the pc is unmapped (the frontend then raises the
        canonical fetch error)."""
        try:
            window = memory.read_bytes(guest_pc, window_bytes)
        except MachineError:
            return None
        return block_key(config_fp, guest_pc, window)

    def trace_key_for(self, memory, guest_pcs: list[int],
                      config_fp: str,
                      window_bytes: int) -> str | None:
        """The content fingerprint of a superblock chain, or ``None``
        when any chain member's window is unmapped."""
        segments: list[tuple[int, bytes]] = []
        for guest_pc in guest_pcs:
            try:
                window = memory.read_bytes(guest_pc, window_bytes)
            except MachineError:
                return None
            segments.append((guest_pc, window))
        return trace_key(config_fp, segments)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        # Sharded by fingerprint prefix: bounded directory fan-out for
        # large sweeps, and `cache stats` can size shards cheaply.
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> XlatHit | None:
        _STATS.lookups += 1
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            _STATS.hits += 1
            _STATS.memory_hits += 1
            return XlatHit(entry[0], entry[1], "memory")
        if self.directory is not None:
            path = self._entry_path(key)
            try:
                entry = _entry_from_json(path.read_text())
            except OSError:
                entry = None  # plain miss
            except (ValueError, KeyError, TypeError):
                # Present but unreadable: corruption or a stale layout.
                # Fall back to translating; the store below rewrites it.
                _STATS.corrupt_entries += 1
                entry = None
            if entry is not None:
                self._remember(key, entry)
                _STATS.hits += 1
                _STATS.disk_hits += 1
                return XlatHit(entry[0], entry[1], "disk")
        _STATS.misses += 1
        return None

    def put(self, key: str, compiled: CompiledBlock,
            opt: OptStats) -> None:
        self._remember(key, (compiled, opt))
        _STATS.stores += 1
        if self.directory is None:
            return
        payload = _entry_to_json(compiled, opt)
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:  # pragma: no cover - read-only cache dir
            return
        if self.max_disk_bytes:
            self.evict_to_budget(keep=key)

    def _remember(self, key: str,
                  entry: tuple[CompiledBlock, OptStats]) -> None:
        if not self.max_mem_entries:
            return
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_mem_entries:
            self._mem.popitem(last=False)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _disk_entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) of every entry file, oldest first."""
        if self.directory is None or not self.directory.is_dir():
            return []
        found: list[tuple[float, int, Path]] = []
        for shard in self.directory.iterdir():
            if not shard.is_dir():
                continue
            for path in shard.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - concurrent removal
                    continue
                found.append((stat.st_mtime, stat.st_size, path))
        found.sort(key=lambda item: (item[0], item[2].name))
        return found

    def disk_usage(self) -> tuple[int, int]:
        """(entry count, total bytes) of the disk level."""
        entries = self._disk_entries()
        return len(entries), sum(size for _, size, _ in entries)

    def evict_to_budget(self, keep: str | None = None) -> int:
        """Drop least-recently-written entries until the store fits
        the byte budget; the ``keep`` key (the entry just written)
        survives even when it alone exceeds the budget.  Returns the
        number of entries evicted."""
        if not self.max_disk_bytes:
            return 0
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for _, size, path in entries:
            if total <= self.max_disk_bytes:
                break
            if keep is not None and path.stem == keep:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            self._mem.pop(path.stem, None)
            total -= size
            evicted += 1
        if evicted:
            _STATS.evictions += evicted
            tracer = get_tracer()
            if tracer.enabled:
                tracer.counter("xlat_cache.evictions", evicted=evicted)
        return evicted

    def clear_memory(self) -> int:
        removed = len(self._mem)
        self._mem.clear()
        return removed

    def clear_disk(self) -> int:
        """Remove every disk entry (and orphaned ``*.tmp`` files a
        dying writer may have left); returns the number removed."""
        removed = 0
        if self.directory is None or not self.directory.is_dir():
            return 0
        for shard in self.directory.iterdir():
            if not shard.is_dir():
                continue
            for pattern in ("*.json", "*.tmp"):
                for path in shard.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:  # pragma: no cover
                        pass
        return removed


# ----------------------------------------------------------------------
# Process-wide instances
# ----------------------------------------------------------------------
#: Instances keyed by resolved settings, so monkeypatched environments
#: get their own cache while every engine under one configuration
#: shares one memory LRU.
_INSTANCES: dict[tuple, XlatCache] = {}


def get_cache() -> XlatCache | None:
    """The cache for the current environment, or ``None`` if disabled."""
    if not enabled():
        return None
    key = (str(cache_dir()), mem_entries(), disk_budget())
    cache = _INSTANCES.get(key)
    if cache is None:
        cache = _INSTANCES[key] = XlatCache(
            cache_dir(), max_mem_entries=mem_entries(),
            max_disk_bytes=disk_budget())
    return cache


def reset_memory() -> int:
    """Drop every in-process memory level (disk survives); used by the
    warm/cold benchmark to attribute hits to the persistent layer."""
    return sum(cache.clear_memory() for cache in _INSTANCES.values())


def clear_disk_cache() -> int:
    """Remove every disk entry of the current environment's cache."""
    cache = XlatCache(cache_dir()) if enabled() else None
    if cache is None:
        return 0
    return cache.clear_disk()


# ----------------------------------------------------------------------
# Multi-tenant observability
# ----------------------------------------------------------------------
def _shard_files(directory: Path) -> tuple[int, int]:
    """(entry count, bytes) of one shard directory's ``*.json``."""
    files = size = 0
    for path in directory.glob("*.json"):
        try:
            size += path.stat().st_size
            files += 1
        except OSError:  # pragma: no cover - concurrent removal
            continue
    return files, size


def _looks_like_shard(directory: Path) -> bool:
    """Shards are two hex digits holding only entry files; a
    namespace that *spells* like a shard still contains shard
    subdirectories, so contents disambiguate the two."""
    name = directory.name
    if len(name) != 2 or any(c not in "0123456789abcdef"
                             for c in name):
        return False
    try:
        return not any(child.is_dir() for child in directory.iterdir())
    except OSError:  # pragma: no cover - concurrent removal
        return True


def namespace_usage() -> dict[str, dict]:
    """Per-namespace ``{"entries": n, "bytes": b}`` of the disk store,
    keyed by namespace name ("" is the root namespace)."""
    base = base_dir()
    usage: dict[str, dict] = {}
    if not base.is_dir():
        return usage
    root_files = root_bytes = 0
    namespaces: list[tuple[str, int, int]] = []
    for child in sorted(base.iterdir()):
        if not child.is_dir():
            continue
        if _looks_like_shard(child):
            files, size = _shard_files(child)
            root_files += files
            root_bytes += size
        else:
            files = size = 0
            for shard in child.iterdir():
                if shard.is_dir():
                    shard_count, shard_size = _shard_files(shard)
                    files += shard_count
                    size += shard_size
            namespaces.append((child.name, files, size))
    usage[""] = {"entries": root_files, "bytes": root_bytes}
    for name, files, size in namespaces:
        usage[name] = {"entries": files, "bytes": size}
    return usage
