"""DBT variant configurations — the four setups of Section 7.1.

* ``qemu``      — vanilla QEMU 6.1.0: Figure 2 mappings (leading
  ``Frr``/``Fmw`` fences), RMWs through helper calls.
* ``no-fences`` — QEMU with no ordering enforcement (the incorrect
  performance oracle).
* ``tcg-ver``   — QEMU with Risotto's verified mappings only
  (Figure 7a fences + fence merging); helper RMWs, no host linker.
* ``risotto``   — everything: verified mappings, fence merging, direct
  ``casal`` CAS translation, dynamic host library linker.

``native`` is not a DBT configuration: native runs execute the
Arm-compiled workload directly on the machine (see
:mod:`repro.workloads`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ReproError
from ..tcg.frontend_x86 import CasPolicy, FencePolicy, FrontendConfig
from ..tcg.optimizer import OptimizerConfig


@dataclass(frozen=True)
class DBTConfig:
    name: str
    frontend: FrontendConfig
    optimizer: OptimizerConfig = OptimizerConfig()
    use_host_linker: bool = False

    def with_overrides(self, **kw) -> "DBTConfig":
        return replace(self, **kw)


QEMU = DBTConfig(
    name="qemu",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.QEMU,
        cas_policy=CasPolicy.HELPER,
    ),
)

NO_FENCES = DBTConfig(
    name="no-fences",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.NOFENCES,
        cas_policy=CasPolicy.HELPER,
    ),
)

TCG_VER = DBTConfig(
    name="tcg-ver",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.RISOTTO,
        cas_policy=CasPolicy.HELPER,
    ),
)

RISOTTO = DBTConfig(
    name="risotto",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.RISOTTO,
        cas_policy=CasPolicy.NATIVE,
    ),
    use_host_linker=True,
)

VARIANTS: dict[str, DBTConfig] = {
    c.name: c for c in (QEMU, NO_FENCES, TCG_VER, RISOTTO)
}

#: The one non-DBT variant: run the Arm-compiled workload directly.
NATIVE = "native"

#: Every name a harness/CLI/fuzzer may put in a ``variant`` slot, in
#: the figures' column order (DBT variants first, native reference
#: last).  The single registry all variant string-matching goes
#: through.
VARIANT_NAMES: tuple[str, ...] = tuple(VARIANTS) + (NATIVE,)


def resolve_variant(name: str) -> DBTConfig | None:
    """The :class:`DBTConfig` for ``name``; ``None`` for ``native``.

    Raises :class:`~repro.errors.ReproError` naming the valid variants
    on anything else — the one place a bad variant string surfaces,
    whatever the entry point.
    """
    if name == NATIVE:
        return None
    try:
        return VARIANTS[name]
    except KeyError:
        raise ReproError(
            f"unknown variant {name!r}; expected one of "
            f"{VARIANT_NAMES}") from None
