"""DBT variant configurations — the four setups of Section 7.1.

* ``qemu``      — vanilla QEMU 6.1.0: Figure 2 mappings (leading
  ``Frr``/``Fmw`` fences), RMWs through helper calls.
* ``no-fences`` — QEMU with no ordering enforcement (the incorrect
  performance oracle).
* ``tcg-ver``   — QEMU with Risotto's verified mappings only
  (Figure 7a fences + fence merging); helper RMWs, no host linker.
* ``risotto``   — everything: verified mappings, fence merging, direct
  ``casal`` CAS translation, dynamic host library linker.

``native`` is not a DBT configuration: native runs execute the
Arm-compiled workload directly on the machine (see
:mod:`repro.workloads`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..core.most import SCHEMES, FenceScheme
from ..errors import ReproError
from ..tcg.frontend_x86 import CasPolicy, FencePolicy, FrontendConfig
from ..tcg.optimizer import OptimizerConfig


@dataclass(frozen=True)
class DBTConfig:
    name: str
    frontend: FrontendConfig
    optimizer: OptimizerConfig = OptimizerConfig()
    use_host_linker: bool = False

    def with_overrides(self, **kw) -> "DBTConfig":
        return replace(self, **kw)


#: Default hotness threshold when tier-2 is enabled without an
#: explicit value (``--tier2-threshold 0`` / env ``1``&co pick their
#: own numbers; this is what plain "on" means).
DEFAULT_TIER2_THRESHOLD = 128

#: Env var holding the session-wide tier-2 threshold.  Unset, ``0``,
#: ``off``, ``none`` or ``disabled`` mean tier-2 stays off — the
#: tier-1 default every existing test and figure relies on.
TIER2_ENV = "REPRO_TIER2_THRESHOLD"


@dataclass(frozen=True)
class Tier2Config:
    """Second-tier (superblock) compilation knobs.

    Tier-2 is opt-in: engines only promote when a ``Tier2Config`` is
    present (CLI flag, API argument, or the ``REPRO_TIER2_THRESHOLD``
    environment variable).
    """

    #: Dispatch count at which a block is promoted to a trace head.
    threshold: int = DEFAULT_TIER2_THRESHOLD
    #: Maximum chain length followed through the goto_tb profile.
    max_blocks: int = 8
    #: Rewrite RMW/FP helper calls to native IR ops inside traces.
    inline_helpers: bool = True


def tier2_from_env() -> Tier2Config | None:
    """The environment's tier-2 config, or ``None`` (tier-2 off)."""
    raw = os.environ.get(TIER2_ENV, "").strip().lower()
    if raw in ("", "0", "off", "none", "disabled"):
        return None
    try:
        threshold = int(raw)
    except ValueError:
        raise ReproError(
            f"{TIER2_ENV}={raw!r}: expected an integer threshold or "
            f"0/off/none/disabled") from None
    if threshold <= 0:
        return None
    return Tier2Config(threshold=threshold)


QEMU = DBTConfig(
    name="qemu",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.QEMU,
        cas_policy=CasPolicy.HELPER,
    ),
)

NO_FENCES = DBTConfig(
    name="no-fences",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.NOFENCES,
        cas_policy=CasPolicy.HELPER,
    ),
)

TCG_VER = DBTConfig(
    name="tcg-ver",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.RISOTTO,
        cas_policy=CasPolicy.HELPER,
    ),
)

RISOTTO = DBTConfig(
    name="risotto",
    frontend=FrontendConfig(
        fence_policy=FencePolicy.RISOTTO,
        cas_policy=CasPolicy.NATIVE,
    ),
    use_host_linker=True,
)

VARIANTS: dict[str, DBTConfig] = {
    c.name: c for c in (QEMU, NO_FENCES, TCG_VER, RISOTTO)
}

def _nearest_policy(scheme: FenceScheme) -> FencePolicy:
    """The legacy policy name closest to a derived scheme.

    Purely cosmetic — with an explicit ``scheme`` the frontend never
    branches on ``fence_policy`` — but keeps diagnostics readable.
    """
    if scheme.mfence is None:
        return FencePolicy.NOFENCES
    if scheme.name == "qemu":
        return FencePolicy.QEMU
    return FencePolicy.RISOTTO


def scheme_variant(scheme: FenceScheme) -> DBTConfig:
    """A full-featured DBT variant emitting from a derived scheme.

    Derived variants take the ``risotto`` chassis (native CAS, host
    linker, default optimizer) and swap only the fence scheme, so
    sweeps compare mapping schemes and nothing else.
    """
    return DBTConfig(
        name=f"most-{scheme.name}",
        frontend=FrontendConfig(
            fence_policy=_nearest_policy(scheme),
            cas_policy=CasPolicy.NATIVE,
            scheme=scheme,
        ),
        use_host_linker=True,
    )


#: Table-derived (source, target, scheme) variants — one per entry in
#: :data:`repro.core.most.SCHEMES`, named ``most-<scheme>``.  Kept in
#: a separate registry so :data:`VARIANT_NAMES` stays the four paper
#: variants + native (figure column order is load-bearing), but
#: :func:`resolve_variant` accepts both.
SCHEME_VARIANTS: dict[str, DBTConfig] = {
    cfg.name: cfg
    for cfg in (scheme_variant(s) for s in SCHEMES.values())
}

#: The one non-DBT variant: run the Arm-compiled workload directly.
NATIVE = "native"

#: Every name a harness/CLI/fuzzer may put in a ``variant`` slot, in
#: the figures' column order (DBT variants first, native reference
#: last).  The single registry all variant string-matching goes
#: through.
VARIANT_NAMES: tuple[str, ...] = tuple(VARIANTS) + (NATIVE,)


def resolve_variant(name: str) -> DBTConfig | None:
    """The :class:`DBTConfig` for ``name``; ``None`` for ``native``.

    Raises :class:`~repro.errors.ReproError` naming the valid variants
    on anything else — the one place a bad variant string surfaces,
    whatever the entry point.
    """
    if name == NATIVE:
        return None
    if name in VARIANTS:
        return VARIANTS[name]
    if name in SCHEME_VARIANTS:
        return SCHEME_VARIANTS[name]
    raise ReproError(
        f"unknown variant {name!r}; expected one of "
        f"{VARIANT_NAMES} or a derived scheme variant "
        f"({', '.join(sorted(SCHEME_VARIANTS))})") from None
