"""The DBT execution engine (Figure 4's execution loop).

``DBTEngine`` wires the pipeline together: guest x86 bytes are decoded
by the frontend into TCG IR (with the configured fence policy),
optimized, lowered to Arm by the backend, assembled into the code
cache, and executed by the simulated host machine.  Translation happens
lazily at dispatch time and blocks are cached — QEMU's
translate-execute loop.

``NativeRunner`` executes Arm-native builds of a workload directly on
the same machine and syscall layer: the "native" bars of Figures 12-14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TranslationError
from ..isa.arm.assembler import assemble as assemble_arm
from ..machine.scheduler import Machine
from ..machine.timing import CostModel, DEFAULT_COSTS
from ..machine.weakmem import BufferMode
from ..obs.trace import get_tracer
from ..tcg.backend_arm import ArmBackend, CompiledBlock
from ..tcg.frontend_x86 import X86Frontend
from ..tcg.optimizer import OptStats, inline_helpers_pass, optimize
from ..tcg.superblock import stitch_trace
from .config import DBTConfig, RISOTTO, Tier2Config, tier2_from_env
from .runtime import Runtime, RunStats, THREAD_EXIT_PC
from .xlat_cache import DECODE_WINDOW, XlatCache, config_fingerprint, \
    get_cache

#: Sentinel distinguishing "use the environment's cache" from an
#: explicit ``xlat_cache=None`` (cache off for this engine).
_ENV_CACHE = object()

#: Sentinel distinguishing "use the environment's tier-2 setting"
#: (REPRO_TIER2_THRESHOLD) from an explicit ``tier2=None`` (off).
_ENV_TIER2 = object()


@dataclass
class RunResult:
    """Everything a benchmark needs from one run."""

    elapsed_cycles: int
    total_cycles: int
    fence_cycles: int
    host_insns: int
    stats: RunStats
    opt_stats: OptStats
    exit_code: int
    output: list[int] = field(default_factory=list)
    #: Fence cycles split by provenance tag (mapping rule or optimizer
    #: decision); values sum exactly to ``fence_cycles``.
    fence_cycles_by_origin: dict[str, int] = field(default_factory=dict)
    #: Hot-block profile: guest pc -> (dispatches, attributed cycles).
    #: ``None`` means the run did not track a profile at all (native
    #: runs execute no translated blocks), which is distinct from an
    #: empty dict ("tracked, but nothing dispatched") — bench exports
    #: surface the difference as an explicit null.
    block_profile: dict[int, tuple[int, int]] | None = None

    @property
    def fence_share(self) -> float:
        """Fraction of cpu time spent in DMB fences."""
        if self.total_cycles == 0:
            return 0.0
        return self.fence_cycles / self.total_cycles


class DBTEngine:
    """Translate-and-execute a guest x86 program on the Arm machine."""

    def __init__(self, config: DBTConfig = RISOTTO,
                 machine: Machine | None = None,
                 n_cores: int = 4,
                 costs: CostModel | None = None,
                 seed: int = 42,
                 buffer_mode: BufferMode = BufferMode.WEAK,
                 xlat_cache: XlatCache | None | object = _ENV_CACHE,
                 tier2: Tier2Config | None | object = _ENV_TIER2):
        self.config = config
        self.machine = machine or Machine(
            n_cores=n_cores, costs=costs or DEFAULT_COSTS, seed=seed,
            buffer_mode=buffer_mode)
        self.runtime = Runtime(self.machine)
        self.runtime.translator = self._translate
        self.tier2: Tier2Config | None = \
            tier2_from_env() if tier2 is _ENV_TIER2 else tier2
        if self.tier2 is not None:
            self.runtime.tier2 = self.tier2
            self.runtime.trace_translator = self._translate_trace
        self.frontend = X86Frontend(config.frontend)
        self.backend = ArmBackend()
        self.opt_stats = OptStats()
        self.xlat_cache: XlatCache | None = \
            get_cache() if xlat_cache is _ENV_CACHE else xlat_cache
        # The key prefix is config-dependent but block-independent, so
        # hash it once per engine rather than once per block.
        self._config_fp = config_fingerprint(config) \
            if self.xlat_cache is not None else ""
        self._key_window = \
            config.frontend.block_insn_limit * DECODE_WINDOW
        self._helper_traps: dict[tuple, int] = {}
        self._dispatch_traps = {
            True: self.runtime.make_dispatch_trap(direct=True),
            False: self.runtime.make_dispatch_trap(direct=False),
        }

    # ------------------------------------------------------------------
    def load_image(self, base: int, code: bytes) -> None:
        """Map guest code/data into the shared address space."""
        self.machine.memory.add_image(base, code)

    # ------------------------------------------------------------------
    def _trap_for(self, helper: str, arg_regs: tuple[str, ...],
                  ret_reg: str | None, direct_hint: str) -> int:
        if helper == "dispatch":
            return self._dispatch_traps[direct_hint == "goto_tb"]
        key = (helper, arg_regs, ret_reg)
        addr = self._helper_traps.get(key)
        if addr is None:
            addr = self.runtime.make_helper_trap(helper, arg_regs,
                                                 ret_reg)
            self._helper_traps[key] = addr
        return addr

    def _translate(self, guest_pc: int) -> int:
        """Translate one guest block; returns its host address.

        With the translation cache enabled, a content-fingerprint hit
        skips frontend, optimizer and backend entirely — only
        ``_install`` runs, binding this engine's trap addresses into
        the stored relocatable artifact.  The simulated guest pays the
        same dispatch cost either way, so results are bit-identical.
        """
        tracer = get_tracer()
        with tracer.span("dbt.translate", cat="dbt", pc=guest_pc):
            compiled, stats = self._lookup_or_compile(guest_pc, tracer)
            self.opt_stats.merge(stats)
            with tracer.span("dbt.install", cat="dbt", pc=guest_pc):
                host_pc = self._install(compiled)
        self.runtime.stats.blocks_translated += 1
        self.runtime.stats.guest_insns_translated += \
            compiled.guest_insns
        return host_pc

    def _lookup_or_compile(self, guest_pc: int, tracer):
        """The cacheable part of translation: (CompiledBlock, OptStats).

        The returned ``OptStats`` is the per-block delta — stored with
        the artifact, so a hit merges the exact stats the optimizer
        would have produced.
        """
        cache = self.xlat_cache
        key = None
        if cache is not None:
            # An unmapped pc yields key=None: fall through so the
            # frontend raises its canonical fetch error.
            key = cache.key_for(self.machine.memory, guest_pc,
                                self._config_fp, self._key_window)
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    self.runtime.stats.xlat_hits += 1
                    if hit.source == "disk":
                        self.runtime.stats.xlat_disk_hits += 1
                    if tracer.enabled:
                        tracer.instant("dbt.xlat_hit", cat="dbt",
                                       pc=guest_pc, source=hit.source)
                    return hit.compiled, hit.opt_stats
        with tracer.span("dbt.frontend", cat="dbt", pc=guest_pc):
            block = self.frontend.translate_block(
                self.machine.memory, guest_pc)
        with tracer.span("dbt.optimize", cat="dbt", pc=guest_pc):
            stats = optimize(block, self.config.optimizer)
        with tracer.span("dbt.backend", cat="dbt", pc=guest_pc):
            compiled = self.backend.compile_block(block)
        self.runtime.stats.xlat_misses += 1
        if key is not None:
            cache.put(key, compiled, stats)
        return compiled, stats

    def _translate_trace(self, chain: list[int]) -> int | None:
        """Tier-2 entry: compile a superblock over ``chain``.

        Returns the trace's host pc, or ``None`` when the chain is not
        worth a trace (nothing inlined, no seam removed) or cannot be
        compiled (e.g. cross-seam optimization extends a temp's live
        range past the host temp pool) — the runtime then blacklists
        the head and keeps running tier-1 blocks.
        """
        tracer = get_tracer()
        with tracer.span("dbt.translate_trace", cat="dbt",
                         pc=chain[0], blocks=len(chain)):
            try:
                compiled, stats = self._compile_trace(chain, tracer)
            except TranslationError:
                return None
            if compiled is None:
                return None
            self.opt_stats.merge(stats)
            with tracer.span("dbt.install", cat="dbt", pc=chain[0]):
                return self._install(compiled)

    def _compile_trace(self, chain: list[int], tracer):
        """(CompiledBlock, OptStats) for a superblock, or (None, None).

        Cached under the trace schema tag, keyed by the ordered chain
        windows — never colliding with the head's tier-1 block entry.
        The RunStats xlat counters track tier-1 blocks only (their
        hits+misses == blocks_translated invariant stays intact);
        trace cache traffic shows up in the process-wide cache stats.
        """
        cache = self.xlat_cache
        key = None
        if cache is not None:
            key = cache.trace_key_for(self.machine.memory, chain,
                                      self._config_fp,
                                      self._key_window)
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    if tracer.enabled:
                        tracer.instant("dbt.xlat_trace_hit", cat="dbt",
                                       pc=chain[0], source=hit.source)
                    return hit.compiled, hit.opt_stats
        blocks = [
            self.frontend.translate_block(self.machine.memory, pc)
            for pc in chain
        ]
        stitched = stitch_trace(blocks)
        trace = stitched.block
        inlined = 0
        if self.tier2.inline_helpers:
            inlined = inline_helpers_pass(trace)
        if len(chain) == 1 and stitched.internal_branches == 0 \
                and inlined == 0:
            # The trace would be byte-identical to the tier-1 block.
            return None, None
        stats = optimize(trace, self.config.optimizer)
        stats.helpers_inlined = inlined
        compiled = self.backend.compile_block(trace)
        if key is not None:
            cache.put(key, compiled, stats)
        return compiled, stats

    def _install(self, compiled: CompiledBlock) -> int:
        labels: dict[str, int] = {}
        for request in compiled.helper_requests:
            hint = "goto_tb" if request.trap_label.endswith("goto_tb") \
                else "exit_tb"
            labels[request.trap_label] = self._trap_for(
                request.helper, request.arg_regs, request.ret_reg,
                hint)
        # Two-pass: measure at a dummy base, then place for real.  The
        # allocation is sized by the probe, so a relocated encoding that
        # drifts in length would overrun into the next block's cache
        # slot — corrupting already-installed code silently.
        probe = assemble_arm(compiled.asm, base=0,
                             external_labels=labels)
        host_pc = self.runtime.alloc_code(len(probe.code))
        final = assemble_arm(compiled.asm, base=host_pc,
                             external_labels=labels)
        if len(final.code) != len(probe.code):
            raise TranslationError(
                f"block @{compiled.guest_pc:#x}: relocated encoding is "
                f"{len(final.code)} bytes but {len(probe.code)} were "
                f"allocated from the probe pass"
            )
        self._register_fence_origins(compiled, final)
        self.machine.memory.add_image(host_pc, final.code)
        return host_pc

    def _register_fence_origins(self, compiled: CompiledBlock,
                                final) -> None:
        """Map each installed DMB's host address to its provenance.

        The backend records origins in DMB emission order; the
        assembler preserves instruction order, so zipping the
        assembled ``dmb*`` addresses with that list is exact.  A
        drift between the two would mis-attribute fence cycles
        silently, hence the hard check.
        """
        dmb_addrs = [
            addr for insn, addr in zip(final.insns, final.addresses)
            if insn.mnemonic.startswith("dmb")
        ]
        if len(dmb_addrs) != len(compiled.fence_origins):
            raise TranslationError(
                f"block @{compiled.guest_pc:#x}: {len(dmb_addrs)} "
                f"assembled DMBs but {len(compiled.fence_origins)} "
                f"recorded fence origins")
        for addr, origin in zip(dmb_addrs, compiled.fence_origins):
            if origin is not None:
                self.machine.fence_origins[addr] = origin

    # ------------------------------------------------------------------
    def run(self, entry_pc: int,
            max_steps: int = 50_000_000) -> RunResult:
        main = self.runtime.start_main_thread(entry_pc)
        self.machine.run(max_steps=max_steps)
        return RunResult(
            elapsed_cycles=self.machine.elapsed_cycles(),
            total_cycles=self.machine.total_cycles(),
            fence_cycles=self.machine.total_fence_cycles(),
            host_insns=self.machine.total_insns(),
            stats=self.runtime.stats,
            opt_stats=self.opt_stats,
            exit_code=self.runtime.threads[main.tid].exit_code,
            output=self.runtime.stats.output,
            fence_cycles_by_origin=(
                self.machine.total_fence_cycles_by_origin()),
            block_profile=self.runtime.block_profile_snapshot(),
        )


class NativeRunner:
    """Run an Arm-native workload build on the same machine/syscalls.

    Native code uses the same syscall register convention as the
    translated guest (number in x8, args in x13/x12) so the one runtime
    serves both; threads spawned by native code start directly at their
    Arm entry point.
    """

    def __init__(self, machine: Machine | None = None,
                 n_cores: int = 4,
                 costs: CostModel | None = None,
                 seed: int = 42,
                 buffer_mode: BufferMode = BufferMode.WEAK):
        # buffer_mode must reach the Machine here exactly as in
        # DBTEngine: the native bars are the reference the DBT variants
        # are divided by, so running them under a different memory
        # setup skews every relative-runtime figure.
        self.machine = machine or Machine(
            n_cores=n_cores, costs=costs or DEFAULT_COSTS, seed=seed,
            buffer_mode=buffer_mode)
        self.runtime = Runtime(self.machine)
        self.runtime.native_mode = True
        self._exit_trap = self.runtime.alloc_trap(self._thread_exit)
        self.runtime.native_exit = self._exit_trap

    def _thread_exit(self, core) -> None:
        from .runtime import guest_reg
        self.runtime._finish_thread(core, guest_reg(core, "rax"))

    def load_image(self, base: int, code: bytes) -> None:
        self.machine.memory.add_image(base, code)

    def run(self, entry_pc: int,
            max_steps: int = 50_000_000) -> RunResult:
        main = self.runtime.start_main_thread(entry_pc)
        self.machine.run(max_steps=max_steps)
        return RunResult(
            elapsed_cycles=self.machine.elapsed_cycles(),
            total_cycles=self.machine.total_cycles(),
            fence_cycles=self.machine.total_fence_cycles(),
            host_insns=self.machine.total_insns(),
            stats=self.runtime.stats,
            opt_stats=OptStats(),
            exit_code=self.runtime.threads[main.tid].exit_code,
            output=self.runtime.stats.output,
            fence_cycles_by_origin=(
                self.machine.total_fence_cycles_by_origin()),
            # Native code runs no translated blocks, so there is no
            # profile to track — an explicit None (not an empty dict)
            # tells consumers "not tracked" rather than "no hot blocks".
            block_profile=None,
        )
