"""The TCG intermediate representation.

Mirrors QEMU's Tiny Code Generator at the level the paper reasons
about: an assembly-like op list per translation block, with temps,
globals bound to guest registers, memory ops, the ``mb`` barrier op
carrying a ``TCG_MO_*`` bitmask, helper calls, and — Risotto's addition
(Section 6.3) — a first-class ``cas`` op so compare-and-swap can be
lowered to a host instruction instead of a helper call.

The ``TCG_MO_*`` bitmask encodes which access-pair classes a barrier
orders, exactly like QEMU's ``tcg_mo`` flags; the correspondence with
the paper's named fences (Frm, Fww, ...) is given by
:func:`fence_to_mask` / :func:`mask_to_fence`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..core.events import Fence
from ..errors import TranslationError

# ----------------------------------------------------------------------
# Memory-order bitmask (QEMU's TCG_MO_* values)
# ----------------------------------------------------------------------
MO_LD_LD = 0x01  # earlier loads  before later loads
MO_LD_ST = 0x02  # earlier loads  before later stores
MO_ST_LD = 0x04  # earlier stores before later loads
MO_ST_ST = 0x08  # earlier stores before later stores
MO_ALL = MO_LD_LD | MO_LD_ST | MO_ST_LD | MO_ST_ST

#: Paper fence name <-> mask correspondence (Figure 1 / Figure 6).
_FENCE_MASKS: dict[Fence, int] = {
    Fence.FRR: MO_LD_LD,
    Fence.FRW: MO_LD_ST,
    Fence.FRM: MO_LD_LD | MO_LD_ST,
    Fence.FWR: MO_ST_LD,
    Fence.FWW: MO_ST_ST,
    Fence.FWM: MO_ST_LD | MO_ST_ST,
    Fence.FMR: MO_LD_LD | MO_ST_LD,
    Fence.FMW: MO_LD_ST | MO_ST_ST,
    Fence.FMM: MO_ALL,
    Fence.FSC: MO_ALL,
}


def fence_to_mask(kind: Fence) -> int:
    try:
        return _FENCE_MASKS[kind]
    except KeyError:
        raise TranslationError(f"{kind} has no TCG_MO mask") from None


def mask_to_fence(mask: int) -> Fence:
    """The weakest named fence covering ``mask``."""
    if mask == 0:
        raise TranslationError("empty barrier mask has no fence name")
    best: Fence | None = None
    for fence, fence_mask in _FENCE_MASKS.items():
        if fence is Fence.FSC:
            continue
        if mask & ~fence_mask:
            continue
        if best is None or bin(fence_mask).count("1") < \
                bin(_FENCE_MASKS[best]).count("1"):
            best = fence
    assert best is not None  # FMM covers everything
    return best


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Temp:
    """A TCG value: a block-local temp or a global bound to guest state.

    Globals (``is_global``) survive across blocks (guest registers and
    flags); locals are scratch within one translation block.
    """

    name: str
    is_global: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    value: int

    def __str__(self) -> str:
        return f"${self.value}"


Value = Temp | Const


class Cond(enum.Enum):
    """Comparison conditions for setcond/brcond."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"    # signed
    GE = "ge"
    LE = "le"
    GT = "gt"
    LTU = "ltu"  # unsigned
    GEU = "geu"
    LEU = "leu"
    GTU = "gtu"


@dataclass(frozen=True)
class LabelRef:
    index: int

    def __str__(self) -> str:
        return f"L{self.index}"


# ----------------------------------------------------------------------
# Ops
# ----------------------------------------------------------------------
#: op name -> (outputs, inputs) positional classification, used by the
#: generic liveness and constant-propagation machinery.
OP_SIGNATURES: dict[str, tuple[int, int]] = {
    # name: (number of leading output args, remaining are inputs)
    "mov": (1, 1),
    "movi": (1, 1),
    "add": (1, 2), "sub": (1, 2), "and": (1, 2), "or": (1, 2),
    "xor": (1, 2), "shl": (1, 2), "shr": (1, 2), "sar": (1, 2),
    "mul": (1, 2), "divu": (1, 2), "remu": (1, 2),
    "neg": (1, 1), "not": (1, 1),
    # Scalar-double FP on general registers (tier-2 helper inlining;
    # the machine executes these with the same float64 arithmetic as
    # the softfloat helpers, so results are bit-identical).
    "fadd": (1, 2), "fmul": (1, 2),
    "setcond": (1, 3),   # dst, a, b, cond
    "ld": (1, 2),        # dst, base, offset(Const)
    "st": (0, 3),        # src, base, offset(Const)
    "mb": (0, 1),        # mask(Const)
    "br": (0, 1),        # label
    "brcond": (0, 4),    # a, b, cond, label
    "set_label": (0, 1),
    "exit_tb": (0, 1),   # next guest pc (Value)
    "goto_tb": (0, 1),
    "call": (0, 0),      # special-cased: name, ret, args
    "cas": (1, 3),       # old_out, base, expect, new
    "atomic_add": (1, 2),   # old_out, base, addend
    "atomic_xchg": (1, 2),  # old_out, base, new
    "discard": (0, 1),
}

#: Ops that touch guest memory (barriers interact with exactly these).
MEMORY_OPS: frozenset[str] = frozenset(
    {"ld", "st", "cas", "atomic_add", "atomic_xchg"})

#: Ops after which control may leave the block.
TERMINATOR_OPS: frozenset[str] = frozenset(
    {"exit_tb", "goto_tb", "br", "brcond"})


@dataclass(frozen=True)
class Op:
    """One TCG op.  ``args`` layout follows OP_SIGNATURES; ``call`` ops
    carry (helper_name, ret_temp_or_None, *arg_values).

    ``origin`` is the provenance tag of barrier (``mb``) ops: the
    mapping rule (``RMOV->ld;Frm``) or optimizer decision
    (``fence_merge:strengthen``) that produced the fence.  It is
    metadata, excluded from equality/hash so optimizer tests comparing
    op sequences stay origin-agnostic, and it survives to the backend
    where fence cycles are attributed per origin.
    """

    name: str
    args: tuple = ()
    origin: str | None = field(default=None, compare=False)

    def __str__(self) -> str:
        if self.name == "call":
            helper, ret, *rest = self.args
            ret_part = f"{ret} = " if ret is not None else ""
            arg_part = ", ".join(str(a) for a in rest)
            return f"{ret_part}call {helper}({arg_part})"
        return f"{self.name} " + ", ".join(str(a) for a in self.args)

    # ------------------------------------------------------------------
    def outputs(self) -> tuple[Temp, ...]:
        if self.name == "call":
            ret = self.args[1]
            return (ret,) if isinstance(ret, Temp) else ()
        n_out, _ = OP_SIGNATURES[self.name]
        return tuple(a for a in self.args[:n_out]
                     if isinstance(a, Temp))

    def inputs(self) -> tuple[Temp, ...]:
        if self.name == "call":
            return tuple(a for a in self.args[2:]
                         if isinstance(a, Temp))
        n_out, _ = OP_SIGNATURES[self.name]
        return tuple(a for a in self.args[n_out:]
                     if isinstance(a, Temp))

    def is_memory(self) -> bool:
        return self.name in MEMORY_OPS

    def has_side_effects(self) -> bool:
        return self.name in MEMORY_OPS or self.name in TERMINATOR_OPS \
            or self.name in ("mb", "call", "set_label")


# ----------------------------------------------------------------------
# Blocks
# ----------------------------------------------------------------------
@dataclass
class TCGBlock:
    """One translation block of IR ops plus temp/label allocation."""

    guest_pc: int
    ops: list[Op] = field(default_factory=list)
    _temp_counter: itertools.count = field(
        default_factory=itertools.count)
    _label_counter: itertools.count = field(
        default_factory=itertools.count)
    #: Guest instruction count (for stats/cost accounting).
    guest_insns: int = 0

    def new_temp(self) -> Temp:
        return Temp(f"t{next(self._temp_counter)}")

    def new_label(self) -> LabelRef:
        return LabelRef(next(self._label_counter))

    def emit(self, name: str, *args) -> Op:
        op = Op(name, tuple(args))
        self.ops.append(op)
        return op

    # Convenience emitters -------------------------------------------
    def movi(self, dst: Temp, value: int) -> None:
        self.emit("movi", dst, Const(value))

    def mb(self, mask: int, origin: str | None = None) -> None:
        if mask:
            self.ops.append(Op("mb", (Const(mask),), origin=origin))

    def call(self, helper: str, ret: Temp | None, *args: Value) -> None:
        self.ops.append(Op("call", (helper, ret) + tuple(args)))

    def pretty(self) -> str:
        lines = [f"TB @0x{self.guest_pc:x} ({self.guest_insns} guest insns)"]
        lines += [f"  {op}" for op in self.ops]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Guest-state globals
# ----------------------------------------------------------------------
#: TCG globals for the 16 guest GPRs.
GUEST_REG_TEMPS: dict[str, Temp] = {
    name: Temp(f"g_{name}", is_global=True)
    for name in ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
                 "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")
}

#: TCG globals for the guest flags (materialized eagerly; QEMU's lazy
#: flag evaluation is a performance refinement out of scope here).
GUEST_FLAG_TEMPS: dict[str, Temp] = {
    name: Temp(f"g_{name}", is_global=True)
    for name in ("zf", "sf", "cf", "of")
}

ALL_GLOBALS: tuple[Temp, ...] = tuple(GUEST_REG_TEMPS.values()) + tuple(
    GUEST_FLAG_TEMPS.values())
