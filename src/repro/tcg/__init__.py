"""QEMU's Tiny Code Generator, reimplemented: IR, frontend, optimizer,
backend, plus Risotto's native CAS path."""

from .backend_arm import ArmBackend, CompiledBlock, lower_barrier
from .frontend_x86 import CasPolicy, FencePolicy, FrontendConfig, X86Frontend
from .ir import (
    MO_ALL,
    MO_LD_LD,
    MO_LD_ST,
    MO_ST_LD,
    MO_ST_ST,
    Cond,
    Const,
    Op,
    TCGBlock,
    Temp,
    fence_to_mask,
    mask_to_fence,
)
from .optimizer import OptimizerConfig, OptStats, optimize

__all__ = [
    "ArmBackend", "CompiledBlock", "lower_barrier",
    "CasPolicy", "FencePolicy", "FrontendConfig", "X86Frontend",
    "MO_ALL", "MO_LD_LD", "MO_LD_ST", "MO_ST_LD", "MO_ST_ST",
    "Cond", "Const", "Op", "TCGBlock", "Temp",
    "fence_to_mask", "mask_to_fence",
    "OptimizerConfig", "OptStats", "optimize",
]
