"""TCG IR → Arm code generation (the host backend).

Lowers one optimized :class:`~repro.tcg.ir.TCGBlock` to Arm assembly
text.  The memory-ordering work happens in ``mb`` lowering: the mask is
mapped to the weakest sufficient DMB exactly as in Figure 7b (via the
same pair-set logic the verified op-level mapping uses), and the
``cas``/``atomic_*`` ops lower to ``casal``/``ldaddal``/``swpal``
(Section 6.3) instead of helper calls.

Register convention (documented for the machine/runtime):

====================  =======================================
x0–x5                 TCG temp pool (linear-scan allocated)
x6, x7                scratch / jump target
x8–x23                guest rax…r15
x24–x27               guest flags zf, sf, cf, of
x28, x29              constant-argument staging for helpers
x30                   link register (helper/dispatcher returns)
====================  =======================================

Helper and dispatcher entry points are *trap addresses*: Python-level
callables the runtime installs on the simulated core, each specialized
to the argument registers the backend chose at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import TranslationError
from ..isa.x86.insns import GPR as X86_GPR
from .ir import (
    Cond,
    Const,
    MO_LD_LD,
    MO_LD_ST,
    MO_ST_LD,
    MO_ST_ST,
    Op,
    TCGBlock,
    Temp,
)

#: Fixed global register map.
GUEST_REG_MAP: dict[str, str] = {
    f"g_{name}": f"x{8 + i}" for i, name in enumerate(X86_GPR)
}
GUEST_FLAG_MAP: dict[str, str] = {
    "g_zf": "x24", "g_sf": "x25", "g_cf": "x26", "g_of": "x27",
}
GLOBAL_MAP = {**GUEST_REG_MAP, **GUEST_FLAG_MAP}

TEMP_POOL: tuple[str, ...] = ("x0", "x1", "x2", "x3", "x4", "x5")
SCRATCH0 = "x6"
SCRATCH1 = "x7"
# x7 is free during helper calls (only exit_tb uses it).
CONST_ARG_REGS: tuple[str, ...] = ("x28", "x29", "x7")

_COND_NAME: dict[Cond, str] = {
    Cond.EQ: "eq", Cond.NE: "ne",
    Cond.LT: "lt", Cond.GE: "ge", Cond.LE: "le", Cond.GT: "gt",
    Cond.LTU: "lo", Cond.GEU: "hs", Cond.LEU: "ls", Cond.GTU: "hi",
}


def lower_barrier(mask: int) -> str | None:
    """The weakest DMB covering a TCG_MO mask (Figure 7b)."""
    if mask == 0:
        return None
    if mask & MO_ST_LD:
        return "dmbff"
    if mask & ~(MO_LD_LD | MO_LD_ST) == 0:
        return "dmbld"
    if mask & ~MO_ST_ST == 0:
        return "dmbst"
    return "dmbff"  # mixed (e.g. Fmw): needs the full barrier


@dataclass
class HelperRequest:
    """A helper/dispatcher entry the runtime must install."""

    trap_label: str              # label placeholder in the asm text
    helper: str                  # helper name, or "dispatch"
    arg_regs: tuple[str, ...]    # registers holding the arguments
    ret_reg: str | None          # register receiving the return value


@dataclass
class CompiledBlock:
    """Backend output: asm text plus the traps it references."""

    guest_pc: int
    asm: str
    helper_requests: list[HelperRequest]
    guest_insns: int
    op_count: int
    #: Provenance tag of each emitted DMB, in emission order (None for
    #: untagged fences).  The engine zips this with the assembled
    #: ``dmb*`` addresses to build the host fence-origin map.
    fence_origins: list[str | None] = field(default_factory=list)


class _TempAllocator:
    """Linear-scan allocation of block-local temps onto TEMP_POOL."""

    def __init__(self, ops: list[Op]):
        self.last_use: dict[Temp, int] = {}
        for index, op in enumerate(ops):
            for temp in op.inputs():
                if not temp.is_global:
                    self.last_use[temp] = index
            for temp in op.outputs():
                if not temp.is_global:
                    self.last_use.setdefault(temp, index)
        self.free = list(TEMP_POOL)
        self.assigned: dict[Temp, str] = {}

    def reg_for(self, temp: Temp, index: int,
                defining: bool) -> str:
        if temp.is_global:
            return GLOBAL_MAP[temp.name]
        reg = self.assigned.get(temp)
        if reg is None:
            if not defining:
                raise TranslationError(
                    f"temp {temp} used before definition")
            if not self.free:
                raise TranslationError(
                    "TCG temp pressure exceeds the host temp pool")
            reg = self.free.pop(0)
            self.assigned[temp] = reg
        return reg

    def release_dead(self, index: int) -> None:
        for temp, last in list(self.last_use.items()):
            if last == index and temp in self.assigned:
                self.free.append(self.assigned.pop(temp))
                del self.last_use[temp]


class ArmBackend:
    """Compiles TCG blocks to Arm assembly."""

    def compile_block(self, block: TCGBlock) -> CompiledBlock:
        lines: list[str] = []
        requests: list[HelperRequest] = []
        fence_origins: list[str | None] = []
        alloc = _TempAllocator(block.ops)
        trap_counter = 0

        def operand(value, index: int, defining: bool = False,
                    const_slot: list | None = None) -> str:
            if isinstance(value, Temp):
                return alloc.reg_for(value, index, defining)
            if isinstance(value, Const):
                return f"#{value.value}"
            raise TranslationError(f"bad backend value {value!r}")

        def reg_operand(value, index: int, scratch: str) -> str:
            """Like operand() but forces a register (materializing
            constants into ``scratch``)."""
            if isinstance(value, Const):
                lines.append(f"    movz {scratch}, #{value.value}")
                return scratch
            return operand(value, index)

        for index, op in enumerate(block.ops):
            self._lower_op(op, index, lines, alloc, operand,
                           reg_operand, requests, fence_origins)
            alloc.release_dead(index)

        asm = "\n".join(lines) + "\n"
        return CompiledBlock(
            guest_pc=block.guest_pc,
            asm=asm,
            helper_requests=requests,
            guest_insns=block.guest_insns,
            op_count=len(block.ops),
            fence_origins=fence_origins,
        )

    # ------------------------------------------------------------------
    def _lower_op(self, op: Op, index: int, lines: list[str],
                  alloc: _TempAllocator, operand, reg_operand,
                  requests: list[HelperRequest],
                  fence_origins: list[str | None] | None = None,
                  ) -> None:
        name = op.name

        if name == "movi":
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    movz {dst}, #{op.args[1].value}")
            return
        if name == "mov":
            src = operand(op.args[1], index)
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    mov {dst}, {src}")
            return
        if name in ("add", "sub", "and", "mul"):
            a = operand(op.args[1], index)
            b = operand(op.args[2], index)
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    {name} {dst}, {a}, {b}")
            return
        if name in ("or", "xor", "shl", "shr", "sar", "divu", "remu"):
            arm_name = {"or": "orr", "xor": "eor", "shl": "lsl",
                        "shr": "lsr", "sar": "asr",
                        "divu": "udiv"}.get(name)
            a = operand(op.args[1], index)
            b = operand(op.args[2], index)
            dst = operand(op.args[0], index, defining=True)
            if name == "remu":
                # r = a - (a/b)*b
                lines.append(f"    udiv {SCRATCH0}, {a}, {b}")
                lines.append(f"    mul {SCRATCH0}, {SCRATCH0}, {b}")
                lines.append(f"    sub {dst}, {a}, {SCRATCH0}")
            else:
                lines.append(f"    {arm_name} {dst}, {a}, {b}")
            return
        if name in ("fadd", "fmul"):
            # Pseudo scalar-double FP on general registers; constants
            # (from cross-seam constprop) must be materialized.
            a = reg_operand(op.args[1], index, SCRATCH0)
            b = reg_operand(op.args[2], index, SCRATCH1)
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    {name} {dst}, {a}, {b}")
            return
        if name == "neg":
            a = operand(op.args[1], index)
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    neg {dst}, {a}")
            return
        if name == "not":
            a = operand(op.args[1], index)
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    mvn {dst}, {a}")
            return
        if name == "setcond":
            a = operand(op.args[1], index)
            b = operand(op.args[2], index)
            dst = operand(op.args[0], index, defining=True)
            cond = _COND_NAME[op.args[3]]
            from ..machine.cpu import cond_index
            lines.append(f"    cmp {a}, {b}")
            lines.append(f"    cset {dst}, #{cond_index(cond)}")
            return
        if name == "brcond":
            a = operand(op.args[0], index)
            b = operand(op.args[1], index)
            cond = _COND_NAME[op.args[2]]
            label = f"L{op.args[3].index}"
            lines.append(f"    cmp {a}, {b}")
            lines.append(f"    b.{cond} {label}")
            return
        if name == "br":
            lines.append(f"    b L{op.args[0].index}")
            return
        if name == "set_label":
            lines.append(f"L{op.args[0].index}:")
            return
        if name == "ld":
            base = reg_operand(op.args[1], index, SCRATCH0)
            dst = operand(op.args[0], index, defining=True)
            offset = op.args[2].value
            lines.append(f"    ldr {dst}, [{base}, #{offset}]")
            return
        if name == "st":
            src = reg_operand(op.args[0], index, SCRATCH1)
            base = reg_operand(op.args[1], index, SCRATCH0)
            offset = op.args[2].value
            lines.append(f"    str {src}, [{base}, #{offset}]")
            return
        if name == "mb":
            dmb = lower_barrier(op.args[0].value)
            if dmb:
                lines.append(f"    {dmb}")
                if fence_origins is not None:
                    fence_origins.append(op.origin)
            return
        if name == "cas":
            # casal clobbers the expected register: stage in scratch.
            base = reg_operand(op.args[1], index, SCRATCH0)
            new = reg_operand(op.args[3], index, CONST_ARG_REGS[0])
            expect = operand(op.args[2], index)
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    mov {SCRATCH1}, {expect}")
            lines.append(f"    casal {SCRATCH1}, {new}, [{base}]")
            lines.append(f"    mov {dst}, {SCRATCH1}")
            return
        if name in ("atomic_add", "atomic_xchg"):
            mnemonic = "ldaddal" if name == "atomic_add" else "swpal"
            base = reg_operand(op.args[1], index, SCRATCH0)
            value = reg_operand(op.args[2], index, CONST_ARG_REGS[0])
            dst = operand(op.args[0], index, defining=True)
            lines.append(f"    {mnemonic} {value}, {dst}, [{base}]")
            return
        if name in ("exit_tb", "goto_tb"):
            target = op.args[0]
            if isinstance(target, Const):
                lines.append(f"    movz {SCRATCH1}, #{target.value}")
            else:
                reg = operand(target, index)
                lines.append(f"    mov {SCRATCH1}, {reg}")
            trap = f"__dispatch_{name}"
            requests.append(HelperRequest(
                trap_label=trap, helper="dispatch",
                arg_regs=(SCRATCH1,), ret_reg=None))
            lines.append(f"    movz {SCRATCH0}, {trap}")
            lines.append(f"    br {SCRATCH0}")
            return
        if name == "call":
            helper, ret = op.args[0], op.args[1]
            arg_regs = []
            const_slots = iter(CONST_ARG_REGS)
            for arg in op.args[2:]:
                if isinstance(arg, Const):
                    try:
                        slot = next(const_slots)
                    except StopIteration:
                        raise TranslationError(
                            "too many constant helper args") from None
                    lines.append(f"    movz {slot}, #{arg.value}")
                    arg_regs.append(slot)
                else:
                    arg_regs.append(operand(arg, index))
            ret_reg = operand(ret, index, defining=True) \
                if ret is not None else None
            trap = f"__helper_{helper}_{id(op)}"
            requests.append(HelperRequest(
                trap_label=trap, helper=helper,
                arg_regs=tuple(arg_regs), ret_reg=ret_reg))
            lines.append(f"    movz {SCRATCH0}, {trap}")
            lines.append(f"    blr {SCRATCH0}")
            return
        raise TranslationError(f"backend cannot lower {op}")
