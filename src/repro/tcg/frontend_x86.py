"""x86 → TCG IR translation (the guest frontend).

Decodes guest instructions from memory at the emulated IP and emits
TCG ops one basic block at a time.  Memory fences come from a derived
:class:`~repro.core.most.FenceScheme` — the concrete per-access
placement a (source MOST table, target fence menu, placement
discipline) triple derives — rather than hardwired policy branches.
The legacy :class:`FencePolicy` names resolve to their table-derived
equivalents (proven bit-identical by the golden tests):

* ``QEMU``   — Figure 2: ``Frr`` before loads, ``Fmw`` before stores
  (the ``qemu`` scheme: TSO table, all-leading placement).
* ``RISOTTO`` — Figure 7a: ``Frm`` *after* loads, ``Fww`` *before*
  stores (the ``risotto`` scheme: TSO table, trailing loads).
* ``NOFENCES`` — the incorrect performance oracle (drops the explicit
  x86 fences too).

``CasPolicy`` selects how LOCK'd RMWs translate: ``HELPER`` is QEMU's
call-out to a C helper (whose ordering comes from the GCC builtin);
``NATIVE`` is Risotto's direct lowering through the new ``cas`` /
``atomic_add`` / ``atomic_xchg`` IR ops (Section 6.3).

Flags are materialized eagerly into flag globals; QEMU's lazy-flag
machinery is a sequential optimization orthogonal to the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.most import FenceScheme, scheme_for_policy
from ..errors import TranslationError
from ..isa.common import Imm, Insn, Mem, Reg
from ..isa.x86.insns import BLOCK_TERMINATORS, CODER, CONDITIONAL_JUMPS
from .ir import (
    Cond,
    Const,
    GUEST_FLAG_TEMPS,
    GUEST_REG_TEMPS,
    Op,
    TCGBlock,
    Temp,
    Value,
    fence_to_mask,
)


class FencePolicy(enum.Enum):
    QEMU = "qemu"
    RISOTTO = "risotto"
    NOFENCES = "no-fences"


class CasPolicy(enum.Enum):
    HELPER = "helper"
    NATIVE = "native"


@dataclass(frozen=True)
class FrontendConfig:
    fence_policy: FencePolicy = FencePolicy.RISOTTO
    cas_policy: CasPolicy = CasPolicy.NATIVE
    block_insn_limit: int = 64
    #: The derived mapping scheme the frontend emits from.  ``None``
    #: resolves to ``fence_policy``'s table-derived equivalent, so
    #: legacy configs keep their exact emission; an explicit scheme
    #: wins over ``fence_policy`` (which then only names the nearest
    #: legacy policy for diagnostics).
    scheme: FenceScheme | None = None

    def __post_init__(self):
        if self.scheme is None:
            object.__setattr__(
                self, "scheme",
                scheme_for_policy(self.fence_policy.value))


_COND_FLAG_EXPRS = {
    # cc suffix -> closure emitting a 0/1 temp (defined in _cond_temp)
}


class X86Frontend:
    """Translates guest basic blocks into TCG IR."""

    def __init__(self, config: FrontendConfig | None = None):
        self.config = config or FrontendConfig()

    # ------------------------------------------------------------------
    def translate_block(self, memory, pc: int) -> TCGBlock:
        """Decode from guest memory at ``pc`` until a terminator."""
        block = TCGBlock(guest_pc=pc)
        cursor = pc
        for _ in range(self.config.block_insn_limit):
            code = memory.read_bytes(cursor, 32)
            insn, size = CODER.decode(code)
            cursor += size
            block.guest_insns += 1
            self._translate_insn(block, insn, cursor)
            if insn.mnemonic in BLOCK_TERMINATORS:
                return block
        # Block limit reached: continue at the next guest pc.
        block.emit("goto_tb", Const(cursor))
        return block

    # ------------------------------------------------------------------
    # Operand plumbing
    # ------------------------------------------------------------------
    def _addr(self, block: TCGBlock, mem: Mem) -> Temp:
        addr = block.new_temp()
        if mem.base:
            if mem.index:
                scaled = block.new_temp()
                block.emit("shl", scaled, GUEST_REG_TEMPS[mem.index],
                           Const(mem.scale.bit_length() - 1))
                block.emit("add", addr, GUEST_REG_TEMPS[mem.base],
                           scaled)
            else:
                block.emit("mov", addr, GUEST_REG_TEMPS[mem.base])
        elif mem.index:
            block.emit("shl", addr, GUEST_REG_TEMPS[mem.index],
                       Const(mem.scale.bit_length() - 1))
        else:
            block.movi(addr, 0)
        if mem.offset:
            block.emit("add", addr, addr, Const(mem.offset))
        return addr

    def _read(self, block: TCGBlock, operand) -> Value:
        """Value of an operand; memory reads get policy fences."""
        if isinstance(operand, Reg):
            return GUEST_REG_TEMPS[operand.name]
        if isinstance(operand, Imm):
            return Const(operand.value)
        if isinstance(operand, Mem):
            addr = self._addr(block, operand)
            dst = block.new_temp()
            self._emit_load(block, dst, addr)
            return dst
        raise TranslationError(f"cannot read operand {operand!r}")

    def _write(self, block: TCGBlock, operand, value: Value) -> None:
        if isinstance(operand, Reg):
            block.emit("mov", GUEST_REG_TEMPS[operand.name], value)
            return
        if isinstance(operand, Mem):
            addr = self._addr(block, operand)
            self._emit_store(block, value, addr)
            return
        raise TranslationError(f"cannot write operand {operand!r}")

    # ------------------------------------------------------------------
    # Scheme fences (the heart of the paper's mapping schemes)
    # ------------------------------------------------------------------
    def _emit_scheme_fence(self, block: TCGBlock, slot: str) -> None:
        """Emit the derived scheme's fence for ``slot``, if any.

        Mask and origin both come from the scheme, so a slot's
        provenance string can never drift from the registered rule.
        """
        rule = self.config.scheme.rule(slot)
        if rule is None:
            return
        kind, origin = rule
        block.mb(fence_to_mask(kind), origin=origin)

    def _emit_load(self, block: TCGBlock, dst: Temp, addr: Temp) -> None:
        self._emit_scheme_fence(block, "ld_pre")
        block.emit("ld", dst, addr, Const(0))
        self._emit_scheme_fence(block, "ld_post")

    def _emit_store(self, block: TCGBlock, src: Value,
                    addr: Temp) -> None:
        self._emit_scheme_fence(block, "st_pre")
        block.emit("st", src, addr, Const(0))
        self._emit_scheme_fence(block, "st_post")

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------
    def _set_logic_flags(self, block: TCGBlock, result: Value) -> None:
        flags = GUEST_FLAG_TEMPS
        block.emit("setcond", flags["zf"], result, Const(0), Cond.EQ)
        block.emit("shr", flags["sf"], result, Const(63))
        block.movi(flags["cf"], 0)
        block.movi(flags["of"], 0)

    def _set_add_flags(self, block: TCGBlock, a: Value, b: Value,
                       result: Value) -> None:
        flags = GUEST_FLAG_TEMPS
        block.emit("setcond", flags["zf"], result, Const(0), Cond.EQ)
        block.emit("shr", flags["sf"], result, Const(63))
        block.emit("setcond", flags["cf"], result, a, Cond.LTU)
        # of = ((a ^ ~b) & (a ^ r)) >> 63
        nb = block.new_temp()
        block.emit("not", nb, b)
        t1 = block.new_temp()
        block.emit("xor", t1, a, nb)
        t2 = block.new_temp()
        block.emit("xor", t2, a, result)
        t3 = block.new_temp()
        block.emit("and", t3, t1, t2)
        block.emit("shr", flags["of"], t3, Const(63))

    def _set_sub_flags(self, block: TCGBlock, a: Value, b: Value,
                       result: Value) -> None:
        flags = GUEST_FLAG_TEMPS
        block.emit("setcond", flags["zf"], result, Const(0), Cond.EQ)
        block.emit("shr", flags["sf"], result, Const(63))
        block.emit("setcond", flags["cf"], a, b, Cond.LTU)
        # of = ((a ^ b) & (a ^ r)) >> 63
        t1 = block.new_temp()
        block.emit("xor", t1, a, b)
        t2 = block.new_temp()
        block.emit("xor", t2, a, result)
        t3 = block.new_temp()
        block.emit("and", t3, t1, t2)
        block.emit("shr", flags["of"], t3, Const(63))

    def _cond_temp(self, block: TCGBlock, suffix: str) -> Temp:
        """A 0/1 temp for an x86 condition over the flag globals."""
        flags = GUEST_FLAG_TEMPS
        out = block.new_temp()
        if suffix == "e":
            block.emit("mov", out, flags["zf"])
        elif suffix == "ne":
            block.emit("xor", out, flags["zf"], Const(1))
        elif suffix == "l":
            block.emit("xor", out, flags["sf"], flags["of"])
        elif suffix == "ge":
            t = block.new_temp()
            block.emit("xor", t, flags["sf"], flags["of"])
            block.emit("xor", out, t, Const(1))
        elif suffix == "le":
            t = block.new_temp()
            block.emit("xor", t, flags["sf"], flags["of"])
            block.emit("or", out, t, flags["zf"])
        elif suffix == "g":
            t = block.new_temp()
            block.emit("xor", t, flags["sf"], flags["of"])
            t2 = block.new_temp()
            block.emit("or", t2, t, flags["zf"])
            block.emit("xor", out, t2, Const(1))
        elif suffix == "b":
            block.emit("mov", out, flags["cf"])
        elif suffix == "ae":
            block.emit("xor", out, flags["cf"], Const(1))
        elif suffix == "be":
            block.emit("or", out, flags["cf"], flags["zf"])
        elif suffix == "a":
            t = block.new_temp()
            block.emit("or", t, flags["cf"], flags["zf"])
            block.emit("xor", out, t, Const(1))
        elif suffix == "s":
            block.emit("mov", out, flags["sf"])
        elif suffix == "ns":
            block.emit("xor", out, flags["sf"], Const(1))
        else:
            raise TranslationError(f"unknown condition {suffix!r}")
        return out

    # ------------------------------------------------------------------
    # Instruction translation
    # ------------------------------------------------------------------
    def _translate_insn(self, block: TCGBlock, insn: Insn,
                        next_pc: int) -> None:
        m = insn.mnemonic
        ops = insn.operands

        if m == "nop":
            return
        if m == "hlt":
            block.call("helper_halt", None)
            block.emit("exit_tb", Const(next_pc))
            return
        if m == "syscall":
            block.call("helper_syscall", None)
            block.emit("exit_tb", Const(next_pc))
            return
        if m == "mfence":
            self._emit_scheme_fence(block, "mfence")
            return
        if m == "lfence":
            self._emit_scheme_fence(block, "lfence")
            return
        if m == "sfence":
            self._emit_scheme_fence(block, "sfence")
            return
        if m in ("mov", "movzx"):
            value = self._read(block, ops[1])
            if m == "movzx":
                masked = block.new_temp()
                block.emit("and", masked, value, Const(0xFFFFFFFF))
                value = masked
            self._write(block, ops[0], value)
            return
        if m == "lea":
            if not isinstance(ops[1], Mem):
                raise TranslationError("lea needs a memory source")
            self._write(block, ops[0], self._addr(block, ops[1]))
            return
        if m in ("add", "sub", "and", "or", "xor", "shl", "shr", "sar",
                 "imul"):
            a = self._read(block, ops[0])
            b = self._read(block, ops[1])
            result = block.new_temp()
            ir_name = {"or": "or", "imul": "mul"}.get(m, m)
            block.emit(ir_name, result, a, b)
            if m == "add":
                self._set_add_flags(block, a, b, result)
            elif m == "sub":
                self._set_sub_flags(block, a, b, result)
            else:
                self._set_logic_flags(block, result)
            self._write(block, ops[0], result)
            return
        if m == "div":
            divisor = self._read(block, ops[0])
            rax, rdx = GUEST_REG_TEMPS["rax"], GUEST_REG_TEMPS["rdx"]
            quotient = block.new_temp()
            remainder = block.new_temp()
            block.emit("divu", quotient, rax, divisor)
            block.emit("remu", remainder, rax, divisor)
            block.emit("mov", rax, quotient)
            block.emit("mov", rdx, remainder)
            return
        if m in ("inc", "dec"):
            a = self._read(block, ops[0])
            result = block.new_temp()
            block.emit("add" if m == "inc" else "sub",
                       result, a, Const(1))
            flags = GUEST_FLAG_TEMPS
            block.emit("setcond", flags["zf"], result, Const(0),
                       Cond.EQ)
            block.emit("shr", flags["sf"], result, Const(63))
            self._write(block, ops[0], result)
            return
        if m == "neg":
            a = self._read(block, ops[0])
            result = block.new_temp()
            block.emit("neg", result, a)
            self._set_sub_flags(block, Const(0), a, result)
            self._write(block, ops[0], result)
            return
        if m == "not":
            a = self._read(block, ops[0])
            result = block.new_temp()
            block.emit("not", result, a)
            self._write(block, ops[0], result)
            return
        if m == "cmp":
            a = self._read(block, ops[0])
            b = self._read(block, ops[1])
            result = block.new_temp()
            block.emit("sub", result, a, b)
            self._set_sub_flags(block, a, b, result)
            return
        if m == "test":
            a = self._read(block, ops[0])
            b = self._read(block, ops[1])
            result = block.new_temp()
            block.emit("and", result, a, b)
            self._set_logic_flags(block, result)
            return
        if m == "jmp":
            self._emit_jump(block, ops[0])
            return
        if m in CONDITIONAL_JUMPS:
            cond = self._cond_temp(block, CONDITIONAL_JUMPS[m])
            taken = block.new_label()
            block.emit("brcond", cond, Const(0), Cond.NE, taken)
            block.emit("goto_tb", Const(next_pc))
            block.emit("set_label", taken)
            self._emit_jump(block, ops[0], mnemonic="goto_tb")
            return
        if m == "call":
            rsp = GUEST_REG_TEMPS["rsp"]
            block.emit("sub", rsp, rsp, Const(8))
            self._emit_store(block, Const(next_pc), rsp)
            self._emit_jump(block, ops[0])
            return
        if m == "ret":
            rsp = GUEST_REG_TEMPS["rsp"]
            target = block.new_temp()
            self._emit_load(block, target, rsp)
            block.emit("add", rsp, rsp, Const(8))
            block.emit("exit_tb", target)
            return
        if m == "push":
            value = self._read(block, ops[0])
            rsp = GUEST_REG_TEMPS["rsp"]
            block.emit("sub", rsp, rsp, Const(8))
            self._emit_store(block, value, rsp)
            return
        if m == "pop":
            rsp = GUEST_REG_TEMPS["rsp"]
            value = block.new_temp()
            self._emit_load(block, value, rsp)
            block.emit("add", rsp, rsp, Const(8))
            self._write(block, ops[0], value)
            return
        if m == "cmpxchg":
            self._translate_cmpxchg(block, insn)
            return
        if m == "xadd":
            self._translate_xadd(block, insn)
            return
        if m == "xchg":
            self._translate_xchg(block, insn)
            return
        if m in ("fadd", "fmul", "fdiv"):
            a = self._read(block, ops[0])
            b = self._read(block, ops[1])
            result = block.new_temp()
            block.call(f"helper_{m}", result, a, b)
            self._write(block, ops[0], result)
            return
        if m == "fsqrt":
            a = self._read(block, ops[1])
            result = block.new_temp()
            block.call("helper_fsqrt", result, a)
            self._write(block, ops[0], result)
            return
        raise TranslationError(f"frontend cannot translate {insn}")

    # ------------------------------------------------------------------
    def _emit_jump(self, block: TCGBlock, target,
                   mnemonic: str = "goto_tb") -> None:
        if isinstance(target, Imm):
            block.emit(mnemonic, Const(target.value))
        elif isinstance(target, Reg):
            block.emit("exit_tb", GUEST_REG_TEMPS[target.name])
        elif isinstance(target, Mem):
            addr = self._addr(block, target)
            dst = block.new_temp()
            self._emit_load(block, dst, addr)
            block.emit("exit_tb", dst)
        else:
            raise TranslationError(f"bad jump target {target!r}")

    # ------------------------------------------------------------------
    # RMW family (Section 6.3)
    # ------------------------------------------------------------------
    def _translate_cmpxchg(self, block: TCGBlock, insn: Insn) -> None:
        mem, src = insn.operands
        if not isinstance(mem, Mem):
            raise TranslationError("cmpxchg needs a memory destination")
        addr = self._addr(block, mem)
        rax = GUEST_REG_TEMPS["rax"]
        expected = block.new_temp()
        block.emit("mov", expected, rax)
        new = self._read(block, src)
        old = block.new_temp()
        if self.config.cas_policy is CasPolicy.NATIVE:
            block.emit("cas", old, addr, expected, new)
        else:
            block.call("helper_cmpxchg", old, addr, expected, new)
        flags = GUEST_FLAG_TEMPS
        block.emit("setcond", flags["zf"], old, expected, Cond.EQ)
        block.emit("mov", rax, old)

    def _translate_xadd(self, block: TCGBlock, insn: Insn) -> None:
        mem, src = insn.operands
        if not isinstance(mem, Mem):
            raise TranslationError("xadd needs a memory destination")
        addr = self._addr(block, mem)
        addend = self._read(block, src)
        old = block.new_temp()
        if self.config.cas_policy is CasPolicy.NATIVE:
            block.emit("atomic_add", old, addr, addend)
        else:
            block.call("helper_xadd", old, addr, addend)
        total = block.new_temp()
        block.emit("add", total, old, addend)
        self._set_add_flags(block, old, addend, total)
        self._write(block, src, old)

    def _translate_xchg(self, block: TCGBlock, insn: Insn) -> None:
        mem, src = insn.operands
        if not isinstance(mem, Mem):
            raise TranslationError("xchg needs a memory destination")
        addr = self._addr(block, mem)
        new = self._read(block, src)
        old = block.new_temp()
        if self.config.cas_policy is CasPolicy.NATIVE:
            block.emit("atomic_xchg", old, addr, new)
        else:
            block.call("helper_xchg", old, addr, new)
        self._write(block, src, old)
