"""Constant propagation and folding over one TCG block.

Tracks temps (and in-block globals) with known constant values, folds
ALU ops, and applies algebraic identities — among them ``x * 0 -> 0``
and ``x & 0 -> 0``, which is the *false-dependency elimination* of
Section 6.1: legal precisely because the TCG IR model orders nothing
through dependencies.

Knowledge is invalidated at labels (join points) and helper calls that
may write guest globals.
"""

from __future__ import annotations

from ..ir import Cond, Const, Op, TCGBlock, Temp

U64 = (1 << 64) - 1


def _signed(v: int) -> int:
    return v - (1 << 64) if v & (1 << 63) else v


def _eval_alu(name: str, a: int, b: int) -> int | None:
    if name == "add":
        return (a + b) & U64
    if name == "sub":
        return (a - b) & U64
    if name == "and":
        return a & b
    if name == "or":
        return a | b
    if name == "xor":
        return a ^ b
    if name == "shl":
        return (a << (b & 63)) & U64
    if name == "shr":
        return a >> (b & 63)
    if name == "sar":
        return (_signed(a) >> (b & 63)) & U64
    if name == "mul":
        return (a * b) & U64
    if name == "divu":
        return (a // b) & U64 if b else None
    if name == "remu":
        return (a % b) & U64 if b else None
    return None


def _eval_cond(cond: Cond, a: int, b: int) -> bool:
    sa, sb = _signed(a), _signed(b)
    return {
        Cond.EQ: a == b, Cond.NE: a != b,
        Cond.LT: sa < sb, Cond.GE: sa >= sb,
        Cond.LE: sa <= sb, Cond.GT: sa > sb,
        Cond.LTU: a < b, Cond.GEU: a >= b,
        Cond.LEU: a <= b, Cond.GTU: a > b,
    }[cond]


_ALU_OPS = frozenset({
    "add", "sub", "and", "or", "xor", "shl", "shr", "sar",
    "mul", "divu", "remu",
})

#: Helpers known not to write guest globals (pure value helpers).
_PURE_HELPERS = frozenset({
    "helper_fadd", "helper_fmul", "helper_fdiv", "helper_fsqrt",
})


def constant_propagation(block: TCGBlock) -> int:
    """Fold and propagate; returns the number of ops simplified."""
    known: dict[Temp, int] = {}
    changed = 0
    new_ops: list[Op] = []

    def resolve(value):
        if isinstance(value, Temp) and value in known:
            return Const(known[value])
        return value

    for op in block.ops:
        name = op.name

        if name == "set_label":
            known.clear()  # join point: facts from the fall-through
            new_ops.append(op)
            continue
        if name == "call":
            helper, ret = op.args[0], op.args[1]
            args = tuple(resolve(a) for a in op.args[2:])
            if helper not in _PURE_HELPERS:
                # May write guest state (syscall): forget globals.
                known = {t: v for t, v in known.items()
                         if not t.is_global}
            if ret is not None:
                known.pop(ret, None)
            new_ops.append(Op("call", (helper, ret) + args))
            continue

        from ..ir import OP_SIGNATURES

        n_out, _ = OP_SIGNATURES[name]
        args = op.args[:n_out] + tuple(
            resolve(a) for a in op.args[n_out:])

        if name == "movi":
            dst, const = args
            known[dst] = const.value & U64
            new_ops.append(Op(name, args))
            changed += 0
            continue
        if name == "mov":
            dst, src = args
            if isinstance(src, Const):
                known[dst] = src.value & U64
                new_ops.append(Op("movi", (dst, src)))
                changed += 1
            else:
                known.pop(dst, None)
                if src in known:
                    known[dst] = known[src]
                new_ops.append(Op(name, args))
            continue
        if name in _ALU_OPS:
            dst, a, b = args
            if isinstance(a, Const) and isinstance(b, Const):
                value = _eval_alu(name, a.value & U64, b.value & U64)
                if value is not None:
                    known[dst] = value
                    new_ops.append(Op("movi", (dst, Const(value))))
                    changed += 1
                    continue
            folded = _identity_fold(name, dst, a, b)
            if folded is not None:
                if folded.name == "movi":
                    known[dst] = folded.args[1].value & U64
                else:
                    known.pop(dst, None)
                new_ops.append(folded)
                changed += 1
                continue
            known.pop(dst, None)
            new_ops.append(Op(name, args))
            continue
        if name in ("neg", "not"):
            dst, a = args
            if isinstance(a, Const):
                value = (-a.value if name == "neg" else ~a.value) & U64
                known[dst] = value
                new_ops.append(Op("movi", (dst, Const(value))))
                changed += 1
                continue
            known.pop(dst, None)
            new_ops.append(Op(name, args))
            continue
        if name == "setcond":
            dst, a, b, cond = args
            if isinstance(a, Const) and isinstance(b, Const):
                value = int(_eval_cond(cond, a.value & U64,
                                       b.value & U64))
                known[dst] = value
                new_ops.append(Op("movi", (dst, Const(value))))
                changed += 1
                continue
            known.pop(dst, None)
            new_ops.append(Op(name, args))
            continue

        # Everything else: invalidate outputs, keep resolved args.
        # Provenance (mb origins) must survive the rebuild.
        for out in op.outputs():
            known.pop(out, None)
        new_ops.append(Op(name, args, origin=op.origin))

    block.ops = new_ops
    return changed


def _identity_fold(name: str, dst, a, b) -> Op | None:
    """Algebraic identities, including false-dependency elimination."""
    a_const = a.value & U64 if isinstance(a, Const) else None
    b_const = b.value & U64 if isinstance(b, Const) else None
    if name == "mul" and (a_const == 0 or b_const == 0):
        return Op("movi", (dst, Const(0)))           # x*0 -> 0
    if name == "and" and (a_const == 0 or b_const == 0):
        return Op("movi", (dst, Const(0)))           # x&0 -> 0
    if name == "mul" and b_const == 1:
        return Op("mov", (dst, a))
    if name in ("add", "or", "xor", "shl", "shr", "sar") \
            and b_const == 0:
        return Op("mov", (dst, a))
    if name == "sub" and b_const == 0:
        return Op("mov", (dst, a))
    if name in ("add", "or", "xor") and a_const == 0:
        return Op("mov", (dst, b))
    return None
