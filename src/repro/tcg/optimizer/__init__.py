"""TCG IR optimizer: the passes Section 5.4 / 6.1 prove correct.

* constant propagation and folding (including false-dependency
  elimination: ``x*0 -> 0`` is legal because the TCG model has no
  dependency ordering),
* memory-access elimination (Figure 10's RAR/RAW/WAW rules, guarded by
  the fence side conditions *as validated by the model checker* — in
  particular no RAW forwarding across ``Fmr``-class fences, the FMR
  bug),
* fence merging (``Frm · Fww -> Fmm``-style, placed at the earliest
  fence, Section 6.1),
* dead code elimination.

Passes run at basic-block scope, mirroring QEMU: no information crosses
translation-block boundaries (the ArMOR discussion in Section 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...obs.trace import get_tracer
from ..ir import TCGBlock
from .constprop import constant_propagation
from .deadcode import dead_code_elimination
from .fence_merge import merge_fences_pass
from .inline_helpers import inline_helpers_pass
from .memopt import memory_access_elimination


@dataclass(frozen=True)
class OptimizerConfig:
    constprop: bool = True
    memopt: bool = True
    fence_merge: bool = True
    deadcode: bool = True


@dataclass
class OptStats:
    """What each pass removed/changed (surfaced in bench reports)."""

    folded: int = 0
    mem_eliminated: int = 0
    fences_merged: int = 0
    dead_removed: int = 0
    #: mask-0 ``mb`` ops dropped by fence merging — barriers that never
    #: existed, reported separately so they cannot inflate
    #: ``fences_merged`` (and the ablation deltas built on it).
    empty_fences_dropped: int = 0
    #: helper calls rewritten to first-class IR ops by the tier-2
    #: inlining pass (RMW + FP; see optimizer.inline_helpers).
    helpers_inlined: int = 0

    def merge(self, other: "OptStats") -> None:
        self.folded += other.folded
        self.mem_eliminated += other.mem_eliminated
        self.fences_merged += other.fences_merged
        self.dead_removed += other.dead_removed
        self.empty_fences_dropped += other.empty_fences_dropped
        self.helpers_inlined += other.helpers_inlined


def optimize(block: TCGBlock,
             config: OptimizerConfig | None = None) -> OptStats:
    """Run the enabled passes in QEMU's order; mutates the block."""
    config = config or OptimizerConfig()
    stats = OptStats()
    tracer = get_tracer()
    if config.constprop:
        with tracer.span("opt.constprop", cat="opt",
                         pc=block.guest_pc):
            stats.folded = constant_propagation(block)
    if config.memopt:
        with tracer.span("opt.memopt", cat="opt", pc=block.guest_pc):
            stats.mem_eliminated = memory_access_elimination(block)
    if config.fence_merge:
        with tracer.span("opt.fence_merge", cat="opt",
                         pc=block.guest_pc):
            stats.fences_merged, stats.empty_fences_dropped = \
                merge_fences_pass(block)
    if config.deadcode:
        with tracer.span("opt.deadcode", cat="opt",
                         pc=block.guest_pc):
            stats.dead_removed = dead_code_elimination(block)
    return stats


__all__ = [
    "OptimizerConfig",
    "OptStats",
    "optimize",
    "constant_propagation",
    "dead_code_elimination",
    "memory_access_elimination",
    "merge_fences_pass",
    "inline_helpers_pass",
]
