"""Dead code elimination: drop pure ops whose results are never used.

Backward liveness per straight-line *segment* — the maximal runs of
non-control ops between labels/branches.  Control can only enter a
segment at its head (labels are control ops), so the straight-line
argument is sound within a segment even when the block has backward
branches, which tier-2 traces do (their loop edges are in-trace ``br``
ops).  Each segment's live-out is seeded conservatively: every guest
global (state flows to the next block) plus every value read *outside*
the segment (a temp may reach any other segment through an arbitrary
branch path).  In-segment liveness — including kill-cascades through
chains of dead ops — stays precise.  Ops with side effects (memory,
barriers, calls) are always kept.

Flag materialization no conditional consumes before the next overwrite
is the main beneficiary — a faithful stand-in for QEMU's lazy flag
evaluation.  A single-segment block (every tier-1 block: straight-line
prefix plus a control tail) gets bit-identical results to the classic
prefix-only formulation.
"""

from __future__ import annotations

from ..ir import ALL_GLOBALS, TCGBlock, Temp

_CONTROL = frozenset({"set_label", "brcond", "br", "exit_tb",
                      "goto_tb"})


def _segments(ops):
    """Yield ``(start, stop)`` index ranges of the maximal control-free
    runs of ``ops``."""
    start = None
    for index, op in enumerate(ops):
        if op.name in _CONTROL:
            if start is not None:
                yield start, index
                start = None
        elif start is None:
            start = index
    if start is not None:
        yield start, len(ops)


def dead_code_elimination(block: TCGBlock) -> int:
    ops = block.ops
    keep = [True] * len(ops)
    reads = [op.inputs() for op in ops]

    for start, stop in _segments(ops):
        # Live-out: every guest global plus everything read outside
        # this segment (reachable again through any label).  A global
        # overwritten later in the same segment without an intervening
        # read is dead — which is exactly how stale flag
        # materialization gets removed.
        live: set[Temp] = set(ALL_GLOBALS)
        for index, ins in enumerate(reads):
            if index < start or index >= stop:
                live.update(ins)
        for index in range(stop - 1, start - 1, -1):
            op = ops[index]
            if op.has_side_effects():
                for out in op.outputs():
                    live.discard(out)
                live.update(reads[index])
                if op.name == "call":
                    # Helpers may read guest state implicitly (syscall).
                    live.update(ALL_GLOBALS)
                continue
            outputs = op.outputs()
            if not any(out in live for out in outputs):
                keep[index] = False
                continue
            for out in outputs:
                live.discard(out)
            live.update(reads[index])

    removed = keep.count(False)
    block.ops = [op for op, flag in zip(ops, keep) if flag]
    return removed
