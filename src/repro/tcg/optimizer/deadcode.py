"""Dead code elimination: drop pure ops whose results are never used.

Backward liveness over the straight-line *prefix* of the block (up to
the first control-flow op — the jcc tail pattern brcond/goto_tb/
set_label/goto_tb is left untouched, its inputs seeded as live).
Guest globals are always live-out: they carry state to the next block.
Ops with side effects (memory, barriers, calls) are always kept.

Flag materialization no conditional consumes before the next overwrite
is the main beneficiary — a faithful stand-in for QEMU's lazy flag
evaluation.
"""

from __future__ import annotations

from ..ir import ALL_GLOBALS, Op, TCGBlock, Temp

_CONTROL = frozenset({"set_label", "brcond", "br", "exit_tb",
                      "goto_tb"})


def dead_code_elimination(block: TCGBlock) -> int:
    ops = block.ops
    first_control = next(
        (i for i, op in enumerate(ops) if op.name in _CONTROL),
        len(ops))

    # Live-out: every guest global (state flows to the next block) plus
    # every input of the control tail.  A global overwritten later in
    # the straight-line prefix without an intervening read is dead —
    # which is exactly how stale flag materialization gets removed.
    live: set[Temp] = set(ALL_GLOBALS)
    for op in ops[first_control:]:
        live.update(op.inputs())

    keep = [True] * len(ops)
    for index in range(first_control - 1, -1, -1):
        op = ops[index]
        if op.has_side_effects():
            for out in op.outputs():
                live.discard(out)
            live.update(op.inputs())
            if op.name == "call":
                # Helpers may read guest state implicitly (syscall).
                live.update(ALL_GLOBALS)
            continue
        outputs = op.outputs()
        if not any(out in live for out in outputs):
            keep[index] = False
            continue
        for out in outputs:
            live.discard(out)
        live.update(op.inputs())

    removed = keep.count(False)
    block.ops = [op for op, flag in zip(ops, keep) if flag]
    return removed
