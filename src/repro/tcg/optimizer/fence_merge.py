"""Fence merging (Section 6.1).

Adjacent ``mb`` ops with no intervening memory access, call, or control
flow merge into a single barrier whose mask is the union, placed where
the *earliest* fence was — exactly the Frm·Fww → Fsc example from the
paper.  Merging to a same-or-stronger fence is proven correct in
Section 5.4 (and re-checked by our model checker in
tests/core/test_transforms.py).

A second rule drops a barrier that is immediately subsumed: if a fence
whose mask is a subset of a *later* merged fence appears with only pure
ops between, the union already covers it.
"""

from __future__ import annotations

from ..ir import Const, Op, TCGBlock

#: Op names a fence may migrate across (pure value computation).
_TRANSPARENT = frozenset({
    "mov", "movi", "add", "sub", "and", "or", "xor", "shl", "shr",
    "sar", "mul", "divu", "remu", "neg", "not", "setcond",
})


def merge_fences_pass(block: TCGBlock) -> tuple[int, int]:
    """Merge barrier ops; returns ``(merged, empty_dropped)``.

    ``merged`` counts real fences eliminated by merging into a
    neighbour; ``empty_dropped`` counts ``mb`` ops with mask 0, which
    never order anything and never reach the backend — they are
    bookkeeping removals, not eliminated barriers, and must not
    inflate the fences-eliminated optimizer stat.
    """
    merged = 0
    empty_dropped = 0
    new_ops: list[Op] = []
    #: Index in new_ops of the last mb with only pure ops after it.
    open_fence: int | None = None

    for op in block.ops:
        if op.name == "mb":
            mask = op.args[0].value
            if mask == 0:
                empty_dropped += 1
                continue
            if open_fence is not None:
                # A *strengthened* barrier is an optimizer artefact: its
                # cycles are attributed to the merge decision, not to
                # either contributing mapping rule.  A pure subsumption
                # (the incoming mask is a subset, the union leaves the
                # survivor unchanged) keeps the survivor's mapping-rule
                # origin — retagging it would mis-bill unstrengthened
                # fences to the optimizer in the by-origin footers.
                prev_mask = new_ops[open_fence].args[0].value
                if prev_mask | mask != prev_mask:
                    new_ops[open_fence] = Op(
                        "mb", (Const(prev_mask | mask),),
                        origin="fence_merge:strengthen")
                merged += 1
            else:
                open_fence = len(new_ops)
                new_ops.append(op)
            continue
        if op.name in _TRANSPARENT:
            new_ops.append(op)
            continue
        # Memory access, call, label or branch: fences no longer merge
        # across this point.
        open_fence = None
        new_ops.append(op)

    block.ops = new_ops
    return merged, empty_dropped
