"""Memory-access elimination (Figure 10) with fence side conditions.

A lightweight value-numbering pass assigns symbolic expressions to
temps so that two accesses to "[rbx + 8]" computed through different
scratch temps are recognized as same-address.  On top of that:

* **RAW forwarding** — a load that po-immediately follows a store to
  the same address (only pure ops and *safe* fences between) becomes a
  ``mov`` from the stored value.  Safe fences are ``Fww``/``Fsc``-class
  masks; forwarding across an ``Fmr``-class fence would be the FMR bug
  of Section 3.2, so it is refused — and the Risotto frontend never
  emits such fences anyway (Section 4.1).
* **RAR reuse** — a load repeating an earlier load with no intervening
  store/atomic and only ``Frm``/``Fww``-safe fences becomes a ``mov``.
* **WAW removal** — a store overwritten by a same-address store with
  nothing reading memory in between is dropped (only across
  ``Frm``-class fences, per the checker-validated safe set).

Any call, atomic, or store to an unknown address invalidates
everything (may-alias).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Const, MO_LD_LD, MO_LD_ST, MO_ST_LD, MO_ST_ST, Op, \
    TCGBlock, Temp

#: Fence masks across which each elimination stays sound (mirrors
#: repro.core.transforms.ELIM_SAFE_*; Frm = LD_LD|LD_ST, Fww = ST_ST).
#:
#: Figure 10 also licenses RAW elimination across *Fsc*, but an ``mb``
#: op only carries a TCG_MO mask, which cannot distinguish Fsc (safe,
#: thanks to its direct SC ordering) from Fmm (unsafe — like Fmr, the
#: eliminated read is a codomain of its ordering rules).  Eliminations
#: across MO_ALL masks are therefore refused: safety is not monotone in
#: fence strength, so "stronger fence" is not "safer fence" here.
_SAFE_RAR_MASKS = (MO_LD_LD | MO_LD_ST, MO_ST_ST)
_SAFE_RAW_MASKS = (MO_ST_ST,)
_SAFE_WAW_MASKS = (MO_LD_LD | MO_LD_ST,)


Expr = tuple  # symbolic value: ("const", v) | ("global", name) | (op, ...)


@dataclass
class _State:
    values: dict[Temp, Expr]
    #: address expr -> value expr of the last store (for RAW/WAW)
    stored: dict[Expr, tuple]
    #: address expr -> temp holding the last loaded value (for RAR)
    loaded: dict[Temp | Expr, Temp]
    #: address expr -> index in new_ops of the last store (for WAW)
    store_site: dict[Expr, int]


_fresh_counter = 0


def _fresh(temp: Temp) -> Expr:
    """A unique opaque value — used when a temp is (re)defined with an
    unknown value.  Once bound in ``state.values`` it stays stable, so
    repeated uses of the same temp value-number equal."""
    global _fresh_counter
    _fresh_counter += 1
    return ("opaque", temp.name, _fresh_counter)


def memory_access_elimination(block: TCGBlock) -> int:
    state = _State(values={}, stored={}, loaded={}, store_site={})
    eliminated = 0
    new_ops: list[Op] = []
    #: barrier masks seen since the last store/load per address are
    #: tracked globally: a single accumulated mask since each event.
    mask_since_store: dict[Expr, int] = {}
    mask_since_load: dict[Expr, int] = {}

    def value_of(arg, op_index: int) -> Expr:
        if isinstance(arg, Const):
            return ("const", arg.value)
        if isinstance(arg, Temp):
            if arg.is_global:
                return state.values.setdefault(
                    arg, ("global", arg.name))
            return state.values.setdefault(arg, _fresh(arg))
        return ("other", repr(arg))

    def kill_global(name: str) -> None:
        """A global changed: drop exprs mentioning it."""
        def mentions(expr: Expr) -> bool:
            if expr[0] == "global" and expr[1] == name:
                return True
            return any(isinstance(part, tuple) and mentions(part)
                       for part in expr)

        state.values = {t: e for t, e in state.values.items()
                        if not mentions(e)}
        for table in (state.stored, state.loaded, state.store_site,
                      mask_since_store, mask_since_load):
            for key in [k for k in table if isinstance(k, tuple)
                        and mentions(k)]:
                del table[key]

    def kill_memory() -> None:
        state.stored.clear()
        state.loaded.clear()
        state.store_site.clear()
        mask_since_store.clear()
        mask_since_load.clear()

    for index, op in enumerate(block.ops):
        name = op.name

        if name in ("set_label", "brcond", "br"):
            state.values.clear()
            kill_memory()
            new_ops.append(op)
            continue
        if name == "call":
            # Helpers may read/write memory and guest globals.
            state.values.clear()
            kill_memory()
            new_ops.append(op)
            continue
        if name in ("cas", "atomic_add", "atomic_xchg"):
            kill_memory()
            for out in op.outputs():
                state.values[out] = _fresh(out)
                if out.is_global:
                    kill_global(out.name)
            new_ops.append(op)
            continue
        if name == "mb":
            mask = op.args[0].value
            for key in mask_since_store:
                mask_since_store[key] |= mask
            for key in mask_since_load:
                mask_since_load[key] |= mask
            new_ops.append(op)
            continue

        if name == "ld":
            dst, base, offset = op.args
            addr = ("addr", value_of(base, index), offset.value)
            # RAW forwarding from a prior store.  The stored register
            # may have been overwritten since; forward only when its
            # value expression is unchanged.
            if addr in state.stored:
                mask = mask_since_store.get(addr, 0)
                stored_arg, stored_expr = state.stored[addr]
                if any(mask | safe == safe
                       for safe in _SAFE_RAW_MASKS) and \
                        value_of(stored_arg, index) == stored_expr:
                    new_ops.append(Op("mov", (dst, stored_arg)))
                    state.values[dst] = stored_expr
                    state.loaded[addr] = (dst, stored_expr)
                    mask_since_load[addr] = 0
                    eliminated += 1
                    continue
            # RAR reuse of a prior load (same staleness check).
            if addr in state.loaded:
                mask = mask_since_load.get(addr, 0)
                prev, prev_expr = state.loaded[addr]
                if any(mask | safe == safe
                       for safe in _SAFE_RAR_MASKS) and \
                        value_of(prev, index) == prev_expr:
                    new_ops.append(Op("mov", (dst, prev)))
                    state.values[dst] = prev_expr
                    eliminated += 1
                    continue
            fresh = _fresh(dst)
            state.values[dst] = fresh
            state.loaded[addr] = (dst, fresh)
            mask_since_load[addr] = 0
            new_ops.append(op)
            continue

        if name == "st":
            src, base, offset = op.args
            addr = ("addr", value_of(base, index), offset.value)
            # WAW: drop the prior store if nothing observed it.
            site = state.store_site.get(addr)
            if site is not None and addr not in state.loaded:
                mask = mask_since_store.get(addr, 0)
                if any(mask | safe == safe
                       for safe in _SAFE_WAW_MASKS):
                    new_ops[site] = Op("discard", (Const(0),))
                    eliminated += 1
            # A store to this address invalidates other addresses that
            # might alias; conservatively keep only exact-same-address
            # facts for *loads* when the store address is precise.
            for table in (state.stored, state.loaded,
                          state.store_site, mask_since_store,
                          mask_since_load):
                for key in [k for k in list(table) if k != addr]:
                    if _may_alias(key, addr):
                        del table[key]
            state.stored[addr] = (src, value_of(src, index))
            state.store_site[addr] = len(new_ops)
            state.loaded.pop(addr, None)
            mask_since_store[addr] = 0
            new_ops.append(op)
            continue

        # Pure ops: update value numbers.
        if name == "movi":
            dst, const = op.args
            state.values[dst] = ("const", const.value)
            if dst.is_global:
                kill_global(dst.name)
                state.values[dst] = ("const", const.value)
            new_ops.append(op)
            continue
        if name == "mov":
            dst, src = op.args
            expr = value_of(src, index)
            if dst.is_global:
                kill_global(dst.name)
            state.values[dst] = expr
            new_ops.append(op)
            continue
        outputs = op.outputs()
        arg_exprs = tuple(value_of(a, index) for a in op.args)
        for out in outputs:
            if out.is_global:
                kill_global(out.name)
        if len(outputs) == 1:
            state.values[outputs[0]] = (name,) + arg_exprs[1:]
        new_ops.append(op)

    block.ops = [op for op in new_ops if op.name != "discard"]
    return eliminated


def _may_alias(key, addr) -> bool:
    """Two symbolic addresses may alias unless they share a base expr
    with different offsets."""
    if not (isinstance(key, tuple) and key and key[0] == "addr"):
        return False
    __, base_a, off_a = key
    __, base_b, off_b = addr
    if base_a == base_b:
        # Same symbolic base: word accesses overlap when the offsets
        # are closer than a word apart.
        return abs(off_a - off_b) < 8
    return True  # different bases: must assume aliasing
