"""Helper inlining for the second compilation tier.

Hot traces replace costed helper traps with the equivalent first-class
IR ops, which the backend lowers to straight-line host instructions:

* RMW helpers — the fast-CAS lane of Section 6.3, generalized:
  ``helper_cmpxchg`` → ``cas`` (casal), ``helper_xadd`` →
  ``atomic_add`` (ldaddal), ``helper_xchg`` → ``atomic_xchg`` (swpal).
  The native ops carry the same acquire-release ordering (drain +
  coherence + cas cost on the machine) as the GCC-builtin-backed
  helpers, so only the trap entry/exit cost disappears.
* FP helpers — ``helper_fadd``/``helper_fmul`` → the ``fadd``/``fmul``
  scalar-double ops, which the machine executes with the identical
  Python float64 arithmetic the softfloat helper uses.  Results are
  bit-identical; only the helper-call + softfloat cost is saved.

``helper_fdiv`` and ``helper_fsqrt`` are deliberately *not* inlinable:
the helpers raise a guest fault on division by zero / negative sqrt,
while the native ops produce inf/NaN — inlining them would change
guest-visible behavior on those inputs.
"""

from __future__ import annotations

from ..ir import Op, TCGBlock

#: helper name -> equivalent IR op.  Argument layouts line up exactly:
#: helper (ret, *args) == op (dst, *inputs) for every entry.
_INLINABLE: dict[str, str] = {
    "helper_cmpxchg": "cas",         # (old, addr, expected, new)
    "helper_xadd": "atomic_add",     # (old, addr, addend)
    "helper_xchg": "atomic_xchg",    # (old, addr, new)
    "helper_fadd": "fadd",           # (result, a, b)
    "helper_fmul": "fmul",           # (result, a, b)
}


def inline_helpers_pass(block: TCGBlock) -> int:
    """Rewrite inlinable helper calls to IR ops; returns the count."""
    inlined = 0
    new_ops: list[Op] = []
    for op in block.ops:
        native = _INLINABLE.get(op.args[0]) if op.name == "call" \
            else None
        if native is not None and op.args[1] is not None:
            helper, ret, *args = op.args
            new_ops.append(Op(native, (ret, *args)))
            inlined += 1
        else:
            new_ops.append(op)
    block.ops = new_ops
    return inlined
