"""Superblock (trace) stitching for the second compilation tier.

Concatenates the TCG IR of consecutive hot blocks — the chain the
runtime's ``goto_tb`` successor profile recorded — into one straight-
line trace block:

* block-local temps are renamed per segment (``t3`` → ``s2_t3``) so the
  segments' allocation spaces cannot collide,
* segment-local labels are renumbered into one shared label space,
* a ``goto_tb`` whose constant target is the next chain member *and*
  is the segment's final op is dropped — control falls through the
  seam, which is what lets the optimizer pipeline see across it,
* a ``goto_tb`` to any other chain member becomes an internal ``br``
  to that segment's entry label (loop back-edges stay inside the
  trace, never re-entering the dispatcher),
* every remaining ``goto_tb``/``exit_tb`` is a **side exit**: it keeps
  its tier-1 dispatch lowering, so control that leaves the trace lands
  in the ordinary dispatcher and falls back to tier-1 blocks.

Entry labels are emitted only for segments actually targeted by an
internal branch: an unlabeled seam is transparent to every optimizer
pass (they all reset state at ``set_label``), so pure fallthrough
chains get the full cross-seam treatment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import Const, LabelRef, Op, TCGBlock, Temp


@dataclass
class StitchedTrace:
    """Stitcher output plus the shape facts the promoter gates on."""

    block: TCGBlock
    #: goto_tb seams converted to in-trace branches (incl. back-edges).
    internal_branches: int
    #: goto_tb seams dropped entirely (fallthrough into the next
    #: segment) — each one is a dispatcher round-trip eliminated.
    fallthroughs: int
    #: dispatch exits remaining in the trace (goto_tb + exit_tb).
    side_exits: int


def _label_space(block: TCGBlock) -> int:
    """Size of a block's local label space (max LabelRef index + 1)."""
    highest = -1
    for op in block.ops:
        for arg in op.args:
            if isinstance(arg, LabelRef):
                highest = max(highest, arg.index)
    return highest + 1


def stitch_trace(blocks: list[TCGBlock]) -> StitchedTrace:
    """Stitch translated chain blocks into one trace TCGBlock."""
    pc_to_seg = {b.guest_pc: i for i, b in enumerate(blocks)}
    label_base: list[int] = []
    total_labels = 0
    for block in blocks:
        label_base.append(total_labels)
        total_labels += _label_space(block)

    def is_fallthrough(seg: int, pos: int, op: Op) -> bool:
        return (op.name == "goto_tb"
                and isinstance(op.args[0], Const)
                and seg + 1 < len(blocks)
                and op.args[0].value == blocks[seg + 1].guest_pc
                and pos == len(blocks[seg].ops) - 1)

    # Pass 1: which segments does an internal branch target?
    targeted: set[int] = set()
    for seg, block in enumerate(blocks):
        for pos, op in enumerate(block.ops):
            if op.name == "goto_tb" and isinstance(op.args[0], Const) \
                    and op.args[0].value in pc_to_seg \
                    and not is_fallthrough(seg, pos, op):
                targeted.add(pc_to_seg[op.args[0].value])
    entry_label = {
        seg: LabelRef(total_labels + k)
        for k, seg in enumerate(sorted(targeted))
    }

    # Pass 2: emit, renaming temps and labels per segment.
    def rename(value, seg: int):
        if isinstance(value, Temp) and not value.is_global:
            return Temp(f"s{seg}_{value.name}")
        if isinstance(value, LabelRef):
            return LabelRef(label_base[seg] + value.index)
        return value

    ops: list[Op] = []
    internal_branches = 0
    fallthroughs = 0
    side_exits = 0
    for seg, block in enumerate(blocks):
        if seg in entry_label:
            ops.append(Op("set_label", (entry_label[seg],)))
        for pos, op in enumerate(block.ops):
            if is_fallthrough(seg, pos, op):
                fallthroughs += 1
                continue
            if op.name == "goto_tb" and isinstance(op.args[0], Const) \
                    and op.args[0].value in pc_to_seg:
                target = pc_to_seg[op.args[0].value]
                ops.append(Op("br", (entry_label[target],)))
                internal_branches += 1
                continue
            if op.name in ("goto_tb", "exit_tb"):
                side_exits += 1
            ops.append(Op(op.name,
                          tuple(rename(a, seg) for a in op.args),
                          origin=op.origin))

    trace = TCGBlock(guest_pc=blocks[0].guest_pc, ops=ops)
    trace.guest_insns = sum(b.guest_insns for b in blocks)
    return StitchedTrace(
        block=trace,
        internal_branches=internal_branches,
        fallthroughs=fallthroughs,
        side_exits=side_exits,
    )
