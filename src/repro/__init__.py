"""Risotto (ASPLOS 2023) reproduction.

A Python library reproducing "Risotto: A Dynamic Binary Translator for
Weak Memory Model Architectures": formally checked fence mappings for
x86-on-Arm emulation, a QEMU-style DBT pipeline over a simulated
weak-memory Arm host, a dynamic host library linker, and fast CAS
translation — plus the benchmark harness regenerating the paper's
evaluation figures.
"""

__version__ = "1.0.0"
