"""The simulated Arm core: fetch/decode/execute with weak memory.

Each core owns a store buffer (see :mod:`repro.machine.weakmem`), an
exclusive monitor for LDXR/STXR pairs (with seeded *spurious failures*,
which the paper calls out as an LX/SX hazard x86 RMWs don't have), a
cycle counter driven by the :class:`~repro.machine.timing.CostModel`,
and a trap table through which the DBT runtime installs Python-level
entry points (QEMU-style helpers, native host library functions).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from random import Random
from typing import Callable

from ..errors import MachineError
from ..isa.arm.insns import (
    ACCESS_ORDERING,
    CODER,
    CONDITIONAL_BRANCHES,
    CONDITIONS,
    GPR,
    LINK_REGISTER,
)
from ..isa.common import Imm, Insn, Mem, Reg
from .memory import CoherenceTracker, Memory
from .timing import CostModel, fence_cost
from .weakmem import BufferMode, StoreBuffer

U64 = (1 << 64) - 1

#: Origin bucket for fence cycles with no provenance entry (native
#: workload code, hand-assembled harness snippets).
UNTAGGED_ORIGIN = "untagged"


def cond_index(name: str) -> int:
    """Encoding of a condition name for CSET/CSEL immediates."""
    return CONDITIONS.index(name)


def _bits_to_double(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & U64))[0]


def _double_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


@dataclass
class ArmCore:
    """One simulated core."""

    core_id: int
    memory: Memory
    costs: CostModel
    coherence: CoherenceTracker | None = None
    buffer_mode: BufferMode = BufferMode.WEAK
    rng: Random = field(default_factory=lambda: Random(0))
    #: Probability an STXR fails spuriously even with a valid monitor.
    spurious_failure_rate: float = 0.0

    regs: dict[str, int] = field(default_factory=dict)
    flags: dict[str, bool] = field(default_factory=dict)
    pc: int = 0
    cycles: int = 0
    halted: bool = True
    insn_count: int = 0
    #: Cycles attributable to DMB fences (for the fence-share metric).
    fence_cycles: int = 0
    #: host pc -> provenance tag of the DMB installed there.  Shared
    #: machine-wide (the engine registers entries at install time).
    fence_origins: dict[int, str] = field(default_factory=dict)
    #: Fence cycles split by provenance tag; sums to ``fence_cycles``.
    fence_cycles_by_origin: dict[str, int] = field(
        default_factory=dict)

    #: Python-level entry points: pc -> callable(core).
    traps: dict[int, Callable[["ArmCore"], None]] = field(
        default_factory=dict)
    svc_handler: Callable[["ArmCore", int], None] | None = None

    def __post_init__(self):
        self.regs = {r: 0 for r in GPR}
        self.flags = {"n": False, "z": False, "c": False, "v": False}
        self.buffer = StoreBuffer(mode=self.buffer_mode)
        #: pc of the instruction currently executing (the fetch pc,
        #: before advancing) — fence accounting keys the origin map
        #: on it.
        self._insn_pc = 0

    # ------------------------------------------------------------------
    # Register access (xzr handling)
    # ------------------------------------------------------------------
    def get(self, name: str) -> int:
        if name == "xzr":
            return 0
        return self.regs[name]

    def set(self, name: str, value: int) -> None:
        if name == "xzr":
            return
        self.regs[name] = value & U64

    def _value(self, op) -> int:
        if isinstance(op, Reg):
            return self.get(op.name)
        if isinstance(op, Imm):
            return op.value & U64
        raise MachineError(f"bad value operand {op!r}")

    def _address(self, op: Mem) -> int:
        addr = op.offset
        if op.base:
            addr += self.get(op.base)
        if op.index:
            addr += self.get(op.index) * op.scale
        return addr & U64

    # ------------------------------------------------------------------
    # Memory with buffer + coherence
    # ------------------------------------------------------------------
    def _mem_load(self, addr: int) -> int:
        forwarded = self.buffer.forward(addr)
        if forwarded is not None:
            return forwarded
        if self.coherence:
            self.cycles += self.coherence.on_read(self.core_id, addr)
        return self.memory.load_word(addr)

    def _mem_store(self, addr: int, value: int) -> None:
        if self.coherence:
            self.cycles += self.coherence.on_write(self.core_id, addr)
        if self.buffer.mode is BufferMode.NONE:
            self.memory.store_word(addr, value)
        else:
            self.buffer.push(addr, value)

    def drain_buffer(self) -> None:
        self.buffer.drain_all(self.memory)

    #: Per-step probability of draining one buffered store.  Low enough
    #: that a pair of back-to-back stores coexists in the buffer for a
    #: handful of cycles — the window litmus stressing needs.
    drain_probability: float = 0.08

    def maybe_background_drain(self) -> None:
        """Called by the scheduler between instructions: lazily drain."""
        if self.buffer.pending() > 8 or \
                (self.buffer.pending()
                 and self.rng.random() < self.drain_probability):
            self.buffer.drain_one(self.memory, self.rng)

    # ------------------------------------------------------------------
    # Fence accounting
    # ------------------------------------------------------------------
    def _account_fence(self, cost: int) -> None:
        """Charge a DMB's cycles, attributed to its provenance tag.

        Every executed fence lands in exactly one origin bucket, so
        ``sum(fence_cycles_by_origin.values()) == fence_cycles``
        holds by construction — the reconciliation invariant the
        Figure 12 breakdown relies on.
        """
        self.cycles += cost
        self.fence_cycles += cost
        origin = self.fence_origins.get(self._insn_pc,
                                        UNTAGGED_ORIGIN)
        self.fence_cycles_by_origin[origin] = \
            self.fence_cycles_by_origin.get(origin, 0) + cost

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------
    def _set_nzcv_sub(self, a: int, b: int) -> None:
        result = (a - b) & U64
        self.flags["n"] = bool(result & (1 << 63))
        self.flags["z"] = result == 0
        self.flags["c"] = a >= b  # no borrow
        sa = a - (1 << 64) if a & (1 << 63) else a
        sb = b - (1 << 64) if b & (1 << 63) else b
        sr = result - (1 << 64) if result & (1 << 63) else result
        self.flags["v"] = (sa >= 0) != (sb >= 0) and (sr >= 0) != (sa >= 0)

    def condition(self, name: str) -> bool:
        n, z, c, v = (self.flags["n"], self.flags["z"],
                      self.flags["c"], self.flags["v"])
        table = {
            "eq": z,
            "ne": not z,
            "lt": n != v,
            "ge": n == v,
            "le": z or n != v,
            "gt": (not z) and n == v,
            "lo": not c,
            "hs": c,
            "ls": (not c) or z,
            "hi": c and not z,
            "mi": n,
            "pl": not n,
        }
        return table[name]

    # ------------------------------------------------------------------
    # Fetch / execute
    # ------------------------------------------------------------------
    def start(self, pc: int) -> None:
        self.pc = pc
        self.halted = False

    def step(self) -> None:
        """Execute one instruction (or a trap at the current pc)."""
        trap = self.traps.get(self.pc)
        if trap is not None:
            trap(self)
            return
        code = self.memory.read_bytes(self.pc, 32)
        insn, size = CODER.decode(code)
        self._insn_pc = self.pc
        self.pc += size
        self.execute(insn)
        self.insn_count += 1

    # ------------------------------------------------------------------
    def execute(self, insn: Insn) -> None:
        m = insn.mnemonic
        ops = insn.operands
        costs = self.costs

        # -------------------------------------------------- moves/ALU
        if m in ("mov", "movz"):
            self.set(ops[0].name, self._value(ops[1]))
            self.cycles += costs.mov
            return
        if m in ("add", "sub", "and", "orr", "eor", "lsl", "lsr",
                 "asr", "mul", "udiv"):
            a = self._value(ops[1])
            b = self._value(ops[2])
            if m == "add":
                result = a + b
            elif m == "sub":
                result = a - b
            elif m == "and":
                result = a & b
            elif m == "orr":
                result = a | b
            elif m == "eor":
                result = a ^ b
            elif m == "lsl":
                result = a << (b & 63)
            elif m == "lsr":
                result = a >> (b & 63)
            elif m == "asr":
                sa = a - (1 << 64) if a & (1 << 63) else a
                result = sa >> (b & 63)
            elif m == "mul":
                result = a * b
            else:  # udiv
                result = a // b if b else 0
            self.set(ops[0].name, result)
            self.cycles += costs.alu
            return
        if m == "mvn":
            self.set(ops[0].name, ~self._value(ops[1]) & U64)
            self.cycles += costs.alu
            return
        if m == "neg":
            self.set(ops[0].name, (-self._value(ops[1])) & U64)
            self.cycles += costs.alu
            return
        if m == "cmp":
            self._set_nzcv_sub(self._value(ops[0]), self._value(ops[1]))
            self.cycles += costs.alu
            return
        if m == "cset":
            cond = CONDITIONS[self._value(ops[1])]
            self.set(ops[0].name, 1 if self.condition(cond) else 0)
            self.cycles += costs.alu
            return
        if m == "csel":
            cond = CONDITIONS[self._value(ops[3])]
            value = self._value(ops[1]) if self.condition(cond) \
                else self._value(ops[2])
            self.set(ops[0].name, value)
            self.cycles += costs.alu
            return

        # -------------------------------------------------- branches
        if m == "b":
            self.pc = self._value(ops[0])
            self.cycles += costs.branch_taken
            return
        if m in CONDITIONAL_BRANCHES:
            if self.condition(CONDITIONAL_BRANCHES[m]):
                self.pc = self._value(ops[0])
                self.cycles += costs.branch_taken
            else:
                self.cycles += costs.branch
            return
        if m in ("cbz", "cbnz"):
            taken = (self.get(ops[0].name) == 0) == (m == "cbz")
            if taken:
                self.pc = self._value(ops[1])
                self.cycles += costs.branch_taken
            else:
                self.cycles += costs.branch
            return
        if m == "bl":
            self.set(LINK_REGISTER, self.pc)
            self.pc = self._value(ops[0])
            self.cycles += costs.call
            return
        if m == "blr":
            self.set(LINK_REGISTER, self.pc)
            self.pc = self.get(ops[0].name)
            self.cycles += costs.call
            return
        if m == "br":
            self.pc = self.get(ops[0].name)
            self.cycles += costs.branch_taken
            return
        if m == "ret":
            self.pc = self.get(LINK_REGISTER)
            self.cycles += costs.branch_taken
            return

        # -------------------------------------------------- memory
        if m in ("ldr", "ldar", "ldapr"):
            addr = self._address(ops[1])
            self.set(ops[0].name, self._mem_load(addr))
            self.cycles += costs.load
            if m != "ldr":
                self.cycles += costs.acquire_extra
            return
        if m == "str":
            addr = self._address(ops[1])
            self._mem_store(addr, self.get(ops[0].name))
            self.cycles += costs.store
            return
        if m == "stlr":
            addr = self._address(ops[1])
            self.buffer.barrier()
            self._mem_store(addr, self.get(ops[0].name))
            self.cycles += costs.store + costs.release_extra
            return
        if m in ("ldxr", "ldaxr"):
            addr = self._address(ops[1])
            self.set(ops[0].name, self._mem_load(addr))
            self.memory.register_exclusive(self.core_id, addr)
            self.cycles += costs.exclusive_op
            if m == "ldaxr":
                self.cycles += costs.acquire_extra
            return
        if m in ("stxr", "stlxr"):
            status, src, mem = ops
            addr = self._address(mem)
            ok = self.memory.take_exclusive(self.core_id, addr)
            if ok and self.spurious_failure_rate and \
                    self.rng.random() < self.spurious_failure_rate:
                ok = False
            if ok:
                self.drain_buffer()
                if self.coherence:
                    self.cycles += self.coherence.on_write(
                        self.core_id, addr)
                self.memory.store_word(addr, self.get(src.name))
                self.set(status.name, 0)
            else:
                self.set(status.name, 1)
            self.cycles += costs.exclusive_op
            if m == "stlxr":
                self.cycles += costs.release_extra
            return
        if m in ("cas", "casa", "casl", "casal"):
            expected_reg, new_reg, mem = ops
            addr = self._address(mem)
            self.drain_buffer()
            if self.coherence:
                self.cycles += self.coherence.on_write(
                    self.core_id, addr)
            old = self.memory.load_word(addr)
            if old == self.get(expected_reg.name):
                self.memory.store_word(addr, self.get(new_reg.name))
            self.set(expected_reg.name, old)
            self.cycles += costs.cas_op
            return
        if m == "ldaddal":
            addend_reg, out_reg, mem = ops
            addr = self._address(mem)
            self.drain_buffer()
            if self.coherence:
                self.cycles += self.coherence.on_write(
                    self.core_id, addr)
            old = self.memory.load_word(addr)
            self.memory.store_word(
                addr, (old + self.get(addend_reg.name)) & U64)
            self.set(out_reg.name, old)
            self.cycles += costs.atomic_add_op
            return
        if m == "swpal":
            src_reg, out_reg, mem = ops
            addr = self._address(mem)
            self.drain_buffer()
            if self.coherence:
                self.cycles += self.coherence.on_write(
                    self.core_id, addr)
            old = self.memory.load_word(addr)
            self.memory.store_word(addr, self.get(src_reg.name))
            self.set(out_reg.name, old)
            self.cycles += costs.atomic_add_op
            return

        # -------------------------------------------------- fences
        if m == "dmbff":
            self.drain_buffer()
            self._account_fence(costs.dmb_ff)
            return
        if m == "dmbld":
            self._account_fence(fence_cost(costs, m))
            return
        if m == "dmbst":
            self.buffer.barrier()
            self._account_fence(fence_cost(costs, m))
            return

        # -------------------------------------------------- FP
        if m in ("fadd", "fmul", "fdiv"):
            a = _bits_to_double(self._value(ops[1]))
            b = _bits_to_double(self._value(ops[2]))
            if m == "fadd":
                value = a + b
            elif m == "fmul":
                value = a * b
            else:
                value = a / b if b else math.inf
            self.set(ops[0].name, _double_to_bits(value))
            self.cycles += costs.fp_native
            return
        if m == "fsqrt":
            a = _bits_to_double(self._value(ops[1]))
            self.set(ops[0].name,
                     _double_to_bits(math.sqrt(a) if a >= 0 else math.nan))
            self.cycles += costs.fp_native
            return

        # -------------------------------------------------- system
        if m == "svc":
            if self.svc_handler is None:
                raise MachineError("SVC with no handler installed")
            self.svc_handler(self, self._value(ops[0]))
            self.cycles += costs.syscall
            return
        if m == "nop":
            self.cycles += costs.alu
            return
        if m == "hlt":
            self.drain_buffer()
            self.halted = True
            return

        raise MachineError(f"unimplemented Arm instruction {insn}")
