"""Litmus stress harness: run axiomatic litmus programs on the machine.

Bridges the two halves of the reproduction: a litmus
:class:`~repro.core.program.Program` at the Arm level is compiled to
looping Arm assembly (one independent location set per iteration, the
standard litmus trick to widen reordering windows), executed on the
operational store-buffer machine over many seeds, and the observed
per-iteration outcomes are collected.

The key soundness property — checked by the test suite — is that every
outcome the machine exhibits is allowed by the axiomatic Arm model; the
converse (all allowed outcomes appear) is *not* expected, since the
operational engine only models store-side reordering (DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import Arch, Fence, Mode, RmwFlavor
from ..core.program import FenceOp, Load, Program, Rmw, Store
from ..errors import MachineError
from ..isa.arm.assembler import assemble
from .scheduler import Machine
from .weakmem import BufferMode

#: Address layout: each shared location gets a stride-separated array,
#: one slot per iteration; each thread's observed registers get a
#: result array.
_LOC_BASE = 0x100000
_LOC_SPACING = 0x10000
_RES_BASE = 0x800000
_RES_SPACING = 0x10000
_BAR_BASE = 0xF00000
_STRIDE = 64  # one cache line per iteration slot

_LOAD_MNEMONIC = {
    Mode.PLAIN: "ldr",
    Mode.ACQ: "ldar",
    Mode.ACQ_PC: "ldapr",
}
_STORE_MNEMONIC = {
    Mode.PLAIN: "str",
    Mode.REL: "stlr",
}
_FENCE_MNEMONIC = {
    Fence.DMBFF: "dmbff",
    Fence.DMBLD: "dmbld",
    Fence.DMBST: "dmbst",
}


@dataclass(frozen=True)
class _Layout:
    locations: tuple[str, ...]
    registers: tuple[tuple[str, ...], ...]  # per-thread observed regs

    def loc_base(self, loc: str) -> int:
        return _LOC_BASE + self.locations.index(loc) * _LOC_SPACING

    def res_base(self, tid: int, reg: str) -> int:
        index = sum(len(r) for r in self.registers[:tid]) \
            + self.registers[tid].index(reg)
        return _RES_BASE + index * _RES_SPACING


def _collect_layout(program: Program) -> _Layout:
    registers = []
    for ops in program.threads:
        regs = []
        for op in ops:
            if isinstance(op, Load) and op.reg not in regs:
                regs.append(op.reg)
            if isinstance(op, Rmw) and op.out and op.out not in regs:
                regs.append(op.out)
        registers.append(tuple(regs))
    return _Layout(
        locations=tuple(sorted(program.locations())),
        registers=tuple(registers),
    )


def compile_thread(program: Program, tid: int, layout: _Layout,
                   iterations: int) -> str:
    """Emit looping Arm assembly for one litmus thread.

    Register allocation: x0 = iteration index, x1 = per-iteration byte
    offset, x2/x3 scratch for addresses and immediates, x4/x5 for CAS
    operands, x10+ map litmus registers.
    """
    reg_map = {reg: f"x{10 + i}"
               for i, reg in enumerate(layout.registers[tid])}
    if len(reg_map) > 15:
        raise MachineError("too many litmus registers for the harness")
    n_threads = len(program.threads)
    lines = [
        "    mov x0, #0",
        "loop:",
        f"    mov x1, #{_STRIDE}",
        "    mul x1, x0, x1",
        # Sense barrier: align the threads at each iteration so the
        # racy window actually overlaps (standard litmus technique).
        f"    mov x2, #{_BAR_BASE}",
        "    add x2, x2, x1",
        "    mov x3, #1",
        "    ldaddal x3, x4, [x2]",
        "barwait:",
        "    ldr x4, [x2]",
        f"    mov x5, #{n_threads}",
        "    cmp x4, x5",
        "    b.lo barwait",
        # Phase sweep: a per-iteration, per-thread delay so the threads'
        # relative timing scans across the racy window instead of
        # staying phase-locked (litmus7 does the same with strides).
        f"    mov x6, #{2 * tid + 1}",
        "    mul x6, x0, x6",
        "    and x6, x6, #15",
        "phase:",
        "    cbz x6, phasedone",
        "    sub x6, x6, #1",
        "    b phase",
        "phasedone:",
    ]

    def addr_of(loc: str, into: str) -> None:
        lines.append(f"    mov {into}, #{layout.loc_base(loc)}")
        lines.append(f"    add {into}, {into}, x1")

    for op in program.threads[tid]:
        if isinstance(op, Store):
            if not isinstance(op.value, int):
                raise MachineError(
                    "stress harness supports constant stores only")
            addr_of(op.loc, "x2")
            lines.append(f"    mov x3, #{op.value}")
            lines.append(
                f"    {_STORE_MNEMONIC[op.mode]} x3, [x2]")
        elif isinstance(op, Load):
            addr_of(op.loc, "x2")
            lines.append(
                f"    {_LOAD_MNEMONIC[op.mode]} {reg_map[op.reg]}, [x2]")
        elif isinstance(op, FenceOp):
            lines.append(f"    {_FENCE_MNEMONIC[op.kind]}")
        elif isinstance(op, Rmw):
            addr_of(op.loc, "x2")
            lines.append(f"    mov x4, #{op.expect}")
            lines.append(f"    mov x5, #{op.new}")
            if op.flavor is RmwFlavor.AMO:
                mnemonic = {
                    (False, False): "cas",
                    (True, False): "casa",
                    (False, True): "casl",
                    (True, True): "casal",
                }[(op.acq, op.rel)]
                lines.append(f"    {mnemonic} x4, x5, [x2]")
            elif op.flavor is RmwFlavor.LXSX:
                ldx = "ldaxr" if op.acq else "ldxr"
                stx = "stlxr" if op.rel else "stxr"
                tag = f"rmw{len(lines)}"
                lines.append(f"{tag}_retry:")
                lines.append(f"    {ldx} x4, [x2]")
                lines.append(f"    mov x6, #{op.expect}")
                lines.append("    cmp x4, x6")
                lines.append(f"    b.ne {tag}_done")
                lines.append(f"    {stx} x7, x5, [x2]")
                lines.append(f"    cbnz x7, {tag}_retry")
                lines.append(f"{tag}_done:")
            else:
                raise MachineError(
                    f"stress harness cannot run {op.flavor} RMWs")
            if op.out:
                lines.append(f"    mov {reg_map[op.out]}, x4")
        else:
            raise MachineError(
                f"stress harness cannot compile {op!r}")

    # Publish observed registers for this iteration.
    for reg, host_reg in reg_map.items():
        lines.append(f"    mov x2, #{layout.res_base(tid, reg)}")
        lines.append("    add x2, x2, x1")
        lines.append(f"    str {host_reg}, [x2]")

    lines += [
        "    add x0, x0, #1",
        f"    mov x2, #{iterations}",
        "    cmp x0, x2",
        "    b.ne loop",
        "    hlt",
    ]
    return "\n".join(lines)


def run_stress(program: Program, iterations: int = 64,
               seeds: range = range(8),
               buffer_mode: BufferMode = BufferMode.WEAK) -> frozenset:
    """Run the litmus program and collect observed outcomes.

    Returns a set of outcomes in the same shape as
    ``Execution.full_behavior``: register observations keyed
    ``"T<tid>:<reg>"`` plus final location values.
    """
    if program.arch is not Arch.ARM:
        raise MachineError(
            f"stress harness needs an Arm-level program, got "
            f"{program.arch.value}")
    layout = _collect_layout(program)
    observed: set[frozenset] = set()
    for seed in seeds:
        machine = Machine(
            n_cores=len(program.threads), seed=seed,
            buffer_mode=buffer_mode, track_coherence=False,
        )
        for loc in layout.locations:
            init = program.init_value(loc)
            if init:
                for i in range(iterations):
                    machine.memory.store_word(
                        layout.loc_base(loc) + i * _STRIDE, init)
        for tid in range(len(program.threads)):
            asm = compile_thread(program, tid, layout, iterations)
            assembled = assemble(asm, base=0x10000 + tid * 0x10000)
            machine.memory.add_image(assembled.base, assembled.code)
            machine.core(tid).start(assembled.base)
        machine.run()

        for i in range(iterations):
            outcome: set[tuple[str, int]] = set()
            for tid, regs in enumerate(layout.registers):
                for reg in regs:
                    addr = layout.res_base(tid, reg) + i * _STRIDE
                    outcome.add(
                        (f"T{tid}:{reg}",
                         machine.memory.load_word(addr)))
            for loc in layout.locations:
                addr = layout.loc_base(loc) + i * _STRIDE
                outcome.add((loc, machine.memory.load_word(addr)))
            observed.add(frozenset(outcome))
    return frozenset(observed)
