"""Cycle cost model for the simulated Arm host.

The absolute numbers are synthetic but their *ratios* encode the
phenomena the paper's evaluation rests on:

* ``DMBFF`` is much more expensive than ``DMBLD``/``DMBST`` (the whole
  point of Risotto's lightweight-fence mappings, Section 6.1; cf. Liu
  et al., "No Barrier in the Road" [51]),
* translated code pays block-entry overhead and software-emulated FP
  (Section 7.3's floating-point discussion),
* helper calls add jump/marshal cost on top of the atomic itself, which
  is why Risotto's direct ``casal`` wins only without contention
  (Figure 15),
* cross-core cache-line transfers dominate contended atomics.

Everything is a dataclass field so benchmarks can ablate individual
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs."""

    # Plain instruction classes
    alu: int = 1
    mov: int = 1
    load: int = 4
    store: int = 2
    branch: int = 1
    branch_taken: int = 2
    call: int = 3

    # Fences (ratios matter: FF >> LD > ST); calibrated so the
    # Figure 12 sweep lands near the paper's fence-share (48% avg) and
    # tcg-ver gain (6.7% avg, 19.7% max) numbers.
    dmb_ff: int = 28
    dmb_ld: int = 16
    dmb_st: int = 14

    # Ordered accesses pay a small premium over plain ones
    acquire_extra: int = 3
    release_extra: int = 4

    # Atomics
    exclusive_op: int = 10        # each of LDXR/STXR
    cas_op: int = 18              # casal and friends, uncontended
    atomic_add_op: int = 18

    # Floating point
    fp_native: int = 4
    fp_emulated: int = 90         # QEMU's softfloat path

    # DBT runtime
    tb_entry: int = 10            # block-cache lookup / indirect jump
    tb_chain: int = 1             # chained direct jump between blocks
    translate_per_insn: int = 0   # compile time excluded from run time
    helper_call: int = 26         # BLR out to C helper and back
    syscall: int = 160

    # Dynamic host linker
    # Marshaling is a real cost: save/translate/restore registers at
    # the guest->host boundary.  Calibrated so short libm calls stay
    # well below native speed (Figure 14) while long digest calls
    # amortize it to ~nothing (Figure 13).
    marshal_per_arg: int = 45
    native_call: int = 6

    def scaled(self, **overrides: int) -> "CostModel":
        """A copy with some fields replaced (for ablation benches)."""
        return replace(self, **overrides)


#: Default host cost model.
DEFAULT_COSTS = CostModel()


def fence_cost(costs: CostModel, mnemonic: str) -> int:
    return {
        "dmbff": costs.dmb_ff,
        "dmbld": costs.dmb_ld,
        "dmbst": costs.dmb_st,
    }[mnemonic]
