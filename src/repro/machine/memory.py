"""Shared memory for the simulated host machine.

Word-granular (8-byte) data storage over a sparse dict, plus byte-exact
code images for instruction fetch.  A small cache-line ownership tracker
provides the *contention cost* signal used by the CAS benchmark
(Figure 15): atomics and stores to a line owned by another core pay a
transfer penalty, so throughput collapses under contention exactly as
on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MachineError

WORD = 8
LINE_SHIFT = 6  # 64-byte cache lines


@dataclass
class Image:
    base: int
    data: bytes

    @property
    def end(self) -> int:
        return self.base + len(self.data)


class Memory:
    """Sparse word-addressed memory with code images.

    Data writes shadow code bytes (self-modifying code is out of scope
    and raises).
    """

    def __init__(self):
        self._words: dict[int, int] = {}
        self._images: list[Image] = []
        #: Global exclusives monitor: core_id -> reserved word address.
        #: Any committed store to a reserved address clears the
        #: reservation, so a cross-core write landing between a core's
        #: LDXR and STXR makes the STXR fail (atomicity).
        self._exclusive: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Code images
    # ------------------------------------------------------------------
    def add_image(self, base: int, data: bytes) -> None:
        for image in self._images:
            if base < image.end and image.base < base + len(data):
                raise MachineError(
                    f"image at 0x{base:x} overlaps image at "
                    f"0x{image.base:x}")
        self._images.append(Image(base, bytes(data)))

    def read_bytes(self, addr: int, count: int) -> bytes:
        """Fetch raw bytes (instruction fetch path)."""
        for image in self._images:
            if image.base <= addr < image.end:
                off = addr - image.base
                return image.data[off:off + count]
        raise MachineError(f"instruction fetch from unmapped 0x{addr:x}")

    def in_image(self, addr: int) -> bool:
        return any(img.base <= addr < img.end for img in self._images)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def load_word(self, addr: int) -> int:
        if addr in self._words:
            return self._words[addr]
        # Initialized data inside an image (e.g. .data section).
        for image in self._images:
            if image.base <= addr and addr + WORD <= image.end:
                off = addr - image.base
                return int.from_bytes(
                    image.data[off:off + WORD], "little")
        return 0

    def store_word(self, addr: int, value: int) -> None:
        self._words[addr] = value & ((1 << 64) - 1)
        if self._exclusive:
            stale = [cid for cid, watched in self._exclusive.items()
                     if watched == addr]
            for cid in stale:
                del self._exclusive[cid]

    # ------------------------------------------------------------------
    # Exclusives monitor
    # ------------------------------------------------------------------
    def register_exclusive(self, core_id: int, addr: int) -> None:
        """LDXR: reserve ``addr`` for ``core_id``."""
        self._exclusive[core_id] = addr

    def take_exclusive(self, core_id: int, addr: int) -> bool:
        """STXR: consume the reservation; True iff it was still valid."""
        return self._exclusive.pop(core_id, None) == addr

    def snapshot(self) -> dict[int, int]:
        """Copy of all explicitly-written words (for test assertions)."""
        return dict(self._words)


@dataclass
class CoherenceTracker:
    """Cache-line ownership with transfer costs.

    This is intentionally minimal — just enough state for contention to
    cost time: a line is exclusively owned by one core or shared by
    many; ownership moves on writes/atomics, sharing on reads.
    """

    # Cross-core ownership transfer is expensive (hundreds of cycles on
    # real silicon) — it is what makes contended CAS converge between
    # QEMU and Risotto in Figure 15.
    transfer_cost: int = 400
    share_cost: int = 60
    _owner: dict[int, int | None] = field(default_factory=dict)

    def _line(self, addr: int) -> int:
        return addr >> LINE_SHIFT

    def on_read(self, core_id: int, addr: int) -> int:
        """Extra cycles a read pays; demotes foreign lines to shared."""
        line = self._line(addr)
        owner = self._owner.get(line)
        if owner is None or owner == core_id:
            return 0
        self._owner[line] = None  # shared
        return self.share_cost

    def on_write(self, core_id: int, addr: int) -> int:
        """Extra cycles a write/atomic pays; takes exclusive ownership."""
        line = self._line(addr)
        owner = self._owner.get(line, core_id)
        self._owner[line] = core_id
        if owner == core_id:
            return 0
        return self.transfer_cost

    def owner_of(self, addr: int) -> int | None:
        return self._owner.get(self._line(addr))

    def reset(self) -> None:
        self._owner.clear()
