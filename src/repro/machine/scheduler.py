"""The multicore host machine: cores + shared memory + global clock.

Execution is event-driven on the cycle clock: at every step, the
runnable core with the smallest cycle count executes one instruction,
so cores progress "in parallel" against a single global timeline — the
machine's elapsed time is the max core clock, and cross-core effects
(coherence transfers, store-buffer drains) land at plausible points in
the interleaving.  The interleaving is deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..errors import MachineError
from ..obs.trace import get_tracer
from .cpu import ArmCore
from .memory import CoherenceTracker, Memory
from .timing import DEFAULT_COSTS, CostModel
from .weakmem import BufferMode

#: Steps between scheduler counter samples when tracing is enabled.
_TRACE_SAMPLE_STEPS = 4096


@dataclass
class Machine:
    """A simulated Arm host with ``n_cores`` cores."""

    n_cores: int = 4
    costs: CostModel = DEFAULT_COSTS
    buffer_mode: BufferMode = BufferMode.WEAK
    seed: int = 42
    track_coherence: bool = True
    spurious_failure_rate: float = 0.0
    #: Scheduling jitter window (cycles): any runnable core within this
    #: window of the global minimum may be picked next.  Models the
    #: micro-timing noise real cores have; litmus stress needs it to
    #: expose racy windows.
    jitter: int = 24

    memory: Memory = field(default_factory=Memory)
    cores: list[ArmCore] = field(default_factory=list)

    def __post_init__(self):
        self.rng = Random(self.seed)
        self.coherence = CoherenceTracker() if self.track_coherence \
            else None
        #: host pc -> fence provenance tag, shared by every core (the
        #: DBT engine registers entries as it installs blocks).
        self.fence_origins: dict[int, str] = {}
        for i in range(self.n_cores):
            self.cores.append(ArmCore(
                core_id=i,
                memory=self.memory,
                costs=self.costs,
                coherence=self.coherence,
                buffer_mode=self.buffer_mode,
                rng=Random(self.seed * 1000 + i),
                spurious_failure_rate=self.spurious_failure_rate,
                fence_origins=self.fence_origins,
            ))

    # ------------------------------------------------------------------
    def core(self, core_id: int) -> ArmCore:
        return self.cores[core_id]

    def runnable(self) -> list[ArmCore]:
        return [c for c in self.cores if not c.halted]

    def run(self, max_steps: int = 50_000_000) -> int:
        """Run until every core halts; returns total steps executed."""
        tracer = get_tracer()
        with tracer.span("machine.run", cat="machine",
                         n_cores=self.n_cores):
            steps = self._run_loop(max_steps, tracer)
        for core in self.cores:
            core.drain_buffer()
        return steps

    def _run_loop(self, max_steps: int, tracer) -> int:
        steps = 0
        trace_dispatch = tracer.enabled
        while True:
            running = self.runnable()
            if not running:
                break
            if steps >= max_steps:
                raise MachineError(
                    f"machine did not quiesce within {max_steps} steps")
            low = min(c.cycles for c in running)
            window = [c for c in running if c.cycles <= low + self.jitter]
            core = self.rng.choice(window)
            core.step()
            core.maybe_background_drain()
            steps += 1
            if trace_dispatch and steps % _TRACE_SAMPLE_STEPS == 0:
                tracer.counter(
                    "machine.progress", steps=steps,
                    elapsed_cycles=self.elapsed_cycles(),
                    fence_cycles=self.total_fence_cycles())
        return steps

    # ------------------------------------------------------------------
    def elapsed_cycles(self) -> int:
        """Wall-clock of the parallel execution: the max core clock."""
        return max((c.cycles for c in self.cores), default=0)

    def total_cycles(self) -> int:
        """CPU-time view: the sum over cores."""
        return sum(c.cycles for c in self.cores)

    def total_fence_cycles(self) -> int:
        return sum(c.fence_cycles for c in self.cores)

    def total_fence_cycles_by_origin(self) -> dict[str, int]:
        """Fence cycles split by provenance tag, summed over cores.

        Values total exactly :meth:`total_fence_cycles` — each
        executed DMB is charged to one origin bucket.
        """
        merged: dict[str, int] = {}
        for core in self.cores:
            for origin, cycles in core.fence_cycles_by_origin.items():
                merged[origin] = merged.get(origin, 0) + cycles
        return merged

    def total_insns(self) -> int:
        return sum(c.insn_count for c in self.cores)
