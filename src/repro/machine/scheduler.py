"""The multicore host machine: cores + shared memory + global clock.

Execution is event-driven on the cycle clock: at every step, the
runnable core with the smallest cycle count executes one instruction,
so cores progress "in parallel" against a single global timeline — the
machine's elapsed time is the max core clock, and cross-core effects
(coherence transfers, store-buffer drains) land at plausible points in
the interleaving.  The interleaving is deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..errors import MachineError
from .cpu import ArmCore
from .memory import CoherenceTracker, Memory
from .timing import DEFAULT_COSTS, CostModel
from .weakmem import BufferMode


@dataclass
class Machine:
    """A simulated Arm host with ``n_cores`` cores."""

    n_cores: int = 4
    costs: CostModel = DEFAULT_COSTS
    buffer_mode: BufferMode = BufferMode.WEAK
    seed: int = 42
    track_coherence: bool = True
    spurious_failure_rate: float = 0.0
    #: Scheduling jitter window (cycles): any runnable core within this
    #: window of the global minimum may be picked next.  Models the
    #: micro-timing noise real cores have; litmus stress needs it to
    #: expose racy windows.
    jitter: int = 24

    memory: Memory = field(default_factory=Memory)
    cores: list[ArmCore] = field(default_factory=list)

    def __post_init__(self):
        self.rng = Random(self.seed)
        self.coherence = CoherenceTracker() if self.track_coherence \
            else None
        for i in range(self.n_cores):
            self.cores.append(ArmCore(
                core_id=i,
                memory=self.memory,
                costs=self.costs,
                coherence=self.coherence,
                buffer_mode=self.buffer_mode,
                rng=Random(self.seed * 1000 + i),
                spurious_failure_rate=self.spurious_failure_rate,
            ))

    # ------------------------------------------------------------------
    def core(self, core_id: int) -> ArmCore:
        return self.cores[core_id]

    def runnable(self) -> list[ArmCore]:
        return [c for c in self.cores if not c.halted]

    def run(self, max_steps: int = 50_000_000) -> int:
        """Run until every core halts; returns total steps executed."""
        steps = 0
        while True:
            running = self.runnable()
            if not running:
                break
            if steps >= max_steps:
                raise MachineError(
                    f"machine did not quiesce within {max_steps} steps")
            low = min(c.cycles for c in running)
            window = [c for c in running if c.cycles <= low + self.jitter]
            core = self.rng.choice(window)
            core.step()
            core.maybe_background_drain()
            steps += 1
        for core in self.cores:
            core.drain_buffer()
        return steps

    # ------------------------------------------------------------------
    def elapsed_cycles(self) -> int:
        """Wall-clock of the parallel execution: the max core clock."""
        return max((c.cycles for c in self.cores), default=0)

    def total_cycles(self) -> int:
        """CPU-time view: the sum over cores."""
        return sum(c.cycles for c in self.cores)

    def total_fence_cycles(self) -> int:
        return sum(c.fence_cycles for c in self.cores)

    def total_insns(self) -> int:
        return sum(c.insn_count for c in self.cores)
