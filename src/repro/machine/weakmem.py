"""Operational weak-memory engine: per-core store buffers.

Each core owns a store buffer; plain stores enter the buffer and drain
to shared memory later, possibly *out of order* across different
locations (Arm mode) or strictly FIFO (TSO mode — useful as a
contrast in tests).  Loads forward from the core's own buffer.

Ordering instruments:

* ``DMBFF`` (and every atomic/release in this model) drains the buffer,
* ``DMBST`` inserts a barrier marker: entries after it cannot drain
  before entries before it,
* same-location entries always drain in order (coherence).

This engine exhibits the store-side weak behaviours the paper's
motivation rests on (MP reordering, SB store buffering) and never
produces an outcome the axiomatic Arm model forbids — a property the
test suite checks by stress-running litmus programs.  Load-side
reordering (e.g. the read/read-acquire reordering behind the MPQ bug)
is *not* modelled operationally; that behaviour is covered by the
axiomatic engine in :mod:`repro.core`, as recorded in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from random import Random

from .memory import Memory


class BufferMode(enum.Enum):
    """How the buffer may drain."""

    #: Strict FIFO — models x86-TSO's single store buffer.
    TSO = "tso"
    #: Out of order across locations — models Arm store reordering.
    WEAK = "weak"
    #: No buffering at all — SC; stores hit memory immediately.
    NONE = "none"


_BARRIER = object()


@dataclass
class StoreBuffer:
    """One core's store buffer."""

    mode: BufferMode = BufferMode.WEAK
    entries: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def push(self, addr: int, value: int) -> None:
        self.entries.append((addr, value))

    def barrier(self) -> None:
        """Insert a store-store barrier (DMBST semantics)."""
        if self.entries and self.entries[-1] is not _BARRIER:
            self.entries.append(_BARRIER)

    def forward(self, addr: int) -> int | None:
        """Latest buffered value for ``addr``, if any (store→load
        forwarding)."""
        for entry in reversed(self.entries):
            if entry is not _BARRIER and entry[0] == addr:
                return entry[1]
        return None

    def pending(self) -> int:
        return sum(1 for e in self.entries if e is not _BARRIER)

    # ------------------------------------------------------------------
    def _eligible_indices(self) -> list[int]:
        """Indices that may drain next without violating ordering."""
        if not self.entries:
            return []
        if self.mode is BufferMode.TSO:
            return [0] if self.entries[0] is not _BARRIER else []
        eligible = []
        seen_addrs: set[int] = set()
        for i, entry in enumerate(self.entries):
            if entry is _BARRIER:
                break
            addr = entry[0]
            if addr not in seen_addrs:
                eligible.append(i)
                seen_addrs.add(addr)
        return eligible

    def drain_one(self, memory: Memory, rng: Random) -> bool:
        """Drain one eligible entry (random choice in WEAK mode)."""
        self._pop_leading_barriers()
        eligible = self._eligible_indices()
        if not eligible:
            return False
        index = eligible[0] if self.mode is BufferMode.TSO \
            else rng.choice(eligible)
        addr, value = self.entries.pop(index)
        memory.store_word(addr, value)
        self._pop_leading_barriers()
        return True

    def drain_all(self, memory: Memory) -> int:
        """Flush everything, in buffer order (used by DMBFF/atomics)."""
        count = 0
        for entry in self.entries:
            if entry is _BARRIER:
                continue
            memory.store_word(entry[0], entry[1])
            count += 1
        self.entries.clear()
        return count

    def _pop_leading_barriers(self) -> None:
        while self.entries and self.entries[0] is _BARRIER:
            self.entries.pop(0)
