"""The simulated weak-memory Arm host machine.

Substitutes for the paper's ThunderX2 testbed: multicore execution with
per-core store buffers (operational weak memory), a cache-line
coherence cost tracker (contention), and a cycle cost model in which
full fences dominate — the performance landscape Figures 12-15 are
shaped by.
"""

from .cpu import ArmCore, cond_index
from .memory import CoherenceTracker, Memory
from .scheduler import Machine
from .timing import DEFAULT_COSTS, CostModel, fence_cost
from .weakmem import BufferMode, StoreBuffer

__all__ = [
    "ArmCore", "cond_index",
    "CoherenceTracker", "Memory",
    "Machine",
    "DEFAULT_COSTS", "CostModel", "fence_cost",
    "BufferMode", "StoreBuffer",
]
