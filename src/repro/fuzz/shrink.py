"""Greedy shrinking of diverging fuzz cases.

Given a case an oracle flagged as a divergence, repeatedly try the
oracle's own smaller variants and commit to the first one that still
diverges — restarting the scan from the smaller case (greedy descent
to a local fixpoint).  The result is 1-minimal with respect to the
oracle's candidate moves: no single move both shrinks it and keeps the
divergence.

Candidates that are *invalid* — a shrunk program with an undefined
register, a transform site that no longer applies, an unassemblable
block — raise or skip inside ``check``; both count as "does not
reproduce" and the candidate is discarded.  The check budget bounds
total work so a pathological case cannot stall a fuzz run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShrinkResult:
    case: dict
    #: Checks actually spent (for observability and tests).
    checks: int
    #: Size before / after, by the oracle's own metric.
    initial_size: int
    final_size: int


def shrink_case(oracle, case: dict, budget: int = 150) -> ShrinkResult:
    """Minimize ``case`` while ``oracle.check`` keeps diverging."""
    current = case
    checks = 0
    initial_size = oracle.case_size(case)
    improved = True
    while improved and checks < budget:
        improved = False
        for candidate in oracle.shrink_candidates(current):
            if oracle.case_size(candidate) >= oracle.case_size(current):
                continue
            if checks >= budget:
                break
            checks += 1
            try:
                outcome = oracle.check(candidate)
            except Exception:
                # An invalid candidate (unparseable, inapplicable,
                # out-of-envelope) cannot witness the divergence.
                continue
            if outcome.status == "divergence":
                current = candidate
                improved = True
                break
    return ShrinkResult(case=current, checks=checks,
                        initial_size=initial_size,
                        final_size=oracle.case_size(current))
