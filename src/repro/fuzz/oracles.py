"""Differential oracles: each one knows how to generate a case, check
it, and propose smaller variants of it for the shrinker.

An oracle's ``check`` returns a :class:`CheckOutcome` with one of three
statuses:

* ``ok`` — the property held;
* ``divergence`` — the property failed; ``detail`` carries a
  JSON-serializable witness (sorted, so reports are deterministic);
* ``skip`` — the case fell outside the oracle's envelope (enumeration
  limit, unsupported construct) and proves nothing either way.

``check`` must be *pure* in the case payload: the same case dict always
yields the same outcome, which is what makes shrinking and corpus
replay meaningful.

The four oracles mirror the reproduction's four trust boundaries:

* ``staged-vs-naive`` — the staged enumeration fast path against the
  naive rf × co cross product, per model (an unsound prune shows up as
  a behaviour-set mismatch).
* ``machine-vs-axiomatic`` — the operational store-buffer machine
  against the axiomatic Arm model (observed ⊆ allowed; the machine
  exhibiting a forbidden outcome means one of the two is wrong).
* ``dbt-differential`` — the DBT pipeline against references: guest
  blocks vs the x86 interpreter, kernels vs the native build, and the
  Risotto mapping schemes vs Theorem 1's behaviour inclusion.
* ``transform-oracle`` — conservatively safe Figure-10 rewrites must
  never grow a program's TCG behaviour set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..core import ARM, ARM_ORIGINAL, TCG, X86
from ..core.enumerate import enumerate_consistent, enumerate_executions
from ..core.enumerate import behaviors
from ..core.events import Arch, Fence
from ..core.mappings import ALL_MAPPINGS, _TCG_FENCE_PAIRS
from ..core.program import FenceOp, If, Load, Program, Rmw, Store
from ..core.transforms import (
    ELIM_SAFE_RAR,
    ELIM_SAFE_RAW,
    ELIM_SAFE_WAW,
    eliminate_rar,
    eliminate_raw,
    eliminate_waw,
    merge_adjacent_fences,
    remove_false_dependency,
    reorder_adjacent,
    strengthen_fence,
)
from ..core.verifier import check_translation
from ..errors import (
    LitmusError,
    MachineError,
    MappingError,
    ModelError,
    ReproError,
)
from ..machine.litmus import run_stress
from ..machine.weakmem import BufferMode
from .cases import behaviors_to_json, program_from_json, program_to_json
from .generate import gen_kernel_spec, gen_litmus, gen_x86_block

#: Candidate-enumeration safety valve for fuzz checks: far below the
#: global default so a pathological case skips in milliseconds instead
#: of stalling the whole run.
FUZZ_ENUM_LIMIT = 60_000

MODELS = {
    "x86-tso": X86,
    "tcg-ir": TCG,
    "arm-cats": ARM,
    "arm-cats-original": ARM_ORIGINAL,
}


@dataclass(frozen=True)
class CheckOutcome:
    status: str  # "ok" | "divergence" | "skip"
    detail: dict = field(default_factory=dict)


OK = CheckOutcome("ok")


def _program_size(data: dict) -> int:
    def ops_size(ops) -> int:
        total = 0
        for op in ops:
            total += 1
            if op[0] == "IF":
                total += ops_size(op[3]) + ops_size(op[4])
        return total
    return sum(ops_size(t) for t in data["threads"]) \
        + len(data.get("init", []))


def _litmus_shrinks(data: dict):
    """Structurally smaller variants of a program payload: drop a
    thread, drop a top-level op, flatten a conditional into its taken
    arm, drop an init entry.  Invalid results (undefined registers)
    surface as ``LitmusError`` at rebuild time and are discarded by
    the shrinker."""
    threads = data["threads"]
    if len(threads) > 1:
        for t in range(len(threads)):
            yield {**data, "threads": threads[:t] + threads[t + 1:]}
    for t, ops in enumerate(threads):
        for i in range(len(ops)):
            new_ops = ops[:i] + ops[i + 1:]
            if not new_ops and len(threads) == 1:
                continue
            yield {**data,
                   "threads": threads[:t] + [new_ops] + threads[t + 1:]}
        for i, op in enumerate(ops):
            if op[0] == "IF":
                for arm in (op[3], op[4]):
                    flat = ops[:i] + arm + ops[i + 1:]
                    yield {**data, "threads":
                           threads[:t] + [flat] + threads[t + 1:]}
    init = data.get("init", [])
    for i in range(len(init)):
        yield {**data, "init": init[:i] + init[i + 1:]}


# ----------------------------------------------------------------------
class StagedVsNaiveOracle:
    """enumerate_consistent == (enumerate_executions | is_consistent)
    per model: any mismatch means an unsound (or over-eager) prune."""

    name = "staged-vs-naive"

    def generate(self, rng: Random) -> dict:
        arch = rng.choice((Arch.X86, Arch.TCG, Arch.ARM))
        program = gen_litmus(rng, arch, name="svn")
        return {"kind": "litmus", "program": program_to_json(program)}

    def check(self, case: dict) -> CheckOutcome:
        program = program_from_json(case["program"])
        try:
            executions = list(enumerate_executions(
                program, limit=FUZZ_ENUM_LIMIT))
        except ModelError as exc:
            return CheckOutcome("skip", {"reason": str(exc)})
        for model_name, model in sorted(MODELS.items()):
            naive = frozenset(
                ex.full_behavior for ex in executions
                if model.is_consistent(ex))
            try:
                staged = frozenset(
                    ex.full_behavior for ex in enumerate_consistent(
                        program, model, limit=FUZZ_ENUM_LIMIT))
            except ModelError as exc:
                return CheckOutcome("skip", {"reason": str(exc)})
            if staged != naive:
                return CheckOutcome("divergence", {
                    "model": model_name,
                    "staged_only": behaviors_to_json(staged - naive),
                    "naive_only": behaviors_to_json(naive - staged),
                })
        return OK

    def shrink_candidates(self, case: dict):
        for prog in _litmus_shrinks(case["program"]):
            yield {**case, "program": prog}

    def case_size(self, case: dict) -> int:
        return _program_size(case["program"])


# ----------------------------------------------------------------------
class MachineVsAxiomaticOracle:
    """Everything the operational machine observes must be allowed by
    the axiomatic Arm model (the converse is not expected — the machine
    only models store-side reordering)."""

    name = "machine-vs-axiomatic"

    BUFFER_MODES = ("weak", "tso", "none")

    def generate(self, rng: Random) -> dict:
        program = gen_litmus(rng, Arch.ARM, name="mva",
                             stress_safe=True)
        return {
            "kind": "stress",
            "program": program_to_json(program),
            "buffer_mode": rng.choice(self.BUFFER_MODES),
            "iterations": 16,
            "seeds": 4,
        }

    def check(self, case: dict) -> CheckOutcome:
        program = program_from_json(case["program"])
        mode = BufferMode[case["buffer_mode"].upper()]
        try:
            observed = run_stress(
                program, iterations=case["iterations"],
                seeds=range(case["seeds"]), buffer_mode=mode)
            allowed = behaviors(program, ARM, limit=FUZZ_ENUM_LIMIT)
        except (MachineError, ModelError) as exc:
            return CheckOutcome("skip", {"reason": str(exc)})
        extra = observed - allowed
        if extra:
            return CheckOutcome("divergence", {
                "buffer_mode": case["buffer_mode"],
                "observed_not_allowed": behaviors_to_json(extra),
            })
        return OK

    def shrink_candidates(self, case: dict):
        for prog in _litmus_shrinks(case["program"]):
            yield {**case, "program": prog}

    def case_size(self, case: dict) -> int:
        return _program_size(case["program"])


# ----------------------------------------------------------------------
class DBTDifferentialOracle:
    """The DBT pipeline against its references, three ways:

    * ``block`` — a guest x86 block run under every DBT variant must
      leave exactly the registers/flags/memory the reference x86
      interpreter computes;
    * ``kernel`` — a kernel's checksum and exit code must agree across
      all DBT variants *and* the Arm-native build;
    * ``mapping`` — a Risotto-mapped litmus program's Arm behaviours
      must be included in the x86-TSO behaviours of the source
      (Theorem 1).
    """

    name = "dbt-differential"

    def __init__(self, mapping: str | None = None):
        # Only the Risotto schemes are expected-correct; the QEMU
        # schemes carry the paper's documented MPQ/SBQ bugs and live in
        # the corpus as known divergences instead.  Resolve the names
        # against the registry once so a rename there fails loudly here.
        # ``mapping`` pins the mapping leg to one registered mapping —
        # e.g. a table-derived ``most-*`` scheme — instead of the
        # Risotto pair.
        from ..core import mappings as M
        from ..core import most  # noqa: F401  (registers most-* mappings)
        if mapping is None:
            self._safe_mappings = tuple(sorted(
                m.name for m in (M.risotto_x86_to_arm_rmw1,
                                 M.risotto_x86_to_arm_rmw2)))
        else:
            if mapping not in M.ALL_MAPPINGS:
                raise ReproError(
                    f"unknown mapping {mapping!r}; expected one of "
                    f"{sorted(M.ALL_MAPPINGS)}")
            self._safe_mappings = (mapping,)

    def generate(self, rng: Random) -> dict:
        roll = rng.random()
        if roll < 0.5:
            return {"kind": "block", "source": gen_x86_block(rng)}
        if roll < 0.75:
            spec = gen_kernel_spec(rng)
            return {"kind": "kernel", "spec": {
                "name": spec.name, "loads": spec.loads,
                "stores": spec.stores, "alu": spec.alu, "fp": spec.fp,
                "iterations": spec.iterations, "threads": spec.threads,
                "working_set": spec.working_set, "suite": spec.suite,
            }}
        program = gen_litmus(rng, Arch.X86, name="map")
        return {
            "kind": "mapping",
            "program": program_to_json(program),
            "mapping": rng.choice(self._safe_mappings),
        }

    # -- block leg -----------------------------------------------------
    def _check_block(self, case: dict) -> CheckOutcome:
        from ..api import VARIANTS, make_engine
        from ..dbt import guest_reg
        from ..dbt.runtime import STACK_BASE, STACK_SIZE, guest_flag
        from ..isa.x86 import CpuState, X86Interpreter, assemble
        from ..isa.x86.insns import GPR

        code_base = 0x400000
        rsp = STACK_BASE + STACK_SIZE - 0x100 - 8
        try:
            assembly = assemble(case["source"] + "\n    hlt",
                                base=code_base)
        except ReproError as exc:
            return CheckOutcome("skip", {"reason": str(exc)})

        class _RefMemory:
            def __init__(self, code, base):
                self.words: dict[int, int] = {}
                self.code, self.base = code, base

            def load_word(self, addr):
                return self.words.get(addr, 0)

            def store_word(self, addr, value):
                self.words[addr] = value & ((1 << 64) - 1)

            def read_bytes(self, addr, count):
                off = addr - self.base
                return self.code[off:off + count]

        ref_memory = _RefMemory(assembly.code, assembly.base)
        ref_state = CpuState()
        ref_state.rip = assembly.base
        ref_state.regs["rsp"] = rsp
        try:
            X86Interpreter(ref_memory).run(ref_state)
        except ReproError as exc:
            return CheckOutcome("skip", {"reason": str(exc)})

        mismatches: list[list] = []
        for variant in sorted(VARIANTS):
            engine = make_engine(variant=variant, n_cores=1)
            engine.load_image(assembly.base, assembly.code)
            try:
                engine.run(assembly.base)
            except ReproError as exc:
                mismatches.append([variant, "error", str(exc), None])
                continue
            core = engine.machine.core(0)
            for reg in GPR:
                got, want = guest_reg(core, reg), ref_state.regs[reg]
                if got != want:
                    mismatches.append([variant, f"reg:{reg}", got, want])
            for flag in ("zf", "sf", "cf", "of"):
                got = bool(guest_flag(core, flag))
                want = ref_state.flags[flag]
                if got != want:
                    mismatches.append(
                        [variant, f"flag:{flag}", got, want])
            for addr, want in sorted(ref_memory.words.items()):
                got = engine.machine.memory.load_word(addr)
                if got != want:
                    mismatches.append(
                        [variant, f"mem:{addr:#x}", got, want])
        if mismatches:
            return CheckOutcome("divergence",
                                {"mismatches": sorted(mismatches)})
        return OK

    # -- kernel leg ----------------------------------------------------
    def _check_kernel(self, case: dict) -> CheckOutcome:
        from ..api import KernelSpec, VARIANT_NAMES, run_kernel

        spec = KernelSpec(**case["spec"])
        results: dict[str, list] = {}
        for variant in VARIANT_NAMES:
            try:
                res = run_kernel(spec, variant=variant)
            except ReproError as exc:
                return CheckOutcome("divergence", {
                    "variant_error": [variant, str(exc)]})
            results[variant] = [res.checksum, res.result.exit_code]
        distinct = {tuple(v) for v in results.values()}
        if len(distinct) > 1:
            return CheckOutcome("divergence", {
                "per_variant": {k: v for k, v in sorted(results.items())},
            })
        return OK

    # -- mapping leg ---------------------------------------------------
    def _check_mapping(self, case: dict) -> CheckOutcome:
        source = program_from_json(case["program"])
        mapping = ALL_MAPPINGS[case["mapping"]]
        try:
            target = mapping.apply(source)
            verdict = check_translation(
                source, target, X86, ARM, mapping_name=mapping.name,
                limit=FUZZ_ENUM_LIMIT)
        except (MappingError, ModelError) as exc:
            return CheckOutcome("skip", {"reason": str(exc)})
        if not verdict.ok:
            return CheckOutcome("divergence", {
                "mapping": mapping.name,
                "new_behaviors":
                    behaviors_to_json(verdict.new_behaviors),
            })
        return OK

    def check(self, case: dict) -> CheckOutcome:
        kind = case["kind"]
        if kind == "block":
            return self._check_block(case)
        if kind == "kernel":
            return self._check_kernel(case)
        if kind == "mapping":
            return self._check_mapping(case)
        raise ReproError(f"unknown dbt case kind {kind!r}")

    def shrink_candidates(self, case: dict):
        kind = case["kind"]
        if kind == "block":
            lines = case["source"].split("\n")
            for i in range(len(lines)):
                if len(lines) > 1:
                    yield {**case,
                           "source": "\n".join(lines[:i] + lines[i + 1:])}
        elif kind == "kernel":
            spec = case["spec"]
            for key in ("loads", "stores", "alu", "fp"):
                if spec[key] > 0:
                    yield {**case, "spec": {**spec, key: spec[key] - 1}}
            if spec["threads"] > 1:
                yield {**case,
                       "spec": {**spec, "threads": spec["threads"] - 1}}
            if spec["iterations"] > 30:
                yield {**case, "spec": {
                    **spec,
                    "iterations": max(30, spec["iterations"] // 2)}}
        elif kind == "mapping":
            for prog in _litmus_shrinks(case["program"]):
                yield {**case, "program": prog}

    def case_size(self, case: dict) -> int:
        kind = case["kind"]
        if kind == "block":
            return len(case["source"].split("\n"))
        if kind == "kernel":
            spec = case["spec"]
            return (spec["loads"] + spec["stores"] + spec["alu"]
                    + spec["fp"] + spec["threads"]
                    + spec["iterations"] // 30)
        return _program_size(case["program"])


# ----------------------------------------------------------------------
#: Transform registry: name -> (function, needs_to_fence).
_TRANSFORMS = {
    "eliminate_rar": eliminate_rar,
    "eliminate_raw": eliminate_raw,
    "eliminate_waw": eliminate_waw,
    "merge_adjacent_fences": merge_adjacent_fences,
    "strengthen_fence": strengthen_fence,
    "remove_false_dependency": remove_false_dependency,
    "reorder_adjacent": reorder_adjacent,
}

_ELIM_SAFE = {
    "eliminate_rar": ELIM_SAFE_RAR,
    "eliminate_raw": ELIM_SAFE_RAW,
    "eliminate_waw": ELIM_SAFE_WAW,
}


def _thread_has_order_sources(ops) -> bool:
    """True when the thread carries fences or RMWs (incl. in branch
    arms) — contexts in which Figure-10 eliminations are *not* uniformly
    safe (the FMR and F-WAW-across-Fww findings), so the oracle's
    generator steers clear of them."""
    for op in ops:
        if isinstance(op, (FenceOp, Rmw)):
            return True
        if isinstance(op, If) and (
                _thread_has_order_sources(op.then_ops)
                or _thread_has_order_sources(op.else_ops)):
            return True
    return False


def applicable_sites(program: Program) -> list[dict]:
    """Every conservatively-safe Figure-10 site in the program, as
    ``{"transform", "tid", "idx"[, "to"]}`` dicts, deterministically
    ordered."""
    sites: list[dict] = []
    for tid, ops in enumerate(program.threads):
        elim_ok = not _thread_has_order_sources(ops)
        for idx, op in enumerate(ops):
            nxt = ops[idx + 1] if idx + 1 < len(ops) else None
            after = ops[idx + 2] if idx + 2 < len(ops) else None
            if elim_ok:
                for name in ("eliminate_rar", "eliminate_raw",
                             "eliminate_waw"):
                    if _elim_applies(name, op, nxt, after):
                        sites.append({"transform": name, "tid": tid,
                                      "idx": idx})
            if isinstance(op, FenceOp):
                if isinstance(nxt, FenceOp) \
                        and _mergeable(op.kind) and _mergeable(nxt.kind):
                    sites.append({"transform": "merge_adjacent_fences",
                                  "tid": tid, "idx": idx})
                for to in _stronger_fences(op.kind):
                    sites.append({"transform": "strengthen_fence",
                                  "tid": tid, "idx": idx,
                                  "to": to.value})
            if isinstance(op, Store) and op.dep is not None:
                sites.append({"transform": "remove_false_dependency",
                              "tid": tid, "idx": idx})
            if _reorderable(op, nxt):
                sites.append({"transform": "reorder_adjacent",
                              "tid": tid, "idx": idx})
    return sites


def _elim_applies(name: str, op, nxt, after) -> bool:
    first_ok = {
        "eliminate_rar": lambda o: isinstance(o, Load),
        "eliminate_raw": lambda o: isinstance(o, Store)
        and isinstance(o.value, int),
        "eliminate_waw": lambda o: isinstance(o, Store),
    }[name]
    second_type = Load if name != "eliminate_waw" else Store
    if not first_ok(op):
        return False
    if isinstance(nxt, FenceOp):
        # The fenced form: only safe fence kinds, and the thread-level
        # no-fence guard above already excludes these — keep the check
        # anyway so the function is safe to reuse on corpus programs.
        if nxt.kind not in _ELIM_SAFE[name]:
            return False
        second = after
    else:
        second = nxt
    return isinstance(second, second_type) and second.loc == op.loc


def _mergeable(kind: Fence) -> bool:
    return kind is Fence.FSC or kind in _TCG_FENCE_PAIRS


def _stronger_fences(kind: Fence) -> list[Fence]:
    pairs = _TCG_FENCE_PAIRS.get(kind)
    if pairs is None:
        return []
    return sorted(
        (f for f, p in _TCG_FENCE_PAIRS.items()
         if pairs < p),
        key=lambda f: f.value)


def _reorderable(a, b) -> bool:
    for op in (a, b):
        if not isinstance(op, (Load, Store)):
            return False
    if a.loc == b.loc:
        return False
    if isinstance(a, Load) and isinstance(b, Store) \
            and b.value == a.reg:
        return False
    return True


class TransformOracle:
    """Conservatively safe Figure-10 rewrites must not grow the TCG
    behaviour set (Theorem 1 applied to IR-to-IR transformation)."""

    name = "transform-oracle"

    def generate(self, rng: Random) -> dict:
        program = gen_litmus(rng, Arch.TCG, name="xform")
        sites = applicable_sites(program)
        if not sites:
            # Guarantee at least a merge site: append two directional
            # fences to a random thread.
            tid = rng.randrange(len(program.threads))
            kinds = [f for f in _TCG_FENCE_PAIRS]
            extra = (FenceOp(rng.choice(kinds)),
                     FenceOp(rng.choice(kinds)))
            threads = tuple(
                ops + extra if t == tid else ops
                for t, ops in enumerate(program.threads))
            program = Program(name=program.name, arch=program.arch,
                              threads=threads, init=program.init)
            sites = applicable_sites(program)
        site = rng.choice(sites)
        return {"kind": "transform",
                "program": program_to_json(program), **site}

    def _apply(self, case: dict, program: Program) -> Program:
        fn = _TRANSFORMS[case["transform"]]
        if case["transform"] == "strengthen_fence":
            return fn(program, case["tid"], case["idx"],
                      to=Fence(case["to"]))
        return fn(program, case["tid"], case["idx"])

    def check(self, case: dict) -> CheckOutcome:
        source = program_from_json(case["program"])
        try:
            target = self._apply(case, source)
            verdict = check_translation(
                source, target, TCG, TCG,
                mapping_name=case["transform"], limit=FUZZ_ENUM_LIMIT)
        except (MappingError, LitmusError) as exc:
            return CheckOutcome("skip", {"reason": str(exc)})
        except ModelError as exc:
            # Disjoint behaviour keys (the transform folded away the
            # only observable) or enumeration overflow: proves nothing.
            return CheckOutcome("skip", {"reason": str(exc)})
        if not verdict.ok:
            return CheckOutcome("divergence", {
                "transform": case["transform"],
                "tid": case["tid"], "idx": case["idx"],
                "new_behaviors":
                    behaviors_to_json(verdict.new_behaviors),
            })
        return OK

    def shrink_candidates(self, case: dict):
        """Smaller variants that keep the transform site addressable:
        indices shift when earlier ops or threads drop away; candidates
        that delete the site itself are not yielded."""
        data = case["program"]
        threads = data["threads"]
        tid, idx = case["tid"], case["idx"]
        for t in range(len(threads)):
            if t == tid or len(threads) == 1:
                continue
            new_tid = tid - 1 if t < tid else tid
            yield {**case, "tid": new_tid,
                   "program": {**data,
                               "threads": threads[:t] + threads[t + 1:]}}
        for t, ops in enumerate(threads):
            for i in range(len(ops)):
                if t == tid and i in (idx, idx + 1, idx + 2):
                    # Dropping the site (or its pattern tail) changes
                    # the transform's meaning; applicability would be
                    # rechecked, but skip the noise.
                    continue
                new_idx = idx - 1 if t == tid and i < idx else idx
                new_ops = ops[:i] + ops[i + 1:]
                if not new_ops and len(threads) == 1:
                    continue
                yield {**case, "idx": new_idx, "program": {
                    **data,
                    "threads": threads[:t] + [new_ops] + threads[t + 1:],
                }}
        init = data.get("init", [])
        for i in range(len(init)):
            yield {**case, "program":
                   {**data, "init": init[:i] + init[i + 1:]}}

    def case_size(self, case: dict) -> int:
        return _program_size(case["program"])


# ----------------------------------------------------------------------
ORACLES = {
    oracle.name: oracle for oracle in (
        StagedVsNaiveOracle,
        MachineVsAxiomaticOracle,
        DBTDifferentialOracle,
        TransformOracle,
    )
}


def make_oracles(names, *, dbt_mapping: str | None = None) -> list:
    """Instantiate oracles by name, preserving registry order.

    ``dbt_mapping`` pins the DBT-differential oracle's mapping leg to
    one registered mapping (e.g. a derived ``most-*`` scheme).
    """
    unknown = sorted(set(names) - set(ORACLES))
    if unknown:
        raise ReproError(
            f"unknown oracles {unknown}; expected a subset of "
            f"{sorted(ORACLES)}")
    oracles = []
    for name, cls in ORACLES.items():
        if name not in names:
            continue
        if cls is DBTDifferentialOracle and dbt_mapping is not None:
            oracles.append(cls(mapping=dbt_mapping))
        else:
            oracles.append(cls())
    return oracles
