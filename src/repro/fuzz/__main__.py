"""CLI for the differential fuzzer.

    python -m repro.fuzz --seed 2023 --cases 200
    python -m repro.fuzz --oracles staged-vs-naive,transform-oracle \\
        --findings results/fuzz.jsonl --bench-json results/bench_fuzz.json

Exit status: 0 when every case is ok/skip, 1 when a divergence was
found and ``--fail-on-divergence`` is set (CI smoke uses it), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import sys

from ..analysis.export import write_bench_json
from ..errors import ReproError
from .oracles import ORACLES
from .runner import (
    FuzzConfig,
    run_fuzz,
    validate_findings_jsonl,
    write_findings_jsonl,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of enumeration, machine, "
                    "DBT, and transform oracles")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed (default 0)")
    parser.add_argument("--cases", type=int, default=50,
                        help="cases per oracle (default 50)")
    parser.add_argument("--oracles", default=",".join(ORACLES),
                        help="comma-separated oracle names "
                             f"(default: all of {', '.join(ORACLES)})")
    parser.add_argument("--findings", metavar="PATH",
                        help="write findings JSONL here")
    parser.add_argument("--bench-json", metavar="PATH",
                        help="write a repro-bench export with the "
                             "fuzz summary here")
    parser.add_argument("--dbt-mapping", metavar="NAME",
                        help="pin the dbt-differential mapping leg to "
                             "one registered mapping (e.g. a derived "
                             "most-* scheme; default: the Risotto "
                             "pair)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report raw diverging cases unminimized")
    parser.add_argument("--shrink-budget", type=int, default=150,
                        help="max oracle checks per shrink "
                             "(default 150)")
    parser.add_argument("--fail-on-divergence", action="store_true",
                        help="exit 1 when any oracle diverges")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    names = tuple(n for n in args.oracles.split(",") if n)
    try:
        config = FuzzConfig(
            seed=args.seed, cases=args.cases, oracles=names,
            shrink=not args.no_shrink,
            shrink_budget=args.shrink_budget,
            dbt_mapping=args.dbt_mapping)
        report = run_fuzz(config)
    except ReproError as exc:
        print(f"fuzz: {exc}", file=sys.stderr)
        return 2

    for oracle, counts in sorted(report.counts.items()):
        cells = "  ".join(f"{status}={counts[status]}"
                          for status in sorted(counts))
        print(f"{oracle:<22} {cells}")
    print(f"total: {report.total_cases} cases, "
          f"{report.divergences} divergence(s)")
    for finding in report.findings:
        size = finding.get("shrink", {})
        note = ""
        if size:
            note = (f"  (shrunk {size['initial_size']} -> "
                    f"{size['final_size']} in {size['checks']} checks)")
        print(f"  divergence: {finding['oracle']} "
              f"case #{finding['index']}{note}")

    if args.findings:
        path = write_findings_jsonl(args.findings, report)
        validate_findings_jsonl(path)
        print(f"findings: {path}")
    if args.bench_json:
        path = write_bench_json(args.bench_json, figure="fuzz",
                                extra={"fuzz": report.summary()})
        print(f"bench json: {path}")

    if report.divergences and args.fail_on_divergence:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
