"""The fuzz loop: seeded case generation, oracle checks, shrinking,
and a deterministic findings report.

Determinism contract: ``run_fuzz`` with the same :class:`FuzzConfig`
produces byte-identical findings JSONL.  Everything that feeds the
report is derived from ``Random(f"repro-fuzz:{seed}:{oracle}:{index}")``
— string seeding is immune to ``PYTHONHASHSEED`` — and every set that
reaches the report is sorted first.  No timestamps, no absolute paths,
no machine identity in the payload.

Findings format (``repro-fuzz/1``), one JSON object per line:

* line 1 — header: schema, seed, per-oracle case budget, oracle names;
* one line per finding: oracle, case index, the generated case, the
  divergence detail, and (when shrinking is on) the minimized case
  with its own detail;
* last line — summary: per-oracle status counts and totals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ReproError
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .cases import canonical_json
from .oracles import ORACLES, make_oracles
from .shrink import shrink_case

FINDINGS_SCHEMA = "repro-fuzz/1"

DEFAULT_ORACLES: tuple[str, ...] = tuple(ORACLES)


@dataclass(frozen=True)
class FuzzConfig:
    seed: int = 0
    #: Cases *per oracle*.
    cases: int = 50
    oracles: tuple[str, ...] = DEFAULT_ORACLES
    shrink: bool = True
    shrink_budget: int = 150
    #: Pin the DBT-differential oracle's mapping leg to one registered
    #: mapping name (e.g. a derived ``most-*`` scheme); ``None`` keeps
    #: the default Risotto pair.
    dbt_mapping: str | None = None


@dataclass
class FuzzReport:
    config: FuzzConfig
    #: oracle name -> status -> count.
    counts: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)

    @property
    def total_cases(self) -> int:
        return sum(sum(c.values()) for c in self.counts.values())

    @property
    def divergences(self) -> int:
        return len(self.findings)

    def summary(self) -> dict:
        return {
            "counts": {k: dict(sorted(v.items()))
                       for k, v in sorted(self.counts.items())},
            "total_cases": self.total_cases,
            "findings": self.divergences,
        }


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run the configured oracles over their case budgets."""
    oracles = make_oracles(config.oracles,
                           dbt_mapping=config.dbt_mapping)
    report = FuzzReport(config=config)
    registry = get_registry()
    counter = registry.counter(
        "repro_fuzz_cases_total", "fuzz cases checked, by outcome")
    tracer = get_tracer()

    from random import Random
    for oracle in oracles:
        counts: dict[str, int] = {}
        report.counts[oracle.name] = counts
        for index in range(config.cases):
            rng = Random(
                f"repro-fuzz:{config.seed}:{oracle.name}:{index}")
            with tracer.span("fuzz.case", cat="fuzz",
                             oracle=oracle.name, index=index):
                case = oracle.generate(rng)
                outcome = oracle.check(case)
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
            counter.labels(oracle=oracle.name,
                           status=outcome.status).inc()
            if outcome.status != "divergence":
                continue
            finding = {
                "oracle": oracle.name,
                "index": index,
                "seed": config.seed,
                "case": case,
                "detail": outcome.detail,
            }
            if config.shrink:
                with tracer.span("fuzz.shrink", cat="fuzz",
                                 oracle=oracle.name, index=index):
                    shrunk = shrink_case(oracle, case,
                                         budget=config.shrink_budget)
                finding["shrunk"] = shrunk.case
                finding["shrunk_detail"] = \
                    oracle.check(shrunk.case).detail
                finding["shrink"] = {
                    "checks": shrunk.checks,
                    "initial_size": shrunk.initial_size,
                    "final_size": shrunk.final_size,
                }
            report.findings.append(finding)
    return report


# ----------------------------------------------------------------------
# Findings JSONL
# ----------------------------------------------------------------------
def findings_lines(report: FuzzReport) -> list[str]:
    """The canonical JSONL lines for a report (no trailing newlines)."""
    header = {
        "schema": FINDINGS_SCHEMA,
        "seed": report.config.seed,
        "cases": report.config.cases,
        "oracles": sorted(report.config.oracles),
        "shrink": report.config.shrink,
    }
    lines = [canonical_json(header)]
    lines += [canonical_json({"finding": f}) for f in report.findings]
    lines.append(canonical_json({"summary": report.summary()}))
    return lines


def write_findings_jsonl(path, report: FuzzReport) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(findings_lines(report)) + "\n")
    return path


def validate_findings_jsonl(path) -> dict:
    """Schema-check one findings file; returns its summary dict."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise ReproError(f"cannot read findings {path}: {exc}") \
            from None
    if not lines:
        raise ReproError(f"{path}: empty findings file")
    try:
        rows = [json.loads(line) for line in lines]
    except ValueError as exc:
        raise ReproError(f"{path}: malformed JSONL: {exc}") from None
    header = rows[0]
    if header.get("schema") != FINDINGS_SCHEMA:
        raise ReproError(
            f"{path}: unsupported findings schema "
            f"{header.get('schema')!r} (expected {FINDINGS_SCHEMA!r})")
    if "summary" not in rows[-1]:
        raise ReproError(f"{path}: missing trailing summary line")
    for i, row in enumerate(rows[1:-1], start=2):
        if "finding" not in row:
            raise ReproError(f"{path}: line {i} is not a finding")
    summary = rows[-1]["summary"]
    if summary.get("findings") != len(rows) - 2:
        raise ReproError(
            f"{path}: summary counts {summary.get('findings')} "
            f"findings but the file holds {len(rows) - 2}")
    return summary
