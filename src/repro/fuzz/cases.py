"""JSON serialization of fuzz cases.

Every fuzz case — a litmus :class:`~repro.core.program.Program`, an x86
basic block, a kernel spec — round-trips through plain JSON so that

* findings reports are self-contained (a divergence in CI replays from
  the JSONL line alone, no pickle, no repo state),
* the shrinker manipulates cases structurally without touching the
  frozen AST in place, and
* minimized reproducers live in ``tests/fuzz_corpus/`` as reviewable
  text.

Op encoding (one JSON array per op, tag first):

* ``["W", loc, value, mode, dep]`` — :class:`Store`; ``value`` is an
  int or a register name, ``dep`` the false-dependency register or
  null.
* ``["R", reg, loc, mode]`` — :class:`Load`.
* ``["F", kind]`` — :class:`FenceOp` by :class:`Fence` value.
* ``["RMW", loc, expect, new, flavor, acq, rel, out]`` — :class:`Rmw`.
* ``["IF", reg, value, [then...], [else...]]`` — :class:`If`.

All serialization here is canonical (sorted keys, fixed separators):
two runs that produce the same case produce the same bytes, which is
what makes the fuzzer's determinism checkable with ``cmp``.
"""

from __future__ import annotations

import json

from ..core.events import Arch, Fence, Mode, RmwFlavor
from ..core.program import FenceOp, If, Load, Op, Program, Rmw, Store
from ..errors import ReproError


def op_to_json(op: Op) -> list:
    if isinstance(op, Store):
        return ["W", op.loc, op.value, op.mode.value, op.dep]
    if isinstance(op, Load):
        return ["R", op.reg, op.loc, op.mode.value]
    if isinstance(op, FenceOp):
        return ["F", op.kind.value]
    if isinstance(op, Rmw):
        return ["RMW", op.loc, op.expect, op.new, op.flavor.value,
                op.acq, op.rel, op.out]
    if isinstance(op, If):
        return ["IF", op.reg, op.value,
                [op_to_json(o) for o in op.then_ops],
                [op_to_json(o) for o in op.else_ops]]
    raise ReproError(f"cannot serialize op {op!r}")


def op_from_json(data: list) -> Op:
    tag = data[0]
    if tag == "W":
        _, loc, value, mode, dep = data
        return Store(loc, value, mode=Mode(mode), dep=dep)
    if tag == "R":
        _, reg, loc, mode = data
        return Load(reg, loc, mode=Mode(mode))
    if tag == "F":
        return FenceOp(Fence(data[1]))
    if tag == "RMW":
        _, loc, expect, new, flavor, acq, rel, out = data
        return Rmw(loc, expect, new, RmwFlavor(flavor),
                   acq=acq, rel=rel, out=out)
    if tag == "IF":
        _, reg, value, then_ops, else_ops = data
        return If(reg, value,
                  then_ops=tuple(op_from_json(o) for o in then_ops),
                  else_ops=tuple(op_from_json(o) for o in else_ops))
    raise ReproError(f"unknown op tag {tag!r}")


def program_to_json(program: Program) -> dict:
    return {
        "name": program.name,
        "arch": program.arch.value,
        "init": [[loc, val] for loc, val in program.init],
        "threads": [[op_to_json(op) for op in ops]
                    for ops in program.threads],
    }


def program_from_json(data: dict) -> Program:
    """Rebuild a program; raises ``LitmusError`` for invalid bodies
    (which the shrinker treats as a dead-end candidate)."""
    return Program(
        name=data["name"],
        arch=Arch(data["arch"]),
        threads=tuple(
            tuple(op_from_json(op) for op in ops)
            for ops in data["threads"]
        ),
        init=tuple((loc, val) for loc, val in data.get("init", [])),
    )


def behaviors_to_json(behaviors: frozenset) -> list:
    """A behaviour set as a sorted list of sorted ``[key, value]``
    pairs — the only stable way to put a frozenset-of-frozensets in a
    deterministic report."""
    return sorted(
        [[k, v] for k, v in sorted(beh)] for beh in behaviors
    )


def canonical_json(obj) -> str:
    """One-line canonical encoding: same object, same bytes, always."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))
