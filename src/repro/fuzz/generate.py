"""Seeded case generators for the differential fuzzer.

Three families, all driven by a caller-provided :class:`random.Random`
so the same seed always yields the same cases regardless of
``PYTHONHASHSEED``:

* :func:`gen_litmus` — small litmus programs (2-4 threads) at any of
  the three language levels, with the access annotations, fences, RMW
  flavors, and dependency shapes each level permits.  The
  ``stress_safe`` form stays inside the operational stress harness's
  envelope (Arm level, constant stores, no conditionals, no syntactic
  dependencies — the machine ignores ``dep``, so emitting one would
  let the *axiomatic* side forbid an outcome the machine legitimately
  shows).
* :func:`gen_x86_block` — straight-line-ish guest x86 blocks (one
  optional forward branch) for the DBT-vs-reference-interpreter
  differential path.
* :func:`gen_kernel_spec` — tiny multithreaded kernels for whole-
  pipeline checksum comparison across DBT variants and native runs.

Size bounds are deliberately tight: the axiomatic enumerators are
exponential in event count, and a fuzzer that times out on one case in
ten finds fewer bugs per minute than one that runs small cases fast.
"""

from __future__ import annotations

from random import Random

from ..core.events import Arch, Fence, Mode, RmwFlavor
from ..core.program import FenceOp, If, Load, Program, Rmw, Store
from ..api import KernelSpec

LOCATIONS = ("X", "Y", "Z")
VALUES = (1, 2, 3)

_X86_FENCES = (Fence.MFENCE,)
_TCG_FENCES = (Fence.FRR, Fence.FRW, Fence.FRM, Fence.FWW, Fence.FWR,
               Fence.FWM, Fence.FMR, Fence.FMW, Fence.FMM, Fence.FACQ,
               Fence.FREL, Fence.FSC)
_ARM_FENCES = (Fence.DMBFF, Fence.DMBLD, Fence.DMBST)

_ARM_LOAD_MODES = (Mode.PLAIN, Mode.PLAIN, Mode.ACQ, Mode.ACQ_PC)
_ARM_STORE_MODES = (Mode.PLAIN, Mode.PLAIN, Mode.PLAIN, Mode.REL)


def _fences_for(arch: Arch) -> tuple[Fence, ...]:
    return {Arch.X86: _X86_FENCES, Arch.TCG: _TCG_FENCES,
            Arch.ARM: _ARM_FENCES}[arch]


def _gen_rmw(rng: Random, arch: Arch, loc: str,
             out: str | None) -> Rmw:
    expect = rng.choice((0,) + VALUES)
    new = rng.choice(VALUES)
    if arch is Arch.X86:
        return Rmw(loc, expect, new, RmwFlavor.X86, out=out)
    if arch is Arch.TCG:
        return Rmw(loc, expect, new, RmwFlavor.TCG, out=out)
    flavor = rng.choice((RmwFlavor.AMO, RmwFlavor.LXSX))
    return Rmw(loc, expect, new, flavor,
               acq=rng.random() < 0.5, rel=rng.random() < 0.5,
               out=out)


def _gen_ops(rng: Random, arch: Arch, tid: int, locs: tuple[str, ...],
             n_ops: int, defined: list[str], reg_counter: list[int],
             stress_safe: bool, allow_if: bool) -> tuple:
    """One thread body (or branch arm); mutates ``defined`` in place.
    Branch arms get a *copy*: a register defined only inside an arm is
    conditionally defined, and program validation rightly rejects later
    uses of it."""
    ops: list = []
    for _ in range(n_ops):
        loc = rng.choice(locs)
        roll = rng.random()
        if roll < 0.35:  # store
            if stress_safe or not defined or rng.random() < 0.7:
                value: int | str = rng.choice(VALUES)
            else:
                value = rng.choice(defined)
            dep = None
            if not stress_safe and defined and rng.random() < 0.15:
                dep = rng.choice(defined)
            mode = Mode.PLAIN if arch is not Arch.ARM \
                else rng.choice(_ARM_STORE_MODES)
            ops.append(Store(loc, value, mode=mode, dep=dep))
        elif roll < 0.70:  # load
            reg = f"t{tid}r{reg_counter[0]}"
            reg_counter[0] += 1
            mode = Mode.PLAIN if arch is not Arch.ARM \
                else rng.choice(_ARM_LOAD_MODES)
            ops.append(Load(reg, loc, mode=mode))
            defined.append(reg)
        elif roll < 0.85:  # fence
            ops.append(FenceOp(rng.choice(_fences_for(arch))))
        elif roll < 0.95 or not (allow_if and defined):  # rmw
            out = None
            if rng.random() < 0.5:
                out = f"t{tid}r{reg_counter[0]}"
                reg_counter[0] += 1
                defined.append(out)
            ops.append(_gen_rmw(rng, arch, loc, out))
        else:  # conditional (control dependency)
            reg = rng.choice(defined)
            arm = _gen_ops(rng, arch, tid, locs, rng.randint(1, 2),
                           list(defined), reg_counter, stress_safe,
                           allow_if=False)
            ops.append(If(reg, rng.choice((0,) + VALUES),
                          then_ops=arm))
    return tuple(ops)


def gen_litmus(rng: Random, arch: Arch, name: str = "fuzz",
               stress_safe: bool = False) -> Program:
    """A random litmus program at the given language level."""
    if stress_safe and arch is not Arch.ARM:
        raise ValueError("stress-safe programs must be Arm-level")
    if stress_safe:
        n_threads = 2
        max_ops = 3
        n_locs = 2
    else:
        n_threads = rng.randint(2, 4)
        max_ops = 4
        n_locs = rng.randint(2, 3)
    locs = LOCATIONS[:n_locs]
    threads = []
    for tid in range(n_threads):
        defined: list[str] = []
        threads.append(_gen_ops(
            rng, arch, tid, locs, rng.randint(1, max_ops), defined,
            reg_counter=[0], stress_safe=stress_safe,
            allow_if=not stress_safe))
    init = tuple(
        (loc, rng.choice(VALUES)) for loc in locs
        if rng.random() < 0.2
    )
    return Program(name=name, arch=arch, threads=tuple(threads),
                   init=init)


# ----------------------------------------------------------------------
# x86 basic blocks for the DBT differential path
# ----------------------------------------------------------------------
_BLOCK_REGS = ("rax", "rbx", "rcx", "rdx", "r8", "r9", "r10", "r11")
#: rbx is reserved as the scratch-memory base inside generated blocks.
_FREE_REGS = tuple(r for r in _BLOCK_REGS if r != "rbx")
_SCRATCH = 0x9000
_ALU2 = ("add", "sub", "xor", "or", "and", "imul")
_ALU1 = ("inc", "dec", "neg", "not")
_JCC = ("je", "jne", "jl", "jge", "jg", "jle")


def gen_x86_block(rng: Random) -> str:
    """A random guest x86 block (text assembly, no trailing hlt).

    Straight-line ALU/memory traffic over a scratch region, optional
    fences and LOCK'd RMWs, and at most one forward branch — enough to
    exercise decode → IR → optimize → Arm codegen without tripping the
    reference interpreter's undefined corners (div, wild addresses).
    """
    lines = [f"    mov rbx, {_SCRATCH}"]
    for reg in rng.sample(_FREE_REGS, 3):
        lines.append(f"    mov {reg}, {rng.randint(0, 0xFFFF)}")
    n_ops = rng.randint(4, 12)
    branch_budget = 1
    i = 0
    while i < n_ops:
        i += 1
        roll = rng.random()
        reg = rng.choice(_FREE_REGS)
        off = 8 * rng.randint(0, 7)
        if roll < 0.30:
            op = rng.choice(_ALU2)
            src = rng.choice(_FREE_REGS) if rng.random() < 0.5 \
                else str(rng.randint(1, 255))
            lines.append(f"    {op} {reg}, {src}")
        elif roll < 0.45:
            lines.append(f"    {rng.choice(_ALU1)} {reg}")
        elif roll < 0.55:
            lines.append(f"    {rng.choice(('shl', 'shr', 'sar'))} "
                         f"{reg}, {rng.randint(1, 3)}")
        elif roll < 0.70:
            lines.append(f"    mov [rbx + {off}], {reg}")
        elif roll < 0.82:
            lines.append(f"    mov {reg}, [rbx + {off}]")
        elif roll < 0.88:
            lines.append("    mfence")
        elif roll < 0.94:
            lines.append(f"    lock xadd [rbx + {off}], {reg}")
        elif branch_budget and rng.random() < 0.8:
            # One forward skip: cmp/jcc over a couple of ops.
            branch_budget = 0
            label = "skip"
            lines.append(f"    cmp {reg}, {rng.randint(0, 4)}")
            lines.append(f"    {rng.choice(_JCC)} {label}")
            for _ in range(rng.randint(1, 2)):
                tgt = rng.choice(_FREE_REGS)
                lines.append(f"    add {tgt}, {rng.randint(1, 9)}")
            lines.append(f"{label}:")
        else:
            lines.append("    lock cmpxchg [rbx], rcx")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Kernel specs for whole-pipeline differential runs
# ----------------------------------------------------------------------
def gen_kernel_spec(rng: Random, name: str = "fuzzk") -> KernelSpec:
    """A tiny kernel: every DBT variant and the native build must agree
    on its checksum and exit code."""
    return KernelSpec(
        name=name,
        loads=rng.randint(0, 3),
        stores=rng.randint(0, 2),
        alu=rng.randint(0, 4),
        fp=rng.randint(0, 2),
        iterations=rng.randint(30, 80),
        threads=rng.randint(1, 2),
        working_set=64,
        suite="fuzz",
    )
