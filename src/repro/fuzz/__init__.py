"""Differential fuzzing of the reproduction's trust boundaries.

``python -m repro.fuzz --seed S --cases N`` drives four oracles —
staged-vs-naive enumeration, the operational machine vs the axiomatic
Arm model, the DBT pipeline vs its references, and Figure-10 transform
soundness — over seeded, deterministic case streams, shrinks any
divergence to a 1-minimal reproducer, and writes a canonical findings
JSONL (same seed, same bytes).  Minimized reproducers are committed
under ``tests/fuzz_corpus/`` and replayed by the test suite.
"""

from .cases import (
    behaviors_to_json,
    canonical_json,
    program_from_json,
    program_to_json,
)
from .generate import gen_kernel_spec, gen_litmus, gen_x86_block
from .oracles import (
    CheckOutcome,
    ORACLES,
    applicable_sites,
    make_oracles,
)
from .runner import (
    DEFAULT_ORACLES,
    FINDINGS_SCHEMA,
    FuzzConfig,
    FuzzReport,
    findings_lines,
    run_fuzz,
    validate_findings_jsonl,
    write_findings_jsonl,
)
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "CheckOutcome", "DEFAULT_ORACLES", "FINDINGS_SCHEMA", "FuzzConfig",
    "FuzzReport", "ORACLES", "ShrinkResult", "applicable_sites",
    "behaviors_to_json", "canonical_json", "findings_lines",
    "gen_kernel_spec", "gen_litmus", "gen_x86_block", "make_oracles",
    "program_from_json", "program_to_json", "run_fuzz", "shrink_case",
    "validate_findings_jsonl", "write_findings_jsonl",
]
