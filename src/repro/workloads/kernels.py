"""Multithreaded benchmark kernels, generated for both ISAs.

Each PARSEC/Phoenix benchmark is reproduced as a synthetic kernel with
that benchmark's *instruction mix* (loads/stores/ALU/FP per iteration —
the knob that determines fence sensitivity and hence its Figure 12
profile).  One :class:`KernelSpec` drives two code generators:

* :func:`gen_x86_program` — the guest binary the DBT translates,
* :func:`gen_arm_program` — the native build for the "native" bars.

Both versions compute the identical integer⊕FP checksum (same values,
same operation order — FP goes through float64 in every path), so the
test suite can assert translated and native runs agree exactly.

Thread harness: the main function spawns ``threads-1`` workers via the
spawn syscall, runs slice 0 itself, joins, folds the per-slice results,
reports the checksum through write_int and exits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Guest-visible data layout (shared by both ISAs).
ARRAY_BASE = 0x0100_0000
ARRAY_SLICE = 0x4_0000          # per-thread working-set spacing
RESULT_BASE = 0x0200_0000
TID_BASE = 0x0210_0000


def _bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


@dataclass(frozen=True)
class KernelSpec:
    """One benchmark's shape."""

    name: str
    loads: int
    stores: int
    alu: int
    fp: int
    iterations: int = 2000
    threads: int = 4
    #: words in each thread's working set (power of two).
    working_set: int = 256
    suite: str = "parsec"

    @property
    def mask(self) -> int:
        return (self.working_set - 1) * 8


_ALU_X86 = ("add r8, {v}", "xor r8, {v}", "sub r8, {v}",
            "or r8, {v}", "shl r8, 1", "shr r8, 1")
_ALU_ARM = ("add x10, x10, {v}", "eor x10, x10, {v}",
            "sub x10, x10, {v}", "orr x10, x10, {v}",
            "lsl x10, x10, #1", "lsr x10, x10, #1")

_FP_X86 = ("fmul r12, r13", "fadd r12, r14")
_FP_ARM = ("fmul x14, x14, x15", "fadd x14, x14, x16")


def _loop_body_x86(spec: KernelSpec) -> list[str]:
    lines = []
    for i in range(spec.loads):
        lines.append(f"    mov r1{0 if i % 2 == 0 else 1}, "
                     f"[rsi + rdx + {8 * i}]")
    # Only registers the loop actually loads may feed the ALU mix:
    # with a single load, r11/x12 would diverge between the ISAs (x12
    # is clobbered by the Arm spawn harness, r11 stays 0).
    if spec.loads >= 2:
        value_regs = ["r10", "r11"]
    elif spec.loads == 1:
        value_regs = ["r10", "r10"]
    else:
        value_regs = ["rcx", "rcx"]
    for i in range(spec.alu):
        template = _ALU_X86[i % len(_ALU_X86)]
        lines.append("    " + template.format(v=value_regs[i % 2]))
    for i in range(spec.fp):
        lines.append("    " + _FP_X86[i % len(_FP_X86)])
    for i in range(spec.stores):
        lines.append(f"    mov [rsi + rdx + {8 * i}], r8")
    lines += [
        "    add rdx, 8",
        f"    and rdx, {spec.mask}",
    ]
    return lines


def _loop_body_arm(spec: KernelSpec) -> list[str]:
    lines = []
    for i in range(spec.loads):
        reg = "x11" if i % 2 == 0 else "x12"
        lines.append(f"    ldr {reg}, [x9, #{8 * i}]")
    if spec.loads >= 2:
        value_regs = ["x11", "x12"]
    elif spec.loads == 1:
        value_regs = ["x11", "x11"]
    else:
        value_regs = ["x2", "x2"]
    for i in range(spec.alu):
        template = _ALU_ARM[i % len(_ALU_ARM)]
        lines.append("    " + template.format(v=value_regs[i % 2]))
    for i in range(spec.fp):
        lines.append("    " + _FP_ARM[i % len(_FP_ARM)])
    for i in range(spec.stores):
        lines.append(f"    str x10, [x9, #{8 * i}]")
    lines += [
        "    add x3, x3, #8",
        f"    mov x4, #{spec.mask}",
        "    and x3, x3, x4",
        "    mov x9, x8",
        "    add x9, x9, x3",
    ]
    return lines


# ----------------------------------------------------------------------
# x86 guest program
# ----------------------------------------------------------------------
def gen_x86_program(spec: KernelSpec) -> str:
    """Guest program: main + worker, using the custom syscall ABI
    (rax = number, rdi/rsi = args; see repro.dbt.runtime)."""
    spawn_lines = []
    for tid in range(1, spec.threads):
        spawn_lines += [
            "    mov rax, 1000            ; spawn",
            "    mov rdi, worker",
            f"    mov rsi, {tid}",
            "    syscall",
            f"    mov rbx, {TID_BASE + 8 * tid}",
            "    mov [rbx], rax            ; remember tid",
        ]
    join_lines = []
    for tid in range(1, spec.threads):
        join_lines += [
            f"    mov rbx, {TID_BASE + 8 * tid}",
            "    mov rdi, [rbx]",
            "    mov rax, 1001            ; join",
            "    syscall",
        ]
    fold_lines = ["    mov r8, 0"]
    for tid in range(spec.threads):
        fold_lines += [
            f"    mov rbx, {RESULT_BASE + 8 * tid}",
            "    mov rcx, [rbx]",
            "    add r8, rcx",
        ]
    body = "\n".join(_loop_body_x86(spec))
    return f"""
; {spec.name} — synthetic {spec.suite} kernel
; mix: {spec.loads} ld / {spec.stores} st / {spec.alu} alu / {spec.fp} fp
main:
{chr(10).join(spawn_lines)}
    mov rdi, 0
    call worker
{chr(10).join(join_lines)}
{chr(10).join(fold_lines)}
    mov rdi, r8
    mov rax, 1                 ; write_int(checksum)
    syscall
    mov rdi, 0
    mov rax, 60                ; exit
    syscall

worker:
    ; rdi = slice id
    mov r9, rdi
    mov rsi, {ARRAY_BASE}
    mov rbx, r9
    shl rbx, {ARRAY_SLICE.bit_length() - 1}
    add rsi, rbx               ; slice base
    mov rdx, 0                 ; offset cursor
    mov r8, r9                 ; integer accumulator (seeded by slice)
    add r8, 99991
    mov r12, {_bits(1.0001)}   ; fp accumulator
    mov r13, {_bits(1.000001)}
    mov r14, {_bits(0.000001)}
    mov rcx, {spec.iterations}
wloop:
{body}
    dec rcx
    jne wloop
    xor r8, r12                ; fold fp bits into the checksum
    mov rbx, {RESULT_BASE}
    mov rcx, r9
    shl rcx, 3
    add rbx, rcx
    mov [rbx], r8
    ret
"""


# ----------------------------------------------------------------------
# Arm native program
# ----------------------------------------------------------------------
def gen_arm_program(spec: KernelSpec) -> str:
    """Native build.  Syscall ABI registers mirror the guest map:
    number in x8, args in x13 (rdi) / x12 (rsi)."""
    spawn_lines = []
    for tid in range(1, spec.threads):
        spawn_lines += [
            "    mov x8, #1000",
            "    mov x13, worker",
            f"    mov x12, #{tid}",
            "    svc #0",
            f"    mov x5, #{TID_BASE + 8 * tid}",
            "    str x8, [x5]",
        ]
    join_lines = []
    for tid in range(1, spec.threads):
        join_lines += [
            f"    mov x5, #{TID_BASE + 8 * tid}",
            "    ldr x13, [x5]",
            "    mov x8, #1001",
            "    svc #0",
        ]
    fold_lines = ["    mov x10, #0"]
    for tid in range(spec.threads):
        fold_lines += [
            f"    mov x5, #{RESULT_BASE + 8 * tid}",
            "    ldr x6, [x5]",
            "    add x10, x10, x6",
        ]
    body = "\n".join(_loop_body_arm(spec))
    return f"""
// {spec.name} — native build
main:
    mov x20, x30               // preserve the exit continuation
{chr(10).join(spawn_lines)}
    mov x13, #0
    bl worker
{chr(10).join(join_lines)}
{chr(10).join(fold_lines)}
    mov x13, x10
    mov x8, #1                 // write_int(checksum)
    svc #0
    mov x13, #0
    mov x8, #60                // exit
    svc #0
    mov x30, x20
    ret

worker:
    // x13 = slice id
    mov x7, x13
    mov x8, #{ARRAY_BASE}
    lsl x5, x7, #{ARRAY_SLICE.bit_length() - 1}
    add x8, x8, x5             // slice base
    mov x3, #0                 // offset cursor
    mov x9, x8
    mov x10, x7                // integer accumulator
    mov x5, #99991
    add x10, x10, x5
    mov x14, #{_bits(1.0001)}  // fp accumulator
    mov x15, #{_bits(1.000001)}
    mov x16, #{_bits(0.000001)}
    mov x2, #{spec.iterations}
wloop:
{body}
    sub x2, x2, #1
    cbnz x2, wloop
    eor x10, x10, x14
    mov x5, #{RESULT_BASE}
    lsl x6, x7, #3
    add x5, x5, x6
    str x10, [x5]
    ret
"""
