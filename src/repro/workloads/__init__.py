"""Benchmark workloads: PARSEC/Phoenix kernels, library-bound
applications (OpenSSL, SQLite, libm), the CAS microbenchmark, and the
parallel evaluation harness that fans the figure sweeps over a
process pool."""

from .kernels import ARRAY_BASE, KernelSpec, gen_arm_program, gen_x86_program
from .libs import (
    SQLITE_DB_BASE,
    build_libcrypto,
    build_libm,
    build_libsqlite,
    standard_libraries,
)
from .parallel import (
    RunFailure,
    RunRow,
    RunSpec,
    SweepResult,
    default_workers,
    execute_spec,
    run_parallel,
)
from .runner import (
    ALL_VARIANTS,
    NATIVE,
    WorkloadResult,
    run_kernel,
    run_library_workload,
)
from .suites import (
    ALL_SPECS,
    PARSEC_SPECS,
    PHOENIX_SPECS,
    SPEC_BY_NAME,
    ablation_grid,
    cas_grid,
    kernel_grid,
    library_grid,
    scheme_grid,
    verify_grid,
)

__all__ = [
    "ARRAY_BASE", "KernelSpec", "gen_arm_program", "gen_x86_program",
    "SQLITE_DB_BASE", "build_libcrypto", "build_libm", "build_libsqlite",
    "standard_libraries",
    "RunFailure", "RunRow", "RunSpec", "SweepResult", "default_workers",
    "execute_spec", "run_parallel",
    "ALL_VARIANTS", "NATIVE", "WorkloadResult",
    "run_kernel", "run_library_workload",
    "ALL_SPECS", "PARSEC_SPECS", "PHOENIX_SPECS", "SPEC_BY_NAME",
    "ablation_grid", "cas_grid", "kernel_grid", "library_grid",
    "scheme_grid", "verify_grid",
]
