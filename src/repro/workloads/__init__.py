"""Benchmark workloads: PARSEC/Phoenix kernels, library-bound
applications (OpenSSL, SQLite, libm), and the CAS microbenchmark."""

from .kernels import ARRAY_BASE, KernelSpec, gen_arm_program, gen_x86_program
from .libs import (
    SQLITE_DB_BASE,
    build_libcrypto,
    build_libm,
    build_libsqlite,
    standard_libraries,
)
from .runner import (
    ALL_VARIANTS,
    NATIVE,
    WorkloadResult,
    run_kernel,
    run_library_workload,
)
from .suites import ALL_SPECS, PARSEC_SPECS, PHOENIX_SPECS, SPEC_BY_NAME

__all__ = [
    "ARRAY_BASE", "KernelSpec", "gen_arm_program", "gen_x86_program",
    "SQLITE_DB_BASE", "build_libcrypto", "build_libm", "build_libsqlite",
    "standard_libraries",
    "ALL_VARIANTS", "NATIVE", "WorkloadResult",
    "run_kernel", "run_library_workload",
    "ALL_SPECS", "PARSEC_SPECS", "PHOENIX_SPECS", "SPEC_BY_NAME",
]
