"""The CAS microbenchmark of Section 7.4 / Figure 15.

``threads`` workers each execute a fixed number of CAS attempts against
``variables`` shared counters (thread *t* targets variable
``t mod variables``).  ``threads == variables`` means no contention —
the regime where Risotto's direct ``casal`` beats QEMU's helper call by
skipping the extra jumps; under contention the cache-line transfer
dominates and the two converge (the paper's observation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..dbt import DBTEngine, NativeRunner, resolve_variant
from ..isa.arm.assembler import assemble as assemble_arm
from ..loader.gelf import build_binary
from ..machine.timing import CostModel
from ..machine.weakmem import BufferMode
from .kernels import TID_BASE
from .runner import WorkloadResult

#: Each CAS variable sits on its own cache line.
CAS_VAR_BASE = 0x0500_0000
CAS_VAR_STRIDE = 64


@dataclass(frozen=True)
class CasConfig:
    """One (#threads - #vars) configuration from Figure 15."""

    threads: int
    variables: int
    attempts: int = 600

    @property
    def label(self) -> str:
        return f"{self.threads}-{self.variables}"

    @property
    def total_ops(self) -> int:
        return self.threads * self.attempts


#: Figure 15's x-axis.
FIGURE15_CONFIGS: tuple[CasConfig, ...] = tuple(
    CasConfig(threads, variables)
    for threads, variables in (
        (1, 1), (4, 1), (4, 2), (4, 4),
        (8, 1), (8, 4), (8, 8),
        (16, 1), (16, 8), (16, 16),
    )
)


def _x86_cas_program(config: CasConfig) -> str:
    spawn = []
    for tid in range(1, config.threads):
        spawn += [
            "    mov rax, 1000",
            "    mov rdi, worker",
            f"    mov rsi, {tid}",
            "    syscall",
            f"    mov rbx, {TID_BASE + 8 * tid}",
            "    mov [rbx], rax",
        ]
    join = []
    for tid in range(1, config.threads):
        join += [
            f"    mov rbx, {TID_BASE + 8 * tid}",
            "    mov rdi, [rbx]",
            "    mov rax, 1001",
            "    syscall",
        ]
    return f"""
main:
{chr(10).join(spawn)}
    mov rdi, 0
    call worker
{chr(10).join(join)}
    mov rdi, 0
    mov rax, 1
    syscall
    mov rdi, 0
    mov rax, 60
    syscall

worker:
    ; rdi = thread id; target var = tid % variables
    mov rax, rdi
    mov rcx, {config.variables}
    div rcx                     ; rdx = tid % variables
    mov rbx, rdx
    shl rbx, {CAS_VAR_STRIDE.bit_length() - 1}
    add rbx, {CAS_VAR_BASE}     ; variable address
    mov rcx, {config.attempts}
casloop:
    mov rax, [rbx]
    mov rsi, rax
    inc rsi
    lock cmpxchg [rbx], rsi     ; attempt increment
    dec rcx
    jne casloop
    ret
"""


def _arm_cas_program(config: CasConfig) -> str:
    spawn = []
    for tid in range(1, config.threads):
        spawn += [
            "    mov x8, #1000",
            "    mov x13, worker",
            f"    mov x12, #{tid}",
            "    svc #0",
            f"    mov x5, #{TID_BASE + 8 * tid}",
            "    str x8, [x5]",
        ]
    join = []
    for tid in range(1, config.threads):
        join += [
            f"    mov x5, #{TID_BASE + 8 * tid}",
            "    ldr x13, [x5]",
            "    mov x8, #1001",
            "    svc #0",
        ]
    return f"""
main:
{chr(10).join(spawn)}
    mov x13, #0
    bl worker
{chr(10).join(join)}
    mov x13, #0
    mov x8, #1
    svc #0
    mov x13, #0
    mov x8, #60
    svc #0

worker:
    // x13 = thread id
    mov x0, x13
    mov x1, #{config.variables}
    udiv x2, x0, x1
    mul x2, x2, x1
    sub x2, x0, x2              // tid % variables
    lsl x2, x2, #{CAS_VAR_STRIDE.bit_length() - 1}
    mov x3, #{CAS_VAR_BASE}
    add x3, x3, x2
    mov x4, #{config.attempts}
casloop:
    ldr x5, [x3]
    add x6, x5, #1
    casal x5, x6, [x3]
    sub x4, x4, #1
    cbnz x4, casloop
    ret
"""


def run_cas_benchmark(config: CasConfig, variant: str,
                      seed: int = 7,
                      costs: CostModel | None = None,
                      buffer_mode: BufferMode = BufferMode.WEAK,
                      ) -> WorkloadResult:
    """Run one Figure 15 configuration; throughput is
    ``config.total_ops / result.elapsed_cycles``."""
    started = time.perf_counter()
    dbt_config = resolve_variant(variant)
    if dbt_config is None:
        engine = NativeRunner(n_cores=config.threads, seed=seed,
                              costs=costs, buffer_mode=buffer_mode)
        assembly = assemble_arm(_arm_cas_program(config),
                                base=0x0F00_0000)
        engine.load_image(assembly.base, assembly.code)
        entry = assembly.labels["main"]
    else:
        engine = DBTEngine(dbt_config, n_cores=config.threads,
                           seed=seed, costs=costs,
                           buffer_mode=buffer_mode)
        binary = build_binary(_x86_cas_program(config))
        binary.load_into(engine.machine.memory)
        entry = binary.entry
    result = engine.run(entry, max_steps=200_000_000)
    return WorkloadResult(variant=variant, result=result,
                          checksum=result.output[0]
                          if result.output else None,
                          wall_seconds=time.perf_counter() - started)


def throughput(config: CasConfig, workload: WorkloadResult,
               cycles_per_second: float = 2.0e9) -> float:
    """CAS attempts per second at the paper's 2.0 GHz clock."""
    return throughput_from_cycles(config,
                                  workload.result.elapsed_cycles,
                                  cycles_per_second)


def throughput_from_cycles(config: CasConfig, elapsed_cycles: int,
                           cycles_per_second: float = 2.0e9) -> float:
    """Throughput from a bare cycle count (parallel-harness rows)."""
    return config.total_ops * cycles_per_second / max(1, elapsed_cycles)
