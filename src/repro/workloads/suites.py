"""The PARSEC 3.0 and Phoenix benchmark suites as kernel specs.

The per-benchmark instruction mixes are the calibration knob for
Figure 12: fence sensitivity grows with memory-op density (freqmine is
the extreme — the paper measures 75% of its run time in fences), the
tcg-ver gain grows with store share (DMBFF → DMBST), and the native gap
grows with FP share (QEMU's softfloat emulation).

raytrace and x264 are omitted exactly as in the paper (Section 7.1:
they fail to build/run natively on Arm).
"""

from __future__ import annotations

from .kernels import KernelSpec

PARSEC_SPECS: tuple[KernelSpec, ...] = (
    # fp-heavy pricing kernel; moderate memory traffic
    KernelSpec("blackscholes", loads=2, stores=1, alu=4, fp=6,
               suite="parsec"),
    # vision pipeline: alu-dominated with steady loads
    KernelSpec("bodytrack", loads=3, stores=1, alu=8, fp=2,
               suite="parsec"),
    # cache-aware annealing: pointer-chasing loads
    KernelSpec("canneal", loads=5, stores=2, alu=5, fp=0,
               suite="parsec"),
    KernelSpec("facesim", loads=3, stores=2, alu=6, fp=4,
               suite="parsec"),
    KernelSpec("fluidanimate", loads=3, stores=2, alu=5, fp=5,
               suite="parsec"),
    # frequent itemset mining: the most memory/fence-bound benchmark
    KernelSpec("freqmine", loads=6, stores=4, alu=3, fp=0,
               suite="parsec"),
    KernelSpec("streamcluster", loads=4, stores=1, alu=5, fp=2,
               suite="parsec"),
    KernelSpec("swaptions", loads=2, stores=1, alu=6, fp=4,
               suite="parsec"),
    KernelSpec("vips", loads=3, stores=2, alu=7, fp=1,
               suite="parsec"),
)

PHOENIX_SPECS: tuple[KernelSpec, ...] = (
    KernelSpec("histogram", loads=3, stores=2, alu=4, fp=0,
               suite="phoenix"),
    KernelSpec("kmeans", loads=3, stores=1, alu=6, fp=2,
               suite="phoenix"),
    KernelSpec("linearregression", loads=2, stores=1, alu=5, fp=0,
               suite="phoenix"),
    KernelSpec("matrixmultiply", loads=3, stores=1, alu=4, fp=0,
               suite="phoenix"),
    KernelSpec("pca", loads=3, stores=1, alu=5, fp=2,
               suite="phoenix"),
    KernelSpec("stringmatch", loads=4, stores=0, alu=6, fp=0,
               suite="phoenix"),
    KernelSpec("wordcount", loads=4, stores=2, alu=5, fp=0,
               suite="phoenix"),
)

ALL_SPECS: tuple[KernelSpec, ...] = PARSEC_SPECS + PHOENIX_SPECS

SPEC_BY_NAME: dict[str, KernelSpec] = {s.name: s for s in ALL_SPECS}


# ----------------------------------------------------------------------
# (benchmark × variant) grids for the parallel harness
# ----------------------------------------------------------------------
def kernel_grid(specs: tuple[KernelSpec, ...] = ALL_SPECS,
                variants: tuple[str, ...] = ("qemu", "no-fences",
                                             "tcg-ver", "risotto",
                                             "native"),
                *, iterations: int | None = None, seed: int = 7,
                max_steps: int = 80_000_000,
                tier2_threshold: int | None = None):
    """The Figure 12 sweep as :class:`~.parallel.RunSpec` rows.

    Row order is (benchmark-major, variant-minor) — the order the
    figure tables print in and the order ``run_parallel`` returns.
    """
    from dataclasses import replace

    from .parallel import RunSpec

    grid = []
    for spec in specs:
        sized = spec if iterations is None \
            else replace(spec, iterations=iterations)
        for variant in variants:
            grid.append(RunSpec(
                kind="kernel", benchmark=spec.name, variant=variant,
                seed=seed, max_steps=max_steps, kernel=sized,
                tier2_threshold=tier2_threshold,
            ))
    return tuple(grid)


def library_grid(cases: dict, library: str,
                 variants: tuple[str, ...] = ("qemu", "risotto",
                                              "native"),
                 *, seed: int = 7, max_steps: int = 80_000_000):
    """Figure 13/14-style sweeps: ``cases`` maps a benchmark label to
    ``(function, args, calls, setup-name-or-None)``."""
    from .parallel import RunSpec

    grid = []
    for bench, (function, args, calls, setup) in cases.items():
        for variant in variants:
            grid.append(RunSpec(
                kind="library", benchmark=bench, variant=variant,
                seed=seed, max_steps=max_steps, library=library,
                function=function, args=tuple(args), calls=calls,
                setup=setup,
            ))
    return tuple(grid)


def cas_grid(configs, variants: tuple[str, ...] = ("qemu", "risotto",
                                                   "native"),
             *, seed: int = 7):
    """The Figure 15 sweep: every (CAS config × variant) pair."""
    from .parallel import RunSpec

    return tuple(
        RunSpec(kind="cas", benchmark=config.label, variant=variant,
                seed=seed, cas=config)
        for config in configs for variant in variants
    )


def ablation_grid(labels):
    """Minimality ablations (Figures 8-9) as parallelizable specs."""
    from .parallel import RunSpec

    return tuple(
        RunSpec(kind="ablation", benchmark=label, variant="ablation",
                ablation=label)
        for label in labels
    )


def verify_grid(tests=None, models: tuple[str, ...] = ("x86-tso",),
                *, reduction: str = "dpor",
                enum_limit: int | None = None,
                use_cache: bool = False, seed: int = 7):
    """Sharded-verification specs: one cell per (litmus test × model).

    ``tests`` is an iterable of litmus-test names (default: the classic
    corpus plus the 5-thread fixtures, i.e. every test the registry
    knows); ``models`` are :data:`repro.core.models.MODEL_BY_NAME`
    keys.  Each cell enumerates independently, so the grid shards
    perfectly over :func:`~repro.workloads.parallel.run_parallel` —
    corpus-level verification wall time is bounded by the slowest
    single test, not the sum.
    """
    from ..core.corpus_large import verify_registry
    from .parallel import RunSpec

    if tests is None:
        tests = tuple(verify_registry())
    return tuple(
        RunSpec(kind="verify", benchmark=test,
                variant=f"{model}/{reduction}", seed=seed,
                model=model, reduction=reduction,
                enum_limit=enum_limit, use_cache=use_cache)
        for test in tests for model in models
    )


def scheme_grid(schemes=None, *, enum_limit: int | None = None,
                seed: int = 7):
    """Scheme-matrix specs: Theorem-1 corpus checks for the derived
    mapping family, one cell per (scheme × RMW lowering).

    Sound schemes are swept under both verified RMW lowerings;
    negative controls (``expect_sound=False``) only under ``rmw1al`` —
    they exist to prove the gate trips, once each is enough.
    """
    from ..core.most import SCHEME_RMW_LOWERINGS, SCHEMES
    from ..errors import ReproError
    from .parallel import RunSpec

    if schemes is None:
        schemes = tuple(SCHEMES)
    grid = []
    for name in schemes:
        try:
            scheme = SCHEMES[name]
        except KeyError:
            raise ReproError(
                f"unknown scheme {name!r}; expected one of "
                f"{sorted(SCHEMES)}") from None
        rmws = SCHEME_RMW_LOWERINGS if scheme.expect_sound \
            else SCHEME_RMW_LOWERINGS[:1]
        for rmw in rmws:
            grid.append(RunSpec(
                kind="scheme", benchmark=name,
                variant=f"{scheme.source}->arm/{rmw}", seed=seed,
                enum_limit=enum_limit, rmw_lowering=rmw,
            ))
    return tuple(grid)
