"""The PARSEC 3.0 and Phoenix benchmark suites as kernel specs.

The per-benchmark instruction mixes are the calibration knob for
Figure 12: fence sensitivity grows with memory-op density (freqmine is
the extreme — the paper measures 75% of its run time in fences), the
tcg-ver gain grows with store share (DMBFF → DMBST), and the native gap
grows with FP share (QEMU's softfloat emulation).

raytrace and x264 are omitted exactly as in the paper (Section 7.1:
they fail to build/run natively on Arm).
"""

from __future__ import annotations

from .kernels import KernelSpec

PARSEC_SPECS: tuple[KernelSpec, ...] = (
    # fp-heavy pricing kernel; moderate memory traffic
    KernelSpec("blackscholes", loads=2, stores=1, alu=4, fp=6,
               suite="parsec"),
    # vision pipeline: alu-dominated with steady loads
    KernelSpec("bodytrack", loads=3, stores=1, alu=8, fp=2,
               suite="parsec"),
    # cache-aware annealing: pointer-chasing loads
    KernelSpec("canneal", loads=5, stores=2, alu=5, fp=0,
               suite="parsec"),
    KernelSpec("facesim", loads=3, stores=2, alu=6, fp=4,
               suite="parsec"),
    KernelSpec("fluidanimate", loads=3, stores=2, alu=5, fp=5,
               suite="parsec"),
    # frequent itemset mining: the most memory/fence-bound benchmark
    KernelSpec("freqmine", loads=6, stores=4, alu=3, fp=0,
               suite="parsec"),
    KernelSpec("streamcluster", loads=4, stores=1, alu=5, fp=2,
               suite="parsec"),
    KernelSpec("swaptions", loads=2, stores=1, alu=6, fp=4,
               suite="parsec"),
    KernelSpec("vips", loads=3, stores=2, alu=7, fp=1,
               suite="parsec"),
)

PHOENIX_SPECS: tuple[KernelSpec, ...] = (
    KernelSpec("histogram", loads=3, stores=2, alu=4, fp=0,
               suite="phoenix"),
    KernelSpec("kmeans", loads=3, stores=1, alu=6, fp=2,
               suite="phoenix"),
    KernelSpec("linearregression", loads=2, stores=1, alu=5, fp=0,
               suite="phoenix"),
    KernelSpec("matrixmultiply", loads=3, stores=1, alu=4, fp=0,
               suite="phoenix"),
    KernelSpec("pca", loads=3, stores=1, alu=5, fp=2,
               suite="phoenix"),
    KernelSpec("stringmatch", loads=4, stores=0, alu=6, fp=0,
               suite="phoenix"),
    KernelSpec("wordcount", loads=4, stores=2, alu=5, fp=0,
               suite="phoenix"),
)

ALL_SPECS: tuple[KernelSpec, ...] = PARSEC_SPECS + PHOENIX_SPECS

SPEC_BY_NAME: dict[str, KernelSpec] = {s.name: s for s in ALL_SPECS}
