"""Parallel evaluation harness for the figure sweeps.

The paper's evaluation is a large (benchmark × variant) grid and every
run constructs its own fresh :class:`~repro.machine.scheduler.Machine`,
so the sweep is embarrassingly parallel.  This module fans it out over
a ``ProcessPoolExecutor``:

* :class:`RunSpec` — a picklable description of one run (kernel spec /
  library call / CAS config / litmus ablation, plus variant, seed,
  costs and step budget).  Callables never cross the process boundary:
  libraries and memory setups travel as registry names and are rebuilt
  inside the worker.
* :func:`execute_spec` — the worker entry point: builds the engine
  in-process, runs it, and returns a flat, picklable :class:`RunRow`
  that carries the figures' quantities *and* the observability
  counters (wall time, translated blocks, optimizer work, fence share,
  behaviour-cache hits/misses).
* :func:`run_parallel` — the fan-out.  Results come back in submission
  order whatever the completion order, and every run is seeded by its
  spec, so the result table is bit-identical to a serial sweep and
  independent of the worker count.

The worker count comes from the ``workers`` argument, else the
``REPRO_WORKERS`` environment variable, else ``os.cpu_count()``.
``workers <= 1`` runs the specs serially in-process — the degenerate
pool, used as the reference in determinism tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from ..core.enumerate import EnumerationStats, behavior_cache_stats, \
    enumeration_stats
from ..errors import ReproError, classify_error
from ..machine.timing import CostModel
from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_tracer
from ..machine.weakmem import BufferMode
from .casbench import CasConfig, run_cas_benchmark
from .kernels import KernelSpec
from .libs import build_libcrypto, build_libm, build_libsqlite, \
    standard_libraries
from .runner import WorkloadResult, run_kernel, run_library_workload

#: Name -> zero-argument library factory, rebuilt inside each worker.
LIBRARY_BUILDERS = {
    "libm": build_libm,
    "libcrypto": build_libcrypto,
    "libsqlite": build_libsqlite,
    "standard": standard_libraries,
}

#: Guest buffer the digest workloads hash (Figure 13's input data).
DATA_BUF = 0x0220_0000


def _fill_digest_buffer(memory) -> None:
    for i in range(8192 // 8):
        memory.store_word(DATA_BUF + 8 * i, (i * 2654435761) & 0xFFFF)


#: Name -> memory-setup callable, applied before the run in the worker.
MEMORY_SETUPS = {
    "digest-buffer": _fill_digest_buffer,
}


@dataclass(frozen=True)
class RunSpec:
    """One (benchmark × variant) run, serializable for the pool.

    Exactly one of ``kernel``/``library_call``/``cas``/``ablation`` is
    populated, selected by ``kind``.
    """

    kind: str   # "kernel" | "library" | "cas" | "ablation" | "verify"
                # | "scheme"
    benchmark: str
    variant: str = "risotto"
    seed: int = 7
    max_steps: int = 80_000_000
    costs: CostModel | None = None
    #: Store-buffer mode for the machine — applied to *every* variant,
    #: native included, so the bars of one benchmark are comparable.
    buffer_mode: BufferMode = BufferMode.WEAK
    #: Tier-2 hotness knob for DBT variants: ``None`` defers to
    #: ``REPRO_TIER2_THRESHOLD``, ``0`` forces tier-2 off, a positive
    #: count promotes hot blocks to superblock traces at that dispatch
    #: count.  Ignored by native runs and ablations.
    tier2_threshold: int | None = None
    # kind == "kernel"
    kernel: KernelSpec | None = None
    # kind == "library"
    library: str | None = None    # LIBRARY_BUILDERS key
    function: str | None = None
    args: tuple[int, ...] = ()
    calls: int = 0
    setup: str | None = None      # MEMORY_SETUPS key
    # kind == "cas"
    cas: CasConfig | None = None
    # kind == "ablation" (benchmark doubles as the registry key)
    ablation: str | None = None
    # kind == "verify" (benchmark is the litmus-test name)
    #: model name per :data:`repro.core.models.MODEL_BY_NAME`.
    model: str | None = None
    #: enumeration reduction: "dpor" | "staged" | "naive".
    reduction: str = "dpor"
    #: candidate-materialization limit (None = enumerator default).
    enum_limit: int | None = None
    #: go through :func:`repro.core.behaviors` (memo + disk cache)
    #: instead of enumerating directly.
    use_cache: bool = False
    # kind == "scheme" (benchmark is the derived scheme name)
    #: RMW lowering of the scheme's end-to-end mapping, per
    #: :data:`repro.core.most.SCHEME_RMW_LOWERINGS`.
    rmw_lowering: str = "rmw1al"


@dataclass
class RunRow:
    """The picklable result of one run: figure data + observability."""

    benchmark: str
    variant: str
    cycles: int = 0
    fence_cycles: int = 0
    total_cycles: int = 0
    checksum: int | None = None
    exit_code: int = 0
    #: wall-clock seconds of the run itself (engine build + execute).
    wall_seconds: float = 0.0
    #: translated-block / dispatch counters from RunStats.
    blocks_translated: int = 0
    guest_insns_translated: int = 0
    block_dispatches: int = 0
    chained_dispatches: int = 0
    helper_calls: int = 0
    #: optimizer work from OptStats.
    opt_folded: int = 0
    opt_mem_eliminated: int = 0
    opt_fences_merged: int = 0
    opt_dead_removed: int = 0
    opt_empty_fences_dropped: int = 0
    opt_helpers_inlined: int = 0
    #: tier-2 (superblock) counters from RunStats; all zero when
    #: tier-2 is off or the variant is native.
    tier2_traces: int = 0
    tier2_trace_blocks: int = 0
    tier2_trace_dispatches: int = 0
    tier2_cycles: int = 0
    #: behaviour-cache counters accumulated during the run (litmus
    #: ablations; zero for machine workloads).  ``cache_misses`` counts
    #: in-process misses; the disk pair splits those misses into
    #: persistent-layer hits and true enumerations.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_disk_hits: int = 0
    cache_disk_misses: int = 0
    #: staged-enumeration counters (litmus ablations; zero elsewhere):
    #: the naive rf × co product size, what was actually materialized,
    #: and the rf-stage cuts that account for the difference.
    enum_candidates_naive: int = 0
    enum_executions: int = 0
    enum_rf_pruned: int = 0
    enum_rf_rejected: int = 0
    #: reduction counters (litmus ablations/verify rows): consistent
    #: executions found, sleep-set skips, symmetric trace combos
    #: collapsed, and coherence classes explored by the DPOR search.
    enum_consistent: int = 0
    enum_sleep_skips: int = 0
    enum_symmetry_collapsed: int = 0
    enum_co_classes: int = 0
    #: translation-cache counters (machine workloads; zero for litmus
    #: ablations).  ``xlat_misses`` counts actual frontend+optimizer+
    #: backend pipeline runs — a fully warm run reports 0 — while
    #: ``blocks_translated`` above counts installs, identical warm or
    #: cold.  These depend on cache warmth, not on the spec: compare
    #: rows via :func:`deterministic_row`.
    xlat_hits: int = 0
    xlat_misses: int = 0
    xlat_disk_hits: int = 0
    #: fence cycles split by provenance tag (mapping rule / optimizer
    #: decision); values sum exactly to ``fence_cycles``.
    fence_origin_cycles: dict = field(default_factory=dict)
    #: hottest translated blocks: (guest_pc, dispatches, cycles)
    #: triples, by attributed cycles, descending.  ``None`` when the
    #: run tracked no profile at all (native runs), as opposed to
    #: ``()`` — "tracked, but nothing dispatched".
    hot_blocks: tuple | None = ()
    #: metrics-registry snapshot of this run (the picklable wire form
    #: of :meth:`repro.obs.metrics.MetricsRegistry.snapshot`), merged
    #: across the process boundary by :func:`run_parallel`.
    metrics: dict = field(default_factory=dict)
    #: trace_event dicts recorded in the worker while this spec ran
    #: (empty unless tracing is enabled).  ``run_parallel`` rebases
    #: them onto the parent tracer's timeline so a sweep leaves one
    #: merged Chrome trace with a lane per worker pid.
    trace_events: tuple = ()
    #: the worker tracer's ``perf_counter_ns`` epoch, needed to rebase
    #: ``trace_events`` onto another tracer's timeline.
    trace_epoch_ns: int = 0
    #: kind-specific extras (e.g. broken litmus tests of an ablation).
    payload: tuple = ()

    @property
    def fence_share(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.fence_cycles / self.total_cycles


#: Hot-block entries kept per run row (the profile's heavy tail is
#: noise; the figures only ever show a handful of blocks).
HOT_BLOCK_LIMIT = 8


def _hot_blocks(result) -> tuple | None:
    profile = getattr(result, "block_profile", None)
    if profile is None:
        # The run tracked no profile (native) — keep the distinction
        # from "tracked but empty" all the way into the exports.
        return None
    ranked = sorted(profile.items(),
                    key=lambda item: (-item[1][1], item[0]))
    return tuple(
        (pc, dispatches, cycles)
        for pc, (dispatches, cycles) in ranked[:HOT_BLOCK_LIMIT]
    )


def _row_from_workload(spec: RunSpec, outcome: WorkloadResult,
                       wall: float) -> RunRow:
    result = outcome.result
    return RunRow(
        benchmark=spec.benchmark,
        variant=spec.variant,
        cycles=result.elapsed_cycles,
        fence_cycles=result.fence_cycles,
        total_cycles=result.total_cycles,
        checksum=outcome.checksum,
        exit_code=result.exit_code,
        wall_seconds=outcome.wall_seconds or wall,
        blocks_translated=result.stats.blocks_translated,
        guest_insns_translated=result.stats.guest_insns_translated,
        block_dispatches=result.stats.block_dispatches,
        chained_dispatches=result.stats.chained_dispatches,
        helper_calls=result.stats.helper_calls,
        opt_folded=result.opt_stats.folded,
        opt_mem_eliminated=result.opt_stats.mem_eliminated,
        opt_fences_merged=result.opt_stats.fences_merged,
        opt_dead_removed=result.opt_stats.dead_removed,
        opt_empty_fences_dropped=getattr(
            result.opt_stats, "empty_fences_dropped", 0),
        opt_helpers_inlined=getattr(
            result.opt_stats, "helpers_inlined", 0),
        tier2_traces=getattr(result.stats, "tier2_traces", 0),
        tier2_trace_blocks=getattr(
            result.stats, "tier2_trace_blocks", 0),
        tier2_trace_dispatches=getattr(
            result.stats, "tier2_trace_dispatches", 0),
        tier2_cycles=getattr(result.stats, "tier2_cycles", 0),
        fence_origin_cycles=dict(
            getattr(result, "fence_cycles_by_origin", {}) or {}),
        hot_blocks=_hot_blocks(result),
        xlat_hits=getattr(result.stats, "xlat_hits", 0),
        xlat_misses=getattr(result.stats, "xlat_misses", 0),
        xlat_disk_hits=getattr(result.stats, "xlat_disk_hits", 0),
    )


def deterministic_row(row: RunRow) -> RunRow:
    """A copy of ``row`` with the warmth- and host-dependent fields
    zeroed (wall time, translation-cache hit/miss split).

    Everything else in a row is fully determined by its spec, so two
    normalized rows from the same spec compare equal whatever the
    worker layout, cache temperature or host speed — the form the
    determinism tests and the CI warm-vs-cold leg compare.
    """
    return replace(row, wall_seconds=0.0, xlat_hits=0,
                   xlat_misses=0, xlat_disk_hits=0,
                   trace_events=(), trace_epoch_ns=0)


def _run_metrics(spec: RunSpec, row: RunRow) -> dict:
    """A per-run metrics snapshot (the wire form of the registry).

    Built fresh per spec so merging snapshots is associative whatever
    the worker layout; ``run_parallel`` folds them into the sweep-wide
    registry on the parent side of the process boundary.  Only
    deterministic quantities go in (cycles, counts — never wall time),
    so rows stay bit-identical across worker layouts.
    """
    reg = MetricsRegistry()
    labels = {"kind": spec.kind, "variant": spec.variant}
    reg.counter("repro_runs_total",
                "Runs executed by the sweep harness") \
        .labels(**labels).inc()
    reg.histogram("repro_run_cycles",
                  "Elapsed machine cycles of one run") \
        .labels(**labels).observe(row.cycles)
    if row.blocks_translated:
        reg.counter("repro_blocks_translated_total",
                    "Guest blocks translated") \
            .labels(variant=spec.variant).inc(row.blocks_translated)
    if row.block_dispatches:
        reg.counter("repro_block_dispatches_total",
                    "Block dispatches through the runtime") \
            .labels(variant=spec.variant).inc(row.block_dispatches)
    fences = reg.counter(
        "repro_fence_cycles_total",
        "Fence cycles by provenance tag")
    for origin, cycles in sorted(row.fence_origin_cycles.items()):
        fences.labels(variant=spec.variant, origin=origin).inc(cycles)
    return reg.snapshot()


def _enum_delta(before: EnumerationStats,
                after: EnumerationStats) -> EnumerationStats:
    """Field-wise ``after - before`` over every counter."""
    return EnumerationStats(**{
        f.name: getattr(after, f.name) - getattr(before, f.name)
        for f in dataclasses.fields(EnumerationStats)
    })


def _enum_fields(run: EnumerationStats) -> dict:
    """EnumerationStats -> the ``enum_*`` RunRow kwargs."""
    return dict(
        enum_candidates_naive=run.candidates_naive,
        enum_executions=run.executions_enumerated,
        enum_rf_pruned=run.rf_options_pruned,
        enum_rf_rejected=(run.rf_rejected_rmw
                          + run.rf_rejected_coherence
                          + run.rf_rejected_precheck),
        enum_consistent=run.consistent,
        enum_sleep_skips=run.rf_sleep_skips,
        enum_symmetry_collapsed=run.symmetry_collapsed,
        enum_co_classes=run.co_classes,
    )


def _run_ablation(spec: RunSpec, started: float) -> RunRow:
    from ..core.ablations import run_named_ablation

    before = behavior_cache_stats()
    enum_before = enumeration_stats()
    result = run_named_ablation(spec.ablation or spec.benchmark)
    after = behavior_cache_stats()
    run = _enum_delta(enum_before, enumeration_stats())
    return RunRow(
        benchmark=spec.benchmark,
        variant=spec.variant,
        wall_seconds=time.perf_counter() - started,
        cache_hits=after.hits - before.hits,
        cache_misses=after.misses - before.misses,
        cache_disk_hits=after.disk_hits - before.disk_hits,
        cache_disk_misses=after.disk_misses - before.disk_misses,
        payload=tuple(result.broken_tests),
        **_enum_fields(run),
    )


def _behavior_digest(behs: frozenset) -> str:
    """A short, canonical digest of a behaviour set.

    Every shard computes this independently, so equal digests across
    worker layouts (or reductions) certify bit-identical behaviour
    sets without shipping the sets themselves through the pool.
    """
    canonical = sorted(sorted(b) for b in behs)
    return hashlib.sha256(repr(canonical).encode()).hexdigest()[:16]


def _run_verify(spec: RunSpec, started: float) -> RunRow:
    """One sharded-verification cell: enumerate the behaviours of one
    litmus test under one model with the requested reduction."""
    from ..core.corpus_large import verify_registry
    from ..core.dpor import reduced_behaviors
    from ..core.enumerate import behaviors, enumerate_consistent, \
        enumerate_executions, resolve_reduction
    from ..core.models import MODEL_BY_NAME

    registry = verify_registry()
    try:
        test = registry[spec.benchmark]
    except KeyError:
        raise ReproError(
            f"unknown litmus test {spec.benchmark!r}; expected one of "
            f"{sorted(registry)}") from None
    model_name = spec.model or "x86-tso"
    try:
        model = MODEL_BY_NAME[model_name]
    except KeyError:
        raise ReproError(
            f"unknown model {model_name!r}; expected one of "
            f"{sorted(MODEL_BY_NAME)}") from None
    mode = resolve_reduction(spec.reduction)

    cache_before = behavior_cache_stats()
    run = EnumerationStats()
    if spec.use_cache:
        # behaviors() merges its counters into the module-wide stats;
        # recover this run's share as a before/after delta.  A cache
        # hit legitimately reports zero enumeration work.
        enum_before = enumeration_stats()
        behs = behaviors(test.program, model, limit=spec.enum_limit,
                         reduction=mode)
        run = _enum_delta(enum_before, enumeration_stats())
    elif mode == "dpor":
        behs = reduced_behaviors(test.program, model,
                                 limit=spec.enum_limit, stats=run)
    elif mode == "staged":
        kwargs = {} if spec.enum_limit is None \
            else {"limit": spec.enum_limit}
        behs = frozenset(
            ex.full_behavior
            for ex in enumerate_consistent(test.program, model,
                                           stats=run, **kwargs)
        )
    else:  # naive
        kwargs = {} if spec.enum_limit is None \
            else {"limit": spec.enum_limit}
        out = set()
        for ex in enumerate_executions(test.program, stats=run,
                                       **kwargs):
            if model.is_consistent(ex):
                run.consistent += 1
                out.add(ex.full_behavior)
        behs = frozenset(out)
    cache_after = behavior_cache_stats()

    return RunRow(
        benchmark=spec.benchmark,
        variant=spec.variant,
        wall_seconds=time.perf_counter() - started,
        cache_hits=cache_after.hits - cache_before.hits,
        cache_misses=cache_after.misses - cache_before.misses,
        cache_disk_hits=cache_after.disk_hits - cache_before.disk_hits,
        cache_disk_misses=(cache_after.disk_misses
                           - cache_before.disk_misses),
        payload=(_behavior_digest(behs), len(behs)),
        **_enum_fields(run),
    )


def _run_scheme(spec: RunSpec, started: float) -> RunRow:
    """One scheme-matrix cell: Theorem-1 check of a derived mapping
    scheme (× RMW lowering) over the full x86 litmus corpus.

    ``payload`` is ``(ok, expected_ok, tests_checked, *broken)`` —
    the CLI gate compares the first two and names the rest.
    """
    from ..core.litmus_library import X86_CORPUS
    from ..core.models import ARM, X86
    from ..core.most import SCHEME_EXPECTED, SCHEME_MAPPINGS
    from ..core.verifier import check_corpus

    mapping_name = f"most-{spec.benchmark}-{spec.rmw_lowering}"
    try:
        mapping = SCHEME_MAPPINGS[mapping_name]
    except KeyError:
        raise ReproError(
            f"unknown scheme mapping {mapping_name!r}; expected one "
            f"of {sorted(SCHEME_MAPPINGS)}") from None

    cache_before = behavior_cache_stats()
    enum_before = enumeration_stats()
    report = check_corpus(X86_CORPUS, mapping, X86, ARM,
                          limit=spec.enum_limit)
    run = _enum_delta(enum_before, enumeration_stats())
    cache_after = behavior_cache_stats()
    broken = tuple(v.test_name for v in report.verdicts if not v.ok)
    return RunRow(
        benchmark=spec.benchmark,
        variant=spec.variant,
        wall_seconds=time.perf_counter() - started,
        cache_hits=cache_after.hits - cache_before.hits,
        cache_misses=cache_after.misses - cache_before.misses,
        cache_disk_hits=cache_after.disk_hits - cache_before.disk_hits,
        cache_disk_misses=(cache_after.disk_misses
                           - cache_before.disk_misses),
        payload=(report.ok, SCHEME_EXPECTED[mapping_name],
                 len(report.verdicts)) + broken,
        **_enum_fields(run),
    )


def execute_spec(spec: RunSpec) -> RunRow:
    """Worker entry point: build the engine in-process and run it."""
    started = time.perf_counter()
    if spec.kind == "kernel":
        if spec.kernel is None:
            raise ReproError(f"kernel spec missing for {spec.benchmark}")
        outcome = run_kernel(spec.kernel, spec.variant, seed=spec.seed,
                             costs=spec.costs, max_steps=spec.max_steps,
                             buffer_mode=spec.buffer_mode,
                             tier2_threshold=spec.tier2_threshold)
    elif spec.kind == "library":
        try:
            library = LIBRARY_BUILDERS[spec.library]()
        except KeyError:
            raise ReproError(
                f"unknown library {spec.library!r}; expected one of "
                f"{sorted(LIBRARY_BUILDERS)}") from None
        setup = MEMORY_SETUPS[spec.setup] if spec.setup else None
        outcome = run_library_workload(
            spec.function, spec.args, spec.calls, spec.variant, library,
            setup_memory=setup, seed=spec.seed, costs=spec.costs,
            max_steps=spec.max_steps, buffer_mode=spec.buffer_mode,
            tier2_threshold=spec.tier2_threshold)
    elif spec.kind == "cas":
        if spec.cas is None:
            raise ReproError(f"cas config missing for {spec.benchmark}")
        outcome = run_cas_benchmark(spec.cas, spec.variant,
                                    seed=spec.seed, costs=spec.costs,
                                    buffer_mode=spec.buffer_mode)
    elif spec.kind == "ablation":
        row = _run_ablation(spec, started)
        row.metrics = _run_metrics(spec, row)
        return row
    elif spec.kind == "verify":
        row = _run_verify(spec, started)
        row.metrics = _run_metrics(spec, row)
        return row
    elif spec.kind == "scheme":
        row = _run_scheme(spec, started)
        row.metrics = _run_metrics(spec, row)
        return row
    else:
        raise ReproError(f"unknown run-spec kind {spec.kind!r}")
    row = _row_from_workload(spec, outcome,
                             time.perf_counter() - started)
    row.metrics = _run_metrics(spec, row)
    return row


@dataclass(frozen=True)
class RunFailure:
    """One run that died in a worker, with enough identity to rerun it.

    Crossing the pool boundary as a plain record (rather than the
    exception itself) keeps the failure picklable whatever the worker
    raised, and lets the sweep keep its other rows.  ``code`` is the
    :data:`repro.errors.ERROR_CODES` taxonomy code, so sweep failures
    and serve error responses classify identically.
    """

    kind: str
    benchmark: str
    variant: str
    seed: int
    error: str
    code: str = "internal"

    def __str__(self) -> str:
        return (f"{self.kind}:{self.benchmark}/{self.variant}"
                f" (seed {self.seed}): [{self.code}] {self.error}")


def _pool_entry(spec: RunSpec):
    """What actually runs in the worker: a row, or a failure record.

    With tracing enabled the run is wrapped in one ``run.spec`` span
    and every event it recorded travels back on the row, so the parent
    can merge per-worker streams into a single sweep-wide trace.
    """
    tracer = get_tracer()
    start = None
    if tracer.enabled:
        # Forked workers inherit the parent tracer object verbatim —
        # restamp the pid so this worker's events land in its own lane.
        tracer.pid = os.getpid()
        start = len(tracer.events)
        span = tracer.span("run.spec", cat="sweep", kind=spec.kind,
                           benchmark=spec.benchmark,
                           variant=spec.variant, seed=spec.seed)
    try:
        if start is None:
            return execute_spec(spec)
        with span:
            row = execute_spec(spec)
    except Exception as exc:  # noqa: BLE001 - the boundary by design
        info = classify_error(exc)
        return RunFailure(
            kind=spec.kind,
            benchmark=spec.benchmark,
            variant=spec.variant,
            seed=spec.seed,
            error=info.message,
            code=info.code,
        )
    row.trace_events = tuple(dict(e) for e in tracer.events[start:])
    row.trace_epoch_ns = tracer.epoch_ns
    return row


def default_workers() -> int:
    """The pool size: ``REPRO_WORKERS`` if set, else the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ReproError(
                f"REPRO_WORKERS={env!r} is not an integer") from None
    return os.cpu_count() or 1


@dataclass
class SweepResult:
    """All rows of one sweep plus harness-level observability."""

    rows: list[RunRow] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    #: Specs that died in a worker; the surviving rows keep submission
    #: order, so partial sweeps stay deterministic and comparable.
    failures: list[RunFailure] = field(default_factory=list)
    #: Sweep-wide merge of every row's metrics snapshot.
    metrics: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def raise_failures(self) -> None:
        """Raise a :class:`ReproError` naming every failed spec."""
        if self.failures:
            detail = "; ".join(str(f) for f in self.failures)
            raise ReproError(
                f"{len(self.failures)} of "
                f"{len(self.rows) + len(self.failures)} sweep runs "
                f"failed: {detail}")


def _merge_metrics(rows: list[RunRow]) -> dict:
    merged = MetricsRegistry()
    for row in rows:
        if row.metrics:
            merged.merge(row.metrics)
    return merged.snapshot()


def run_parallel(specs, workers: int | None = None,
                 strict: bool = False) -> SweepResult:
    """Execute every spec, fanning out over a process pool.

    Rows come back in the order of ``specs`` regardless of completion
    order, and each run is fully determined by its spec (fresh machine,
    spec-owned seed), so the result table is identical for any worker
    count — the determinism contract the figure harnesses rely on.

    A run that raises in its worker does not lose the sweep: it is
    recorded in :attr:`SweepResult.failures` with the identity needed
    to rerun it (kind, benchmark, variant, seed).  ``strict=True``
    converts any failure into a :class:`ReproError` after the whole
    sweep has drained, so one bad cell still cannot cancel the rest.
    """
    specs = list(specs)
    workers = default_workers() if workers is None else max(1, workers)
    workers = min(workers, len(specs)) or 1
    started = time.perf_counter()
    tracer = get_tracer()
    with tracer.span("sweep.run_parallel", cat="sweep",
                     specs=len(specs), workers=workers):
        if workers == 1:
            outcomes = [_pool_entry(spec) for spec in specs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_pool_entry, specs))
    rows = [o for o in outcomes if isinstance(o, RunRow)]
    failures = [o for o in outcomes if isinstance(o, RunFailure)]
    if tracer.enabled and workers > 1:
        # Serial sweeps record straight into this tracer; pooled
        # sweeps ship each worker's events back on the rows.  Rebase
        # them here (perf_counter_ns is one shared monotonic clock)
        # so the merged trace shows one aligned lane per worker pid.
        worker_pids = set()
        for row in rows:
            if row.trace_events:
                tracer.merge_events(row.trace_events,
                                    epoch_ns=row.trace_epoch_ns)
                worker_pids.update(e.get("pid")
                                   for e in row.trace_events)
        for pid in sorted(p for p in worker_pids
                          if p and p != tracer.pid):
            tracer.process_metadata(pid, f"repro-worker-{pid}")
    if tracer.enabled:
        tracer.counter("sweep.outcomes", rows=len(rows),
                       failures=len(failures))
    result = SweepResult(rows=rows,
                         wall_seconds=time.perf_counter() - started,
                         workers=workers,
                         failures=failures,
                         metrics=_merge_metrics(rows))
    if strict:
        result.raise_failures()
    return result
