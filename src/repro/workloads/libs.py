"""Shared-library functions: guest bodies + native host costs.

Each function is defined once, as guest x86 assembly; the host-linked
"native" version executes the same algorithm (via the reference
interpreter — results match bit-for-bit) at precompiled-host cost.
The algorithms are cost-calibrated stand-ins (DESIGN.md): ``md5`` is a
multiplicative digest, not RFC 1321 — what matters for the paper's
Figures 13–14 is the *work shape*: rounds-per-word for digests,
square-and-multiply iterations for RSA, short Taylor kernels for libm,
hash-table probes for sqlite.

Native cost calibration notes (target: Figure 13/14 shapes):

* ``md5`` has no Arm hardware acceleration → small linked speedup
  (~1.4×); ``sha1``/``sha256`` map to the ARMv8 crypto extensions →
  large speedups (up to ~23× for sha256-8192).
* libm calls are short, so marshaling keeps Risotto below native
  (Figure 14); ``sqrt`` is a single instruction either way → ~1×.
* RSA sign is exponent-length-many modmul iterations; verify uses the
  short public exponent.
"""

from __future__ import annotations

import struct

from ..loader.hostlibs import HostFunction, HostLibrary
from ..loader.idl import Signature


def _bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


# ----------------------------------------------------------------------
# libm — Taylor/Newton kernels over pseudo-FP registers
# ----------------------------------------------------------------------
def _series_asm(name: str, *, init_sum: float | None,
                seed_with_x: bool, ratio_consts: list[float],
                negate_x2: bool, odd_denominators: bool = False,
                scale_result: float | None = None,
                shift_result: float | None = None,
                power_step_is_x: bool = False) -> str:
    """Emit an unrolled power-series kernel.

    state: rax = sum (bits), rbx = term, rcx = (±)x².
    Two families: *factorial-ratio* series (sin/cos/exp-style, each
    term multiplied by x²/c) and *odd-denominator* series (atan/log
    -style, power accumulated separately and divided by 2k+1).
    """
    lines = [f"{name}:"]
    # rcx = the per-term power step: x (exp-style) or ±x².
    if power_step_is_x:
        lines += ["    mov rcx, rdi"]
    else:
        lines += [
            "    mov rcx, rdi",
            "    fmul rcx, rdi",
        ]
    if negate_x2:
        lines += [
            f"    mov rdx, {_bits(-1.0)}",
            "    fmul rcx, rdx",
        ]
    if seed_with_x:
        lines += ["    mov rax, rdi", "    mov rbx, rdi"]
    else:
        lines += [
            f"    mov rax, {_bits(init_sum)}",
            f"    mov rbx, {_bits(1.0)}",
        ]
    for k, c in enumerate(ratio_consts, start=1):
        lines.append("    fmul rbx, rcx")
        if odd_denominators:
            lines += [
                "    mov rdx, rbx",
                f"    mov r8, {_bits(c)}",
                "    fdiv rdx, r8",
                "    fadd rax, rdx",
            ]
        else:
            lines += [
                f"    mov rdx, {_bits(c)}",
                "    fdiv rbx, rdx",
                "    fadd rax, rbx",
            ]
    if scale_result is not None:
        lines += [
            f"    mov rdx, {_bits(scale_result)}",
            "    fmul rax, rdx",
        ]
    if shift_result is not None:
        lines += [
            f"    mov rdx, {_bits(-1.0)}",
            "    fmul rax, rdx",
            f"    mov rdx, {_bits(shift_result)}",
            "    fadd rax, rdx",
        ]
    lines.append("    ret")
    return "\n".join(lines)


_SIN_ASM = _series_asm(
    "sin", init_sum=None, seed_with_x=True, negate_x2=True,
    ratio_consts=[6.0, 20.0, 42.0, 72.0, 110.0, 156.0])

_COS_ASM = _series_asm(
    "cos", init_sum=1.0, seed_with_x=False, negate_x2=True,
    ratio_consts=[2.0, 12.0, 30.0, 56.0, 90.0, 132.0])

_EXP_ASM = _series_asm(
    "exp", init_sum=1.0, seed_with_x=False, negate_x2=False,
    power_step_is_x=True,
    ratio_consts=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])

_ATAN_ASM = _series_asm(
    "atan", init_sum=None, seed_with_x=True, negate_x2=True,
    ratio_consts=[3.0, 5.0, 7.0, 9.0, 11.0], odd_denominators=True)

_ASIN_ASM = _series_asm(
    "asin", init_sum=None, seed_with_x=True, negate_x2=False,
    ratio_consts=[6.0, 40.0 / 3.0, 336.0 / 15.0, 3456.0 / 105.0],
    odd_denominators=True)

_ACOS_ASM = _series_asm(
    "acos", init_sum=None, seed_with_x=True, negate_x2=False,
    ratio_consts=[6.0, 40.0 / 3.0, 336.0 / 15.0, 3456.0 / 105.0],
    odd_denominators=True, shift_result=1.5707963267948966)

# log via the atanh series on t = (x-1)/(x+1): same odd-denominator
# profile, scaled by 2.
_LOG_ASM = """
log:
    mov rax, {one}
    mov rbx, rdi
    mov rcx, rdi
    mov rdx, {minus_one}
    fmul rdx, rax          ; -1.0
    fadd rbx, rdx          ; x - 1
    fadd rcx, rax          ; x + 1
    fdiv rbx, rcx          ; t
    mov rdi, rbx
""".format(one=_bits(1.0), minus_one=_bits(-1.0)) + _series_asm(
    "log_body", init_sum=None, seed_with_x=True, negate_x2=False,
    ratio_consts=[3.0, 5.0, 7.0, 9.0], odd_denominators=True,
    scale_result=2.0).replace("log_body:", "") + "\n"

_TAN_ASM = (
    _SIN_ASM.replace("sin:", "tan:").replace("    ret", "") +
    "\n    mov r9, rax            ; sin(x)\n" +
    "\n".join("    " + line.strip() for line in
              _COS_ASM.replace("cos:", "").strip().splitlines()
              if line.strip() and line.strip() != "ret") +
    "\n    mov rdx, rax\n    mov rax, r9\n    fdiv rax, rdx\n    ret\n")

_SQRT_ASM = """
sqrt:
    fsqrt rax, rdi
    ret
"""


def _f64_sig(name: str) -> Signature:
    return Signature(name=name, ret="f64", params=("f64",))


#: native libm costs: short precompiled kernels, calibrated to a
#: ~20-25x native-over-QEMU gap (Figure 14's ceiling).
_LIBM_COSTS = {
    "sin": 95, "cos": 95, "tan": 200, "exp": 120, "log": 110,
    "asin": 65, "acos": 68, "atan": 70, "sqrt": 6,
}

_LIBM_ASM = {
    "sin": _SIN_ASM, "cos": _COS_ASM, "tan": _TAN_ASM,
    "exp": _EXP_ASM, "log": _LOG_ASM, "asin": _ASIN_ASM,
    "acos": _ACOS_ASM, "atan": _ATAN_ASM, "sqrt": _SQRT_ASM,
}


def build_libm() -> HostLibrary:
    library = HostLibrary("libm")
    for name, asm in _LIBM_ASM.items():
        cost = _LIBM_COSTS[name]
        library.add(HostFunction(
            signature=_f64_sig(name),
            guest_asm=asm,
            native_cost=lambda _x, c=cost: c,
        ))
    return library


# ----------------------------------------------------------------------
# libcrypto — digests and RSA
# ----------------------------------------------------------------------
def _digest_asm(name: str, rounds: int, multiplier: int) -> str:
    """A rounds-per-word multiplicative digest over [rdi, rdi+rsi)."""
    round_block = "\n".join(
        f"""    imul rax, {multiplier + 2 * r}
    add rax, rdx
    mov r8, rax
    shr r8, 13
    xor rax, r8"""
        for r in range(rounds)
    )
    return f"""{name}:
    mov rax, 5381
    mov rcx, rsi
    shr rcx, 3
    cmp rcx, 0
    je {name}_done
{name}_loop:
    mov rdx, [rdi]
{round_block}
    add rdi, 8
    dec rcx
    jne {name}_loop
{name}_done:
    ret
"""


def _digest_sig(name: str) -> Signature:
    return Signature(name=name, ret="i64", params=("ptr", "i64"))


#: (guest rounds per word, native cycles per word, native base cycles).
#: md5 has no hardware acceleration; sha1/sha256 use the ARMv8 crypto
#: extensions, hence their tiny native per-word costs.
_DIGEST_PROFILE = {
    "md5": (4, 50.0, 400),
    "sha1": (8, 13.0, 300),
    "sha256": (16, 8.0, 250),
}


def _rsa_asm(name: str, iterations: int) -> str:
    """Square-and-multiply style modexp work loop.

    rdi = message; result rax.  The modulus is a fixed 61-bit prime so
    `div` keeps values bounded; the iteration count carries the
    key-length cost (1024/2048 for sign, 17 for verify).
    """
    modulus = (1 << 61) - 1
    return f"""{name}:
    mov rbx, rdi
    or rbx, 3
    mov r9, rbx            ; accumulator
    mov r10, {iterations}
{name}_loop:
    imul r9, rbx
    mov rax, r9
    mov rcx, {modulus}
    div rcx
    mov r9, rdx            ; acc = acc*base mod p
    imul rbx, rbx
    mov rax, rbx
    div rcx
    mov rbx, rdx           ; base = base^2 mod p
    dec r10
    jne {name}_loop
    mov rax, r9
    ret
"""


def build_libcrypto() -> HostLibrary:
    library = HostLibrary("libcrypto")
    for name, (rounds, per_word, base) in _DIGEST_PROFILE.items():
        library.add(HostFunction(
            signature=_digest_sig(name),
            guest_asm=_digest_asm(name, rounds, multiplier=33),
            native_cost=lambda _ptr, length, pw=per_word, b=base:
                int(b + pw * (length // 8)),
        ))
    # RSA: iterations = key bits for sign, public exponent for verify.
    for name, iterations, native_per_iter in (
            ("rsa1024_sign", 1024, 5.0),
            ("rsa1024_verify", 17, 3.0),
            ("rsa2048_sign", 2048, 6.5),
            ("rsa2048_verify", 17, 4.0),
    ):
        library.add(HostFunction(
            signature=Signature(name=name, ret="i64", params=("i64",)),
            guest_asm=_rsa_asm(name, iterations),
            native_cost=lambda _m, n=iterations, c=native_per_iter:
                int(120 + c * n),
        ))
    return library


# ----------------------------------------------------------------------
# libsqlite — a hash-table storage engine
# ----------------------------------------------------------------------
#: Guest address of the database region (open-addressed table of
#: (key, value) slot pairs) — shared by guest and native paths.
SQLITE_DB_BASE = 0x0300_0000
SQLITE_SLOTS = 4096

_SQLITE_ASM = f"""
sqlite_exec:
    ; rdi = op (0 insert, 1 select, 2 update, 3 delete)
    ; rsi = key (nonzero), rdx = value
    ; B-tree-ish node traversal: scan the index pages first (this is
    ; what makes one call substantial, like a real SQL statement).
    mov r10, {SQLITE_DB_BASE}
    mov r11, 96
sqlite_scan:
    mov r12, [r10]
    add r10, 8
    dec r11
    jne sqlite_scan
    mov rax, rsi
    mov rcx, {SQLITE_SLOTS - 1}
    and rax, rcx           ; slot index
    shl rax, 4             ; 16 bytes per slot
    mov rcx, {SQLITE_DB_BASE}
    add rcx, rax           ; slot address
    mov r8, 0              ; probe count
sqlite_probe:
    mov r9, [rcx]          ; slot key
    cmp r9, rsi
    je sqlite_found
    cmp r9, 0
    je sqlite_empty
    add rcx, 16
    inc r8
    cmp r8, 8
    jne sqlite_probe
    mov rax, -1            ; table section full
    ret
sqlite_empty:
    cmp rdi, 0
    jne sqlite_missing
    mov [rcx], rsi         ; insert key
    mov [rcx + 8], rdx     ; insert value
    mov rax, 1
    ret
sqlite_found:
    cmp rdi, 1
    je sqlite_select
    cmp rdi, 2
    je sqlite_update
    cmp rdi, 3
    je sqlite_delete
    mov rax, 0             ; insert over existing: no-op
    ret
sqlite_select:
    mov rax, [rcx + 8]
    ret
sqlite_update:
    mov [rcx + 8], rdx
    mov rax, 1
    ret
sqlite_delete:
    mov r9, 0
    mov [rcx], r9
    mov [rcx + 8], r9
    mov rax, 1
    ret
sqlite_missing:
    mov rax, 0
    ret
"""


def build_libsqlite() -> HostLibrary:
    library = HostLibrary("libsqlite")
    library.add(HostFunction(
        signature=Signature(name="sqlite_exec", ret="i64",
                            params=("i64", "i64", "i64")),
        guest_asm=_SQLITE_ASM,
        native_cost=lambda op, key, value: 600,
    ))
    return library


def standard_libraries() -> HostLibrary:
    """libm + libcrypto + libsqlite merged, as the host system ships."""
    from ..loader.hostlibs import merge_libraries

    return merge_libraries(build_libm(), build_libcrypto(),
                           build_libsqlite())
