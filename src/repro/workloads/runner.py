"""Workload execution harness: one entry point per benchmark family.

Runs a workload under any DBT variant (``qemu``, ``no-fences``,
``tcg-ver``, ``risotto``) or natively, on a freshly constructed
machine, and returns the :class:`~repro.dbt.engine.RunResult` plus the
workload's reported checksum/count — the raw material every figure
harness consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..dbt import DBTEngine, NATIVE, NativeRunner, RunResult, \
    VARIANT_NAMES, VARIANTS, resolve_variant
from ..dbt.config import Tier2Config
from ..errors import ReproError
from ..isa.arm.assembler import assemble as assemble_arm
from ..loader.gelf import GuestBinary, build_binary
from ..loader.hostlibs import ARG_REGISTERS, HostLibrary
from ..loader.linker import HostLinker
from ..machine.timing import CostModel
from ..machine.weakmem import BufferMode
from .kernels import KernelSpec, gen_arm_program, gen_x86_program

# Compatibility alias for the registry now owned by repro.dbt.config.
ALL_VARIANTS: tuple[str, ...] = VARIANT_NAMES


@dataclass
class WorkloadResult:
    variant: str
    result: RunResult
    checksum: int | None
    #: wall-clock seconds of engine construction + execution (the
    #: observability layer's per-run timing).
    wall_seconds: float = 0.0

    @property
    def cycles(self) -> int:
        return self.result.elapsed_cycles


def _resolve_tier2(tier2_threshold: int | None):
    """Map the harness knob onto the engine's ``tier2`` argument.

    ``None`` defers to the ``REPRO_TIER2_THRESHOLD`` environment (the
    engine's own default), ``0`` forces tier-2 off, and a positive
    count becomes a :class:`~repro.dbt.config.Tier2Config` promoting
    at that dispatch count.
    """
    if tier2_threshold is None:
        return {}
    if tier2_threshold <= 0:
        return {"tier2": None}
    return {"tier2": Tier2Config(threshold=tier2_threshold)}


def _make_engine(variant: str, n_cores: int, seed: int,
                 costs: CostModel | None,
                 buffer_mode: BufferMode = BufferMode.WEAK,
                 tier2_threshold: int | None = None):
    config = resolve_variant(variant)
    if config is None:
        engine = NativeRunner(n_cores=n_cores, seed=seed, costs=costs,
                              buffer_mode=buffer_mode)
    else:
        engine = DBTEngine(config, n_cores=n_cores, seed=seed,
                           costs=costs, buffer_mode=buffer_mode,
                           **_resolve_tier2(tier2_threshold))
    # Parity guard for grid sweeps: every variant of a benchmark,
    # native included, must run under the memory setup the spec asked
    # for — a silently defaulted buffer mode is the bug this catches.
    assert engine.machine.buffer_mode is buffer_mode, (
        f"{variant}: machine built with {engine.machine.buffer_mode}, "
        f"spec asked for {buffer_mode}")
    return engine


# ----------------------------------------------------------------------
# Kernel workloads (Figure 12)
# ----------------------------------------------------------------------
def run_kernel(spec: KernelSpec, variant: str,
               seed: int = 7, costs: CostModel | None = None,
               max_steps: int = 80_000_000,
               buffer_mode: BufferMode = BufferMode.WEAK,
               tier2_threshold: int | None = None,
               ) -> WorkloadResult:
    """Run one PARSEC/Phoenix kernel under a variant (or natively)."""
    started = time.perf_counter()
    n_cores = spec.threads
    engine = _make_engine(variant, n_cores, seed, costs, buffer_mode,
                          tier2_threshold)
    if variant == NATIVE:
        assembly = assemble_arm(gen_arm_program(spec), base=0x0100_0000
                                + 0x0F00_0000)
        engine.load_image(assembly.base, assembly.code)
        entry = assembly.labels["main"]
    else:
        binary = build_binary(gen_x86_program(spec))
        binary.load_into(engine.machine.memory)
        entry = binary.entry
    result = engine.run(entry, max_steps=max_steps)
    checksum = result.output[0] if result.output else None
    return WorkloadResult(variant=variant, result=result,
                          checksum=checksum,
                          wall_seconds=time.perf_counter() - started)


# ----------------------------------------------------------------------
# Library-calling workloads (Figures 13 and 14)
# ----------------------------------------------------------------------
def _library_guest_program(function: str, arg_exprs: tuple[int, ...],
                           calls: int) -> str:
    """Guest main: call `function@plt` ``calls`` times, accumulate the
    results, report the final value."""
    set_args = "\n".join(
        f"    mov {reg}, {value}"
        for reg, value in zip(ARG_REGISTERS, arg_exprs)
    )
    return f"""
main:
    mov r15, {calls}
    mov r14, 0
bench_loop:
{set_args}
    call {function}
    xor r14, rax
    dec r15
    jne bench_loop
    mov rdi, r14
    mov rax, 1
    syscall
    mov rdi, 0
    mov rax, 60
    syscall
"""


def run_library_workload(function_name: str, args: tuple[int, ...],
                         calls: int, variant: str,
                         library: HostLibrary,
                         setup_memory=None,
                         seed: int = 7,
                         costs: CostModel | None = None,
                         max_steps: int = 80_000_000,
                         buffer_mode: BufferMode = BufferMode.WEAK,
                         tier2_threshold: int | None = None,
                         ) -> WorkloadResult:
    """Benchmark a shared-library function under a variant.

    * DBT variants build a guest binary importing the function; the
      ``risotto`` variant additionally links the PLT entry to the host
      library (tcg-ver/qemu translate the guest library body).
    * ``native`` runs an Arm caller loop invoking the host function
      directly — no marshaling, the Figure 13/14 reference.
    """
    started = time.perf_counter()
    function = library[function_name]
    engine = _make_engine(variant, 1, seed, costs, buffer_mode,
                          tier2_threshold)
    memory = engine.machine.memory
    if setup_memory is not None:
        setup_memory(memory)

    if variant == NATIVE:
        trap = engine.runtime.alloc_trap(
            _native_call_trap(engine.runtime, function))
        set_args = "\n".join(
            f"    mov {_native_arg_reg(i)}, #{value}"
            for i, value in enumerate(args)
        )
        source = f"""
main:
    mov x21, #{calls}
    mov x22, #0
nloop:
{set_args}
    movz x6, #{trap}
    blr x6
    eor x22, x22, x8
    sub x21, x21, #1
    cbnz x21, nloop
    mov x13, x22
    mov x8, #1
    svc #0
    mov x13, #0
    mov x8, #60
    svc #0
"""
        assembly = assemble_arm(source, base=0x0F00_0000)
        engine.load_image(assembly.base, assembly.code)
        entry = assembly.labels["main"]
    else:
        binary = build_binary(
            _library_guest_program(function_name, args, calls),
            guest_libs={function_name: function.guest_asm},
        )
        binary.load_into(memory)
        if VARIANTS[variant].use_host_linker:
            linker = HostLinker(library, library.idl_source())
            report = linker.link(binary, engine.runtime)
            if function_name not in report.linked:
                raise ReproError(
                    f"{function_name} did not link: {report}")
        entry = binary.entry
    result = engine.run(entry, max_steps=max_steps)
    checksum = result.output[0] if result.output else None
    return WorkloadResult(variant=variant, result=result,
                          checksum=checksum,
                          wall_seconds=time.perf_counter() - started)


def _native_arg_reg(index: int) -> str:
    """Native calls use the same registers the guest map assigns to
    rdi/rsi/rdx/rcx, so one trap convention serves both worlds."""
    from ..dbt.runtime import _ARM_REG_OF_GUEST

    return _ARM_REG_OF_GUEST[ARG_REGISTERS[index]]


def _native_call_trap(runtime, function):
    from ..dbt.runtime import guest_reg

    n_args = len(function.signature.params)

    def trap(core):
        args = tuple(
            guest_reg(core, ARG_REGISTERS[i]) for i in range(n_args))
        value = function.invoke(runtime.machine.memory, args)
        core.cycles += function.cost(args) + core.costs.native_call
        core.set("x8", value)  # result in the rax slot
        core.pc = core.get("x30")

    return trap
