"""The stable public surface of the reproduction.

Everything a harness, notebook, or external tool should need lives
here under one import::

    from repro import api

    sweep = api.run_parallel(api.kernel_grid(api.ALL_SPECS,
                                             api.VARIANT_NAMES))
    result = api.run_kernel(api.SPEC_BY_NAME["freqmine"],
                            variant="risotto", seed=11)
    engine = api.make_engine(variant="qemu", n_cores=2)

Three rules hold across the surface:

* **consistent names** — the same concept is always spelled the same
  way: ``variant`` (a :data:`VARIANT_NAMES` entry), ``n_cores``,
  ``seed``, ``buffer_mode``, ``costs``, ``max_steps``;
* **keyword-only configuration** — run functions take the workload
  positionally and everything else keyword-only, so call sites stay
  readable and argument order can never silently swap;
* **re-exports are the implementation** — classes and grid builders
  come straight from their home modules (one definition, one identity:
  ``api.RunSpec is repro.workloads.RunSpec``); only the run functions
  are thin signature-normalizing wrappers.

The facade is additive: the underlying modules remain importable and
stable, but new code (benchmarks/, the fuzzer oracles, the
``python -m repro`` CLI) goes through :mod:`repro.api` only.
"""

from __future__ import annotations

from .core.behavior_cache import (
    cache_dir as behavior_cache_dir,
    clear_disk_cache as clear_behavior_cache,
    enabled as behavior_cache_enabled,
    namespace_usage as behavior_cache_namespaces,
)
from .core.corpus_large import FIVE_THREAD_CORPUS, verify_registry
from .core.dpor import reduced_behaviors
from .core.enumerate import behavior_cache_stats, enumeration_stats, \
    reset_enumeration_stats
from .core.models import MODEL_BY_NAME
from .core.most import (
    FenceScheme,
    MOST,
    SCHEME_EXPECTED,
    SCHEME_MAPPINGS,
    SCHEMES,
    SOURCE_TABLES,
    TARGET_MENUS,
    derive_scheme,
    known_origins,
    scheme_mapping,
)
from .dbt import DBTConfig, DBTEngine, NATIVE, NativeRunner, \
    RunResult, VARIANT_NAMES, VARIANTS, resolve_variant
from .dbt.config import DEFAULT_TIER2_THRESHOLD, Tier2Config, \
    tier2_from_env
from .dbt.xlat_cache import (
    cache_dir as xlat_cache_dir,
    cache_stats as xlat_cache_stats,
    clear_disk_cache as clear_xlat_cache,
    enabled as xlat_cache_enabled,
    get_cache as get_xlat_cache,
    namespace_usage as xlat_cache_namespaces,
    reset_memory as reset_xlat_memory,
)
from .errors import ErrorInfo, JobError, ReproError, classify_error
from .serve.jobs import (
    JOB_SCHEMA,
    JobResult,
    JobSpec,
    cas_job,
    execute_job as _execute_job,
    kernel_job,
    library_job,
)
from .machine.timing import CostModel
from .obs.flame import collapsed_stacks, write_collapsed
from .obs.history import (
    config_fingerprint,
    figures_in_history,
    history_dir,
    load_history,
    record_bench,
    render_trend,
)
from .obs.sentinel import check_payload, load_floors
from .machine.weakmem import BufferMode
from .workloads import (
    ALL_SPECS,
    gen_arm_program,
    gen_x86_program,
    PARSEC_SPECS,
    PHOENIX_SPECS,
    SPEC_BY_NAME,
    KernelSpec,
    RunFailure,
    RunRow,
    RunSpec,
    SweepResult,
    WorkloadResult,
    ablation_grid,
    cas_grid,
    default_workers,
    execute_spec,
    kernel_grid,
    library_grid,
    run_parallel,
    scheme_grid,
    verify_grid,
)
from .workloads import parallel as _parallel
from .workloads import runner as _runner
from .workloads.casbench import CasConfig, FIGURE15_CONFIGS, \
    throughput_from_cycles
from .workloads.libs import (
    build_libcrypto,
    build_libm,
    build_libsqlite,
    standard_libraries,
)
from .workloads.parallel import DATA_BUF, deterministic_row

__all__ = [
    # run functions (keyword-only signatures)
    "run_kernel", "run_library_workload", "run_cas_benchmark",
    "make_engine",
    # sweep harness
    "RunSpec", "RunRow", "RunFailure", "SweepResult", "run_parallel",
    "execute_spec", "default_workers", "deterministic_row",
    # workload building blocks
    "KernelSpec", "CasConfig", "WorkloadResult", "RunResult",
    "ALL_SPECS", "PARSEC_SPECS", "PHOENIX_SPECS", "SPEC_BY_NAME",
    "FIGURE15_CONFIGS", "DATA_BUF",
    "kernel_grid", "library_grid", "cas_grid", "ablation_grid",
    "scheme_grid", "verify_grid",
    # sharded verification / enumeration reduction
    "MODEL_BY_NAME", "FIVE_THREAD_CORPUS", "verify_registry",
    "reduced_behaviors", "enumeration_stats",
    "reset_enumeration_stats",
    # mapping-scheme family (MOST tables + derived schemes)
    "MOST", "FenceScheme", "SOURCE_TABLES", "TARGET_MENUS",
    "SCHEMES", "SCHEME_MAPPINGS", "SCHEME_EXPECTED",
    "derive_scheme", "scheme_mapping", "known_origins",
    "build_libm", "build_libcrypto", "build_libsqlite",
    "standard_libraries", "throughput_from_cycles",
    "gen_x86_program", "gen_arm_program",
    # variants and engine construction
    "VARIANTS", "VARIANT_NAMES", "NATIVE", "resolve_variant",
    "DBTConfig", "DBTEngine", "NativeRunner",
    "BufferMode", "CostModel", "ReproError",
    # tiered JIT (superblock) knobs
    "Tier2Config", "tier2_from_env", "DEFAULT_TIER2_THRESHOLD",
    # typed job surface (the canonical run description)
    "JobSpec", "JobResult", "JOB_SCHEMA", "submit",
    "kernel_job", "library_job", "cas_job",
    # error taxonomy (service boundaries + sweep failures)
    "ErrorInfo", "JobError", "classify_error",
    # cache controls
    "xlat_cache_stats", "xlat_cache_dir", "xlat_cache_enabled",
    "clear_xlat_cache", "reset_xlat_memory", "get_xlat_cache",
    "xlat_cache_namespaces",
    "behavior_cache_stats", "behavior_cache_dir",
    "behavior_cache_enabled", "clear_behavior_cache",
    "behavior_cache_namespaces",
    # performance observatory (bench history + regression sentinel)
    "record_bench", "load_history", "history_dir",
    "figures_in_history", "config_fingerprint", "render_trend",
    "check_payload", "load_floors",
    "collapsed_stacks", "write_collapsed",
]


def make_engine(*, variant: str, n_cores: int = 1, seed: int = 42,
                costs: CostModel | None = None,
                buffer_mode: BufferMode = BufferMode.WEAK,
                tier2_threshold: int | None = None):
    """Build the engine for ``variant`` on a fresh machine.

    Returns a :class:`~repro.dbt.engine.DBTEngine` for the DBT
    variants and a :class:`~repro.dbt.engine.NativeRunner` for
    ``"native"``; raises :class:`~repro.errors.ReproError` naming the
    valid variants on anything else.  ``tier2_threshold`` selects the
    superblock tier: ``None`` defers to ``REPRO_TIER2_THRESHOLD``,
    ``0`` forces it off, a positive count promotes at that hotness.
    """
    return _runner._make_engine(variant, n_cores, seed, costs,
                                buffer_mode, tier2_threshold)


def submit(job: JobSpec, *, library=None) -> JobResult:
    """Execute one typed job and return its typed result.

    The single dispatcher every run goes through: the ``run_*``
    wrappers below build a :class:`JobSpec` and call this, and the
    serve front-end executes the same jobs in its pool workers — so a
    served run and a local call are the same code path and their
    results are bit-identical.

    Raises the usual :class:`~repro.errors.ReproError` family on
    failure (service boundaries catch and classify instead — see
    :func:`repro.serve.jobs.run_job`).  ``library`` optionally
    overrides the job's registry library name with an already-built
    object (how :func:`run_library_workload` passes user libraries
    through).
    """
    return _execute_job(job, library=library)


def run_kernel(spec: KernelSpec, *, variant: str, seed: int = 7,
               costs: CostModel | None = None,
               max_steps: int = 80_000_000,
               buffer_mode: BufferMode = BufferMode.WEAK,
               tier2_threshold: int | None = None,
               ) -> WorkloadResult:
    """Run one PARSEC/Phoenix kernel under a variant (or natively)."""
    job = kernel_job(spec, variant=variant, seed=seed, costs=costs,
                     max_steps=max_steps, buffer_mode=buffer_mode,
                     tier2_threshold=tier2_threshold)
    return submit(job).outcome


def run_library_workload(function: str, args: tuple[int, ...],
                         calls: int, *, variant: str, library,
                         setup_memory=None, seed: int = 7,
                         costs: CostModel | None = None,
                         max_steps: int = 80_000_000,
                         buffer_mode: BufferMode = BufferMode.WEAK,
                         tier2_threshold: int | None = None,
                         ) -> WorkloadResult:
    """Benchmark a shared-library function under a variant.

    ``library`` is a :class:`~repro.loader.hostlibs.HostLibrary`
    object; ``setup_memory`` an optional callable applied to guest
    memory before the run.  A callable setup that is not a registered
    :data:`~repro.workloads.parallel.MEMORY_SETUPS` entry cannot
    travel on the wire, so it runs through the job's local override
    path here — the job itself stays the canonical description.
    """
    setup_name = next(
        (name for name, fn in _parallel.MEMORY_SETUPS.items()
         if fn is setup_memory), None)
    job = library_job(
        function, args, calls, variant=variant,
        library=getattr(library, "name", None),
        setup=setup_name, seed=seed, costs=costs,
        max_steps=max_steps, buffer_mode=buffer_mode,
        tier2_threshold=tier2_threshold)
    if setup_memory is not None and setup_name is None:
        # Unregistered setup callable: execute directly through the
        # runner (identical code path; only the wire form is off).
        return _runner.run_library_workload(
            function, args, calls, variant, library,
            setup_memory=setup_memory, seed=seed, costs=costs,
            max_steps=max_steps, buffer_mode=buffer_mode,
            tier2_threshold=tier2_threshold)
    return submit(job, library=library).outcome


def run_cas_benchmark(config: CasConfig, *, variant: str,
                      seed: int = 7,
                      costs: CostModel | None = None,
                      buffer_mode: BufferMode = BufferMode.WEAK,
                      ) -> WorkloadResult:
    """Run one Figure 15 CAS configuration under a variant."""
    job = cas_job(config, variant=variant, seed=seed, costs=costs,
                  buffer_mode=buffer_mode)
    return submit(job).outcome
