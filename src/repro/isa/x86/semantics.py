"""Reference interpreter for the guest x86 subset.

Single-threaded, sequentially consistent — this is the *oracle* the DBT
is differential-tested against: for any guest program, running it here
must produce the same final registers/memory as translating it to Arm
and running the translated code on the simulated host.

The interpreter is also what "executes" guest helper semantics inside
QEMU-style RMW helper calls.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from ...errors import GuestFault
from ..common import Imm, Insn, Mem, Reg, to_signed, to_unsigned
from .insns import CODER, CONDITIONAL_JUMPS, GPR

U64 = (1 << 64) - 1


@dataclass
class CpuState:
    """Architectural guest state: GPRs, flags, instruction pointer."""

    regs: dict[str, int] = field(
        default_factory=lambda: {r: 0 for r in GPR})
    flags: dict[str, bool] = field(
        default_factory=lambda: {"zf": False, "sf": False,
                                 "cf": False, "of": False})
    rip: int = 0
    halted: bool = False

    def copy(self) -> "CpuState":
        return CpuState(regs=dict(self.regs), flags=dict(self.flags),
                        rip=self.rip, halted=self.halted)


def evaluate_condition(suffix: str, flags: dict[str, bool]) -> bool:
    """Evaluate a Jcc/SETcc condition from the flag state."""
    zf, sf, cf, of = (flags["zf"], flags["sf"], flags["cf"], flags["of"])
    table = {
        "e": zf,
        "ne": not zf,
        "l": sf != of,
        "ge": sf == of,
        "le": zf or (sf != of),
        "g": (not zf) and (sf == of),
        "b": cf,
        "ae": not cf,
        "be": cf or zf,
        "a": (not cf) and (not zf),
        "s": sf,
        "ns": not sf,
    }
    try:
        return table[suffix]
    except KeyError:
        raise GuestFault(f"unknown condition {suffix!r}") from None


def bits_to_double(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & U64))[0]


def double_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


class Syscall(Exception):
    """Raised when the guest executes SYSCALL; the runtime handles it."""

    def __init__(self, state: CpuState):
        self.state = state
        super().__init__("guest syscall")


class X86Interpreter:
    """Executes decoded guest instructions against a memory object.

    ``memory`` must provide ``load_word(addr) -> int`` and
    ``store_word(addr, value)``; word size is 8 bytes.
    """

    def __init__(self, memory, syscall_handler=None):
        self.memory = memory
        self.syscall_handler = syscall_handler

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------
    def effective_address(self, state: CpuState, mem: Mem) -> int:
        addr = mem.offset
        if mem.base:
            addr += state.regs[mem.base]
        if mem.index:
            addr += state.regs[mem.index] * mem.scale
        return addr & U64

    def read(self, state: CpuState, op) -> int:
        if isinstance(op, Reg):
            return state.regs[op.name]
        if isinstance(op, Imm):
            return to_unsigned(op.value)
        if isinstance(op, Mem):
            return self.memory.load_word(
                self.effective_address(state, op))
        raise GuestFault(f"cannot read operand {op!r}")

    def write(self, state: CpuState, op, value: int) -> None:
        value &= U64
        if isinstance(op, Reg):
            state.regs[op.name] = value
        elif isinstance(op, Mem):
            self.memory.store_word(
                self.effective_address(state, op), value)
        else:
            raise GuestFault(f"cannot write operand {op!r}")

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------
    def _set_logic_flags(self, state: CpuState, result: int) -> None:
        state.flags["zf"] = (result & U64) == 0
        state.flags["sf"] = bool(result & (1 << 63))
        state.flags["cf"] = False
        state.flags["of"] = False

    def _set_add_flags(self, state: CpuState, a: int, b: int,
                       result: int) -> None:
        state.flags["zf"] = (result & U64) == 0
        state.flags["sf"] = bool(result & (1 << 63))
        state.flags["cf"] = (a + b) > U64
        sa, sb, sr = (to_signed(a), to_signed(b),
                      to_signed(result & U64))
        state.flags["of"] = (sa >= 0) == (sb >= 0) and (sr >= 0) != (sa >= 0)

    def _set_sub_flags(self, state: CpuState, a: int, b: int,
                       result: int) -> None:
        state.flags["zf"] = (result & U64) == 0
        state.flags["sf"] = bool(result & (1 << 63))
        state.flags["cf"] = a < b
        sa, sb, sr = (to_signed(a), to_signed(b),
                      to_signed(result & U64))
        state.flags["of"] = (sa >= 0) != (sb >= 0) and (sr >= 0) != (sa >= 0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, state: CpuState) -> None:
        """Fetch (from memory), decode and execute one instruction."""
        code = self.memory.read_bytes(state.rip, 32)
        insn, size = CODER.decode(code)
        state.rip += size
        self.execute(state, insn)

    def execute(self, state: CpuState, insn: Insn) -> None:
        """Execute one decoded instruction (rip already advanced)."""
        m = insn.mnemonic
        ops = insn.operands
        regs = state.regs

        if m == "nop":
            return
        if m == "hlt":
            state.halted = True
            return
        if m == "mfence" or m == "lfence" or m == "sfence":
            return  # ordering is invisible single-threaded
        if m == "mov":
            self.write(state, ops[0], self.read(state, ops[1]))
            return
        if m == "movzx":
            self.write(state, ops[0],
                       self.read(state, ops[1]) & 0xFFFFFFFF)
            return
        if m == "lea":
            if not isinstance(ops[1], Mem):
                raise GuestFault("lea needs a memory operand")
            self.write(state, ops[0],
                       self.effective_address(state, ops[1]))
            return
        if m in ("add", "sub", "and", "or", "xor", "shl", "shr", "sar",
                 "imul"):
            a = self.read(state, ops[0])
            b = self.read(state, ops[1])
            if m == "add":
                result = (a + b) & U64
                self._set_add_flags(state, a, b, result)
            elif m == "sub":
                result = (a - b) & U64
                self._set_sub_flags(state, a, b, result)
            elif m == "and":
                result = a & b
                self._set_logic_flags(state, result)
            elif m == "or":
                result = a | b
                self._set_logic_flags(state, result)
            elif m == "xor":
                result = a ^ b
                self._set_logic_flags(state, result)
            elif m == "shl":
                result = (a << (b & 63)) & U64
                self._set_logic_flags(state, result)
            elif m == "shr":
                result = a >> (b & 63)
                self._set_logic_flags(state, result)
            elif m == "sar":
                result = to_unsigned(to_signed(a) >> (b & 63))
                self._set_logic_flags(state, result)
            else:  # imul
                result = to_unsigned(to_signed(a) * to_signed(b))
                self._set_logic_flags(state, result)
            self.write(state, ops[0], result)
            return
        if m == "div":
            divisor = self.read(state, ops[0])
            if divisor == 0:
                raise GuestFault("division by zero")
            dividend = regs["rax"]
            regs["rax"] = dividend // divisor
            regs["rdx"] = dividend % divisor
            return
        if m in ("inc", "dec"):
            a = self.read(state, ops[0])
            delta = 1 if m == "inc" else -1
            result = (a + delta) & U64
            state.flags["zf"] = result == 0
            state.flags["sf"] = bool(result & (1 << 63))
            self.write(state, ops[0], result)
            return
        if m == "neg":
            a = self.read(state, ops[0])
            result = (-a) & U64
            self._set_sub_flags(state, 0, a, result)
            self.write(state, ops[0], result)
            return
        if m == "not":
            self.write(state, ops[0], ~self.read(state, ops[0]) & U64)
            return
        if m == "cmp":
            a = self.read(state, ops[0])
            b = self.read(state, ops[1])
            self._set_sub_flags(state, a, b, (a - b) & U64)
            return
        if m == "test":
            self._set_logic_flags(
                state,
                self.read(state, ops[0]) & self.read(state, ops[1]))
            return
        if m == "jmp":
            state.rip = self.read(state, ops[0])
            return
        if m in CONDITIONAL_JUMPS:
            if evaluate_condition(CONDITIONAL_JUMPS[m], state.flags):
                state.rip = self.read(state, ops[0])
            return
        if m == "call":
            regs["rsp"] = (regs["rsp"] - 8) & U64
            self.memory.store_word(regs["rsp"], state.rip)
            state.rip = self.read(state, ops[0])
            return
        if m == "ret":
            state.rip = self.memory.load_word(regs["rsp"])
            regs["rsp"] = (regs["rsp"] + 8) & U64
            return
        if m == "push":
            regs["rsp"] = (regs["rsp"] - 8) & U64
            self.memory.store_word(regs["rsp"], self.read(state, ops[0]))
            return
        if m == "pop":
            self.write(state, ops[0],
                       self.memory.load_word(regs["rsp"]))
            regs["rsp"] = (regs["rsp"] + 8) & U64
            return
        if m == "cmpxchg":
            addr = self.effective_address(state, ops[0])
            current = self.memory.load_word(addr)
            if current == regs["rax"]:
                self.memory.store_word(addr, self.read(state, ops[1]))
                state.flags["zf"] = True
            else:
                regs["rax"] = current
                state.flags["zf"] = False
            return
        if m == "xadd":
            addr = self.effective_address(state, ops[0])
            current = self.memory.load_word(addr)
            addend = self.read(state, ops[1])
            total = (current + addend) & U64
            self.memory.store_word(addr, total)
            self.write(state, ops[1], current)
            self._set_add_flags(state, current, addend, total)
            return
        if m == "xchg":
            addr = self.effective_address(state, ops[0])
            current = self.memory.load_word(addr)
            self.memory.store_word(addr, self.read(state, ops[1]))
            self.write(state, ops[1], current)
            return
        if m in ("fadd", "fmul", "fdiv"):
            a = bits_to_double(self.read(state, ops[0]))
            b = bits_to_double(self.read(state, ops[1]))
            if m == "fadd":
                value = a + b
            elif m == "fmul":
                value = a * b
            else:
                if b == 0.0:
                    raise GuestFault("float division by zero")
                value = a / b
            self.write(state, ops[0], double_to_bits(value))
            return
        if m == "fsqrt":
            a = bits_to_double(self.read(state, ops[1]))
            if a < 0:
                raise GuestFault("sqrt of negative value")
            self.write(state, ops[0], double_to_bits(math.sqrt(a)))
            return
        if m == "syscall":
            if self.syscall_handler is None:
                raise Syscall(state)
            self.syscall_handler(state)
            return
        raise GuestFault(f"unimplemented instruction {insn}")

    # ------------------------------------------------------------------
    def run(self, state: CpuState, max_steps: int = 1_000_000) -> int:
        """Run until HLT; returns the executed instruction count."""
        steps = 0
        while not state.halted:
            if steps >= max_steps:
                raise GuestFault(
                    f"guest did not halt within {max_steps} steps")
            self.step(state)
            steps += 1
        return steps
