"""A two-pass text assembler for the guest x86 subset.

Syntax (Intel-flavoured)::

    ; comment
    start:
        mov rax, 5
        mov rcx, [rbx + 8]
        mov [rbx + rcx*8 + 16], rax
        lock cmpxchg [rdi], rsi
        jne start
        ret

Branch targets assemble to absolute 64-bit immediates, so pass one
only needs operand *kinds* to lay out addresses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import AssemblerError
from ..common import Imm, Insn, Label, Mem, Reg
from .insns import CODER, REGISTER_IDS

_LABEL_RE = re.compile(r"^([.\w]+):$")
_INT_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")
_IDENT_RE = re.compile(r"^[.\w]+$")


@dataclass
class Assembly:
    """The result of assembling one source unit."""

    code: bytes
    base: int
    labels: dict[str, int]
    insns: list[Insn]
    #: Byte address of each instruction, parallel to ``insns``.
    addresses: list[int]

    def label(self, name: str) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise AssemblerError(f"unknown label {name!r}") from None


def _parse_int(text: str) -> int:
    return int(text, 0)


def parse_operand(text: str) -> Reg | Imm | Mem | Label:
    """Parse one operand: register, immediate, memory ref, or label."""
    text = text.strip()
    if not text:
        raise AssemblerError("empty operand")
    if text.startswith("["):
        if not text.endswith("]"):
            raise AssemblerError(f"unterminated memory operand {text!r}")
        return _parse_mem(text[1:-1])
    lowered = text.lower()
    if lowered in REGISTER_IDS:
        return Reg(lowered)
    if _INT_RE.match(text):
        return Imm(_parse_int(text))
    if _IDENT_RE.match(text):
        return Label(text)
    raise AssemblerError(f"cannot parse operand {text!r}")


def _parse_mem(inner: str) -> Mem:
    base: str | None = None
    index: str | None = None
    scale = 1
    offset = 0
    # Normalize "a - 4" into "+ -4" then split on '+'.
    normalized = inner.replace("-", "+-")
    for raw in normalized.split("+"):
        term = "".join(raw.split())  # drop all internal whitespace
        if not term:
            continue
        lowered = term.lower()
        if "*" in term:
            reg_part, scale_part = (p.strip() for p in term.split("*", 1))
            if reg_part.lower() not in REGISTER_IDS:
                raise AssemblerError(f"bad index register {reg_part!r}")
            if index is not None:
                raise AssemblerError(f"two index registers in [{inner}]")
            index = reg_part.lower()
            scale = _parse_int(scale_part)
        elif lowered in REGISTER_IDS:
            if base is None:
                base = lowered
            elif index is None:
                index = lowered
            else:
                raise AssemblerError(f"too many registers in [{inner}]")
        elif _INT_RE.match(term):
            offset += _parse_int(term)
        else:
            raise AssemblerError(f"cannot parse memory term {term!r}")
    return Mem(base=base, offset=offset, index=index, scale=scale)


def parse_line(line: str) -> Insn | str | None:
    """Parse a source line into an Insn, a label name, or None."""
    code = line.split(";", 1)[0].strip()
    if not code:
        return None
    match = _LABEL_RE.match(code)
    if match:
        return match.group(1)
    lock = False
    if code.lower().startswith("lock "):
        lock = True
        code = code[5:].strip()
    parts = code.split(None, 1)
    mnemonic = parts[0].lower()
    operands: tuple = ()
    if len(parts) > 1:
        operands = tuple(
            parse_operand(tok) for tok in _split_operands(parts[1])
        )
    return Insn(mnemonic, operands, lock=lock)


def _split_operands(text: str) -> list[str]:
    """Split on commas that are not inside brackets."""
    out, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        out.append("".join(current))
    return [tok for tok in (t.strip() for t in out) if tok]


def _resolve(insn: Insn, labels: dict[str, int]) -> Insn:
    resolved = []
    for op in insn.operands:
        if isinstance(op, Label):
            if op.name not in labels:
                raise AssemblerError(f"undefined label {op.name!r}")
            resolved.append(Imm(labels[op.name]))
        else:
            resolved.append(op)
    return Insn(insn.mnemonic, tuple(resolved), lock=insn.lock)


def assemble(source: str, base: int = 0x400000,
             external_labels: dict[str, int] | None = None) -> Assembly:
    """Assemble text into bytes loaded at ``base``.

    ``external_labels`` lets callers pre-bind symbols (e.g. PLT entry
    addresses injected by the guest-binary builder).
    """
    items: list[Insn | str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            item = parse_line(line)
        except AssemblerError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
        if item is not None:
            items.append(item)

    # Pass 1: lay out addresses.  Label operands have the same encoded
    # size as immediates, so sizes are final already.
    labels: dict[str, int] = dict(external_labels or {})
    addresses: list[int] = []
    insns: list[Insn] = []
    cursor = base
    for item in items:
        if isinstance(item, str):
            if item in labels:
                raise AssemblerError(f"duplicate label {item!r}")
            labels[item] = cursor
            continue
        placeholder = Insn(
            item.mnemonic,
            tuple(Imm(0) if isinstance(op, Label) else op
                  for op in item.operands),
            lock=item.lock,
        )
        addresses.append(cursor)
        insns.append(item)
        cursor += CODER.encoded_size(placeholder)

    # Pass 2: resolve and encode.
    code = bytearray()
    resolved_insns = []
    for insn in insns:
        resolved = _resolve(insn, labels)
        resolved_insns.append(resolved)
        code.extend(CODER.encode(resolved))

    return Assembly(
        code=bytes(code), base=base, labels=labels,
        insns=resolved_insns, addresses=addresses,
    )
