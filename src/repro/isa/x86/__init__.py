"""Guest x86 ISA: instruction set, assembler, byte coder, interpreter."""

from .assembler import Assembly, assemble, parse_line, parse_operand
from .insns import (
    BLOCK_TERMINATORS,
    CODER,
    CONDITIONAL_JUMPS,
    CONDITIONS,
    GPR,
    OPCODES,
    REGISTER_IDS,
)
from .semantics import (
    CpuState,
    Syscall,
    X86Interpreter,
    bits_to_double,
    double_to_bits,
    evaluate_condition,
)

__all__ = [
    "Assembly", "assemble", "parse_line", "parse_operand",
    "BLOCK_TERMINATORS", "CODER", "CONDITIONAL_JUMPS", "CONDITIONS",
    "GPR", "OPCODES", "REGISTER_IDS",
    "CpuState", "Syscall", "X86Interpreter",
    "bits_to_double", "double_to_bits", "evaluate_condition",
]
