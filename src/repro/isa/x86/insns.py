"""The guest x86 instruction set (a faithful 64-bit subset).

Covers everything the paper's translator needs from guest binaries:
data movement, ALU with flags, branches/calls/stack, fences, and the
``LOCK``-prefixed RMW family.  ``FADD``/``FMUL``/``FDIV``/``FSQRT``
stand in for SSE scalar-double arithmetic on general registers (the
value is an IEEE-754 double bit pattern) — the substitution documented
in DESIGN.md that lets us reproduce QEMU's software-float emulation
cost without modelling XMM state.
"""

from __future__ import annotations

from ..common import InsnCoder

#: General-purpose registers, in encoding order.
GPR: tuple[str, ...] = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

REGISTER_IDS: dict[str, int] = {name: i for i, name in enumerate(GPR)}

#: Flag names (subset sufficient for the conditions below).
FLAGS: tuple[str, ...] = ("zf", "sf", "cf", "of")

#: Condition-code suffix -> predicate over flags, used by Jcc and the
#: TCG frontend's setcond/brcond generation.
CONDITIONS: dict[str, str] = {
    "e": "zf",
    "ne": "!zf",
    "l": "sf!=of",
    "ge": "sf==of",
    "le": "zf|sf!=of",
    "g": "!zf&sf==of",
    "b": "cf",
    "ae": "!cf",
    "be": "cf|zf",
    "a": "!cf&!zf",
    "s": "sf",
    "ns": "!sf",
}

#: Opcode assignments.  Gaps are left between groups for future ops.
OPCODES: dict[str, int] = {
    # data movement
    "mov": 0x01,
    "lea": 0x02,
    "movzx": 0x03,
    # ALU
    "add": 0x10,
    "sub": 0x11,
    "and": 0x12,
    "or": 0x13,
    "xor": 0x14,
    "shl": 0x15,
    "shr": 0x16,
    "sar": 0x17,
    "imul": 0x18,
    "div": 0x19,
    "inc": 0x1A,
    "dec": 0x1B,
    "neg": 0x1C,
    "not": 0x1D,
    # flags
    "cmp": 0x20,
    "test": 0x21,
    # control flow
    "jmp": 0x30,
    "je": 0x31,
    "jne": 0x32,
    "jl": 0x33,
    "jge": 0x34,
    "jle": 0x35,
    "jg": 0x36,
    "jb": 0x37,
    "jae": 0x38,
    "jbe": 0x39,
    "ja": 0x3A,
    "js": 0x3B,
    "jns": 0x3C,
    "call": 0x3D,
    "ret": 0x3E,
    # stack
    "push": 0x40,
    "pop": 0x41,
    # fences and atomics
    "mfence": 0x50,
    "lfence": 0x51,
    "sfence": 0x52,
    "cmpxchg": 0x53,
    "xadd": 0x54,
    "xchg": 0x55,
    # pseudo scalar-double FP on general registers
    "fadd": 0x60,
    "fmul": 0x61,
    "fdiv": 0x62,
    "fsqrt": 0x63,
    # system
    "syscall": 0x70,
    "nop": 0x71,
    "hlt": 0x72,
}

#: Mnemonics that end a basic block for the translator.
BLOCK_TERMINATORS: frozenset[str] = frozenset(
    {"jmp", "call", "ret", "hlt", "syscall"}
    | {m for m in OPCODES if m.startswith("j") and m != "jmp"} | {"jmp"}
)

#: Conditional jumps (mnemonic -> condition suffix).
CONDITIONAL_JUMPS: dict[str, str] = {
    f"j{suffix}": suffix for suffix in CONDITIONS
}

#: The coder instance for this ISA (LOCK prefix allowed).
CODER = InsnCoder("x86", OPCODES, REGISTER_IDS, allow_lock=True)
