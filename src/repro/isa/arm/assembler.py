"""A two-pass text assembler for the host Arm subset.

Syntax (A64-flavoured)::

    // comment
    loop:
        mov x0, #42
        ldr x1, [x2, #8]
        add x1, x1, x0
        str x1, [x2, #8]
        cbnz x3, loop
        dmbff
        ret

Branch targets assemble to absolute 64-bit immediates (same layout
trick as the x86 assembler).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import AssemblerError
from ..common import Imm, Insn, Label, Mem, Reg
from .insns import CODER, REGISTER_IDS

_LABEL_RE = re.compile(r"^([.\w]+):$")
_INT_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")
_IDENT_RE = re.compile(r"^[.\w]+$")


@dataclass
class Assembly:
    """The result of assembling one Arm source unit."""

    code: bytes
    base: int
    labels: dict[str, int]
    insns: list[Insn]
    addresses: list[int]

    def label(self, name: str) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise AssemblerError(f"unknown label {name!r}") from None


def parse_operand(text: str) -> Reg | Imm | Mem | Label:
    text = text.strip()
    if not text:
        raise AssemblerError("empty operand")
    if text.startswith("["):
        if not text.endswith("]"):
            raise AssemblerError(f"unterminated memory operand {text!r}")
        return _parse_mem(text[1:-1])
    if text.startswith("#"):
        body = text[1:]
        if not _INT_RE.match(body):
            raise AssemblerError(f"bad immediate {text!r}")
        return Imm(int(body, 0))
    lowered = text.lower()
    if lowered in REGISTER_IDS:
        return Reg(lowered)
    if _INT_RE.match(text):
        return Imm(int(text, 0))
    if _IDENT_RE.match(text):
        return Label(text)
    raise AssemblerError(f"cannot parse operand {text!r}")


def _parse_mem(inner: str) -> Mem:
    parts = [p.strip() for p in inner.split(",")]
    if not parts or parts[0].lower() not in REGISTER_IDS:
        raise AssemblerError(f"bad base register in [{inner}]")
    base = parts[0].lower()
    offset = 0
    index = None
    if len(parts) == 2:
        second = parts[1]
        if second.startswith("#"):
            offset = int(second[1:], 0)
        elif second.lower() in REGISTER_IDS:
            index = second.lower()
        else:
            raise AssemblerError(f"bad memory term {second!r}")
    elif len(parts) > 2:
        raise AssemblerError(f"too many memory terms in [{inner}]")
    return Mem(base=base, offset=offset, index=index, scale=1)


def parse_line(line: str) -> Insn | str | None:
    code = line.split("//", 1)[0].strip()
    if not code:
        return None
    match = _LABEL_RE.match(code)
    if match:
        return match.group(1)
    parts = code.split(None, 1)
    mnemonic = parts[0].lower()
    operands: tuple = ()
    if len(parts) > 1:
        operands = tuple(
            parse_operand(tok) for tok in _split_operands(parts[1])
        )
    return Insn(mnemonic, operands)


def _split_operands(text: str) -> list[str]:
    out, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        out.append("".join(current))
    return [tok for tok in (t.strip() for t in out) if tok]


def assemble(source: str, base: int = 0x10000000,
             external_labels: dict[str, int] | None = None) -> Assembly:
    """Assemble Arm text into bytes loaded at ``base``."""
    items: list[Insn | str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            item = parse_line(line)
        except AssemblerError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
        if item is not None:
            items.append(item)

    labels: dict[str, int] = dict(external_labels or {})
    addresses: list[int] = []
    insns: list[Insn] = []
    cursor = base
    for item in items:
        if isinstance(item, str):
            if item in labels:
                raise AssemblerError(f"duplicate label {item!r}")
            labels[item] = cursor
            continue
        placeholder = Insn(
            item.mnemonic,
            tuple(Imm(0) if isinstance(op, Label) else op
                  for op in item.operands),
        )
        addresses.append(cursor)
        insns.append(item)
        cursor += CODER.encoded_size(placeholder)

    code = bytearray()
    resolved_insns = []
    for insn in insns:
        resolved_ops = []
        for op in insn.operands:
            if isinstance(op, Label):
                if op.name not in labels:
                    raise AssemblerError(f"undefined label {op.name!r}")
                resolved_ops.append(Imm(labels[op.name]))
            else:
                resolved_ops.append(op)
        resolved = Insn(insn.mnemonic, tuple(resolved_ops))
        resolved_insns.append(resolved)
        code.extend(CODER.encode(resolved))

    return Assembly(
        code=bytes(code), base=base, labels=labels,
        insns=resolved_insns, addresses=addresses,
    )
