"""Host Arm ISA: instruction set, assembler, byte coder."""

from .assembler import Assembly, assemble, parse_line, parse_operand
from .insns import (
    ACCESS_ORDERING,
    BLOCK_TERMINATORS,
    CODER,
    CONDITIONAL_BRANCHES,
    CONDITIONS,
    GPR,
    LINK_REGISTER,
    OPCODES,
    REGISTER_IDS,
)

__all__ = [
    "Assembly", "assemble", "parse_line", "parse_operand",
    "ACCESS_ORDERING", "BLOCK_TERMINATORS", "CODER",
    "CONDITIONAL_BRANCHES", "CONDITIONS", "GPR", "LINK_REGISTER",
    "OPCODES", "REGISTER_IDS",
]
