"""The host Arm (A64-flavoured) instruction set.

Covers the mapping targets of Figures 1/7: plain ``LDR``/``STR``,
acquire/release/acquirePC accesses (``LDAR``/``STLR``/``LDAPR``),
exclusives (``LDXR``/``STXR`` and their A/L variants), the ARMv8.1
single-instruction atomics (``CAS*``, ``LDADDAL``, ``SWPAL``), the three
``DMB`` flavours, and enough ALU/branch/call material to host the TCG
backend's output.

Scalar FP (``fadd``/``fmul``/``fdiv``/``fsqrt``) operates on general
registers holding IEEE-754 double bit patterns, mirroring the x86-side
substitution documented in DESIGN.md.
"""

from __future__ import annotations

from ..common import InsnCoder

#: General-purpose registers.  x31 is written ``xzr`` (zero register);
#: ``sp`` is a separate register in this simplified model.
GPR: tuple[str, ...] = tuple(f"x{i}" for i in range(31)) + ("sp", "xzr")

REGISTER_IDS: dict[str, int] = {name: i for i, name in enumerate(GPR)}

#: Link register alias used by BL/RET.
LINK_REGISTER = "x30"

#: Condition suffixes for B.cond, evaluated over NZCV.
CONDITIONS: tuple[str, ...] = (
    "eq", "ne", "lt", "ge", "le", "gt", "lo", "hs", "ls", "hi",
    "mi", "pl",
)

OPCODES: dict[str, int] = {
    # moves / ALU
    "mov": 0x01,
    "movz": 0x02,
    "add": 0x10,
    "sub": 0x11,
    "and": 0x12,
    "orr": 0x13,
    "eor": 0x14,
    "lsl": 0x15,
    "lsr": 0x16,
    "asr": 0x17,
    "mul": 0x18,
    "udiv": 0x19,
    "mvn": 0x1A,
    "neg": 0x1B,
    # compare / conditional select
    "cmp": 0x20,
    "cset": 0x21,
    "csel": 0x22,
    # branches
    "b": 0x30,
    "b.eq": 0x31,
    "b.ne": 0x32,
    "b.lt": 0x33,
    "b.ge": 0x34,
    "b.le": 0x35,
    "b.gt": 0x36,
    "b.lo": 0x37,
    "b.hs": 0x38,
    "b.ls": 0x39,
    "b.hi": 0x3A,
    "b.mi": 0x3B,
    "b.pl": 0x3C,
    "cbz": 0x3D,
    "cbnz": 0x3E,
    "bl": 0x3F,
    "blr": 0x40,
    "br": 0x41,
    "ret": 0x42,
    # plain and ordered memory accesses
    "ldr": 0x50,
    "str": 0x51,
    "ldar": 0x52,
    "ldapr": 0x53,
    "stlr": 0x54,
    # exclusives
    "ldxr": 0x58,
    "stxr": 0x59,
    "ldaxr": 0x5A,
    "stlxr": 0x5B,
    # ARMv8.1 atomics
    "cas": 0x60,
    "casa": 0x61,
    "casl": 0x62,
    "casal": 0x63,
    "ldaddal": 0x64,
    "swpal": 0x65,
    # fences
    "dmbff": 0x70,
    "dmbld": 0x71,
    "dmbst": 0x72,
    # pseudo scalar-double FP on general registers
    "fadd": 0x80,
    "fmul": 0x81,
    "fdiv": 0x82,
    "fsqrt": 0x83,
    # system
    "svc": 0x90,
    "nop": 0x91,
    "hlt": 0x92,
}

#: Mnemonics that end a translation block.
BLOCK_TERMINATORS: frozenset[str] = frozenset({
    "b", "br", "bl", "blr", "ret", "cbz", "cbnz", "svc", "hlt",
} | {m for m in OPCODES if m.startswith("b.")})

#: Conditional branch mnemonic -> condition suffix.
CONDITIONAL_BRANCHES: dict[str, str] = {
    f"b.{c}": c for c in CONDITIONS
}

#: Memory-ordering class of each memory-access mnemonic, consumed by
#: the weak-memory engine: "plain", "acq" (A), "acqpc" (Q), "rel" (L).
ACCESS_ORDERING: dict[str, str] = {
    "ldr": "plain",
    "str": "plain",
    "ldar": "acq",
    "ldapr": "acqpc",
    "stlr": "rel",
    "ldxr": "plain",
    "stxr": "plain",
    "ldaxr": "acq",
    "stlxr": "rel",
    "cas": "plain",
    "casa": "acq",
    "casl": "rel",
    "casal": "acq+rel",
    "ldaddal": "acq+rel",
    "swpal": "acq+rel",
}

CODER = InsnCoder("arm", OPCODES, REGISTER_IDS, allow_lock=False)
