"""Operand model and the byte-encoding machinery shared by both ISAs.

Instructions are a mnemonic plus a tuple of operands; operands are
registers, 64-bit immediates, or a base+index*scale+offset memory
reference.  The wire format (our own, deliberately simple) is:

    [0xF0 lock-prefix]? opcode:1 nops:1 (operand)*

    operand := 0x01 reg:1
             | 0x02 imm:8 (signed little-endian)
             | 0x03 base:1 index:1 scale:1 offset:4 (signed)

Register ids and opcode numbers are per-ISA tables.  The encoding is
variable-length like real x86, which keeps the DBT's "decode at IP,
advance by instruction size" loop faithful.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import AssemblerError, DecodeError

_LOCK_PREFIX = 0xF0
_TAG_REG = 0x01
_TAG_IMM = 0x02
_TAG_MEM = 0x03
_NO_REG = 0xFF

_U64_MASK = (1 << 64) - 1


def to_signed(value: int, bits: int = 64) -> int:
    """Two's-complement interpretation of a ``bits``-wide value."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def to_unsigned(value: int, bits: int = 64) -> int:
    return value & ((1 << bits) - 1)


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """A 64-bit immediate operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + offset]``."""

    base: str | None = None
    offset: int = 0
    index: str | None = None
    scale: int = 1

    def __str__(self) -> str:
        parts = []
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}")
        if self.offset or not parts:
            parts.append(str(self.offset))
        return "[" + " + ".join(parts) + "]"


@dataclass(frozen=True)
class Label:
    """A not-yet-resolved branch target (assembly-time only)."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Reg | Imm | Mem | Label


@dataclass(frozen=True)
class Insn:
    """One instruction: mnemonic + operands (+ x86 LOCK prefix)."""

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    lock: bool = False

    def __str__(self) -> str:
        prefix = "lock " if self.lock else ""
        if not self.operands:
            return prefix + self.mnemonic
        return (prefix + self.mnemonic + " "
                + ", ".join(str(op) for op in self.operands))


class InsnCoder:
    """Table-driven encoder/decoder for one ISA.

    ``opcodes`` maps mnemonics to opcode bytes; ``registers`` maps
    register names to ids.  Both directions are validated eagerly so a
    mis-declared table fails at import time, not mid-translation.
    """

    def __init__(self, name: str, opcodes: dict[str, int],
                 registers: dict[str, int], allow_lock: bool = False):
        self.name = name
        self.opcodes = dict(opcodes)
        self.registers = dict(registers)
        self.allow_lock = allow_lock
        self._mnemonic_of = {v: k for k, v in opcodes.items()}
        self._reg_of = {v: k for k, v in registers.items()}
        if len(self._mnemonic_of) != len(opcodes):
            raise AssemblerError(f"{name}: duplicate opcode bytes")
        if len(self._reg_of) != len(registers):
            raise AssemblerError(f"{name}: duplicate register ids")
        if _NO_REG in self._reg_of:
            raise AssemblerError(f"{name}: register id 0xFF is reserved")

    # ------------------------------------------------------------------
    # Encode
    # ------------------------------------------------------------------
    def encode(self, insn: Insn) -> bytes:
        opcode = self.opcodes.get(insn.mnemonic)
        if opcode is None:
            raise AssemblerError(
                f"{self.name}: unknown mnemonic {insn.mnemonic!r}")
        if insn.lock and not self.allow_lock:
            raise AssemblerError(
                f"{self.name}: LOCK prefix not supported")
        out = bytearray()
        if insn.lock:
            out.append(_LOCK_PREFIX)
        out.append(opcode)
        out.append(len(insn.operands))
        for op in insn.operands:
            out.extend(self._encode_operand(insn, op))
        return bytes(out)

    def _encode_operand(self, insn: Insn, op: Operand) -> bytes:
        if isinstance(op, Reg):
            rid = self.registers.get(op.name)
            if rid is None:
                raise AssemblerError(
                    f"{self.name}: unknown register {op.name!r} "
                    f"in {insn}")
            return bytes((_TAG_REG, rid))
        if isinstance(op, Imm):
            return bytes((_TAG_IMM,)) + struct.pack(
                "<q", to_signed(to_unsigned(op.value)))
        if isinstance(op, Mem):
            base = self.registers.get(op.base, _NO_REG) \
                if op.base else _NO_REG
            if op.base and base == _NO_REG:
                raise AssemblerError(
                    f"{self.name}: unknown base register {op.base!r}")
            index = self.registers.get(op.index, _NO_REG) \
                if op.index else _NO_REG
            if op.index and index == _NO_REG:
                raise AssemblerError(
                    f"{self.name}: unknown index register {op.index!r}")
            if op.scale not in (1, 2, 4, 8):
                raise AssemblerError(
                    f"{self.name}: bad scale {op.scale} in {insn}")
            return bytes((_TAG_MEM, base, index, op.scale)) + \
                struct.pack("<i", op.offset)
        if isinstance(op, Label):
            raise AssemblerError(
                f"{self.name}: unresolved label {op.name!r} in {insn}")
        raise AssemblerError(f"{self.name}: bad operand {op!r}")

    def encoded_size(self, insn: Insn) -> int:
        return len(self.encode(insn))

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode(self, data: bytes, offset: int = 0) -> tuple[Insn, int]:
        """Decode one instruction; returns (insn, size_in_bytes)."""
        start = offset
        if offset >= len(data):
            raise DecodeError(f"{self.name}: decode past end of code")
        lock = False
        if data[offset] == _LOCK_PREFIX:
            if not self.allow_lock:
                raise DecodeError(f"{self.name}: stray LOCK prefix")
            lock = True
            offset += 1
        mnemonic = self._mnemonic_of.get(data[offset])
        if mnemonic is None:
            raise DecodeError(
                f"{self.name}: unknown opcode 0x{data[offset]:02x} "
                f"at offset {start}")
        offset += 1
        count = data[offset]
        offset += 1
        operands: list[Operand] = []
        for _ in range(count):
            op, offset = self._decode_operand(data, offset)
            operands.append(op)
        return Insn(mnemonic, tuple(operands), lock=lock), offset - start

    def _decode_operand(self, data: bytes,
                        offset: int) -> tuple[Operand, int]:
        tag = data[offset]
        offset += 1
        if tag == _TAG_REG:
            name = self._reg_of.get(data[offset])
            if name is None:
                raise DecodeError(
                    f"{self.name}: unknown register id {data[offset]}")
            return Reg(name), offset + 1
        if tag == _TAG_IMM:
            (value,) = struct.unpack_from("<q", data, offset)
            return Imm(value), offset + 8
        if tag == _TAG_MEM:
            base_id, index_id, scale = data[offset:offset + 3]
            (disp,) = struct.unpack_from("<i", data, offset + 3)
            base = self._reg_of.get(base_id) if base_id != _NO_REG \
                else None
            index = self._reg_of.get(index_id) if index_id != _NO_REG \
                else None
            return Mem(base=base, offset=disp, index=index,
                       scale=scale), offset + 7
        raise DecodeError(f"{self.name}: bad operand tag 0x{tag:02x}")

    # ------------------------------------------------------------------
    def assemble_block(self, insns: list[Insn]) -> bytes:
        """Encode a straight-line sequence."""
        return b"".join(self.encode(i) for i in insns)

    def disassemble(self, data: bytes) -> list[Insn]:
        """Decode an entire byte buffer (for tests and dumps)."""
        out = []
        offset = 0
        while offset < len(data):
            insn, size = self.decode(data, offset)
            out.append(insn)
            offset += size
        return out
