"""Instruction-set definitions for the guest (x86) and host (Arm) ISAs.

Both ISAs are compact but complete enough to exercise every code path
the paper's translator needs: loads/stores with addressing modes, ALU
and flag-setting ops, branches and calls, fences, and the atomic RMW
families (``LOCK CMPXCHG``/``XADD`` on x86; exclusives, ``CAS`` and
``LDADD`` on Arm).

Byte encodings are this library's own fixed scheme (see
:mod:`repro.isa.common`): faithful x86/A64 bit-level encodings are out
of scope per DESIGN.md — the translator's interesting behaviour lives in
the decode→IR→encode pipeline and the memory-ordering semantics, not in
ModRM bytes.
"""

from .common import Imm, Insn, Label, Mem, Reg

__all__ = ["Imm", "Insn", "Label", "Mem", "Reg"]
