"""The unified ``python -m repro`` command line.

One entry point over the subsystems that already have their own
runners (which keep working unchanged):

* ``run`` — execute a figure sweep through the parallel harness and
  print the paper-style report + stats footer (optionally exporting
  ``bench_*.json``);
* ``serve`` — the translation-as-a-service server (delegates to
  ``python -m repro.serve.server``): typed jobs over a line-delimited
  JSON socket, batched over the process pool;
* ``loadgen`` — the QPS load harness against a running server
  (delegates to ``python -m repro.serve.loadgen``);
* ``fuzz`` — the differential fuzzer (delegates to
  ``python -m repro.fuzz``);
* ``obsreport`` — render bench/trace artefacts as text (delegates to
  ``python -m repro.analysis.obsreport``);
* ``perf`` — the performance observatory: record bench exports into
  the append-only history store, check fresh exports against recorded
  baselines with the noise-aware regression sentinel, and render
  trend tables / flamegraph collapsed stacks;
* ``cache`` — inspect or clear the persistent caches (behavior
  enumeration + block translation).

Everything the CLI runs goes through :mod:`repro.api` — it is the
facade's first consumer.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import api
from .errors import ReproError

#: Figure sweeps the ``run`` subcommand can regenerate directly (the
#: library figures 13/14 carry their case tables in benchmarks/ and
#: run through pytest).
RUN_FIGURES = ("fig12", "fig15")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Risotto reproduction: sweeps, fuzzing, "
                    "observability and cache maintenance.",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    run = sub.add_parser(
        "run", help="run a figure sweep through the parallel harness")
    run.add_argument("figure", choices=RUN_FIGURES,
                     help="which figure's sweep to run")
    run.add_argument("--benchmarks", metavar="A,B,...",
                     help="comma-separated benchmark subset "
                          "(fig12: kernel names)")
    run.add_argument("--variants", metavar="V,W,...",
                     help="comma-separated variant subset "
                          f"(default: all of {api.VARIANT_NAMES})")
    run.add_argument("--iterations", type=int, default=None,
                     help="kernel iteration count override (fig12)")
    run.add_argument("--seed", type=int, default=7,
                     help="run seed (default 7)")
    run.add_argument("--tier2-threshold", type=int, default=None,
                     metavar="N",
                     help="promote blocks dispatched N times to "
                          "tier-2 superblock traces (fig12; default: "
                          "off, or REPRO_TIER2_THRESHOLD; 0 forces "
                          "off)")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: REPRO_WORKERS "
                          "or the cpu count)")
    run.add_argument("--bench-json", metavar="PATH",
                     help="write the machine-readable export here")
    run.add_argument("--no-footer", action="store_true",
                     help="suppress the harness stats footer")

    verify = sub.add_parser(
        "verify",
        help="sharded Theorem-1 behaviour enumeration over a litmus "
             "corpus")
    verify.add_argument("--corpus", choices=("classic", "large", "all"),
                        default="all",
                        help="classic = the paper corpus, large = the "
                             "5-thread fixtures, all = both (default)")
    verify.add_argument("--tests", metavar="T1,T2,...",
                        help="explicit litmus-test subset (overrides "
                             "--corpus)")
    verify.add_argument("--models", metavar="M1,M2,...",
                        default="x86-tso",
                        help="comma-separated model names "
                             "(default: x86-tso)")
    verify.add_argument("--reduction",
                        choices=("dpor", "staged", "naive"),
                        default="dpor",
                        help="enumeration strategy (default: dpor)")
    verify.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: "
                             "REPRO_WORKERS or the cpu count)")
    verify.add_argument("--enum-limit", type=int, default=None,
                        metavar="N",
                        help="materialized-candidate cap per cell "
                             "(default: enumerator default)")
    verify.add_argument("--use-cache", action="store_true",
                        help="serve cells through the behaviour cache")
    verify.add_argument("--cache-ns", metavar="NAME",
                        help="behaviour-cache namespace "
                             "(REPRO_BEHAVIOR_CACHE_NS) for this run")
    verify.add_argument("--min-pruned", type=float, default=None,
                        metavar="FRAC",
                        help="fail (exit 1) when the sweep's pruned "
                             "fraction drops below this floor")
    verify.add_argument("--stats-txt", metavar="PATH",
                        help="write the verifier stats report here")
    verify.add_argument("--bench-json", metavar="PATH",
                        help="write the machine-readable export here")
    verify.add_argument("--schemes", nargs="?", const="all",
                        metavar="S1,S2,...",
                        help="sweep the derived mapping-scheme family "
                             "(Theorem-1 corpus check per scheme × "
                             "RMW lowering) instead of the litmus "
                             "grid; optional comma-separated scheme "
                             "subset (default: all)")
    verify.add_argument("--record", action="store_true",
                        help="append the --bench-json export to the "
                             "perf-observatory history store")

    serve = sub.add_parser(
        "serve",
        help="translation-as-a-service server (line-delimited JSON "
             "jobs, batched over the process pool)",
        add_help=False)
    serve.add_argument("args", nargs=argparse.REMAINDER)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay a deterministic job mix against a serve server "
             "at a fixed QPS",
        add_help=False)
    loadgen.add_argument("args", nargs=argparse.REMAINDER)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzer (python -m repro.fuzz)",
        add_help=False)
    fuzz.add_argument("args", nargs=argparse.REMAINDER)

    obsreport = sub.add_parser(
        "obsreport",
        help="render bench/trace artefacts "
             "(python -m repro.analysis.obsreport)",
        add_help=False)
    obsreport.add_argument("args", nargs=argparse.REMAINDER)

    perf = sub.add_parser(
        "perf",
        help="bench history, regression sentinel and trend reports")
    perf_sub = perf.add_subparsers(dest="perf_command",
                                   metavar="action")
    record = perf_sub.add_parser(
        "record", help="append bench_*.json exports to the history "
                       "store")
    record.add_argument("files", nargs="+", metavar="BENCH_JSON")
    record.add_argument("--history", metavar="DIR",
                        help="history store location (default: "
                             "REPRO_BENCH_HISTORY_DIR or "
                             "results/history)")
    record.add_argument("--rev", metavar="REV",
                        help="record under this revision (default: "
                             "git rev-parse --short HEAD)")
    record.add_argument("--note", default="",
                        help="free-form note stored with the record")
    check = perf_sub.add_parser(
        "check", help="compare bench_*.json exports against the "
                      "recorded baselines (exit 1 on regression)")
    check.add_argument("files", nargs="+", metavar="BENCH_JSON")
    check.add_argument("--history", metavar="DIR",
                       help="history store location")
    check.add_argument("--window", type=int, default=5,
                       help="baseline records per fingerprint "
                            "(default 5)")
    check.add_argument("--mad-k", type=float, default=3.0,
                       help="MAD multiplier of the noise band "
                            "(default 3.0)")
    check.add_argument("--rel-tol", type=float, default=0.05,
                       help="relative tolerance floor (default 0.05)")
    check.add_argument("--floors", metavar="FILE",
                       help="absolute metric floors (accepts the "
                            "legacy verify_floor.json shape)")
    check.add_argument("--require-baseline", action="store_true",
                       help="fail when a payload has no matching "
                            "history baseline instead of skipping")
    report = perf_sub.add_parser(
        "report", help="render per-bench trend tables and flamegraph "
                       "collapsed stacks")
    report.add_argument("figures", nargs="*", metavar="FIGURE",
                        help="figures to report (default: every "
                             "figure in the store)")
    report.add_argument("--history", metavar="DIR",
                        help="history store location")
    report.add_argument("--format", choices=("text", "md"),
                        default="text",
                        help="trend table format (default text)")
    report.add_argument("--flame", metavar="OUT",
                        help="write a collapsed-stack (flamegraph) "
                             "export of --bench hot-block profiles")
    report.add_argument("--bench", metavar="BENCH_JSON", nargs="+",
                        default=(),
                        help="bench exports whose hot blocks feed "
                             "--flame")

    cache = sub.add_parser(
        "cache", help="persistent cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command",
                                     metavar="action")
    stats = cache_sub.add_parser(
        "stats", help="show cache locations, sizes and counters")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable output")
    clear = cache_sub.add_parser(
        "clear", help="remove persisted cache entries")
    clear.add_argument("--xlat", action="store_true",
                       help="only the translation cache")
    clear.add_argument("--behavior", action="store_true",
                       help="only the behavior cache")
    return parser


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _csv(value: str | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    items = tuple(v.strip() for v in value.split(",") if v.strip())
    if not items:
        raise ReproError(f"empty list argument {value!r}")
    return items


def _run_specs(args):
    variants = _csv(args.variants) or api.VARIANT_NAMES
    for variant in variants:
        api.resolve_variant(variant)  # fail early, naming valid names
    if args.figure == "fig12":
        specs = api.ALL_SPECS
        if args.benchmarks:
            wanted = _csv(args.benchmarks)
            unknown = set(wanted) - set(api.SPEC_BY_NAME)
            if unknown:
                raise ReproError(
                    f"unknown benchmarks {sorted(unknown)}; expected "
                    f"a subset of {sorted(api.SPEC_BY_NAME)}")
            specs = tuple(api.SPEC_BY_NAME[name] for name in wanted)
        return api.kernel_grid(specs, variants,
                               iterations=args.iterations,
                               seed=args.seed,
                               tier2_threshold=args.tier2_threshold)
    if args.figure == "fig15":
        return api.cas_grid(api.FIGURE15_CONFIGS, variants,
                            seed=args.seed)
    raise ReproError(f"unknown figure {args.figure!r}")  # unreachable


def _cmd_run(args) -> int:
    from .analysis import BenchTable, run_stats_footer
    from .analysis.export import write_bench_json
    from .obs.trace import flush_env_trace

    specs = _run_specs(args)
    sweep = api.run_parallel(specs, workers=args.workers, strict=True)
    table = BenchTable.from_rows(args.figure, sweep)
    if args.figure == "fig12":
        from .analysis import figure12_report
        if table.baseline in table.variants():
            print(figure12_report(table))
        else:
            print(_cycles_report(table))
    else:
        from .analysis.report import figure15_report
        series = _fig15_series(sweep)
        print(figure15_report(series))
    if not args.no_footer:
        print(run_stats_footer(sweep, f"{args.figure} harness stats"))
    if args.bench_json:
        path = write_bench_json(
            args.bench_json, args.figure, table=table, sweep=sweep,
            config={
                "benchmarks": sorted({s.benchmark for s in specs}),
                "variants": sorted({s.variant for s in specs}),
                "iterations": args.iterations,
                "seed": args.seed,
                "tier2_threshold": args.tier2_threshold,
            })
        print(f"wrote {path}")
    trace_path = flush_env_trace()
    if trace_path:
        print(f"wrote {trace_path}")
    return 0


def _cycles_report(table) -> str:
    """Absolute-cycles table for sweeps that omit the figure's
    baseline variant (relative run times would be undefined)."""
    variants = table.variants()
    lines = [
        f"{table.name} — cycles "
        f"(sweep omits the {table.baseline!r} baseline)",
        f"{'benchmark':18s}" + "".join(f"{v:>14s}" for v in variants),
    ]
    for bench in table.benchmarks():
        cells = "".join(f"{table.cycles(bench, v):14d}"
                        for v in variants)
        lines.append(f"{bench:18s}{cells}")
    return "\n".join(lines)


def _fig15_series(sweep) -> dict:
    """Figure 15's throughput curves from the sweep's rows, as the
    ``variant -> [(config label, ops/s), ...]`` shape
    :func:`~repro.analysis.report.figure15_report` renders."""
    config_by_label = {c.label: c for c in api.FIGURE15_CONFIGS}
    series: dict[str, list[tuple[str, float]]] = {}
    for row in sweep:
        config = config_by_label[row.benchmark]
        series.setdefault(row.variant, []).append(
            (row.benchmark,
             api.throughput_from_cycles(config, row.cycles)))
    return series


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def _verify_tests(args) -> tuple[str, ...]:
    registry = api.verify_registry()
    if args.tests:
        wanted = _csv(args.tests)
        unknown = set(wanted) - set(registry)
        if unknown:
            raise ReproError(
                f"unknown litmus tests {sorted(unknown)}; expected a "
                f"subset of {sorted(registry)}")
        return wanted
    large = {t.name for t in api.FIVE_THREAD_CORPUS}
    if args.corpus == "large":
        return tuple(name for name in registry if name in large)
    if args.corpus == "classic":
        return tuple(name for name in registry if name not in large)
    return tuple(registry)


def _verify_report(sweep, args, stats) -> str:
    lines = [
        f"sharded verification — reduction={args.reduction} "
        f"workers={sweep.workers}",
        f"{'test':12s} {'model/reduction':24s} {'behs':>5s} "
        f"{'digest':16s} {'naive':>10s} {'materialized':>12s} "
        f"{'wall_s':>8s}",
    ]
    for row in sweep:
        digest, count = (row.payload + ("?", 0))[:2] if row.payload \
            else ("?", 0)
        lines.append(
            f"{row.benchmark:12s} {row.variant:24s} {count:5d} "
            f"{digest:16s} {row.enum_candidates_naive:10d} "
            f"{row.enum_executions:12d} {row.wall_seconds:8.2f}")
    lines.append("")
    from .analysis import run_stats_footer
    lines.append(run_stats_footer(sweep, "verify harness stats"))
    lines.append(
        f"pruned fraction: {stats.enum_pruned_fraction:.4f} "
        f"({stats.enum_executions} of {stats.enum_candidates_naive} "
        f"naive candidates materialized)")
    return "\n".join(lines)


def _cmd_schemes(args) -> int:
    """``verify --schemes``: Theorem-1 gate over the derived family.

    Every (scheme × RMW lowering) cell checks the full x86 corpus and
    must land on its *expected* verdict: sound schemes must pass, and
    the negative controls must stay broken — an unexpectedly green
    control means the checker lost its teeth, and fails the gate too.
    """
    from .analysis import run_stats_footer
    from .analysis.export import write_bench_json

    names = None if args.schemes == "all" else _csv(args.schemes)
    specs = api.scheme_grid(names, enum_limit=args.enum_limit)
    sweep = api.run_parallel(specs, workers=args.workers, strict=True)

    lines = [
        "scheme-matrix: Theorem-1 corpus checks for the derived "
        "mapping family",
        "",
        f"{'scheme':12s} {'mapping':24s} {'tests':>5s} "
        f"{'verdict':8s} {'expected':8s} {'gate':6s} broken",
    ]
    failures = 0
    rows_extra = {}
    for spec, row in zip(specs, sweep):
        ok, expected, checked = row.payload[:3]
        broken = row.payload[3:]
        gate_ok = ok == expected
        failures += 0 if gate_ok else 1
        verdict = "sound" if ok else "broken"
        wanted = "sound" if expected else "broken"
        mapping = f"most-{spec.benchmark}-{spec.rmw_lowering}"
        lines.append(
            f"{spec.benchmark:12s} {mapping:24s} {checked:5d} "
            f"{verdict:8s} {wanted:8s} "
            f"{'ok' if gate_ok else 'FAIL':6s} "
            f"{', '.join(broken) if broken else '-'}")
        rows_extra[mapping] = {
            "scheme": spec.benchmark,
            "rmw_lowering": spec.rmw_lowering,
            "variant": spec.variant,
            "ok": bool(ok),
            "expected_ok": bool(expected),
            "tests_checked": int(checked),
            "broken_tests": list(broken),
        }
    lines.append("")
    lines.append(run_stats_footer(sweep, "scheme-matrix stats"))
    print("\n".join(lines))

    if args.bench_json:
        path = write_bench_json(
            args.bench_json, "schemes", sweep=sweep,
            config={
                "schemes": [spec.benchmark for spec in specs],
                "rmw_lowerings": [spec.rmw_lowering for spec in specs],
                "enum_limit": args.enum_limit,
            },
            extra={
                "gate_failures": failures,
                "verdicts": rows_extra,
            },
            record=args.record)
        print(f"wrote {path}")
    from .obs.trace import flush_env_trace
    trace_path = flush_env_trace()
    if trace_path:
        print(f"wrote {trace_path}")
    if failures:
        print(f"FAIL: {failures} scheme cell(s) off their expected "
              f"Theorem-1 verdict", file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args) -> int:
    import os

    from .analysis.export import write_bench_json
    from .analysis.stats import aggregate_sweep

    if args.schemes is not None:
        return _cmd_schemes(args)
    if args.cache_ns:
        os.environ["REPRO_BEHAVIOR_CACHE_NS"] = args.cache_ns
    models = _csv(args.models) or ("x86-tso",)
    unknown = set(models) - set(api.MODEL_BY_NAME)
    if unknown:
        raise ReproError(
            f"unknown models {sorted(unknown)}; expected a subset of "
            f"{sorted(api.MODEL_BY_NAME)}")
    specs = api.verify_grid(
        _verify_tests(args), models, reduction=args.reduction,
        enum_limit=args.enum_limit, use_cache=args.use_cache)
    sweep = api.run_parallel(specs, workers=args.workers, strict=True)
    stats = aggregate_sweep(sweep)
    report = _verify_report(sweep, args, stats)
    print(report)
    if args.stats_txt:
        from pathlib import Path
        path = Path(args.stats_txt)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report + "\n")
        print(f"wrote {path}")
    if args.bench_json:
        path = write_bench_json(
            args.bench_json, "verify", sweep=sweep,
            config={
                "reduction": args.reduction,
                "models": list(models),
                "tests": [spec.benchmark for spec in specs],
                "enum_limit": args.enum_limit,
                "use_cache": bool(args.use_cache),
            },
            extra={
                "reduction": args.reduction,
                "models": list(models),
                "tests": [spec.benchmark for spec in specs],
                "pruned_fraction": stats.enum_pruned_fraction,
                "behavior_digests": {
                    f"{row.benchmark}|{row.variant}": list(row.payload)
                    for row in sweep
                },
            },
            record=args.record)
        print(f"wrote {path}")
    from .obs.trace import flush_env_trace
    trace_path = flush_env_trace()
    if trace_path:
        print(f"wrote {trace_path}")
    if args.min_pruned is not None \
            and stats.enum_pruned_fraction < args.min_pruned:
        print(f"FAIL: pruned fraction "
              f"{stats.enum_pruned_fraction:.4f} below floor "
              f"{args.min_pruned:.4f}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# perf (history + sentinel + reports)
# ----------------------------------------------------------------------
def _cmd_perf(args) -> int:
    from .analysis.export import load_bench_json
    from .obs import history, sentinel
    from .obs.flame import write_collapsed

    if args.perf_command not in ("record", "check", "report"):
        print("usage: python -m repro perf {record,check,report}",
              file=sys.stderr)
        return 2
    hdir = args.history or None
    if args.perf_command == "record":
        for entry in args.files:
            payload = load_bench_json(entry)
            path = history.record_bench(payload, history=hdir,
                                        rev=args.rev, note=args.note)
            print(f"recorded {payload['figure']} "
                  f"(fingerprint "
                  f"{history.config_fingerprint(payload)}) -> {path}")
        return 0
    if args.perf_command == "check":
        floors = sentinel.load_floors(args.floors) if args.floors \
            else None
        status = 0
        for entry in args.files:
            payload = load_bench_json(entry)
            records = history.load_history(payload["figure"],
                                           history=hdir)
            report = sentinel.check_payload(
                payload, records, window=args.window,
                mad_k=args.mad_k, rel_tol=args.rel_tol,
                floors=floors)
            print(report.render())
            if not report.ok(require_baseline=args.require_baseline):
                status = 1
        return status
    if args.perf_command == "report":
        figures = tuple(args.figures) \
            or tuple(history.figures_in_history(hdir))
        if not figures and not args.flame:
            print("perf report: no history records found",
                  file=sys.stderr)
            return 1
        for figure in figures:
            records = history.load_history(figure, history=hdir)
            print(history.render_trend(figure, records,
                                       fmt=args.format))
        if args.flame:
            if not args.bench:
                print("perf report: --flame needs --bench "
                      "BENCH_JSON...", file=sys.stderr)
                return 2
            payloads = [load_bench_json(entry)
                        for entry in args.bench]
            path = write_collapsed(args.flame, payloads)
            print(f"wrote {path}")
        return 0
    raise AssertionError(args.perf_command)  # unreachable


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _dir_usage(directory) -> tuple[int, int]:
    """(file count, total bytes) of a cache directory tree."""
    entries = files = 0
    if directory.is_dir():
        for path in directory.rglob("*.json"):
            try:
                entries += path.stat().st_size
                files += 1
            except OSError:
                continue
    return files, entries


def _cache_stats_payload() -> dict:
    xlat_files, xlat_bytes = _dir_usage(api.xlat_cache_dir())
    behavior_files, behavior_bytes = _dir_usage(api.behavior_cache_dir())
    mem = api.behavior_cache_stats()
    xlat = api.xlat_cache_stats()
    return {
        "xlat": {
            "enabled": api.xlat_cache_enabled(),
            "dir": str(api.xlat_cache_dir()),
            "disk_entries": xlat_files,
            "disk_bytes": xlat_bytes,
            "hits": xlat.hits,
            "misses": xlat.misses,
            "memory_hits": xlat.memory_hits,
            "disk_hits": xlat.disk_hits,
            "stores": xlat.stores,
            "evictions": xlat.evictions,
            "corrupt_entries": xlat.corrupt_entries,
            "namespaces": api.xlat_cache_namespaces(),
        },
        "behavior": {
            "enabled": api.behavior_cache_enabled(),
            "dir": str(api.behavior_cache_dir()),
            "disk_entries": behavior_files,
            "disk_bytes": behavior_bytes,
            "hits": mem.hits,
            "misses": mem.misses,
            "disk_hits": mem.disk_hits,
            "disk_misses": mem.disk_misses,
            "namespaces": api.behavior_cache_namespaces(),
        },
    }


def _cmd_cache(args) -> int:
    if args.cache_command == "stats":
        payload = _cache_stats_payload()
        if args.json:
            print(json.dumps(payload, indent=2))
            return 0
        for name, info in payload.items():
            state = "enabled" if info["enabled"] else "disabled"
            print(f"{name} cache ({state}): {info['dir']}")
            print(f"  disk: {info['disk_entries']} entries, "
                  f"{info['disk_bytes']} bytes")
            print(f"  this process: {info['hits']} hits / "
                  f"{info['misses']} misses")
            for ns, usage in info["namespaces"].items():
                label = ns or "(root)"
                print(f"  namespace {label}: {usage['entries']} "
                      f"entries, {usage['bytes']} bytes")
        return 0
    if args.cache_command == "clear":
        both = not (args.xlat or args.behavior)
        if args.xlat or both:
            removed = api.clear_xlat_cache()
            api.reset_xlat_memory()
            print(f"translation cache: removed {removed} entries "
                  f"from {api.xlat_cache_dir()}")
        if args.behavior or both:
            removed = api.clear_behavior_cache()
            print(f"behavior cache: removed {removed} entries "
                  f"from {api.behavior_cache_dir()}")
        return 0
    print("usage: python -m repro cache {stats,clear}",
          file=sys.stderr)
    return 2


# ----------------------------------------------------------------------
def _delegate(command: str):
    """The runner a delegated subcommand forwards its argv to."""
    if command == "fuzz":
        from .fuzz.__main__ import main as fuzz_main
        return fuzz_main
    if command == "obsreport":
        from .analysis.obsreport import main as obsreport_main
        return obsreport_main
    if command == "serve":
        from .serve.server import main as serve_main
        return serve_main
    if command == "loadgen":
        from .serve.loadgen import main as loadgen_main
        return loadgen_main
    return None


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Delegated subcommands forward their argv untouched; argparse's
    # REMAINDER cannot (it rejects a leading option, bpo-17050).
    if argv:
        runner = _delegate(argv[0])
        if runner is not None:
            return runner(list(argv[1:]))
    parser = build_parser()
    # parse_known_args, not parse_args: REMAINDER drops a *leading*
    # option into the unknown bucket (bpo-17050 again), so a strict
    # parse of e.g. ["fuzz", "--help"] dies with "unrecognized
    # arguments" at the top level instead of reaching the delegate.
    args, unknown = parser.parse_known_args(argv)
    runner = _delegate(args.command or "")
    if runner is not None:
        return runner(list(unknown) + list(args.args))
    if unknown:
        parser.error("unrecognized arguments: " + " ".join(unknown))
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "cache":
        return _cmd_cache(args)
    parser.print_help()
    return 0 if args.command is None else 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
