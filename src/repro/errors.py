"""Exception hierarchy for the Risotto reproduction.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch library failures without also swallowing programming errors.

The bottom of this module is the *error taxonomy* for service
boundaries: :func:`classify_error` maps any exception to a typed
:class:`ErrorInfo` (stable code, message, retryable flag), so the
serve protocol and the sweep harness report failures identically
instead of letting raw tracebacks cross a process or socket boundary.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LitmusError(ReproError):
    """A litmus program is malformed (unknown register, bad operand...)."""


class ModelError(ReproError):
    """A memory-model definition was asked something it cannot answer."""


class MappingError(ReproError):
    """A mapping scheme cannot translate the given construct."""


class AssemblerError(ReproError):
    """Assembly source could not be parsed or encoded."""


class DecodeError(ReproError):
    """A byte sequence does not decode to a known instruction."""


class TranslationError(ReproError):
    """The DBT failed to translate a guest basic block."""


class MachineError(ReproError):
    """The simulated host machine hit an illegal state."""


class GuestFault(ReproError):
    """The emulated guest program faulted (bad memory access, bad opcode)."""


class LoaderError(ReproError):
    """A guest binary image or IDL file is malformed."""


class LinkError(LoaderError):
    """The dynamic host linker could not resolve or marshal a call."""


class JobError(ReproError):
    """A serve-protocol job is malformed (unknown kind, bad field...)."""


# ----------------------------------------------------------------------
# Error taxonomy for service boundaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorInfo:
    """One classified failure, safe to put on the wire.

    ``code`` is a stable, documented identifier (never a Python class
    name), ``message`` a single human-readable line, and ``retryable``
    whether the *same* request may succeed on resubmission — true only
    for environmental failures, never for deterministic ones (a job
    that faults the guest will fault it again).
    """

    code: str
    message: str
    retryable: bool = False

    def to_json(self) -> dict:
        return {"code": self.code, "message": self.message,
                "retryable": self.retryable}

    @classmethod
    def from_json(cls, payload: dict) -> "ErrorInfo":
        return cls(code=str(payload["code"]),
                   message=str(payload["message"]),
                   retryable=bool(payload.get("retryable", False)))


#: Exception type -> error code, most-specific first: subclasses must
#: precede their bases (LinkError before LoaderError), and the
#: ReproError family precedes the stdlib fallbacks.
ERROR_CODES: tuple[tuple[type, str], ...] = (
    (JobError, "bad-request"),
    (LitmusError, "litmus"),
    (ModelError, "model"),
    (MappingError, "mapping"),
    (AssemblerError, "assembler"),
    (DecodeError, "decode"),
    (TranslationError, "translation"),
    (GuestFault, "guest-fault"),
    (MachineError, "machine"),
    (LinkError, "link"),
    (LoaderError, "loader"),
    (ReproError, "repro"),
    (TimeoutError, "timeout"),
    (OSError, "io"),
)

#: Codes whose failures are environmental, not deterministic: the same
#: request may succeed if resubmitted ("unavailable" is minted by the
#: server when its worker pool dies, never by classify_error).
RETRYABLE_CODES = frozenset({"internal", "io", "timeout", "unavailable"})


def error_code(exc: BaseException) -> str:
    """The taxonomy code for an exception (``"internal"`` fallback)."""
    for exc_type, code in ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return "internal"


def classify_error(exc: BaseException) -> ErrorInfo:
    """Map any exception onto the typed service-boundary form."""
    code = error_code(exc)
    message = f"{type(exc).__name__}: {exc}"
    return ErrorInfo(code=code, message=message,
                     retryable=code in RETRYABLE_CODES)
