"""Exception hierarchy for the Risotto reproduction.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LitmusError(ReproError):
    """A litmus program is malformed (unknown register, bad operand...)."""


class ModelError(ReproError):
    """A memory-model definition was asked something it cannot answer."""


class MappingError(ReproError):
    """A mapping scheme cannot translate the given construct."""


class AssemblerError(ReproError):
    """Assembly source could not be parsed or encoded."""


class DecodeError(ReproError):
    """A byte sequence does not decode to a known instruction."""


class TranslationError(ReproError):
    """The DBT failed to translate a guest basic block."""


class MachineError(ReproError):
    """The simulated host machine hit an illegal state."""


class GuestFault(ReproError):
    """The emulated guest program faulted (bad memory access, bad opcode)."""


class LoaderError(ReproError):
    """A guest binary image or IDL file is malformed."""


class LinkError(LoaderError):
    """The dynamic host linker could not resolve or marshal a call."""
