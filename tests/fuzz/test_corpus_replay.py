"""Replay every committed reproducer in ``tests/fuzz_corpus/``.

Each corpus file is a minimized case the fuzzer (or a paper bug fed
through its shrinker) produced, together with the status it must
report: known bugs stay ``divergence``, fixed/correct counterparts stay
``ok``.  A corpus case changing status is a regression either way."""

import json
from pathlib import Path

import pytest

from repro.fuzz import make_oracles

CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"
CASES = sorted(CORPUS.glob("*.json"))


def load(path):
    entry = json.loads(path.read_text())
    for key in ("oracle", "case", "expect"):
        assert key in entry, f"{path.name}: missing {key!r}"
    assert entry["expect"] in ("ok", "divergence")
    return entry


def test_corpus_is_not_empty():
    assert len(CASES) >= 5


@pytest.mark.parametrize("path", CASES, ids=[p.stem for p in CASES])
def test_replay(path):
    entry = load(path)
    (oracle,) = make_oracles((entry["oracle"],))
    outcome = oracle.check(entry["case"])
    assert outcome.status == entry["expect"], (
        f"{path.name}: expected {entry['expect']}, got "
        f"{outcome.status} ({outcome.detail})")
