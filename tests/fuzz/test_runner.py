"""Runner determinism, findings JSONL schema, and the CLI."""

import json

import pytest

from repro.errors import ReproError
from repro.fuzz import (
    FINDINGS_SCHEMA,
    FuzzConfig,
    findings_lines,
    run_fuzz,
    validate_findings_jsonl,
    write_findings_jsonl,
)
from repro.fuzz.__main__ import main


SMALL = FuzzConfig(seed=11, cases=4,
                   oracles=("staged-vs-naive", "transform-oracle"))


class TestDeterminism:
    def test_same_config_same_bytes(self):
        a = findings_lines(run_fuzz(SMALL))
        b = findings_lines(run_fuzz(SMALL))
        assert a == b

    def test_metrics_and_counts_populated(self):
        report = run_fuzz(SMALL)
        assert report.total_cases == 8
        assert set(report.counts) == set(SMALL.oracles)


class TestFindingsJsonl:
    def test_roundtrip_validates(self, tmp_path):
        report = run_fuzz(SMALL)
        path = write_findings_jsonl(tmp_path / "fuzz.jsonl", report)
        summary = validate_findings_jsonl(path)
        assert summary == report.summary()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == FINDINGS_SCHEMA
        assert header["seed"] == 11

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro-fuzz/99"}\n{"summary": {}}\n')
        with pytest.raises(ReproError, match="unsupported findings"):
            validate_findings_jsonl(path)

    def test_rejects_missing_summary(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": FINDINGS_SCHEMA}) + "\n")
        with pytest.raises(ReproError, match="missing trailing"):
            validate_findings_jsonl(path)

    def test_rejects_count_mismatch(self, tmp_path):
        lines = [json.dumps({"schema": FINDINGS_SCHEMA}),
                 json.dumps({"finding": {"oracle": "x"}}),
                 json.dumps({"summary": {"findings": 0}})]
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError, match="summary counts"):
            validate_findings_jsonl(path)


class TestCli:
    def test_smoke(self, tmp_path, capsys):
        findings = tmp_path / "out" / "fuzz.jsonl"
        bench = tmp_path / "out" / "bench_fuzz.json"
        code = main(["--seed", "11", "--cases", "3",
                     "--oracles", "staged-vs-naive,transform-oracle",
                     "--findings", str(findings),
                     "--bench-json", str(bench),
                     "--fail-on-divergence"])
        assert code == 0
        out = capsys.readouterr().out
        assert "staged-vs-naive" in out and "total:" in out
        validate_findings_jsonl(findings)
        payload = json.loads(bench.read_text())
        assert payload["figure"] == "fuzz"
        assert payload["extra"]["fuzz"]["total_cases"] == 6

    def test_unknown_oracle_exits_2(self, capsys):
        assert main(["--oracles", "bogus"]) == 2
        assert "unknown oracle" in capsys.readouterr().err
