"""Generator determinism and validity.

The fuzzer's value rests on two properties checked here: the same seed
always produces the same case (bit-for-bit, independent of hash
randomization), and every generated case is inside its consumer's
envelope (programs validate, stress programs satisfy the machine
harness's restrictions, blocks assemble).
"""

from random import Random

import pytest

from repro.core.events import Arch, Mode
from repro.core.program import FenceOp, If, Rmw, Store
from repro.fuzz import (
    gen_kernel_spec,
    gen_litmus,
    gen_x86_block,
    program_from_json,
    program_to_json,
)
from repro.isa.x86 import assemble


def walk_ops(ops):
    for op in ops:
        yield op
        if isinstance(op, If):
            yield from walk_ops(op.then_ops)
            yield from walk_ops(op.else_ops)


class TestDeterminism:
    @pytest.mark.parametrize("arch", [Arch.X86, Arch.TCG, Arch.ARM])
    def test_litmus_same_seed_same_program(self, arch):
        a = gen_litmus(Random("s1"), arch)
        b = gen_litmus(Random("s1"), arch)
        assert program_to_json(a) == program_to_json(b)

    def test_litmus_different_seeds_differ_somewhere(self):
        programs = {
            str(program_to_json(gen_litmus(Random(f"d{i}"), Arch.TCG)))
            for i in range(20)
        }
        assert len(programs) > 1

    def test_block_and_kernel_same_seed(self):
        assert gen_x86_block(Random("b")) == gen_x86_block(Random("b"))
        assert gen_kernel_spec(Random("k")) == gen_kernel_spec(Random("k"))


class TestValidity:
    @pytest.mark.parametrize("arch", [Arch.X86, Arch.TCG, Arch.ARM])
    def test_litmus_roundtrips_and_validates(self, arch):
        for i in range(30):
            program = gen_litmus(Random(f"v{arch.value}{i}"), arch)
            assert program.arch is arch
            assert 2 <= len(program.threads) <= 4
            # Round trip: rebuilding revalidates every register def.
            rebuilt = program_from_json(program_to_json(program))
            assert rebuilt.threads == program.threads

    def test_litmus_soak_never_raises(self):
        """Generation must always produce a *valid* program.  A 500-seed
        soak guards the conditional-definedness corner: a register
        loaded only inside an If arm must not feed later ops (the
        original generator leaked arm definitions into the outer scope
        and crashed validation roughly once per few hundred cases)."""
        for i in range(500):
            gen_litmus(Random(f"soak:{i}"), Arch.TCG)

    def test_x86_programs_stay_in_x86_vocabulary(self):
        for i in range(30):
            program = gen_litmus(Random(f"x{i}"), Arch.X86)
            for op in walk_ops(sum(program.threads, ())):
                if isinstance(op, (Store,)):
                    assert op.mode is Mode.PLAIN

    def test_stress_safe_respects_harness_envelope(self):
        """Constant stores, no conditionals, no syntactic deps — the
        operational harness rejects (or silently ignores) anything
        else, which would turn harness limits into fake divergences."""
        for i in range(30):
            program = gen_litmus(Random(f"ss{i}"), Arch.ARM,
                                 stress_safe=True)
            for op in walk_ops(sum(program.threads, ())):
                assert not isinstance(op, If)
                if isinstance(op, Store):
                    assert isinstance(op.value, int)
                    assert op.dep is None
                if isinstance(op, Rmw):
                    assert op.flavor.value in ("amo", "lxsx")

    def test_blocks_assemble(self):
        for i in range(30):
            source = gen_x86_block(Random(f"blk{i}"))
            assembly = assemble(source + "\n    hlt", base=0x400000)
            assert len(assembly.code) > 0

    def test_kernel_specs_are_small(self):
        for i in range(20):
            spec = gen_kernel_spec(Random(f"ks{i}"))
            assert spec.threads in (1, 2)
            assert 30 <= spec.iterations <= 80
