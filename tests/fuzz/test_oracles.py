"""Oracle behaviour: green on generated batches, loud on the paper's
known bugs, skip outside the envelope."""

from random import Random

import pytest

from repro.core import Fence, litmus_library as L, mappings as M
from repro.core.litmus_library import R, W, tcg
from repro.core.program import FenceOp
from repro.errors import ReproError
from repro.fuzz import make_oracles, program_to_json
from repro.fuzz.oracles import ORACLES, applicable_sites


def oracle(name):
    (instance,) = make_oracles((name,))
    return instance


def run_batch(name, n, seed="batch"):
    instance = oracle(name)
    outcomes = []
    for i in range(n):
        case = instance.generate(Random(f"{seed}:{i}"))
        outcomes.append((case, instance.check(case)))
    return outcomes


class TestGreenBatches:
    """Small seeded batches of every oracle must be divergence-free —
    the repo's subsystems agree with each other on generated cases."""

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_no_divergence(self, name):
        n = 6 if name in ("machine-vs-axiomatic",
                          "dbt-differential") else 10
        for case, outcome in run_batch(name, n):
            assert outcome.status in ("ok", "skip"), \
                f"{name} diverged on {case}: {outcome.detail}"

    def test_batches_mostly_check_not_skip(self):
        outcomes = [o for _, o in run_batch("staged-vs-naive", 15)]
        assert sum(o.status == "ok" for o in outcomes) >= 10


class TestKnownBugsDetected:
    def test_qemu_gcc9_mapping_diverges_on_mpq(self):
        instance = oracle("dbt-differential")
        case = {"kind": "mapping",
                "program": program_to_json(L.MPQ.program),
                "mapping": M.qemu_x86_to_arm_gcc9.name}
        outcome = instance.check(case)
        assert outcome.status == "divergence"
        assert outcome.detail["new_behaviors"]

    def test_risotto_mapping_stays_green_on_mpq(self):
        instance = oracle("dbt-differential")
        case = {"kind": "mapping",
                "program": program_to_json(L.MPQ.program),
                "mapping": M.risotto_x86_to_arm_rmw1.name}
        assert instance.check(case).status == "ok"

    def test_fmr_raw_elimination_diverges(self):
        instance = oracle("transform-oracle")
        case = {"kind": "transform",
                "program": program_to_json(L.FMR_SOURCE),
                "transform": "eliminate_raw", "tid": 0, "idx": 2}
        outcome = instance.check(case)
        assert outcome.status == "divergence"

    def test_transform_oracle_green_on_safe_merge(self):
        instance = oracle("transform-oracle")
        src = tcg("merge-ok",
                  (R("a", "X"), FenceOp(Fence.FRM), FenceOp(Fence.FWW),
                   W("Y", 1)),
                  (R("p", "Y"), FenceOp(Fence.FRR), R("q", "X")))
        case = {"kind": "transform", "program": program_to_json(src),
                "transform": "merge_adjacent_fences", "tid": 0,
                "idx": 1}
        assert instance.check(case).status == "ok"


class TestEnvelope:
    def test_inapplicable_transform_skips(self):
        instance = oracle("transform-oracle")
        src = tcg("p", (W("X", 1), W("Y", 1)))
        case = {"kind": "transform", "program": program_to_json(src),
                "transform": "eliminate_rar", "tid": 0, "idx": 0}
        assert instance.check(case).status == "skip"

    def test_unassemblable_block_skips(self):
        instance = oracle("dbt-differential")
        case = {"kind": "block", "source": "    bogus rax, rbx"}
        assert instance.check(case).status == "skip"

    def test_unknown_oracle_name_rejected(self):
        with pytest.raises(ReproError, match="unknown oracle"):
            make_oracles(("no-such-oracle",))

    def test_applicable_sites_avoid_fenced_elimination_contexts(self):
        """Eliminations are only proposed in fence/RMW-free threads —
        the FMR finding shows they are not uniformly safe elsewhere."""
        sites = applicable_sites(L.FMR_SOURCE)
        elim = [s for s in sites
                if s["transform"].startswith("eliminate")]
        assert elim == []


class TestMappingPinning:
    """``make_oracles(dbt_mapping=...)`` pins the mapping leg to one
    registered mapping — a derived ``most-*`` scheme included."""

    def test_pinned_mapping_is_the_only_choice(self):
        (instance,) = make_oracles(
            ("dbt-differential",),
            dbt_mapping="most-tso-trail-rmw1al")
        assert instance._safe_mappings == ("most-tso-trail-rmw1al",)
        for i in range(40):
            case = instance.generate(Random(f"pin:{i}"))
            if case["kind"] == "mapping":
                assert case["mapping"] == "most-tso-trail-rmw1al"

    def test_pinned_derived_scheme_stays_green_on_mpq(self):
        (instance,) = make_oracles(
            ("dbt-differential",),
            dbt_mapping="most-risotto-rmw2ff")
        case = {"kind": "mapping",
                "program": program_to_json(L.MPQ.program),
                "mapping": "most-risotto-rmw2ff"}
        assert instance.check(case).status == "ok"

    def test_pinned_broken_scheme_diverges_on_mpq(self):
        # The derived qemu scheme under the casal lowering carries the
        # paper's failed-CAS bug; the oracle must see it.
        (instance,) = make_oracles(
            ("dbt-differential",),
            dbt_mapping="most-qemu-rmw1al")
        case = {"kind": "mapping",
                "program": program_to_json(L.MPQ.program),
                "mapping": "most-qemu-rmw1al"}
        outcome = instance.check(case)
        assert outcome.status == "divergence"

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ReproError, match="unknown mapping"):
            make_oracles(("dbt-differential",),
                         dbt_mapping="most-fastest-rmw0")

    def test_pin_leaves_other_oracles_untouched(self):
        instances = make_oracles(
            ("staged-vs-naive", "dbt-differential"),
            dbt_mapping="most-tso-trail-rmw1al")
        assert [type(i).__name__ for i in instances] == \
            ["StagedVsNaiveOracle", "DBTDifferentialOracle"]
