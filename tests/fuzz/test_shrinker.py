"""Shrinker behaviour on a seeded synthetic divergence.

The FMR transform bug is padded with irrelevant baggage — an extra
noise thread, init entries, a dead store — and the shrinker must strip
all of it while the divergence keeps reproducing, landing on a
1-minimal case (no single remaining move shrinks it further)."""

from repro.core import litmus_library as L
from repro.fuzz import make_oracles, program_to_json, shrink_case


def padded_fmr_case():
    base = program_to_json(L.FMR_SOURCE)
    base["threads"] = [list(t) for t in base["threads"]]
    # Noise: an unrelated observer thread, a dead store appended to the
    # second thread, and two init entries.
    base["threads"].append([["R", "t9r0", "Z", "plain"]])
    base["threads"][1] = base["threads"][1] + [["W", "Z", 3, "plain",
                                                None]]
    base["init"] = [["X", 0], ["Y", 0]]
    return {"kind": "transform", "program": base,
            "transform": "eliminate_raw", "tid": 0, "idx": 2}


class TestShrinkFmr:
    def test_strips_all_padding(self):
        (oracle,) = make_oracles(("transform-oracle",))
        case = padded_fmr_case()
        assert oracle.check(case).status == "divergence"
        result = shrink_case(oracle, case, budget=250)
        assert result.final_size < result.initial_size
        minimized = result.case
        # The padding is gone: noise thread, init entries ...
        assert len(minimized["program"]["threads"]) == 2
        assert minimized["program"]["init"] == []
        # ... and the result still reproduces.
        assert oracle.check(minimized).status == "divergence"

    def test_result_is_one_minimal(self):
        (oracle,) = make_oracles(("transform-oracle",))
        result = shrink_case(oracle, padded_fmr_case(), budget=250)
        for candidate in oracle.shrink_candidates(result.case):
            if oracle.case_size(candidate) >= \
                    oracle.case_size(result.case):
                continue
            try:
                outcome = oracle.check(candidate)
            except Exception:
                continue
            assert outcome.status != "divergence", (
                f"not 1-minimal: {candidate} still diverges")

    def test_shrink_is_deterministic(self):
        (oracle,) = make_oracles(("transform-oracle",))
        a = shrink_case(oracle, padded_fmr_case(), budget=250)
        b = shrink_case(oracle, padded_fmr_case(), budget=250)
        assert a == b

    def test_budget_bounds_checks(self):
        (oracle,) = make_oracles(("transform-oracle",))
        result = shrink_case(oracle, padded_fmr_case(), budget=3)
        assert result.checks <= 3
