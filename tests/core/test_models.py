"""Model-level tests: x86-TSO, Arm-Cats (both variants), TCG IR.

Each test pins an allowed/forbidden verdict the literature (and the
paper) documents for a classic litmus shape at that level.
"""

import pytest

from repro.core import (
    ARM,
    ARM_ORIGINAL,
    SC,
    TCG,
    X86,
    Arch,
    Fence,
    Mode,
    Program,
    RmwFlavor,
)
from repro.core.enumerate import behaviors, enumerate_executions
from repro.core.litmus_library import (
    CAS,
    MFENCE,
    R,
    W,
    outcome,
    shows,
    tcg,
    x86,
)
from repro.core.program import FenceOp, If, Load, Rmw, Store


def arm(name, *threads):
    return Program(name=name, arch=Arch.ARM, threads=tuple(threads))


def dmb(kind):
    return FenceOp(kind)


WEAK_MP = outcome(T1_a=1, T1_b=0)
WEAK_SB = outcome(T0_a=0, T1_b=0)
WEAK_LB = outcome(T0_a=1, T1_b=1)


class TestX86:
    def test_mp_forbidden(self):
        prog = x86("mp", (W("X", 1), W("Y", 1)),
                   (R("a", "Y"), R("b", "X")))
        assert not shows(behaviors(prog, X86), WEAK_MP)

    def test_sb_allowed(self):
        prog = x86("sb", (W("X", 1), R("a", "Y")),
                   (W("Y", 1), R("b", "X")))
        assert shows(behaviors(prog, X86), WEAK_SB)

    def test_sb_mfence_forbidden(self):
        prog = x86("sbf", (W("X", 1), MFENCE(), R("a", "Y")),
                   (W("Y", 1), MFENCE(), R("b", "X")))
        assert not shows(behaviors(prog, X86), WEAK_SB)

    def test_lb_forbidden(self):
        prog = x86("lb", (R("a", "X"), W("Y", 1)),
                   (R("b", "Y"), W("X", 1)))
        assert not shows(behaviors(prog, X86), WEAK_LB)

    def test_rmw_acts_as_full_fence(self):
        prog = x86("sb-rmw",
                   (W("X", 1), CAS("Z", 0, 1), R("a", "Y")),
                   (W("Y", 1), CAS("U", 0, 1), R("b", "X")))
        assert not shows(behaviors(prog, X86), WEAK_SB)

    def test_failed_rmw_is_just_a_read(self):
        # RMW(X, 5, 9) never succeeds (X in {0,1}); the read event alone
        # is still generated.
        prog = x86("failrmw", (W("X", 1),),
                   (Rmw("X", 5, 9, RmwFlavor.X86, out="a"),))
        behs = behaviors(prog, X86)
        assert shows(behs, outcome(X=1))
        assert not shows(behs, outcome(X=9))


class TestArm:
    def test_mp_plain_allowed(self):
        prog = arm("mp", (W("X", 1), W("Y", 1)),
                   (R("a", "Y"), R("b", "X")))
        assert shows(behaviors(prog, ARM), WEAK_MP)

    def test_mp_dmbst_dmbld_forbidden(self):
        prog = arm(
            "mp+dmbs",
            (W("X", 1), dmb(Fence.DMBST), W("Y", 1)),
            (R("a", "Y"), dmb(Fence.DMBLD), R("b", "X")),
        )
        assert not shows(behaviors(prog, ARM), WEAK_MP)

    def test_mp_dmbst_only_still_weak(self):
        # The reader can reorder its loads without a DMBLD.
        prog = arm(
            "mp+st-only",
            (W("X", 1), dmb(Fence.DMBST), W("Y", 1)),
            (R("a", "Y"), R("b", "X")),
        )
        assert shows(behaviors(prog, ARM), WEAK_MP)

    def test_mp_release_acquire_forbidden(self):
        prog = arm(
            "mp+rel-acq",
            (W("X", 1), Store("Y", 1, mode=Mode.REL)),
            (Load("a", "Y", mode=Mode.ACQ), R("b", "X")),
        )
        assert not shows(behaviors(prog, ARM), WEAK_MP)

    def test_sb_needs_full_fence(self):
        weak = WEAK_SB
        plain = arm("sb", (W("X", 1), R("a", "Y")),
                    (W("Y", 1), R("b", "X")))
        fenced = arm("sb+ff",
                     (W("X", 1), dmb(Fence.DMBFF), R("a", "Y")),
                     (W("Y", 1), dmb(Fence.DMBFF), R("b", "X")))
        assert shows(behaviors(plain, ARM), weak)
        assert not shows(behaviors(fenced, ARM), weak)

    def test_dmbld_does_not_order_store_load(self):
        prog = arm("sb+ld",
                   (W("X", 1), dmb(Fence.DMBLD), R("a", "Y")),
                   (W("Y", 1), dmb(Fence.DMBLD), R("b", "X")))
        assert shows(behaviors(prog, ARM), WEAK_SB)

    def test_data_dependency_orders_read_to_write(self):
        # S+data: the dependent write cannot overtake the read (dob),
        # so seeing Y=1 and finishing with X=2 is forbidden.
        prog = arm("s+data",
                   (W("X", 2), dmb(Fence.DMBST), W("Y", 1)),
                   (R("a", "Y"), Store("X", "a")))
        assert not shows(behaviors(prog, ARM), outcome(T1_a=1, X=2))

    def test_plain_lb_allowed(self):
        prog = arm("lb", (R("a", "X"), W("Y", 1)),
                   (R("b", "Y"), W("X", 1)))
        assert shows(behaviors(prog, ARM), WEAK_LB)

    def test_ctrl_dependency_orders_read_to_write(self):
        prog = arm(
            "lb+ctrl",
            (R("a", "X"), If("a", 1, then_ops=(W("Y", 1),))),
            (R("b", "Y"), If("b", 1, then_ops=(W("X", 1),))),
        )
        assert not shows(behaviors(prog, ARM), outcome(T0_a=1, T1_b=1))


class TestArmAmoCorrection:
    """The Section 3.3 fix: casal must act as a full barrier."""

    def _sbal_arm(self):
        return arm(
            "sbal-arm",
            (Rmw("X", 0, 1, RmwFlavor.AMO, acq=True, rel=True),
             Load("a", "Y", mode=Mode.ACQ_PC)),
            (Rmw("Y", 0, 1, RmwFlavor.AMO, acq=True, rel=True),
             Load("b", "X", mode=Mode.ACQ_PC)),
        )

    def test_original_model_allows_sbal(self):
        weak = outcome(X=1, Y=1, T0_a=0, T1_b=0)
        assert shows(behaviors(self._sbal_arm(), ARM_ORIGINAL), weak)

    def test_corrected_model_forbids_sbal(self):
        weak = outcome(X=1, Y=1, T0_a=0, T1_b=0)
        assert not shows(behaviors(self._sbal_arm(), ARM), weak)

    def test_lxsx_pair_is_not_a_full_barrier(self):
        # Even acquire/release exclusives leave the store->load pair
        # unordered (the SBQ root cause).
        prog = arm(
            "sbal-lxsx",
            (Rmw("X", 0, 1, RmwFlavor.LXSX, acq=True, rel=True),
             R("a", "Y")),
            (Rmw("Y", 0, 1, RmwFlavor.LXSX, acq=True, rel=True),
             R("b", "X")),
        )
        weak = outcome(X=1, Y=1, T0_a=0, T1_b=0)
        assert shows(behaviors(prog, ARM), weak)


class TestTCG:
    def test_plain_accesses_unordered(self):
        prog = tcg("mp", (W("X", 1), W("Y", 1)),
                   (R("a", "Y"), R("b", "X")))
        assert shows(behaviors(prog, TCG), WEAK_MP)

    def test_fww_frr_forbid_mp(self):
        prog = tcg(
            "mp-ir",
            (W("X", 1), FenceOp(Fence.FWW), W("Y", 1)),
            (R("a", "Y"), FenceOp(Fence.FRR), R("b", "X")),
        )
        assert not shows(behaviors(prog, TCG), WEAK_MP)

    def test_frw_forbids_lb(self):
        prog = tcg(
            "lb-ir",
            (R("a", "X"), FenceOp(Fence.FRW), W("Y", 1)),
            (R("b", "Y"), FenceOp(Fence.FRW), W("X", 1)),
        )
        assert not shows(behaviors(prog, TCG), WEAK_LB)

    def test_fsc_forbids_sb(self):
        prog = tcg(
            "sb-ir",
            (W("X", 1), FenceOp(Fence.FSC), R("a", "Y")),
            (W("Y", 1), FenceOp(Fence.FSC), R("b", "X")),
        )
        assert not shows(behaviors(prog, TCG), WEAK_SB)

    def test_fww_does_not_forbid_sb(self):
        prog = tcg(
            "sb-ir-ww",
            (W("X", 1), FenceOp(Fence.FWW), R("a", "Y")),
            (W("Y", 1), FenceOp(Fence.FWW), R("b", "X")),
        )
        assert shows(behaviors(prog, TCG), WEAK_SB)

    def test_tcg_rmw_is_sc(self):
        prog = tcg(
            "sb-rmw-ir",
            (W("X", 1), Rmw("Z", 0, 1, RmwFlavor.TCG), R("a", "Y")),
            (W("Y", 1), Rmw("U", 0, 1, RmwFlavor.TCG), R("b", "X")),
        )
        assert not shows(behaviors(prog, TCG), WEAK_SB)

    def test_dependencies_do_not_order(self):
        # Unlike Arm: the same S+data shape stays weak in TCG IR (no
        # dob), which is what licenses false-dependency elimination.
        prog = tcg("s+data-ir",
                   (W("X", 2), FenceOp(Fence.FWW), W("Y", 1)),
                   (R("a", "Y"), Store("X", "a")))
        assert shows(behaviors(prog, TCG), outcome(T1_a=1, X=2))


class TestStrengthOrdering:
    """SC ⊆ x86 ⊆ (Arm, TCG) on every corpus program."""

    @pytest.mark.parametrize("weak_arch_model", [ARM, TCG, X86])
    def test_sc_behaviors_included(self, weak_arch_model):
        from repro.core.litmus_library import X86_CORPUS

        for test in X86_CORPUS[:8]:
            prog = test.program
            sc_behs = behaviors(prog, SC)
            weak_behs = behaviors(
                prog.with_arch(prog.arch, suffix=""), weak_arch_model
            )
            assert sc_behs <= weak_behs, test.name
