"""Unit tests for the source-DPOR reduction layer.

:mod:`repro.core.dpor` claims three reductions — sleep sets over the
rf DFS, thread-symmetry collapse of trace combos, and coherence value
classes with a single linear-extension witness — and each is exercised
here on a program *constructed* to trigger it, with the naive
rf × co cross product as the oracle.  The module also pins the two
enumerator soundness fixes: the staged unique-extension shortcut must
run the full consistency check (not just the precheck), and the
``supports_staged=False`` fallback must account statistics like the
fast path does.
"""

import dataclasses

import pytest

from repro.core import SC, X86
from repro.core.corpus_large import (
    CAS5,
    FIVE_THREAD_CORPUS,
    IRIW5,
    W4_2RR,
    W5_RR,
)
from repro.core.dpor import (
    RfSearch,
    _is_canonical,
    _orbit_size,
    _rename_behavior,
    _tid_renamings,
    reduced_behaviors,
    thread_symmetry_classes,
)
from repro.core.enumerate import (
    EnumerationStats,
    enumerate_consistent,
    enumerate_executions,
    enumeration_stats,
    reset_enumeration_stats,
)
from repro.errors import ModelError
from repro.core.litmus_library import ALL_TESTS, R, W, x86
from repro.core.models.x86tso import X86Model
from repro.core.verifier import check_annotations


def naive_behaviors(program, model) -> frozenset:
    return frozenset(
        ex.full_behavior for ex in enumerate_executions(program)
        if model.is_consistent(ex)
    )


def reduced(program, model, stats=None, limit=None) -> frozenset:
    return reduced_behaviors(program, model, limit=limit, stats=stats)


# ----------------------------------------------------------------------
# Sleep sets
# ----------------------------------------------------------------------

#: Crafted so a coherence rejection carries a *cross-thread* footprint:
#: with c=1, a=2, b=1 the assignment a←(T2's write) forces
#: co(W X 2, W X 1) inside T1, while b←(T1's write) forces the reverse
#: edge inside T2 — an immediate forced-co cycle whose footprint is
#: just {a's choice}.  The Y reader (two identical Y writers give it
#: two options) sits first in the most-constrained-first order, so
#: after it backtracks the same (b, src) pair comes up again under an
#: unchanged footprint and must be sleep-skipped, not re-derived.
SLEEP_CYCLE = x86(
    "sleep-cycle",
    (R("c", "Y"),),
    (R("a", "X"), W("X", 1)),
    (R("b", "X"), W("X", 2)),
    (W("X", 1),),
    (W("X", 2),),
    (W("Y", 1),),
    (W("Y", 1),),
)


class TestSleepSets:
    def test_coherence_rejections_are_sleep_skipped(self):
        stats = EnumerationStats()
        behs = reduced(SLEEP_CYCLE, X86, stats=stats)
        assert stats.rf_rejected_coherence >= 1
        assert stats.rf_sleep_skips >= 1
        assert behs == naive_behaviors(SLEEP_CYCLE, X86)

    def test_sleep_skip_never_loses_behaviours_under_sc(self):
        stats = EnumerationStats()
        behs = reduced(SLEEP_CYCLE, SC, stats=stats)
        assert behs == naive_behaviors(SLEEP_CYCLE, SC)


# ----------------------------------------------------------------------
# Partial-rf prefix prechecks
# ----------------------------------------------------------------------

#: Two writers plus a four-read reader: with a=1, b=0 the second read
#: observes init *behind* the first read's writer — an sc-per-loc
#: cycle over {rf, po_loc, fr} that is complete while the two Y reads
#: are still unassigned, so the precheck must cut the subtree above
#: the leaves.
PREFIX_CUT = x86(
    "prefix-cut",
    (W("X", 1),),
    (W("Y", 1),),
    (R("a", "X"), R("b", "X"), R("c", "Y"), R("d", "Y")),
)


class TestPrefixPrecheck:
    def test_inconsistent_prefix_cuts_above_leaves(self):
        stats = EnumerationStats()
        behs = reduced(PREFIX_CUT, X86, stats=stats)
        assert stats.rf_prefix_rejected >= 1
        assert stats.rf_rejected_precheck >= stats.rf_prefix_rejected
        assert behs == naive_behaviors(PREFIX_CUT, X86)

    def test_search_yields_only_precheck_passing_leaves(self):
        # Every leaf the DFS yields already passed the full-rf
        # precheck; none of them should be a coherence-forced cycle.
        from repro.core.enumerate import (
            _feasible_rf_options,
            _materialize_combo,
            _trace_sets,
        )
        import itertools
        program = PREFIX_CUT
        per_thread, locations = _trace_sets(program)
        for combo in itertools.product(*per_thread):
            graph = _materialize_combo(program, locations, combo)
            options = _feasible_rf_options(graph, EnumerationStats())
            if options is None:
                continue
            for _rf_choice, closed in RfSearch(
                    graph, options, X86, EnumerationStats()):
                for rel in closed.values():
                    assert rel.is_irreflexive()


# ----------------------------------------------------------------------
# RMW cuts
# ----------------------------------------------------------------------
class TestRmwCuts:
    def test_cas5_rmw_sources_are_cut_in_search(self):
        stats = EnumerationStats()
        behs = reduced(CAS5.program, X86, stats=stats)
        assert stats.rf_rejected_rmw >= 1
        assert behs == naive_behaviors(CAS5.program, X86)
        # Exactly one CAS can win from 0; the annotation agrees.
        assert not check_annotations(CAS5, X86)


# ----------------------------------------------------------------------
# Thread symmetry
# ----------------------------------------------------------------------
class TestThreadSymmetry:
    def test_identical_threads_form_one_class(self):
        classes = thread_symmetry_classes(W5_RR.program)
        assert classes == ((0, 1, 2, 3, 4),)

    def test_distinct_threads_form_no_class(self):
        assert thread_symmetry_classes(ALL_TESTS["MP"].program) == ()

    def test_canonical_combos_are_nondecreasing_per_class(self):
        classes = ((0, 1, 2),)
        assert _is_canonical((0, 0, 1), classes)
        assert not _is_canonical((1, 0, 0), classes)

    def test_orbit_size_is_multinomial(self):
        classes = ((0, 1, 2),)
        # (0, 0, 1): three arrangements of {0, 0, 1}.
        assert _orbit_size((0, 0, 1), classes) == 3
        assert _orbit_size((0, 0, 0), classes) == 1
        assert _orbit_size((0, 1, 2), classes) == 6

    def test_renamings_cover_the_permutation_group(self):
        renamings = _tid_renamings(((1, 2),))
        moved = {
            frozenset((k, v) for k, v in m.items() if k != v)
            for m in renamings
        }
        assert moved == {frozenset(), frozenset({(1, 2), (2, 1)})}
        assert _tid_renamings(()) == [{}]

    def test_rename_behavior_rewrites_register_keys_only(self):
        beh = frozenset({("T0:a", 1), ("X", 2)})
        assert _rename_behavior(beh, {0: 1}) == \
            frozenset({("T1:a", 1), ("X", 2)})

    def test_iriw5_collapses_symmetric_combos(self):
        stats = EnumerationStats()
        behs = reduced(IRIW5.program, X86, stats=stats)
        assert stats.symmetry_collapsed > 0
        assert behs == naive_behaviors(IRIW5.program, X86)

    def test_orbit_scaling_preserves_naive_candidate_count(self):
        # candidates_naive must count the *full* space, not just the
        # canonical representatives, or pruned fractions would lie.
        sym = EnumerationStats()
        reduced(IRIW5.program, X86, stats=sym)
        plain = EnumerationStats()
        list(enumerate_executions(IRIW5.program, stats=plain))
        assert sym.candidates_naive == plain.candidates_naive


# ----------------------------------------------------------------------
# Coherence value classes and the candidate limit
# ----------------------------------------------------------------------
class TestCoherenceClasses:
    def test_w5_rr_completes_under_a_limit_staged_cannot(self):
        stats = EnumerationStats()
        behs = reduced(W5_RR.program, X86, stats=stats, limit=1000)
        assert behs  # completed
        assert stats.executions_enumerated <= 1000
        assert stats.co_classes >= 1
        with pytest.raises(ModelError, match="exceed limit"):
            list(enumerate_consistent(W5_RR.program, X86, limit=1000))

    def test_materialization_is_at_least_10x_below_naive(self):
        stats = EnumerationStats()
        reduced(W4_2RR.program, X86, stats=stats)
        assert stats.candidates_naive \
            >= 10 * max(1, stats.executions_enumerated)


# ----------------------------------------------------------------------
# Bugfix regressions: the enumerator soundness fixes
# ----------------------------------------------------------------------
class WeakPrecheckX86(X86Model):
    """Strictly weaker staged precheck: accepts everything.

    A model like this is *allowed* — ``rf_stage_consistent`` is a
    monotone precheck, never exact — so the staged unique-extension
    shortcut must still run the full ``is_consistent`` on the single
    materialized extension.  Before the fix it counted the candidate
    consistent on the precheck alone, admitting TSO-forbidden
    behaviours whenever only one coherence order existed.
    """

    name = "x86-weak-precheck"

    def rf_stage_consistent(self, ex) -> bool:
        return True


class UnstagedX86(X86Model):
    """An x86 judge that opts out of the staged fast path."""

    name = "x86-unstaged"
    supports_staged = False


class TestSoundnessFixes:
    @pytest.mark.parametrize("name", ["SB+mfences", "CoWR", "MP"])
    def test_weak_precheck_still_gets_full_final_check(self, name):
        program = ALL_TESTS[name].program
        weak = WeakPrecheckX86()
        staged = frozenset(
            ex.full_behavior
            for ex in enumerate_consistent(program, weak)
        )
        assert staged == naive_behaviors(program, weak)
        assert staged == naive_behaviors(program, X86)

    def test_weak_precheck_reduced_path_agrees_too(self):
        program = ALL_TESTS["SB+mfences"].program
        weak = WeakPrecheckX86()
        assert reduced(program, weak) == naive_behaviors(program, X86)

    def test_unstaged_fallback_accounts_stats(self):
        program = ALL_TESTS["MP"].program
        run = EnumerationStats()
        reset_enumeration_stats()
        behs = frozenset(
            ex.full_behavior
            for ex in enumerate_consistent(program, UnstagedX86(),
                                           stats=run)
        )
        assert behs == naive_behaviors(program, X86)
        for field in ("combos", "candidates_naive",
                      "executions_enumerated", "consistent"):
            assert getattr(run, field) > 0, field
        merged = enumeration_stats()
        assert merged.executions_enumerated \
            >= run.executions_enumerated

    def test_unstaged_fallback_in_reduced_behaviors(self):
        program = ALL_TESTS["MP"].program
        run = EnumerationStats()
        behs = reduced(program, UnstagedX86(), stats=run)
        assert behs == naive_behaviors(program, X86)
        assert run.executions_enumerated > 0
        assert run.consistent > 0


# ----------------------------------------------------------------------
# The 5-thread corpus itself
# ----------------------------------------------------------------------
class TestFiveThreadCorpus:
    def test_names_are_unique_and_programs_have_five_threads(self):
        names = [t.name for t in FIVE_THREAD_CORPUS]
        assert len(names) == len(set(names))
        for test in FIVE_THREAD_CORPUS:
            assert len(test.program.threads) >= 5, test.name

    @pytest.mark.parametrize(
        "test", FIVE_THREAD_CORPUS, ids=lambda t: t.name)
    def test_annotations_hold_under_x86(self, test):
        assert check_annotations(test, X86) == []

    def test_stats_merge_into_module_counters(self):
        reset_enumeration_stats()
        before = dataclasses.replace(enumeration_stats())
        reduced(IRIW5.program, X86)
        after = enumeration_stats()
        assert after.combos > before.combos
        assert after.candidates_naive > before.candidates_naive
