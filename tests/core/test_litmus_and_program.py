"""Program AST validation + litmus annotation sanity.

The annotation check is itself a meaningful reproduction artefact: every
"forbidden" outcome in the library must indeed be forbidden by the
source model, otherwise the corpus could not catch translation bugs.
"""

import pytest

from repro.core import ARM, SC, TCG, X86, Arch, Fence
from repro.core import litmus_library as L
from repro.core.litmus_library import R, W, outcome, shows, x86
from repro.core.program import FenceOp, If, Load, Program, Store
from repro.core.verifier import check_annotations
from repro.errors import LitmusError


class TestProgramValidation:
    def test_undefined_register_store_rejected(self):
        with pytest.raises(LitmusError):
            x86("bad", (Store("X", "a"),))

    def test_undefined_branch_register_rejected(self):
        with pytest.raises(LitmusError):
            x86("bad", (If("a", 1, then_ops=(W("X", 1),)),))

    def test_register_defined_in_one_arm_only_not_visible_after(self):
        with pytest.raises(LitmusError):
            x86("bad", (
                R("a", "X"),
                If("a", 1, then_ops=(R("b", "Y"),)),
                Store("Z", "b"),
            ))

    def test_register_defined_in_both_arms_visible_after(self):
        prog = x86("ok", (
            R("a", "X"),
            If("a", 1, then_ops=(R("b", "Y"),), else_ops=(R("b", "Z"),)),
            Store("W", "b"),
        ))
        assert prog.locations() == {"X", "Y", "Z", "W"}

    def test_locations_include_init_and_branches(self):
        prog = Program(
            "p", Arch.X86,
            ((R("a", "X"), If("a", 1, then_ops=(W("Y", 1),))),),
            init=(("Z", 3),),
        )
        assert prog.locations() == {"X", "Y", "Z"}
        assert prog.init_value("Z") == 3
        assert prog.init_value("X") == 0

    def test_pretty_mentions_threads(self):
        text = L.MP.program.pretty()
        assert "T0" in text and "T1" in text and "MP" in text

    def test_programs_hashable_and_equal(self):
        a = x86("p", (W("X", 1),))
        b = x86("p", (W("X", 1),))
        assert a == b and hash(a) == hash(b)


class TestOutcomeHelpers:
    def test_outcome_key_translation(self):
        out = outcome(T0_a=1, X=2)
        assert ("T0:a", 1) in out and ("X", 2) in out

    def test_shows_subset_semantics(self):
        behs = frozenset({frozenset({("X", 1), ("Y", 2)})})
        assert shows(behs, outcome(X=1))
        assert not shows(behs, outcome(X=2))


class TestAnnotations:
    """Every library annotation must hold in the x86/TCG source model."""

    @pytest.mark.parametrize(
        "test", L.X86_CORPUS, ids=[t.name for t in L.X86_CORPUS])
    def test_x86_annotations_hold(self, test):
        assert check_annotations(test, X86) == []

    @pytest.mark.parametrize(
        "test", L.TCG_CORPUS, ids=[t.name for t in L.TCG_CORPUS])
    def test_tcg_annotations_hold(self, test):
        assert check_annotations(test, TCG) == []

    def test_corpus_has_rmw_coverage(self):
        rmw_tests = [
            t for t in L.X86_CORPUS
            if any("RMW" in str(op) for ops in t.program.threads
                   for op in ops)
        ]
        assert len(rmw_tests) >= 5

    def test_corpus_has_fence_coverage(self):
        fence_tests = [
            t for t in L.X86_CORPUS
            if any(isinstance(op, FenceOp) for ops in t.program.threads
                   for op in ops)
        ]
        assert len(fence_tests) >= 4

    def test_annotation_checker_catches_bad_forbidden(self):
        from repro.core.litmus_library import LitmusTest

        bad = LitmusTest(
            program=L.SB.program,
            forbidden=(outcome(T0_a=0, T1_b=0),),  # actually allowed
        )
        assert check_annotations(bad, X86)

    def test_annotation_checker_catches_bad_allowed(self):
        from repro.core.litmus_library import LitmusTest

        bad = LitmusTest(
            program=L.MP.program,
            allowed=(outcome(T1_a=1, T1_b=0),),  # actually forbidden
        )
        assert check_annotations(bad, X86)
