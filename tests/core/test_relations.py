"""Unit and property tests for the relational algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import (
    Rel,
    linear_extensions,
    linear_extensions_with_last,
    total_order_extensions,
    union,
)

pairs_strategy = st.frozensets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20
)
rel_strategy = pairs_strategy.map(Rel)


class TestBasics:
    def test_empty(self):
        assert not Rel.empty()
        assert len(Rel.empty()) == 0
        assert Rel.empty().is_acyclic()

    def test_identity(self):
        ident = Rel.identity([1, 2])
        assert (1, 1) in ident and (2, 2) in ident
        assert len(ident) == 2
        assert not ident.is_irreflexive()

    def test_cross(self):
        rel = Rel.cross([1, 2], [3])
        assert rel == Rel([(1, 3), (2, 3)])

    def test_union_intersection_difference(self):
        a, b = Rel([(1, 2), (2, 3)]), Rel([(2, 3), (3, 4)])
        assert a | b == Rel([(1, 2), (2, 3), (3, 4)])
        assert a & b == Rel([(2, 3)])
        assert a - b == Rel([(1, 2)])

    def test_composition(self):
        a, b = Rel([(1, 2), (2, 3)]), Rel([(2, 5), (3, 6)])
        assert a @ b == Rel([(1, 5), (2, 6)])

    def test_composition_through_identity(self):
        a = Rel([(1, 2), (2, 3)])
        ident = Rel.identity([2])
        # [A] acts as a filter on the codomain/domain.
        assert a @ ident == Rel([(1, 2)])
        assert ident @ a == Rel([(2, 3)])

    def test_inverse(self):
        assert Rel([(1, 2)]).inv() == Rel([(2, 1)])

    def test_plus(self):
        rel = Rel([(1, 2), (2, 3), (3, 4)])
        closed = rel.plus()
        assert (1, 4) in closed and (1, 3) in closed and (2, 4) in closed

    def test_domain_codomain(self):
        rel = Rel([(1, 2), (1, 3)])
        assert rel.domain() == {1}
        assert rel.codomain() == {2, 3}

    def test_restrict(self):
        rel = Rel([(1, 2), (3, 4)])
        assert rel.restrict(domain=[1]) == Rel([(1, 2)])
        assert rel.restrict(codomain=[4]) == Rel([(3, 4)])

    def test_acyclicity(self):
        assert Rel([(1, 2), (2, 3)]).is_acyclic()
        assert not Rel([(1, 2), (2, 1)]).is_acyclic()
        assert not Rel([(1, 1)]).is_acyclic()
        # Long cycle.
        assert not Rel([(1, 2), (2, 3), (3, 4), (4, 1)]).is_acyclic()

    def test_total_on(self):
        assert Rel([(1, 2), (2, 3), (1, 3)]).is_total_on([1, 2, 3])
        assert not Rel([(1, 2)]).is_total_on([1, 2, 3])

    def test_union_helper(self):
        assert union([Rel([(1, 2)]), Rel([(3, 4)])]) == \
            Rel([(1, 2), (3, 4)])

    def test_total_order_extensions(self):
        orders = list(total_order_extensions([1, 2, 3], first=1))
        assert len(orders) == 2
        for order in orders:
            assert (1, 2) in order and (1, 3) in order

    def test_repr_contains_pairs(self):
        assert "1->2" in repr(Rel([(1, 2)]))


class TestProperties:
    @given(rel_strategy, rel_strategy)
    def test_union_commutes(self, a, b):
        assert a | b == b | a

    @given(rel_strategy, rel_strategy, rel_strategy)
    def test_composition_associates(self, a, b, c):
        assert (a @ b) @ c == a @ (b @ c)

    @given(rel_strategy)
    def test_double_inverse(self, a):
        assert a.inv().inv() == a

    @given(rel_strategy)
    def test_plus_idempotent(self, a):
        assert a.plus().plus() == a.plus()

    @given(rel_strategy)
    def test_plus_contains_original(self, a):
        assert a.pairs <= a.plus().pairs

    @given(rel_strategy)
    def test_acyclic_iff_plus_irreflexive(self, a):
        assert a.is_acyclic() == a.plus().is_irreflexive()

    @given(rel_strategy, rel_strategy)
    def test_composition_distributes_over_union(self, a, b):
        c = Rel([(0, 1), (1, 2), (5, 3)])
        assert (a | b) @ c == (a @ c) | (b @ c)

    @given(rel_strategy)
    def test_inverse_of_composition(self, a):
        b = Rel([(2, 7), (3, 1)])
        assert (a @ b).inv() == b.inv() @ a.inv()


# ----------------------------------------------------------------------
# Linear extensions (the coherence-order search primitive)
# ----------------------------------------------------------------------
def _total_order_rel(seq):
    return Rel(
        (seq[i], seq[j])
        for i in range(len(seq))
        for j in range(i + 1, len(seq))
    )


def _brute_force_extensions(elems, partial):
    """Oracle: filter all permutations by the partial-order pairs."""
    import itertools

    members = set(elems)
    relevant = [(a, b) for a, b in partial
                if a in members and b in members and a != b]
    out = []
    for perm in itertools.permutations(elems):
        pos = {e: i for i, e in enumerate(perm)}
        if all(pos[a] < pos[b] for a, b in relevant):
            out.append(_total_order_rel(perm))
    return out


small_poset_strategy = st.tuples(
    st.integers(1, 5),
    st.frozensets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                  max_size=8),
)


class TestLinearExtensions:
    @settings(max_examples=200, deadline=None)
    @given(small_poset_strategy)
    def test_matches_brute_force_permutation_filter(self, poset):
        n, partial = poset
        elems = list(range(n))
        got = list(linear_extensions(elems, partial))
        oracle = _brute_force_extensions(elems, partial)
        # Same multiset; each extension exactly once.
        assert len(got) == len(oracle)
        assert {g.pairs for g in got} == {o.pairs for o in oracle}

    def test_cyclic_partial_yields_nothing(self):
        assert list(linear_extensions([0, 1], [(0, 1), (1, 0)])) == []

    def test_no_constraints_is_all_permutations(self):
        import math

        assert len(list(linear_extensions(list(range(4)), []))) == \
            math.factorial(4)

    @settings(max_examples=200, deadline=None)
    @given(small_poset_strategy, st.integers(0, 5))
    def test_with_last_equals_filtered_extensions(self, poset, last):
        n, partial = poset
        elems = list(range(n))
        got = {r.pairs
               for r in linear_extensions_with_last(elems, partial,
                                                    last)}
        want = {
            r.pairs for r in linear_extensions(elems, partial)
            if all((e, last) in r for e in elems if e != last)
        } if last in set(elems) else set()
        assert got == want

    def test_with_last_absent_member_is_empty(self):
        assert list(linear_extensions_with_last([0, 1], [], 9)) == []

    def test_with_last_forced_before_is_empty(self):
        # partial forces 0 before 1, so 0 can never be placed last.
        assert list(
            linear_extensions_with_last([0, 1], [(0, 1)], 0)) == []
