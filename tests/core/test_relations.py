"""Unit and property tests for the relational algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import Rel, total_order_extensions, union

pairs_strategy = st.frozensets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20
)
rel_strategy = pairs_strategy.map(Rel)


class TestBasics:
    def test_empty(self):
        assert not Rel.empty()
        assert len(Rel.empty()) == 0
        assert Rel.empty().is_acyclic()

    def test_identity(self):
        ident = Rel.identity([1, 2])
        assert (1, 1) in ident and (2, 2) in ident
        assert len(ident) == 2
        assert not ident.is_irreflexive()

    def test_cross(self):
        rel = Rel.cross([1, 2], [3])
        assert rel == Rel([(1, 3), (2, 3)])

    def test_union_intersection_difference(self):
        a, b = Rel([(1, 2), (2, 3)]), Rel([(2, 3), (3, 4)])
        assert a | b == Rel([(1, 2), (2, 3), (3, 4)])
        assert a & b == Rel([(2, 3)])
        assert a - b == Rel([(1, 2)])

    def test_composition(self):
        a, b = Rel([(1, 2), (2, 3)]), Rel([(2, 5), (3, 6)])
        assert a @ b == Rel([(1, 5), (2, 6)])

    def test_composition_through_identity(self):
        a = Rel([(1, 2), (2, 3)])
        ident = Rel.identity([2])
        # [A] acts as a filter on the codomain/domain.
        assert a @ ident == Rel([(1, 2)])
        assert ident @ a == Rel([(2, 3)])

    def test_inverse(self):
        assert Rel([(1, 2)]).inv() == Rel([(2, 1)])

    def test_plus(self):
        rel = Rel([(1, 2), (2, 3), (3, 4)])
        closed = rel.plus()
        assert (1, 4) in closed and (1, 3) in closed and (2, 4) in closed

    def test_domain_codomain(self):
        rel = Rel([(1, 2), (1, 3)])
        assert rel.domain() == {1}
        assert rel.codomain() == {2, 3}

    def test_restrict(self):
        rel = Rel([(1, 2), (3, 4)])
        assert rel.restrict(domain=[1]) == Rel([(1, 2)])
        assert rel.restrict(codomain=[4]) == Rel([(3, 4)])

    def test_acyclicity(self):
        assert Rel([(1, 2), (2, 3)]).is_acyclic()
        assert not Rel([(1, 2), (2, 1)]).is_acyclic()
        assert not Rel([(1, 1)]).is_acyclic()
        # Long cycle.
        assert not Rel([(1, 2), (2, 3), (3, 4), (4, 1)]).is_acyclic()

    def test_total_on(self):
        assert Rel([(1, 2), (2, 3), (1, 3)]).is_total_on([1, 2, 3])
        assert not Rel([(1, 2)]).is_total_on([1, 2, 3])

    def test_union_helper(self):
        assert union([Rel([(1, 2)]), Rel([(3, 4)])]) == \
            Rel([(1, 2), (3, 4)])

    def test_total_order_extensions(self):
        orders = list(total_order_extensions([1, 2, 3], first=1))
        assert len(orders) == 2
        for order in orders:
            assert (1, 2) in order and (1, 3) in order

    def test_repr_contains_pairs(self):
        assert "1->2" in repr(Rel([(1, 2)]))


class TestProperties:
    @given(rel_strategy, rel_strategy)
    def test_union_commutes(self, a, b):
        assert a | b == b | a

    @given(rel_strategy, rel_strategy, rel_strategy)
    def test_composition_associates(self, a, b, c):
        assert (a @ b) @ c == a @ (b @ c)

    @given(rel_strategy)
    def test_double_inverse(self, a):
        assert a.inv().inv() == a

    @given(rel_strategy)
    def test_plus_idempotent(self, a):
        assert a.plus().plus() == a.plus()

    @given(rel_strategy)
    def test_plus_contains_original(self, a):
        assert a.pairs <= a.plus().pairs

    @given(rel_strategy)
    def test_acyclic_iff_plus_irreflexive(self, a):
        assert a.is_acyclic() == a.plus().is_irreflexive()

    @given(rel_strategy, rel_strategy)
    def test_composition_distributes_over_union(self, a, b):
        c = Rel([(0, 1), (1, 2), (5, 3)])
        assert (a | b) @ c == (a @ c) | (b @ c)

    @given(rel_strategy)
    def test_inverse_of_composition(self, a):
        b = Rel([(2, 7), (3, 1)])
        assert (a @ b).inv() == b.inv() @ a.inv()
