"""Unit tests for the staged-enumeration machinery itself.

The differential suite (test_differential_enumeration.py) checks the
end-to-end contract; these tests pin down the individual stages — the
linear-extension enumerator, the rf prunes, the RMW product cut, the
forced-coherence closure, the model precheck hook and the limit
plumbing — so a regression points at the guilty stage directly.
"""

import pytest

from repro.core import ARM, SC, X86
from repro.core.enumerate import (
    EnumerationStats,
    behaviors,
    clear_behavior_cache,
    consistent_executions,
    enumerate_consistent,
    enumerate_executions,
    enumeration_stats,
    reset_enumeration_stats,
)
from repro.core.litmus_library import ALL_TESTS, CAS, R, W, x86
from repro.core.models.base import MemoryModel
from repro.core.relations import Rel, linear_extensions
from repro.errors import ModelError


class TestLinearExtensions:
    def test_empty_partial_yields_all_permutations(self):
        exts = list(linear_extensions([1, 2, 3], []))
        assert len(exts) == 6

    def test_total_partial_yields_single_extension(self):
        total = [(1, 2), (2, 3), (1, 3)]
        exts = list(linear_extensions([1, 2, 3], total))
        assert len(exts) == 1
        assert exts[0] == Rel(total)

    def test_partial_constraint_filters(self):
        # 1 before 3 leaves the three permutations with that property.
        exts = list(linear_extensions([1, 2, 3], [(1, 3)]))
        assert len(exts) == 3
        for ext in exts:
            assert (1, 3) in ext

    def test_each_extension_is_a_strict_total_order(self):
        for ext in linear_extensions([4, 5, 6, 7], [(4, 7)]):
            assert len(ext.pairs) == 6  # C(4,2)
            assert ext.is_irreflexive()

    def test_cyclic_partial_yields_nothing(self):
        assert list(linear_extensions([1, 2], [(1, 2), (2, 1)])) == []

    def test_foreign_pairs_ignored(self):
        exts = list(linear_extensions([1, 2], [(9, 1), (2, 9)]))
        assert len(exts) == 2


class TestRfPrunes:
    def test_po_later_own_write_pruned(self):
        # T0: R a=X; W X=1 — the read cannot see its own later write.
        prog = x86("p", (R("a", "X"), W("X", 1)))
        stats = EnumerationStats()
        execs = list(enumerate_consistent(prog, SC, stats=stats))
        assert stats.rf_options_pruned >= 1
        assert all(dict(ex.regs)["T0:a"] == 0 for ex in execs)

    def test_masked_init_pruned(self):
        # T0: W X=1; R a=X — init can no longer reach the read.
        prog = x86("p", (W("X", 1), R("a", "X")))
        stats = EnumerationStats()
        execs = list(enumerate_consistent(prog, SC, stats=stats))
        assert stats.rf_options_pruned >= 1
        assert all(dict(ex.regs)["T0:a"] == 1 for ex in execs)

    def test_masked_same_thread_source_pruned(self):
        # W X=1; W X=1; R a=X — the first write is masked by the second.
        prog = x86("p", (W("X", 1), W("X", 1), R("a", "X")))
        stats = EnumerationStats()
        list(enumerate_consistent(prog, SC, stats=stats))
        assert stats.rf_options_pruned >= 1

    def test_cross_thread_sources_survive(self):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        stats = EnumerationStats()
        execs = list(enumerate_consistent(prog, X86, stats=stats))
        values = {dict(ex.regs)["T1:a"] for ex in execs}
        assert values == {0, 1}


class TestRmwProductCut:
    def test_shared_source_branch_cut(self):
        # Both CAS(X,0,*) succeed only by reading init — disjointness
        # cuts that branch during the rf product.
        prog = x86("atom", (CAS("X", 0, 1),), (CAS("X", 0, 2),))
        stats = EnumerationStats()
        execs = list(enumerate_consistent(prog, X86, stats=stats))
        assert stats.rf_rejected_rmw >= 1
        for ex in execs:
            assert dict(ex.behavior)["X"] in (1, 2)

    def test_staged_and_naive_agree_on_rmw_race(self):
        prog = x86("atom", (CAS("X", 0, 1),), (CAS("X", 0, 2),))
        staged = {ex.full_behavior
                  for ex in enumerate_consistent(prog, X86)}
        naive = {ex.full_behavior for ex in enumerate_executions(prog)
                 if X86.is_consistent(ex)}
        assert staged == naive


class TestPrecheckHook:
    def test_unsupported_model_falls_back_to_naive_filter(self):
        class Opaque(MemoryModel):
            name = "opaque"
            supports_staged = False

            def is_consistent(self, ex):
                return SC.is_consistent(ex)

        prog = ALL_TESTS["MP"].program
        staged = {ex.full_behavior
                  for ex in enumerate_consistent(prog, Opaque())}
        oracle = {ex.full_behavior
                  for ex in consistent_executions(prog, SC,
                                                  staged=False)}
        assert staged == oracle

    def test_precheck_consulted_on_partial_co(self):
        calls = []

        class Spy(MemoryModel):
            name = "spy"
            supports_staged = True

            def is_consistent(self, ex):
                return SC.is_consistent(ex)

            def rf_stage_consistent(self, ex):
                calls.append(len(ex.co.pairs))
                return SC.rf_stage_consistent(ex)

        prog = ALL_TESTS["MP"].program
        staged = {ex.full_behavior
                  for ex in enumerate_consistent(prog, Spy())}
        assert calls, "rf-stage precheck never invoked"
        assert staged == {ex.full_behavior
                         for ex in consistent_executions(prog, SC,
                                                         staged=False)}

    def test_all_builtin_models_expose_the_hook(self):
        from repro.core import ARM_ORIGINAL, TCG
        prog = x86("p", (W("X", 1),))
        ex = next(enumerate_executions(prog))
        for model in (X86, ARM, ARM_ORIGINAL, TCG, SC):
            assert model.supports_staged
            assert model.rf_stage_consistent(ex) == \
                model.is_consistent(ex)


class TestLimitPlumbing:
    def test_enumerate_consistent_respects_limit(self):
        prog = ALL_TESTS["IRIW"].program
        with pytest.raises(ModelError):
            list(enumerate_consistent(prog, X86, limit=1))

    def test_consistent_executions_passes_limit(self):
        prog = ALL_TESTS["IRIW"].program
        with pytest.raises(ModelError):
            consistent_executions(prog, X86, limit=1)
        with pytest.raises(ModelError):
            consistent_executions(prog, X86, limit=1, staged=False)

    def test_behaviors_passes_limit_on_miss(self, monkeypatch):
        # Disk layer off: a warm persistent entry would satisfy the
        # lookup without enumerating, and limit only binds on misses.
        from repro.core import behavior_cache
        monkeypatch.setenv(behavior_cache.ENV_VAR, "off")
        clear_behavior_cache()
        prog = ALL_TESTS["IRIW"].program
        with pytest.raises(ModelError):
            behaviors(prog, X86, limit=1)
        clear_behavior_cache()

    def test_verifier_forwards_limit(self, monkeypatch):
        from repro.core import behavior_cache
        from repro.core.verifier import check_translation
        monkeypatch.setenv(behavior_cache.ENV_VAR, "off")
        prog = ALL_TESTS["IRIW"].program
        clear_behavior_cache()
        with pytest.raises(ModelError):
            check_translation(prog, prog, X86, X86, limit=1)
        clear_behavior_cache()

    def test_generous_limit_unchanged(self):
        prog = ALL_TESTS["MP"].program
        execs = consistent_executions(prog, X86, limit=10_000)
        assert {ex.full_behavior for ex in execs} == {
            ex.full_behavior
            for ex in consistent_executions(prog, X86)
        }


class TestEnumerationStats:
    def test_module_counters_accumulate(self):
        reset_enumeration_stats()
        list(enumerate_consistent(ALL_TESTS["MP"].program, X86))
        first = enumeration_stats()
        assert first.combos > 0
        assert first.executions_enumerated > 0
        list(enumerate_consistent(ALL_TESTS["MP"].program, X86))
        second = enumeration_stats()
        assert second.combos == 2 * first.combos
        reset_enumeration_stats()
        assert enumeration_stats().combos == 0

    def test_snapshot_is_detached(self):
        reset_enumeration_stats()
        list(enumerate_consistent(ALL_TESTS["MP"].program, X86))
        snap = enumeration_stats()
        list(enumerate_consistent(ALL_TESTS["MP"].program, X86))
        assert enumeration_stats().combos == 2 * snap.combos

    def test_pruned_fraction_bounds(self):
        stats = EnumerationStats()
        assert stats.pruned_fraction == 0.0
        stats.candidates_naive = 10
        stats.executions_enumerated = 4
        assert stats.pruned_fraction == pytest.approx(0.6)

    def test_merge_adds_fieldwise(self):
        a = EnumerationStats(combos=1, candidates_naive=5,
                             executions_enumerated=2)
        b = EnumerationStats(combos=2, candidates_naive=3,
                             rf_rejected_precheck=1)
        a.merge(b)
        assert a.combos == 3
        assert a.candidates_naive == 8
        assert a.rf_rejected_precheck == 1
