"""Behaviour-cache keying and persistence.

Two concerns:

* **Key identity** — the memo used to key on ``(program, model.name)``,
  so an ablated/variant model that legitimately reuses a standard name
  silently inherited the standard model's cached behaviours.  The key
  is now a content fingerprint of the model; the regression tests here
  fail under the old scheme.
* **Disk layer** — behaviours persist across processes (and across
  ``run_parallel`` workers) in ``REPRO_BEHAVIOR_CACHE``; entries must
  survive in-memory clears, tolerate corruption, and honour the off
  switch.
"""

import pytest

from repro.core import ARM, ARM_ORIGINAL, SC, X86
from repro.core import behavior_cache
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.enumerate import (
    behavior_cache_stats,
    behaviors,
    clear_behavior_cache,
)
from repro.core.litmus_library import R, W, outcome, shows, x86
from repro.core.models.armcats import ArmModel


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    """Point the persistent layer at a private directory."""
    monkeypatch.setenv(behavior_cache.ENV_VAR, str(tmp_path))
    clear_behavior_cache()
    yield tmp_path
    clear_behavior_cache()


@pytest.fixture
def no_disk(monkeypatch):
    monkeypatch.setenv(behavior_cache.ENV_VAR, "off")
    clear_behavior_cache()
    yield
    clear_behavior_cache()


class TestModelKeyCollision:
    """Regression: cache key must be the model's content, not its name."""

    def test_variant_model_with_reused_name_not_conflated(self, no_disk):
        # The original Arm-Cats model (the paper's SBAL bug) dressed up
        # under the corrected model's name.  Keying on (program, name)
        # would hand it the corrected model's cached behaviours.
        prog = M.armcats_intended.apply(L.SBAL.program)
        weak = outcome(X=1, Y=1, T0_a=0, T1_b=0)

        imposter = ArmModel(corrected=False)
        imposter.name = ARM.name
        assert imposter.name == "arm-cats"

        corrected = behaviors(prog, ARM)          # populates the cache
        impostor_behs = behaviors(prog, imposter)  # must NOT hit it
        assert impostor_behs != corrected
        assert not shows(corrected, weak)
        assert shows(impostor_behs, weak)

    def test_order_independent(self, no_disk):
        # Same collision with the imposter populating the cache first.
        prog = M.armcats_intended.apply(L.SBAL.program)
        imposter = ArmModel(corrected=False)
        imposter.name = ARM.name
        first = behaviors(prog, imposter)
        assert behaviors(prog, ARM) != first

    def test_identical_config_still_shares_entries(self, no_disk):
        # Two instances of the same class+config are the same model and
        # must share one entry (the point of fingerprinting content).
        prog = M.armcats_intended.apply(L.MP.program)
        behaviors(prog, ArmModel(corrected=True))
        before = behavior_cache_stats()
        behaviors(prog, ArmModel(corrected=True))
        after = behavior_cache_stats()
        assert after.hits == before.hits + 1

    def test_fingerprints_differ_between_variants(self):
        assert ARM.fingerprint() != ARM_ORIGINAL.fingerprint()
        imposter = ArmModel(corrected=False)
        imposter.name = ARM.name
        assert imposter.fingerprint() != ARM.fingerprint()
        assert ArmModel(corrected=True).fingerprint() == \
            ARM.fingerprint()


class TestProgramFingerprint:
    def test_name_excluded(self):
        a = x86("first", (W("X", 1),), (R("a", "X"),))
        b = x86("second", (W("X", 1),), (R("a", "X"),))
        assert behavior_cache.program_fingerprint(a) == \
            behavior_cache.program_fingerprint(b)

    def test_content_included(self):
        a = x86("p", (W("X", 1),))
        b = x86("p", (W("X", 2),))
        assert behavior_cache.program_fingerprint(a) != \
            behavior_cache.program_fingerprint(b)


class TestDiskLayer:
    def test_entry_written_and_reloaded(self, disk_cache):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        first = behaviors(prog, X86)
        assert list(disk_cache.glob("*.json"))
        # A fresh in-process memo (a new worker) loads from disk.
        clear_behavior_cache()
        again = behaviors(prog, X86)
        assert again == first
        stats = behavior_cache_stats()
        assert stats.disk_hits == 1
        assert stats.disk_misses == 0

    def test_memory_misses_split_into_disk_hits_and_misses(self,
                                                           disk_cache):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        behaviors(prog, X86)
        clear_behavior_cache()
        behaviors(prog, X86)   # disk hit
        behaviors(prog, SC)    # disk miss -> enumerate + store
        stats = behavior_cache_stats()
        assert stats.misses == 2
        assert stats.disk_hits == 1
        assert stats.disk_misses == 1

    def test_corrupt_entry_is_a_miss(self, disk_cache):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        expected = behaviors(prog, X86)
        for path in disk_cache.glob("*.json"):
            path.write_text("{not json")
        clear_behavior_cache()
        assert behaviors(prog, X86) == expected
        assert behavior_cache_stats().disk_misses == 1

    def test_distinct_models_get_distinct_entries(self, disk_cache):
        prog = M.armcats_intended.apply(L.SBAL.program)
        imposter = ArmModel(corrected=False)
        imposter.name = ARM.name
        corrected = behaviors(prog, ARM)
        clear_behavior_cache()
        # Imposter with the same name must not load ARM's disk entry.
        assert behaviors(prog, imposter) != corrected

    def test_off_switch_disables_persistence(self, no_disk):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        behaviors(prog, X86)
        stats = behavior_cache_stats()
        assert stats.disk_hits == 0
        assert stats.disk_misses == 0
        assert not behavior_cache.enabled()

    def test_clear_disk_cache(self, disk_cache):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        behaviors(prog, X86)
        assert behavior_cache.clear_disk_cache() >= 1
        assert not list(disk_cache.glob("*.json"))

    def test_clear_disk_cache_sweeps_orphaned_tmp(self, disk_cache):
        """Regression: a writer killed between ``mkstemp`` and
        ``os.replace`` leaves a ``*.tmp`` orphan that nothing else
        removes; ``clear_disk_cache`` must sweep and count it."""
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        behaviors(prog, X86)
        orphan = disk_cache / "deadbeef.tmp"
        orphan.write_text("{\"partial\":")
        removed = behavior_cache.clear_disk_cache()
        assert removed >= 2  # the real entry plus the planted orphan
        assert not orphan.exists()
        assert not list(disk_cache.glob("*.json"))
        assert not list(disk_cache.glob("*.tmp"))

    def test_clear_with_disk_flag(self, disk_cache):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        behaviors(prog, X86)
        clear_behavior_cache(disk=True)
        assert not list(disk_cache.glob("*.json"))

    def test_cache_dir_override(self, disk_cache):
        assert behavior_cache.cache_dir() == disk_cache


class TestNamespaces:
    def test_namespace_becomes_a_subdirectory(self, disk_cache,
                                              monkeypatch):
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "shard-3")
        assert behavior_cache.cache_dir() == disk_cache / "shard-3"

    def test_unset_or_blank_namespace_is_the_root(self, disk_cache,
                                                  monkeypatch):
        monkeypatch.delenv(behavior_cache.NAMESPACE_ENV,
                           raising=False)
        assert behavior_cache.cache_dir() == disk_cache
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "   ")
        assert behavior_cache.cache_dir() == disk_cache

    def test_traversal_characters_cannot_escape(self, disk_cache,
                                                monkeypatch):
        # Separators are stripped; a name reduced to dots is dropped
        # entirely, so "../evil" cannot become a parent reference.
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "../evil")
        assert behavior_cache.cache_dir() == disk_cache / "..evil"
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "..")
        assert behavior_cache.cache_dir() == disk_cache
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "a/b\\c")
        assert behavior_cache.cache_dir() == disk_cache / "abc"

    def test_namespaces_do_not_share_entries(self, disk_cache,
                                             monkeypatch):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "left")
        first = behaviors(prog, X86)
        assert list((disk_cache / "left").glob("*.json"))

        # The other namespace starts cold: the same program misses on
        # disk and re-enumerates into its own directory.
        clear_behavior_cache()
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "right")
        assert behavior_cache.load(prog, X86) is None
        again = behaviors(prog, X86)
        assert again == first
        assert list((disk_cache / "right").glob("*.json"))

    def test_clear_touches_only_the_active_namespace(self, disk_cache,
                                                     monkeypatch):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "keep")
        behaviors(prog, X86)
        clear_behavior_cache()
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "drop")
        behaviors(prog, X86)
        assert behavior_cache.clear_disk_cache() == 1
        assert list((disk_cache / "keep").glob("*.json"))
        assert not list((disk_cache / "drop").glob("*.json"))

    def test_concurrent_writers_in_one_namespace_are_safe(
            self, disk_cache, monkeypatch):
        import threading

        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "shared")
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        expected = behaviors(prog, X86)
        errors = []

        def writer():
            try:
                for _ in range(20):
                    behavior_cache.store(prog, X86, expected)
                    loaded = behavior_cache.load(prog, X86)
                    if loaded is not None and loaded != expected:
                        errors.append(loaded)
            except Exception as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert behavior_cache.load(prog, X86) == expected
