"""Mapping-scheme unit tests: the translation tables of Figures 2/3/7."""

import pytest

from repro.core import Arch, Fence, Mode, RmwFlavor
from repro.core import mappings as M
from repro.core.litmus_library import CAS, MFENCE, R, W, x86
from repro.core.program import FenceOp, If, Load, Rmw, Store
from repro.errors import MappingError


class TestRisottoX86ToTcg:
    """Figure 7a."""

    def test_load_gets_trailing_frm(self):
        ops = M.risotto_x86_to_tcg.map_op(R("a", "X"))
        assert ops == (Load("a", "X"), FenceOp(Fence.FRM))

    def test_store_gets_leading_fww(self):
        ops = M.risotto_x86_to_tcg.map_op(W("X", 1))
        assert ops == (FenceOp(Fence.FWW), Store("X", 1))

    def test_rmw_becomes_tcg_rmw(self):
        (op,) = M.risotto_x86_to_tcg.map_op(CAS("X", 0, 1))
        assert isinstance(op, Rmw) and op.flavor is RmwFlavor.TCG

    def test_mfence_becomes_fsc(self):
        assert M.risotto_x86_to_tcg.map_op(MFENCE()) == \
            (FenceOp(Fence.FSC),)


class TestQemuX86ToTcg:
    """Figure 2 (with the Section 3.1 Frr demotion)."""

    def test_load_gets_leading_frr(self):
        ops = M.qemu_x86_to_tcg.map_op(R("a", "X"))
        assert ops == (FenceOp(Fence.FRR), Load("a", "X"))

    def test_store_gets_leading_fmw(self):
        ops = M.qemu_x86_to_tcg.map_op(W("X", 1))
        assert ops == (FenceOp(Fence.FMW), Store("X", 1))


class TestFenceLowering:
    """Figure 7b's fence rows."""

    @pytest.mark.parametrize("kind", [Fence.FRR, Fence.FRW, Fence.FRM])
    def test_read_fences_to_dmbld(self, kind):
        assert M.lower_tcg_fence(kind) == (FenceOp(Fence.DMBLD),)

    def test_fww_to_dmbst(self):
        assert M.lower_tcg_fence(Fence.FWW) == (FenceOp(Fence.DMBST),)

    @pytest.mark.parametrize(
        "kind", [Fence.FWR, Fence.FMM, Fence.FSC, Fence.FMR, Fence.FMW])
    def test_store_load_fences_to_dmbff(self, kind):
        assert M.lower_tcg_fence(kind) == (FenceOp(Fence.DMBFF),)

    @pytest.mark.parametrize("kind", [Fence.FACQ, Fence.FREL])
    def test_acq_rel_free_on_arm(self, kind):
        assert M.lower_tcg_fence(kind) == ()

    def test_non_tcg_fence_rejected(self):
        with pytest.raises(MappingError):
            M.lower_tcg_fence(Fence.DMBFF)


class TestRmwLowering:
    def test_rmw1al(self):
        (op,) = M.risotto_tcg_to_arm_rmw1.map_op(
            Rmw("X", 0, 1, RmwFlavor.TCG))
        assert op.flavor is RmwFlavor.AMO and op.acq and op.rel

    def test_rmw2_with_dmbff(self):
        ops = M.risotto_tcg_to_arm_rmw2.map_op(
            Rmw("X", 0, 1, RmwFlavor.TCG))
        assert ops[0] == FenceOp(Fence.DMBFF)
        assert ops[-1] == FenceOp(Fence.DMBFF)
        assert ops[1].flavor is RmwFlavor.LXSX
        assert not ops[1].acq and not ops[1].rel

    def test_qemu_helper_gcc9_is_bare_lxsx_al(self):
        ops = M.qemu_tcg_to_arm_gcc9.map_op(Rmw("X", 0, 1, RmwFlavor.TCG))
        assert len(ops) == 1
        assert ops[0].flavor is RmwFlavor.LXSX and ops[0].acq and ops[0].rel

    def test_qemu_helper_gcc10_is_bare_casal(self):
        ops = M.qemu_tcg_to_arm_gcc10.map_op(
            Rmw("X", 0, 1, RmwFlavor.TCG))
        assert len(ops) == 1
        assert ops[0].flavor is RmwFlavor.AMO


class TestArmCatsIntended:
    """Figure 3."""

    def test_load_is_acquire_pc(self):
        (op,) = M.armcats_intended.map_op(R("a", "X"))
        assert op.mode is Mode.ACQ_PC

    def test_store_is_release(self):
        (op,) = M.armcats_intended.map_op(W("X", 1))
        assert op.mode is Mode.REL

    def test_rmw_is_casal(self):
        (op,) = M.armcats_intended.map_op(CAS("X", 0, 1))
        assert op.flavor is RmwFlavor.AMO and op.acq and op.rel


class TestApplyAndCompose:
    def test_apply_recurses_into_if(self):
        prog = x86("p", (R("a", "X"),
                         If("a", 1, then_ops=(W("Y", 1),))))
        mapped = M.risotto_x86_to_tcg.apply(prog)
        branch = mapped.threads[0][2]
        assert isinstance(branch, If)
        assert branch.then_ops == (FenceOp(Fence.FWW), Store("Y", 1))

    def test_apply_retags_arch(self):
        prog = x86("p", (W("X", 1),))
        assert M.risotto_x86_to_tcg.apply(prog).arch is Arch.TCG

    def test_apply_wrong_arch_rejected(self):
        prog = x86("p", (W("X", 1),))
        arm_prog = M.risotto_x86_to_arm_rmw1.apply(prog)
        with pytest.raises(MappingError):
            M.risotto_x86_to_tcg.apply(arm_prog)

    def test_composition_matches_figure_7c(self):
        # RMOV -> ld; Frm -> LDR; DMBLD
        ops = M.risotto_x86_to_arm_rmw1.map_op(R("a", "X"))
        assert ops == (Load("a", "X"), FenceOp(Fence.DMBLD))
        # WMOV -> Fww; st -> DMBST; STR
        ops = M.risotto_x86_to_arm_rmw1.map_op(W("X", 1))
        assert ops == (FenceOp(Fence.DMBST), Store("X", 1))
        # MFENCE -> Fsc -> DMBFF
        ops = M.risotto_x86_to_arm_rmw1.map_op(MFENCE())
        assert ops == (FenceOp(Fence.DMBFF),)

    def test_incompatible_composition_rejected(self):
        with pytest.raises(MappingError):
            M.risotto_x86_to_tcg.then(M.risotto_x86_to_tcg)

    def test_registry_names_unique(self):
        from repro.core.most import SCHEME_MAPPINGS

        # 13 hand-written mappings plus the derived most-* family.
        assert len(M.ALL_MAPPINGS) == 13 + len(SCHEME_MAPPINGS)
        assert set(SCHEME_MAPPINGS) <= set(M.ALL_MAPPINGS)
        assert all(name == mapping.name
                   for name, mapping in M.ALL_MAPPINGS.items())
