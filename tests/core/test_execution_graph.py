"""Direct tests of Execution's derived relations on hand-built graphs."""

import pytest

from repro.core.axioms import atomicity, co_well_formed, rf_well_formed, \
    sc_per_loc
from repro.core.events import Event, Fence, INIT_TID, Mode, RmwFlavor
from repro.core.execution import Execution
from repro.core.relations import Rel


def make_events(*specs):
    events = {}
    for eid, spec in enumerate(specs):
        events[eid] = Event(eid=eid, **spec)
    return events


@pytest.fixture
def mp_execution():
    """init X, init Y; T0: W X 1, W Y 1; T1: R Y 1, R X 0 (weak)."""
    events = make_events(
        dict(tid=INIT_TID, idx=0, kind="W", loc="X", val=0,
             is_init=True),
        dict(tid=INIT_TID, idx=1, kind="W", loc="Y", val=0,
             is_init=True),
        dict(tid=0, idx=0, kind="W", loc="X", val=1),
        dict(tid=0, idx=1, kind="W", loc="Y", val=1),
        dict(tid=1, idx=0, kind="R", loc="Y", val=1),
        dict(tid=1, idx=1, kind="R", loc="X", val=0),
    )
    return Execution(
        events=events,
        po=Rel([(2, 3), (4, 5)]),
        rf=Rel([(3, 4), (0, 5)]),
        co=Rel([(0, 2), (1, 3)]),
    )

class TestDerivedRelations:
    def test_event_classes(self, mp_execution):
        ex = mp_execution
        assert ex.reads == {4, 5}
        assert ex.writes == {0, 1, 2, 3}
        assert ex.memory_events == {0, 1, 2, 3, 4, 5}

    def test_fr(self, mp_execution):
        # R X 0 reads init; W X 1 is co-after init -> fr(5, 2).
        assert (5, 2) in mp_execution.fr

    def test_externality(self, mp_execution):
        ex = mp_execution
        assert (3, 4) in ex.rfe
        assert (5, 2) in ex.fre
        assert not ex.rfi

    def test_po_loc_empty_for_different_locations(self, mp_execution):
        assert not mp_execution.po_loc

    def test_behavior_is_co_maximal(self, mp_execution):
        assert mp_execution.behavior == frozenset(
            {("X", 1), ("Y", 1)})

    def test_full_behavior_includes_registers(self):
        ex = Execution(events={}, po=Rel(), rf=Rel(), co=Rel(),
                       regs=frozenset({("T0:a", 7)}))
        assert ("T0:a", 7) in ex.full_behavior

    def test_describe_smoke(self, mp_execution):
        text = mp_execution.describe()
        assert "rf:" in text and "behavior" in text

    def test_well_formedness(self, mp_execution):
        assert rf_well_formed(mp_execution)
        assert co_well_formed(mp_execution)
        assert sc_per_loc(mp_execution)
        assert atomicity(mp_execution)

    def test_rf_wrong_value_rejected(self, mp_execution):
        broken = Execution(
            events=mp_execution.events,
            po=mp_execution.po,
            rf=Rel([(2, 5), (3, 4)]),  # R X 0 reading W X 1
            co=mp_execution.co,
        )
        assert not rf_well_formed(broken)

    def test_co_into_init_rejected(self, mp_execution):
        broken = Execution(
            events=mp_execution.events,
            po=mp_execution.po,
            rf=mp_execution.rf,
            co=Rel([(2, 0), (1, 3)]),
        )
        assert not co_well_formed(broken)


class TestRmwClassification:
    def _rmw_events(self, flavor, acq=False, rel=False):
        return make_events(
            dict(tid=INIT_TID, idx=0, kind="W", loc="X", val=0,
                 is_init=True),
            dict(tid=0, idx=0, kind="R", loc="X", val=0,
                 mode=Mode.ACQ if acq else Mode.PLAIN,
                 rmw_flavor=flavor, rmw_partner=2),
            dict(tid=0, idx=1, kind="W", loc="X", val=1,
                 mode=Mode.REL if rel else Mode.PLAIN,
                 rmw_flavor=flavor, rmw_partner=1),
        )

    def test_amo_vs_lxsx(self):
        for flavor, which in ((RmwFlavor.AMO, "amo"),
                              (RmwFlavor.LXSX, "lxsx")):
            ex = Execution(
                events=self._rmw_events(flavor, acq=True, rel=True),
                po=Rel([(1, 2)]),
                rf=Rel([(0, 1)]),
                co=Rel([(0, 2)]),
            )
            assert (1, 2) in ex.rmw
            assert ((1, 2) in getattr(ex, which).pairs)
            other = "lxsx" if which == "amo" else "amo"
            assert not getattr(ex, other)

    def test_mode_sets(self):
        ex = Execution(
            events=self._rmw_events(RmwFlavor.AMO, acq=True, rel=True),
            po=Rel([(1, 2)]),
            rf=Rel([(0, 1)]),
            co=Rel([(0, 2)]),
        )
        assert ex.acquires == {1}
        assert ex.releases == {2}
        assert not ex.acquire_pcs

    def test_atomicity_violation_detected(self):
        # An external write between the rmw read and write.
        events = self._rmw_events(RmwFlavor.AMO)
        events[3] = Event(eid=3, tid=1, idx=0, kind="W", loc="X",
                          val=9)
        ex = Execution(
            events=events,
            po=Rel([(1, 2)]),
            rf=Rel([(0, 1)]),
            co=Rel([(0, 3), (3, 2), (0, 2)]),
        )
        assert not atomicity(ex)
