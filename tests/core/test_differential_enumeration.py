"""Differential testing of the staged enumeration fast path.

The staged enumerator (:func:`repro.core.enumerate.enumerate_consistent`)
prunes rf candidates, derives forced coherence edges and runs a
model-precheck before expanding coherence permutations.  Every prune is
claimed to be sound — so the staged path must produce *bit-identical*
behaviour sets to the naive rf × co cross product filtered through the
model, for every litmus program and every model.  This module checks
exactly that, plus the quantitative claim: on RMW/IRIW-class tests the
fast path materializes strictly fewer executions than the naive count.

The exhaustive sweep is marked ``slow`` (run with ``-m slow``); a
representative subset runs in the default suite.
"""

import pytest

from repro.core import ARM, ARM_ORIGINAL, SC, TCG, X86
from repro.core.enumerate import (
    EnumerationStats,
    enumerate_consistent,
    enumerate_executions,
)
from repro.core.litmus_library import ALL_TESTS

#: The four models the paper's verification story rests on.
PAPER_MODELS = {
    "x86-tso": X86,
    "tcg-ir": TCG,
    "arm-cats": ARM,
    "arm-cats-original": ARM_ORIGINAL,
}

#: Corpus tests whose inconsistencies surface already at the rf stage
#: (RMW source conflicts, IRIW-style propagation) — the class the
#: staged path must *strictly* shrink.  Tests like SB/S/R/2+2W (and
#: S+rmw) only become inconsistent at the co choice itself, so their
#: naive and staged counts legitimately coincide.
REDUCTION_CLASS = (
    "MPQ", "SBQ", "SBAL", "CAS-chain", "MP+rmw", "SB+rmw-one-side",
    "IRIW", "IRIW+mfences", "Fig9-W-RMW", "Fig9-RMW-R",
)

#: Small but structurally diverse subset for the always-on check.
FAST_SUBSET = (
    "MP", "SB+mfences", "CoWR", "CAS-chain", "MPQ", "SBAL", "LB-IR",
)


def naive_behaviors(program, model) -> frozenset:
    """The oracle: filter the full rf × co product through the model."""
    return frozenset(
        ex.full_behavior for ex in enumerate_executions(program)
        if model.is_consistent(ex)
    )


def staged_behaviors(program, model, stats=None) -> frozenset:
    return frozenset(
        ex.full_behavior
        for ex in enumerate_consistent(program, model, stats=stats)
    )


def assert_paths_agree(name: str, model) -> EnumerationStats:
    test = ALL_TESTS[name]
    stats = EnumerationStats()
    staged = staged_behaviors(test.program, model, stats=stats)
    naive = naive_behaviors(test.program, model)
    assert staged == naive, (
        f"{name} under {model.name}: staged behaviours diverge from "
        f"the naive oracle\n  staged-only: {staged - naive}\n"
        f"  naive-only:  {naive - staged}"
    )
    # The fast path must never do *more* work than the cross product.
    assert stats.executions_enumerated <= stats.candidates_naive
    return stats


class TestDifferentialSubset:
    """Always-on: representative corpus slice × every paper model."""

    @pytest.mark.parametrize("model", list(PAPER_MODELS.values()),
                             ids=list(PAPER_MODELS))
    @pytest.mark.parametrize("name", FAST_SUBSET)
    def test_staged_matches_naive(self, name, model):
        assert_paths_agree(name, model)

    def test_sc_model_agrees_too(self):
        # SC is not a paper model but supports the staged path; keep it
        # honest on a coherence-heavy test.
        assert_paths_agree("CoRR", SC)


@pytest.mark.slow
class TestDifferentialExhaustive:
    """Every litmus program × every paper model, staged == naive.

    Parametrized by model name so the CI matrix can fan the sweep out
    with ``-k`` on the model id.
    """

    @pytest.mark.parametrize("model_name", list(PAPER_MODELS))
    @pytest.mark.parametrize("name", sorted(ALL_TESTS))
    def test_staged_matches_naive(self, name, model_name):
        assert_paths_agree(name, PAPER_MODELS[model_name])


class TestStrictReduction:
    """The headline saving: RMW/IRIW-class tests must materialize
    strictly fewer executions than the naive cross product, per test,
    aggregated over the four paper models."""

    @pytest.mark.parametrize("name", REDUCTION_CLASS)
    def test_reduction_class_shrinks(self, name):
        total = EnumerationStats()
        for model in PAPER_MODELS.values():
            stats = EnumerationStats()
            staged_behaviors(ALL_TESTS[name].program, model, stats=stats)
            total.merge(stats)
        assert total.executions_enumerated < total.candidates_naive, (
            f"{name}: staged path materialized the whole naive product "
            f"({total.executions_enumerated} of "
            f"{total.candidates_naive})"
        )

    def test_reduction_is_observable_in_counters(self):
        # MPQ's saving is an rf-stage precheck cut; CAS-chain's comes
        # from forced coherence shrinking the linear-extension count.
        stats = EnumerationStats()
        staged_behaviors(ALL_TESTS["MPQ"].program, X86, stats=stats)
        assert stats.rf_rejected_precheck > 0
        assert stats.pruned_fraction > 0.0

        stats = EnumerationStats()
        staged_behaviors(ALL_TESTS["CAS-chain"].program, X86,
                         stats=stats)
        assert stats.executions_enumerated < stats.candidates_naive
        assert stats.pruned_fraction > 0.0


def reduced_behaviors_of(program, model, stats=None) -> frozenset:
    from repro.core.dpor import reduced_behaviors

    return reduced_behaviors(program, model, stats=stats)


class TestReducedDifferential:
    """DPOR + symmetry + coherence classes == naive, always-on slice.

    The reduced path keeps only canonical trace combos and one witness
    per coherence value class, then closes behaviours under the thread
    renamings — so bit-identical behaviour sets are the whole
    soundness claim, checked against the same oracle the staged path
    answers to.
    """

    @pytest.mark.parametrize("model", list(PAPER_MODELS.values()),
                             ids=list(PAPER_MODELS))
    @pytest.mark.parametrize("name", FAST_SUBSET)
    def test_reduced_matches_naive(self, name, model):
        program = ALL_TESTS[name].program
        stats = EnumerationStats()
        reduced = reduced_behaviors_of(program, model, stats=stats)
        naive = naive_behaviors(program, model)
        assert reduced == naive, (
            f"{name} under {model.name}: reduced behaviours diverge "
            f"from the naive oracle\n"
            f"  reduced-only: {reduced - naive}\n"
            f"  naive-only:   {naive - reduced}"
        )
        assert stats.executions_enumerated <= stats.candidates_naive

    def test_sc_model_agrees_too(self):
        program = ALL_TESTS["CoRR"].program
        assert reduced_behaviors_of(program, SC) == \
            naive_behaviors(program, SC)

    def test_five_thread_corpus_where_naive_is_feasible(self):
        from repro.core.corpus_large import CAS5, IRIW5, MP_CHAIN5, \
            SB5_RING

        for test in (IRIW5, CAS5, MP_CHAIN5, SB5_RING):
            reduced = reduced_behaviors_of(test.program, X86)
            assert reduced == naive_behaviors(test.program, X86), \
                test.name


@pytest.mark.slow
class TestReducedDifferentialExhaustive:
    """Every litmus program × every paper model, reduced == naive."""

    @pytest.mark.parametrize("model_name", list(PAPER_MODELS))
    @pytest.mark.parametrize("name", sorted(ALL_TESTS))
    def test_reduced_matches_naive(self, name, model_name):
        model = PAPER_MODELS[model_name]
        program = ALL_TESTS[name].program
        assert reduced_behaviors_of(program, model) == \
            naive_behaviors(program, model)
