"""Regression tests for verifier correctness fixes.

Two bugs fixed here:

* ``drop_rmw_fence`` stripped *any* leading/trailing fence from an RMW
  lowering, although its contract is to weaken only the DMBFF — a
  mapping with some other boundary fence was silently mis-weakened.
* ``check_translation`` passed vacuously when source and target share
  no behaviour keys: every target behaviour projects to the empty set
  and inclusion trivially holds.
"""

import pytest

from repro.core import ARM, X86
from repro.core.enumerate import clear_behavior_cache
from repro.core.events import Arch, Fence, RmwFlavor
from repro.core.litmus_library import R, W, x86
from repro.core.mappings import OpMapping, risotto_tcg_to_arm_rmw2
from repro.core.program import FenceOp, Program, Rmw
from repro.core.verifier import check_translation, drop_rmw_fence
from repro.errors import ModelError

TCG_RMW = Rmw("X", 0, 1, RmwFlavor.TCG, out="r")


def _mapping_with_boundary_fences(lead: Fence, trail: Fence) -> OpMapping:
    """A TCG→Arm mapping whose RMW lowering is fence-bracketed."""

    def map_op(op):
        if isinstance(op, Rmw):
            return (
                FenceOp(lead),
                Rmw(op.loc, op.expect, op.new, RmwFlavor.LXSX,
                    out=op.out),
                FenceOp(trail),
            )
        return (op,)

    return OpMapping("bracketed", Arch.TCG, Arch.ARM, map_op)


class TestDropRmwFenceMatchesKind:
    def test_leading_non_dmbff_fence_survives(self):
        mapping = _mapping_with_boundary_fences(Fence.DMBLD,
                                                Fence.DMBFF)
        weakened = drop_rmw_fence(mapping, leading=True, suffix="lead")
        lowered = weakened.map_op(TCG_RMW)
        # The DMBLD is not the fence this weakening ablates: it stays.
        assert isinstance(lowered[0], FenceOp)
        assert lowered[0].kind is Fence.DMBLD

    def test_trailing_non_dmbff_fence_survives(self):
        mapping = _mapping_with_boundary_fences(Fence.DMBFF,
                                                Fence.DMBST)
        weakened = drop_rmw_fence(mapping, leading=False,
                                  suffix="trail")
        lowered = weakened.map_op(TCG_RMW)
        assert isinstance(lowered[-1], FenceOp)
        assert lowered[-1].kind is Fence.DMBST

    def test_dmbff_is_still_dropped(self):
        weakened_lead = drop_rmw_fence(risotto_tcg_to_arm_rmw2,
                                       leading=True, suffix="lead")
        lowered = weakened_lead.map_op(TCG_RMW)
        assert isinstance(lowered[0], Rmw)          # leading FF gone
        assert lowered[-1].kind is Fence.DMBFF      # trailing FF kept

        weakened_trail = drop_rmw_fence(risotto_tcg_to_arm_rmw2,
                                        leading=False, suffix="trail")
        lowered = weakened_trail.map_op(TCG_RMW)
        assert lowered[0].kind is Fence.DMBFF       # leading FF kept
        assert isinstance(lowered[-1], Rmw)         # trailing FF gone

    def test_non_rmw_ops_untouched(self):
        mapping = _mapping_with_boundary_fences(Fence.DMBFF,
                                                Fence.DMBFF)
        weakened = drop_rmw_fence(mapping, leading=True, suffix="lead")
        load = R("a", "X")
        assert weakened.map_op(load) == (load,)


class TestVacuousTranslationCheck:
    def setup_method(self):
        clear_behavior_cache()

    def test_disjoint_behavior_keys_raise(self):
        source = x86("src", (W("X", 1), R("a", "X")))
        target = Program("tgt", Arch.ARM, ((W("Y", 1), R("b", "Y")),))
        with pytest.raises(ModelError, match="no behaviour keys"):
            check_translation(source, target, X86, ARM,
                              mapping_name="disjoint")

    def test_shared_keys_still_verify(self):
        source = x86("src", (W("X", 1), R("a", "X")))
        target = Program("tgt", Arch.ARM, ((W("X", 1), R("a", "X")),))
        verdict = check_translation(source, target, X86, ARM,
                                    mapping_name="same")
        assert verdict.ok
