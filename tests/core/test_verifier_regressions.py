"""Regression tests for verifier correctness fixes.

Four bugs fixed here:

* ``drop_rmw_fence`` stripped *any* leading/trailing fence from an RMW
  lowering, although its contract is to weaken only the DMBFF — a
  mapping with some other boundary fence was silently mis-weakened.
* ``check_translation`` passed vacuously when source and target share
  no behaviour keys: every target behaviour projects to the empty set
  and inclusion trivially holds.
* ``check_translation`` projected *target-only* behaviour keys away
  before the inclusion check, so a mapping that renames (or invents)
  an observed register could corrupt it undetected.
* ``drop_fences`` filtered only top-level ops, leaving fences nested
  inside mapped ``If`` arms behind — the ablation then reasoned about
  a "weakened" mapping that still contained the fence.
"""

import pytest

from repro.core import ARM, X86
from repro.core.enumerate import clear_behavior_cache
from repro.core.events import Arch, Fence, RmwFlavor
from repro.core.litmus_library import LitmusTest, R, W, outcome, x86
from repro.core.mappings import OpMapping, risotto_tcg_to_arm_rmw2
from repro.core.program import FenceOp, If, Load, Program, Rmw
from repro.core.verifier import ablate, check_mapping, \
    check_translation, drop_fences, drop_rmw_fence
from repro.errors import ModelError

TCG_RMW = Rmw("X", 0, 1, RmwFlavor.TCG, out="r")


def _mapping_with_boundary_fences(lead: Fence, trail: Fence) -> OpMapping:
    """A TCG→Arm mapping whose RMW lowering is fence-bracketed."""

    def map_op(op):
        if isinstance(op, Rmw):
            return (
                FenceOp(lead),
                Rmw(op.loc, op.expect, op.new, RmwFlavor.LXSX,
                    out=op.out),
                FenceOp(trail),
            )
        return (op,)

    return OpMapping("bracketed", Arch.TCG, Arch.ARM, map_op)


class TestDropRmwFenceMatchesKind:
    def test_leading_non_dmbff_fence_survives(self):
        mapping = _mapping_with_boundary_fences(Fence.DMBLD,
                                                Fence.DMBFF)
        weakened = drop_rmw_fence(mapping, leading=True, suffix="lead")
        lowered = weakened.map_op(TCG_RMW)
        # The DMBLD is not the fence this weakening ablates: it stays.
        assert isinstance(lowered[0], FenceOp)
        assert lowered[0].kind is Fence.DMBLD

    def test_trailing_non_dmbff_fence_survives(self):
        mapping = _mapping_with_boundary_fences(Fence.DMBFF,
                                                Fence.DMBST)
        weakened = drop_rmw_fence(mapping, leading=False,
                                  suffix="trail")
        lowered = weakened.map_op(TCG_RMW)
        assert isinstance(lowered[-1], FenceOp)
        assert lowered[-1].kind is Fence.DMBST

    def test_dmbff_is_still_dropped(self):
        weakened_lead = drop_rmw_fence(risotto_tcg_to_arm_rmw2,
                                       leading=True, suffix="lead")
        lowered = weakened_lead.map_op(TCG_RMW)
        assert isinstance(lowered[0], Rmw)          # leading FF gone
        assert lowered[-1].kind is Fence.DMBFF      # trailing FF kept

        weakened_trail = drop_rmw_fence(risotto_tcg_to_arm_rmw2,
                                        leading=False, suffix="trail")
        lowered = weakened_trail.map_op(TCG_RMW)
        assert lowered[0].kind is Fence.DMBFF       # leading FF kept
        assert isinstance(lowered[-1], Rmw)         # trailing FF gone

    def test_non_rmw_ops_untouched(self):
        mapping = _mapping_with_boundary_fences(Fence.DMBFF,
                                                Fence.DMBFF)
        weakened = drop_rmw_fence(mapping, leading=True, suffix="lead")
        load = R("a", "X")
        assert weakened.map_op(load) == (load,)


class TestVacuousTranslationCheck:
    def setup_method(self):
        clear_behavior_cache()

    def test_disjoint_behavior_keys_raise(self):
        source = x86("src", (W("X", 1), R("a", "X")))
        target = Program("tgt", Arch.ARM, ((W("Y", 1), R("b", "Y")),))
        with pytest.raises(ModelError, match="no behaviour keys"):
            check_translation(source, target, X86, ARM,
                              mapping_name="disjoint")

    def test_shared_keys_still_verify(self):
        source = x86("src", (W("X", 1), R("a", "X")))
        target = Program("tgt", Arch.ARM, ((W("X", 1), R("a", "X")),))
        verdict = check_translation(source, target, X86, ARM,
                                    mapping_name="same")
        assert verdict.ok


class TestPartialOverlapTranslationCheck:
    """A renamed observable must not slip through the projection.

    The source observes register ``a``; the target renames it to
    ``b``.  Location ``X`` is shared, so the zero-overlap guard never
    fires — but projecting ``T0:b`` away would let the renamed
    register hold *any* value and still "verify".
    """

    def setup_method(self):
        clear_behavior_cache()

    def _programs(self):
        source = x86("src", (W("X", 1), R("a", "X")))
        target = Program("tgt", Arch.ARM,
                         ((W("X", 1), R("b", "X")),))
        return source, target

    def test_target_only_keys_raise(self):
        source, target = self._programs()
        with pytest.raises(ModelError, match="observes keys"):
            check_translation(source, target, X86, ARM,
                              mapping_name="renamed")

    def test_explicit_opt_out_warns_and_projects(self):
        source, target = self._programs()
        with pytest.warns(UserWarning, match="observes keys"):
            verdict = check_translation(
                source, target, X86, ARM, mapping_name="renamed",
                allow_extra_target_keys=True)
        # Over the shared key X the programs agree.
        assert verdict.ok

    def test_source_only_keys_remain_sound(self):
        # Projection in the source direction is fine: the target
        # observing strictly *less* cannot hide a corrupted value.
        source = x86("src", (W("X", 1), R("a", "X")))
        target = Program("tgt", Arch.ARM, ((W("X", 1),),))
        verdict = check_translation(source, target, X86, ARM,
                                    mapping_name="narrowed")
        assert verdict.ok


def _collect_fences(ops):
    found = []
    for op in ops:
        if isinstance(op, FenceOp):
            found.append(op)
        elif isinstance(op, If):
            found += _collect_fences(op.then_ops)
            found += _collect_fences(op.else_ops)
    return found


#: WRC with the reader-side ordering supplied *only* by a fence nested
#: in both arms of a mapped conditional.  The T1 leg stays ordered by
#: the residual ctrl dependency (ctrl into writes is preserved on
#: Arm), so the forbidden outcome hinges entirely on the in-branch
#: DMBFF between T2's loads — exactly the fence the old top-level-only
#: ``drop_fences`` failed to remove.
WRC_BRANCHY = LitmusTest(
    x86(
        "WRC-branchy",
        (W("X", 1),),
        (R("a", "X"), W("Y", 1)),
        (R("b", "Y"), R("c", "X")),
    ),
    forbidden=(outcome(T1_a=1, T2_b=1, T2_c=0),),
)


def _fence_in_branch_mapping() -> OpMapping:
    """x86→Arm lowering that hides every fence inside an ``If``."""

    def map_op(op):
        if isinstance(op, Load):
            return (op, If(op.reg, 1,
                           then_ops=(FenceOp(Fence.DMBFF),),
                           else_ops=(FenceOp(Fence.DMBFF),)))
        return (op,)

    return OpMapping("branchy-fences", Arch.X86, Arch.ARM, map_op)


class TestDropFencesRecursesIntoBranches:
    def setup_method(self):
        clear_behavior_cache()

    def test_fences_inside_if_arms_are_stripped(self):
        def map_op(op):
            if isinstance(op, Rmw):
                return (If("r", 1,
                           then_ops=(FenceOp(Fence.DMBFF), W("X", 2)),
                           else_ops=(FenceOp(Fence.DMBFF),
                                     If("r", 0, then_ops=(
                                         FenceOp(Fence.DMBFF),)))),)
            return (op,)

        mapping = OpMapping("nested", Arch.TCG, Arch.ARM, map_op)
        weakened = drop_fences(mapping, frozenset({Fence.DMBFF}), "ff")
        lowered = weakened.map_op(TCG_RMW)
        assert _collect_fences(lowered) == []
        # The non-fence payload of the branch survives.
        (cond,) = lowered
        assert any(isinstance(op, type(W("X", 2)))
                   for op in cond.then_ops)

    def test_other_fence_kinds_survive_inside_arms(self):
        def map_op(op):
            if isinstance(op, Rmw):
                return (If("r", 1, then_ops=(FenceOp(Fence.DMBLD),
                                             FenceOp(Fence.DMBFF))),)
            return (op,)

        mapping = OpMapping("mixed", Arch.TCG, Arch.ARM, map_op)
        weakened = drop_fences(mapping, frozenset({Fence.DMBFF}), "ff")
        (cond,) = weakened.map_op(TCG_RMW)
        kinds = [f.kind for f in _collect_fences((cond,))]
        assert kinds == [Fence.DMBLD]

    def test_branchy_mapping_verifies_with_its_fences(self):
        verdict = check_mapping(WRC_BRANCHY,
                                _fence_in_branch_mapping(), X86, ARM)
        assert verdict.ok

    def test_ablation_sees_through_the_branch(self):
        # Before the fix the weakened mapping still contained every
        # fence (all of them live in If arms), so the ablation
        # concluded the DMBFF was unnecessary for this corpus.
        weakened = drop_fences(_fence_in_branch_mapping(),
                               frozenset({Fence.DMBFF}), "ff")
        (cond_tail,) = weakened.map_op(R("b", "Y"))[1:]
        assert _collect_fences((cond_tail,)) == []
        result = ablate((WRC_BRANCHY,), weakened, X86, ARM, "ff")
        assert result.fence_was_necessary
        assert result.broken_tests == ("WRC-branchy",)


class TestCorpusExtraTargetKeysPlumbThrough:
    """``check_mapping``/``check_corpus`` accept the same
    ``allow_extra_target_keys`` opt-out as ``check_translation``.

    Sweeping a derived scheme whose mapping legitimately observes
    extra target registers used to abort the whole corpus on the
    first such test instead of warning per-test.
    """

    def setup_method(self):
        clear_behavior_cache()

    def _renaming_mapping(self) -> OpMapping:
        from repro.core.program import Load, Store

        def map_op(op):
            if isinstance(op, Load):
                return (Load("extra_" + op.reg, op.loc),)
            return (op,)

        return OpMapping("renaming", Arch.X86, Arch.ARM, map_op)

    def _test(self) -> LitmusTest:
        program = x86("rename-probe", (W("X", 1), R("a", "X")))
        return LitmusTest(program=program)

    def test_check_mapping_raises_by_default(self):
        with pytest.raises(ModelError, match="observes keys"):
            check_mapping(self._test(), self._renaming_mapping(),
                          X86, ARM)

    def test_check_mapping_opt_out_warns(self):
        with pytest.warns(UserWarning, match="observes keys"):
            verdict = check_mapping(self._test(),
                                    self._renaming_mapping(),
                                    X86, ARM,
                                    allow_extra_target_keys=True)
        assert verdict.ok

    def test_check_corpus_opt_out_reaches_every_test(self):
        from repro.core.verifier import check_corpus

        corpus = (self._test(),
                  LitmusTest(program=x86(
                      "rename-probe-2", (W("Y", 2), R("c", "Y")))))
        with pytest.raises(ModelError, match="observes keys"):
            check_corpus(corpus, self._renaming_mapping(), X86, ARM)
        with pytest.warns(UserWarning, match="observes keys"):
            report = check_corpus(corpus, self._renaming_mapping(),
                                  X86, ARM,
                                  allow_extra_target_keys=True)
        assert [v.test_name for v in report.verdicts] == \
            ["rename-probe", "rename-probe-2"]
        assert report.ok
