"""Figure 10 transformations: correctness and the documented failures."""

import pytest

from repro.core import ARM, TCG, Arch, Fence, Program
from repro.core import litmus_library as L
from repro.core.litmus_library import R, W, outcome, shows, tcg
from repro.core.program import FenceOp, If, Load, Store
from repro.core.transforms import (
    ELIM_SAFE_RAR,
    ELIM_SAFE_RAW,
    ELIM_SAFE_WAW,
    FIGURE_10_RULES,
    eliminate_rar,
    eliminate_raw,
    eliminate_waw,
    merge_adjacent_fences,
    merge_fences,
    remove_false_dependency,
    reorder_adjacent,
    strengthen_fence,
    substitute_reg,
)
from repro.core.verifier import check_translation
from repro.errors import MappingError


def correct(src, tgt, model=TCG):
    return check_translation(src, tgt, model, model, mapping_name="t").ok


#: A two-thread observer context that notices most reorderings.
def with_observer(*t0_ops):
    return tcg("ctx", tuple(t0_ops),
               (R("p", "Y"), FenceOp(Fence.FRR), R("q", "X")))


class TestEliminations:
    def test_rar_correct(self):
        src = with_observer(W("X", 1), R("a", "X"), R("b", "X"))
        tgt = eliminate_rar(src, 0, 1)
        assert correct(src, tgt)

    def test_rar_renames_later_uses(self):
        prog = tcg("p", (R("a", "X"), R("b", "X"),
                         If("b", 1, then_ops=(W("Y", 5),))))
        out = eliminate_rar(prog, 0, 0)
        branch = out.threads[0][1]
        assert isinstance(branch, If) and branch.reg == "a"

    def test_raw_correct_without_fence(self):
        src = with_observer(W("X", 2), R("a", "X"), Store("Y", "a"))
        tgt = eliminate_raw(src, 0, 0)
        assert correct(src, tgt)
        # The store now carries the constant.
        assert Store("Y", 2) in tgt.threads[0]

    def test_waw_correct(self):
        src = with_observer(W("X", 1), W("X", 2), W("Y", 1))
        tgt = eliminate_waw(src, 0, 0)
        assert correct(src, tgt)
        assert W("X", 1) not in tgt.threads[0]

    def test_f_rar_correct_across_frm(self):
        src = with_observer(
            W("X", 1), R("a", "X"), FenceOp(Fence.FRM), R("b", "X"))
        tgt = eliminate_rar(src, 0, 1)
        assert correct(src, tgt)

    def test_f_waw_correct_across_frm(self):
        src = with_observer(
            W("X", 1), FenceOp(Fence.FRM), W("X", 2), W("Y", 1))
        tgt = eliminate_waw(src, 0, 0)
        assert correct(src, tgt)

    def test_f_waw_across_fww_found_unsound(self):
        """Reproduction finding: Figure 10 claims F-WAW is safe for
        o ∈ {rm, ww}, but eliminating the first write across an Fww
        also erases its [W];po;[Fww];po;[W] edge to later writes, which
        an external Frr-fenced reader observes.  Our checker flags it;
        recorded as a deviation in EXPERIMENTS.md."""
        src = with_observer(
            W("X", 1), FenceOp(Fence.FWW), W("X", 2), W("Y", 1))
        tgt = eliminate_waw(src, 0, 0)
        assert not correct(src, tgt)

    def test_f_raw_incorrect_across_fmr(self):
        """The FMR bug (Section 3.2), at its minimal site."""
        transformed = eliminate_raw(L.FMR_SOURCE, 0, 2)
        assert not correct(L.FMR_SOURCE, transformed)

    def test_f_raw_correct_across_fww(self):
        src = with_observer(
            W("X", 2), FenceOp(Fence.FWW), R("a", "X"), Store("Y", "a"))
        tgt = eliminate_raw(src, 0, 0)
        assert correct(src, tgt)

    def test_safe_fence_sets(self):
        assert ELIM_SAFE_RAR == {Fence.FRM, Fence.FWW}
        assert ELIM_SAFE_RAW == {Fence.FSC, Fence.FWW}
        # Conservative: Figure 10 also claims Fww, see the deviation
        # test above.
        assert ELIM_SAFE_WAW == {Fence.FRM}

    def test_rule_table_complete(self):
        assert [r.name for r in FIGURE_10_RULES] == [
            "RAR", "RAW", "WAW", "F-RAR", "F-RAW", "F-WAW"]

    def test_bad_site_raises(self):
        prog = tcg("p", (W("X", 1), W("Y", 1)))
        with pytest.raises(MappingError):
            eliminate_rar(prog, 0, 0)
        with pytest.raises(MappingError):
            eliminate_raw(prog, 0, 1)  # no same-loc read follows
        with pytest.raises(MappingError):
            eliminate_waw(prog, 0, 0)  # different locations


class TestFenceMerging:
    def test_frm_fww_merge_covers_both(self):
        merged = merge_fences(Fence.FRM, Fence.FWW)
        from repro.core.mappings import _TCG_FENCE_PAIRS

        union = _TCG_FENCE_PAIRS[Fence.FRM] | _TCG_FENCE_PAIRS[Fence.FWW]
        assert union <= _TCG_FENCE_PAIRS.get(
            merged, _TCG_FENCE_PAIRS[Fence.FMM])

    def test_fsc_absorbs(self):
        assert merge_fences(Fence.FSC, Fence.FRR) is Fence.FSC
        assert merge_fences(Fence.FWW, Fence.FSC) is Fence.FSC

    def test_same_fence_merges_to_itself(self):
        assert merge_fences(Fence.FRR, Fence.FRR) is Fence.FRR
        assert merge_fences(Fence.FWW, Fence.FWW) is Fence.FWW

    def test_merge_site_correct(self):
        # The Section 6.1 example: a = X; Frm; Fww; Y = 1.
        src = tcg(
            "merge-src",
            (R("a", "X"), FenceOp(Fence.FRM), FenceOp(Fence.FWW),
             W("Y", 1)),
            (R("p", "Y"), FenceOp(Fence.FRR), R("q", "X")),
        )
        tgt = merge_adjacent_fences(src, 0, 1)
        assert correct(src, tgt)
        fences = [op for op in tgt.threads[0] if isinstance(op, FenceOp)]
        assert len(fences) == 1

    def test_strengthen_correct(self):
        src = with_observer(R("a", "X"), FenceOp(Fence.FRR), R("b", "Y"))
        tgt = strengthen_fence(src, 0, 1, Fence.FSC)
        assert correct(src, tgt)

    def test_weakening_rejected(self):
        src = with_observer(R("a", "X"), FenceOp(Fence.FMM), R("b", "Y"))
        with pytest.raises(MappingError):
            strengthen_fence(src, 0, 1, Fence.FRR)


class TestReordering:
    def test_independent_accesses_reorder_correctly_in_tcg(self):
        src = with_observer(W("X", 1), W("Y", 1))
        tgt = reorder_adjacent(src, 0, 0)
        assert correct(src, tgt)

    def test_reordering_across_same_location_rejected(self):
        src = tcg("p", (W("X", 1), R("a", "X")))
        with pytest.raises(MappingError):
            reorder_adjacent(src, 0, 0)

    def test_data_dependent_pair_rejected(self):
        src = tcg("p", (R("a", "X"), Store("Y", "a")))
        with pytest.raises(MappingError):
            reorder_adjacent(src, 0, 0)

    def test_load_store_reorder_correct_in_tcg(self):
        src = with_observer(R("a", "Z"), W("X", 1))
        tgt = reorder_adjacent(src, 0, 0)
        assert correct(src, tgt)


class TestFalseDependencyElimination:
    def _prog(self, arch):
        # T1 reads Y then stores X = (a*0)+5 — constant value, false
        # syntactic dependency on a.  T2 observes with a load fence.
        fence = Fence.FRR if arch is Arch.TCG else Fence.DMBLD
        return Program(
            "fdep", arch,
            ((W("Y", 1),),
             (R("a", "Y"), Store("X", 5, dep="a")),
             (R("p", "X"), FenceOp(fence), R("q", "Y"))),
        )

    def test_correct_in_tcg_model(self):
        src = self._prog(Arch.TCG)
        tgt = remove_false_dependency(src, 1, 1)
        assert correct(src, tgt, TCG)

    def test_incorrect_in_arm_model(self):
        """The same rewrite removes a dob edge at the Arm level —
        which is why Risotto performs it on the IR, not on Arm code."""
        src = self._prog(Arch.ARM)
        tgt = remove_false_dependency(src, 1, 1)
        assert not correct(src, tgt, ARM)

    def test_requires_false_dependency(self):
        src = tcg("p", (W("X", 1),))
        with pytest.raises(MappingError):
            remove_false_dependency(src, 0, 0)


class TestSubstituteReg:
    def test_constant_folds_branch(self):
        ops = (If("a", 1, then_ops=(W("X", 1),), else_ops=(W("X", 2),)),)
        # Requires 'a' defined; bypass program validation by calling the
        # substitution helper directly.
        assert substitute_reg(ops, "a", 1) == (W("X", 1),)
        assert substitute_reg(ops, "a", 0) == (W("X", 2),)

    def test_register_rename(self):
        ops = (Store("X", "a"), If("a", 1, then_ops=(Store("Y", "a"),)))
        out = substitute_reg(ops, "a", "b")
        assert out[0] == Store("X", "b")
        assert out[1].reg == "b"
        assert out[1].then_ops[0] == Store("Y", "b")
