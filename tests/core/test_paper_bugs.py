"""Reproduction of every correctness finding reported in the paper.

* Section 3.2 — QEMU translation errors (MPQ with RMW1_AL, SBQ with
  RMW2_AL, FMR's RAW transformation under Fmr).
* Section 3.3 — the intended Arm-Cats mapping is broken (SBAL) under
  the original Arm model and fixed by the strengthened bob.
* Section 5.4 — Risotto's mappings are correct over the whole corpus,
  and minimal (Figures 8 and 9).
"""

import pytest

from repro.core import ARM, ARM_ORIGINAL, TCG, X86, Fence
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.transforms import eliminate_raw
from repro.core.verifier import (
    ablate,
    check_corpus,
    check_mapping,
    check_translation,
    drop_fences,
    drop_rmw_fence,
)


class TestQemuBugs:
    """Section 3.2."""

    def test_mpq_broken_with_rmw1al_helper(self):
        verdict = check_mapping(L.MPQ, M.qemu_x86_to_arm_gcc10, X86, ARM)
        assert not verdict.ok
        assert frozenset({("T1:a", 1), ("X", 1)}) in verdict.violated_outcomes

    def test_mpq_broken_with_rmw2al_helper_too(self):
        verdict = check_mapping(L.MPQ, M.qemu_x86_to_arm_gcc9, X86, ARM)
        assert not verdict.ok

    def test_sbq_broken_with_rmw2al_helper(self):
        verdict = check_mapping(L.SBQ, M.qemu_x86_to_arm_gcc9, X86, ARM)
        assert not verdict.ok
        assert verdict.violated_outcomes

    def test_sbq_pattern_gone_with_risotto_rmw2(self):
        verdict = check_mapping(L.SBQ, M.risotto_x86_to_arm_rmw2, X86, ARM)
        assert verdict.ok

    def test_fmr_raw_elimination_incorrect(self):
        transformed = eliminate_raw(L.FMR_SOURCE, 0, 2)
        verdict = check_translation(
            L.FMR_SOURCE, transformed, TCG, TCG, mapping_name="raw-elim"
        )
        assert not verdict.ok

    def test_fmr_outcome_is_the_new_behavior(self):
        from repro.core.enumerate import behaviors
        from repro.core.litmus_library import FMR_OUTCOME, shows

        transformed = eliminate_raw(L.FMR_SOURCE, 0, 2)
        assert not shows(behaviors(L.FMR_SOURCE, TCG), FMR_OUTCOME)
        assert shows(behaviors(transformed, TCG), FMR_OUTCOME)

    def test_risotto_mapping_emits_no_fmr_or_fwr(self):
        """Section 4.1: avoiding Fmr/Fwr keeps RAW transforms correct."""
        for test in L.X86_CORPUS:
            mapped = M.risotto_x86_to_tcg.apply(test.program)

            def fences(ops):
                for op in ops:
                    if hasattr(op, "kind"):
                        yield op.kind
                    if hasattr(op, "then_ops"):
                        yield from fences(op.then_ops)
                        yield from fences(op.else_ops)

            for ops in mapped.threads:
                assert Fence.FMR not in set(fences(ops))
                assert Fence.FWR not in set(fences(ops))


class TestArmCatsBug:
    """Section 3.3."""

    def test_sbal_breaks_intended_mapping_on_original_model(self):
        verdict = check_mapping(
            L.SBAL, M.armcats_intended, X86, ARM_ORIGINAL)
        assert not verdict.ok

    def test_sbal_fixed_by_corrected_model(self):
        verdict = check_mapping(L.SBAL, M.armcats_intended, X86, ARM)
        assert verdict.ok

    def test_intended_mapping_correct_on_corpus_after_fix(self):
        report = check_corpus(L.X86_CORPUS, M.armcats_intended, X86, ARM)
        assert report.ok, str(report)


class TestRisottoCorrectness:
    """Theorem 1 over the corpus — the stand-in for the Agda proofs."""

    def test_x86_to_tcg_mapping_correct(self):
        report = check_corpus(L.X86_CORPUS, M.risotto_x86_to_tcg, X86, TCG)
        assert report.ok, str(report)

    @pytest.mark.parametrize("mapping", [
        M.risotto_x86_to_arm_rmw1,
        M.risotto_x86_to_arm_rmw2,
    ], ids=["rmw1al", "rmw2ff"])
    def test_x86_to_arm_end_to_end_correct(self, mapping):
        report = check_corpus(L.X86_CORPUS, mapping, X86, ARM)
        assert report.ok, str(report)

    def test_tcg_to_arm_mapping_correct_on_mapped_corpus(self):
        for test in L.X86_CORPUS:
            tcg_prog = M.risotto_x86_to_tcg.apply(test.program)
            arm_prog = M.risotto_tcg_to_arm_rmw1.apply(tcg_prog)
            verdict = check_translation(
                tcg_prog, arm_prog, TCG, ARM,
                mapping_name="tcg-to-arm",
            )
            assert verdict.ok, test.name

    def test_qemu_scheme_correct_apart_from_rmw(self):
        """QEMU's over-strong fences are correct on RMW-free tests."""
        rmw_free = [t for t in L.X86_CORPUS
                    if t.name in ("MP", "SB", "SB+mfences", "LB",
                                  "MP+mfences", "S", "R", "2+2W",
                                  "IRIW+mfences", "CoRR")]
        report = check_corpus(
            tuple(rmw_free), M.qemu_x86_to_arm_gcc10, X86, ARM)
        assert report.ok, str(report)

    def test_nofences_breaks_mp(self):
        verdict = check_mapping(L.MP, M.nofences_x86_to_arm, X86, ARM)
        assert not verdict.ok


class TestMinimality:
    """Section 5.4 / Figures 8 and 9: every fence is necessary."""

    def test_trailing_frm_necessary(self):
        weakened = drop_fences(
            M.risotto_x86_to_tcg, frozenset({Fence.FRM}), "frm")
        result = ablate(L.X86_CORPUS, weakened, X86, TCG, "drop Frm")
        assert result.fence_was_necessary
        assert "MP" in result.broken_tests or "LB" in result.broken_tests

    def test_leading_fww_necessary(self):
        weakened = drop_fences(
            M.risotto_x86_to_tcg, frozenset({Fence.FWW}), "fww")
        result = ablate(L.X86_CORPUS, weakened, X86, TCG, "drop Fww")
        assert result.fence_was_necessary
        assert "MP" in result.broken_tests

    def test_rmw2_leading_dmbff_necessary(self):
        weakened = drop_rmw_fence(
            M.risotto_tcg_to_arm_rmw2, leading=True, suffix="lead-ff")
        end_to_end = M.risotto_x86_to_tcg.then(weakened)
        result = ablate(L.X86_CORPUS, end_to_end, X86, ARM, "drop lead FF")
        assert result.fence_was_necessary

    def test_rmw2_trailing_dmbff_necessary(self):
        weakened = drop_rmw_fence(
            M.risotto_tcg_to_arm_rmw2, leading=False, suffix="trail-ff")
        end_to_end = M.risotto_x86_to_tcg.then(weakened)
        result = ablate(L.X86_CORPUS, end_to_end, X86, ARM,
                        "drop trail FF")
        assert result.fence_was_necessary
        assert "SBQ" in result.broken_tests or "SBAL" in result.broken_tests

    def test_figure8_lb_ir_needs_frw(self):
        from repro.core.enumerate import behaviors
        from repro.core.litmus_library import outcome, shows

        assert not shows(
            behaviors(L.LB_IR.program, TCG), outcome(T0_a=1, T1_b=1))

    def test_figure8_mp_ir_forbidden(self):
        from repro.core.enumerate import behaviors
        from repro.core.litmus_library import outcome, shows

        assert not shows(
            behaviors(L.MP_IR.program, TCG), outcome(T0_a=1, T0_b=0))
