"""Tests for candidate-execution enumeration."""

import pytest

from repro.core import SC, TCG, X86, Arch, Fence, Mode, RmwFlavor
from repro.core.enumerate import (
    DEFAULT_CANDIDATE_LIMIT,
    behavior_cache_stats,
    behaviors,
    clear_behavior_cache,
    consistent_executions,
    enumerate_executions,
    location_domains,
    thread_traces,
)
from repro.core.axioms import co_well_formed, rf_well_formed
from repro.core.litmus_library import CAS, MFENCE, R, W, outcome, shows, x86
from repro.core.program import If, Load, Program, Rmw, Store
from repro.errors import ModelError


class TestLocationDomains:
    def test_constants_and_init(self):
        prog = x86("p", (W("X", 1), W("X", 2)), (R("a", "X"),))
        domains = location_domains(prog)
        assert domains["X"] == {0, 1, 2}

    def test_rmw_new_value_included(self):
        prog = x86("p", (CAS("X", 0, 7),))
        assert location_domains(prog)["X"] == {0, 7}

    def test_init_override(self):
        prog = Program("p", Arch.X86, ((R("a", "X"),),), init=(("X", 5),))
        assert location_domains(prog)["X"] == {5}

    def test_register_store_widens(self):
        prog = x86("p", (W("Y", 3),), (R("a", "Y"), Store("X", "a")))
        domains = location_domains(prog)
        assert 3 in domains["X"] and 0 in domains["X"]

    def test_register_store_chain_reaches_fixpoint(self):
        # Value 3 must flow Y -> X -> Z through two reg-valued stores,
        # which a single widening pass would miss: T2 reads X before
        # X's domain has absorbed Y's constant.
        prog = x86(
            "chain",
            (W("Y", 3),),
            (R("a", "Y"), Store("X", "a")),
            (R("b", "X"), Store("Z", "b")),
        )
        domains = location_domains(prog)
        assert domains["Y"] == {0, 3}
        # Both reg-valued stores absorb the whole value universe.
        assert domains["X"] == {0, 3}
        assert domains["Z"] == {0, 3}
        # The widened program still enumerates within the default
        # candidate budget.
        execs = list(enumerate_executions(prog))
        assert 0 < len(execs) <= DEFAULT_CANDIDATE_LIMIT


class TestThreadTraces:
    def test_straight_line_single_trace(self):
        traces = thread_traces((W("X", 1), W("Y", 1)), {"X": frozenset({0, 1}), "Y": frozenset({0, 1})})
        assert len(traces) == 1
        assert [s.kind for s in traces[0].specs] == ["W", "W"]

    def test_load_branches_over_domain(self):
        traces = thread_traces((R("a", "X"),), {"X": frozenset({0, 1, 2})})
        assert len(traces) == 3
        assert sorted(t.regs["a"] for t in traces) == [0, 1, 2]

    def test_rmw_success_and_failure(self):
        traces = thread_traces(
            (CAS("X", 0, 1),), {"X": frozenset({0, 5})}
        )
        kinds = sorted(
            tuple(s.kind for s in t.specs) for t in traces
        )
        assert kinds == [("R",), ("R", "W")]
        success = next(t for t in traces if len(t.specs) == 2)
        assert success.specs[0].partner == 1
        assert success.specs[1].val == 1

    def test_if_follows_register_value(self):
        ops = (R("a", "X"), If("a", 1, then_ops=(W("Y", 9),)))
        traces = thread_traces(ops, {"X": frozenset({0, 1}), "Y": frozenset({0, 9})})
        with_w = [t for t in traces if any(s.kind == "W" for s in t.specs)]
        assert len(with_w) == 1
        assert with_w[0].regs["a"] == 1

    def test_ctrl_dependency_recorded(self):
        ops = (R("a", "X"), If("a", 1, then_ops=(W("Y", 9),)))
        traces = thread_traces(ops, {"X": frozenset({0, 1}), "Y": frozenset({0, 9})})
        taken = next(t for t in traces if len(t.specs) == 2)
        assert (0, 1) in taken.ctrl

    def test_data_dependency_recorded(self):
        ops = (R("a", "X"), Store("Y", "a"))
        traces = thread_traces(ops, {"X": frozenset({0, 1}), "Y": frozenset({0, 1})})
        for t in traces:
            assert (0, 1) in t.data

    def test_ctrl_extends_past_join(self):
        ops = (R("a", "X"), If("a", 1, then_ops=()), W("Z", 1))
        traces = thread_traces(
            ops, {"X": frozenset({0, 1}), "Z": frozenset({0, 1})}
        )
        for t in traces:
            # The write after the join is still ctrl-dependent.
            assert (0, len(t.specs) - 1) in t.ctrl


class TestEnumeration:
    def test_single_thread_counts(self):
        prog = x86("p", (W("X", 1), R("a", "X")))
        execs = list(enumerate_executions(prog))
        # Read X can see init(0) or the write(1); both have exactly one
        # rf source and one co order.
        assert len(execs) == 2

    def test_rf_and_co_always_well_formed(self):
        prog = x86(
            "p",
            (W("X", 1), W("Y", 1)),
            (R("a", "Y"), R("b", "X")),
        )
        execs = list(enumerate_executions(prog))
        assert execs
        for ex in execs:
            assert rf_well_formed(ex)
            assert co_well_formed(ex)

    def test_limit_enforced(self):
        prog = x86("p", (W("X", 1), R("a", "X")))
        with pytest.raises(ModelError):
            list(enumerate_executions(prog, limit=1))

    def test_register_observations_attached(self):
        prog = x86("p", (W("X", 3),), (R("a", "X"),))
        for ex in enumerate_executions(prog):
            keys = {k for k, _ in ex.regs}
            assert keys == {"T1:a"}

    def test_init_events_present(self):
        prog = x86("p", (W("X", 1),))
        ex = next(enumerate_executions(prog))
        inits = [e for e in ex.events.values() if e.is_init]
        assert len(inits) == 1
        assert inits[0].loc == "X" and inits[0].val == 0


class TestConsistency:
    def test_sc_subset_of_x86(self):
        prog = x86(
            "sb",
            (W("X", 1), R("a", "Y")),
            (W("Y", 1), R("b", "X")),
        )
        sc_behs = behaviors(prog, SC)
        x86_behs = behaviors(prog, X86)
        assert sc_behs <= x86_behs

    def test_sb_weak_outcome_only_beyond_sc(self):
        prog = x86(
            "sb",
            (W("X", 1), R("a", "Y")),
            (W("Y", 1), R("b", "X")),
        )
        weak = outcome(T0_a=0, T1_b=0)
        assert not shows(behaviors(prog, SC), weak)
        assert shows(behaviors(prog, X86), weak)

    def test_coherence_filters_stale_second_read(self):
        prog = x86("corr", (W("X", 1),), (R("a", "X"), R("b", "X")))
        behs = behaviors(prog, SC)
        assert not shows(behs, outcome(T1_a=1, T1_b=0))

    def test_consistent_executions_returns_executions(self):
        prog = x86("p", (W("X", 1),))
        execs = consistent_executions(prog, X86)
        assert len(execs) == 1
        assert execs[0].behavior == frozenset({("X", 1)})

    def test_atomicity_rules_out_intervening_write(self):
        # Two CAS(X,0,->) both succeeding is impossible.
        prog = x86("atom", (CAS("X", 0, 1),), (CAS("X", 0, 2),))
        behs = behaviors(prog, X86)
        # Both expect 0, so exactly one succeeds in every behaviour.
        for b in behs:
            d = dict(b)
            assert d["X"] in (1, 2)


class TestBehaviorCache:
    def test_cache_stable(self):
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        assert behaviors(prog, X86) is behaviors(prog, X86)

    def test_stats_count_hits_and_misses(self):
        clear_behavior_cache()
        prog = x86("p", (W("X", 1),), (R("a", "X"),))
        behaviors(prog, X86)
        behaviors(prog, X86)
        behaviors(prog, SC)
        stats = behavior_cache_stats()
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_clear_resets_stats(self):
        prog = x86("p", (W("X", 1),))
        behaviors(prog, X86)
        clear_behavior_cache()
        stats = behavior_cache_stats()
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0

    def test_stats_snapshot_and_merge(self):
        clear_behavior_cache()
        prog = x86("p", (W("X", 1),))
        behaviors(prog, X86)
        snap = behavior_cache_stats()
        behaviors(prog, X86)
        # The snapshot is detached from the live counters.
        assert snap.hits == 0
        merged = behavior_cache_stats()
        merged.merge(snap)
        assert merged.misses == 2
        assert merged.hits == 1
